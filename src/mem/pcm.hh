/**
 * @file
 * Phase-change-memory (PCM) main-memory timing model.
 *
 * Table I of the paper: 8 GB PCM, 55 ns reads, 150 ns writes, 128-entry
 * write queue, 64-entry read queue. The device is banked: accesses to
 * distinct banks overlap, same-bank accesses serialize. Two interfaces are
 * offered: a callback style (read/write with completion events) used by the
 * drain machinery, and an occupancy style (readOccupy/writeOccupy) that
 * returns the queuing + service delay for callers that fold memory latency
 * into a larger computed duration (e.g. the BMT update walker).
 */

#ifndef SECPB_MEM_PCM_HH
#define SECPB_MEM_PCM_HH

#include <cstdint>

#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace secpb
{

/** PCM device configuration (defaults follow Table I at 4 GHz). */
struct PcmConfig
{
    Cycles readLatency = 220;   ///< 55 ns at 4 GHz.
    Cycles writeLatency = 600;  ///< 150 ns at 4 GHz.
    unsigned numBanks = 32;     ///< Bank/partition parallelism.
    unsigned readQueueEntries = 64;
    unsigned writeQueueEntries = 128;
};

/** Banked PCM timing model. */
class PcmModel
{
  public:
    PcmModel(EventQueue &eq, const PcmConfig &cfg, StatGroup &parent)
        : _eq(eq), _cfg(cfg),
          _banks(eq, "pcm", cfg.numBanks),
          _stats("pcm", &parent),
          statReads(_stats, "reads", "PCM read accesses"),
          statWrites(_stats, "writes", "PCM write accesses"),
          statReadDelay(_stats, "read_delay",
                        "total read delay incl. queuing (cycles)"),
          statWriteDelay(_stats, "write_delay",
                         "total write delay incl. queuing (cycles)")
    {}

    /** Issue a read; fires @p done when data is available. */
    Tick
    read(Addr addr, EventCallback done)
    {
        ++statReads;
        Tick finish = _banks.request(addr, _cfg.readLatency,
                                     std::move(done));
        statReadDelay.sample(static_cast<double>(finish - _eq.curTick()));
        TRACE_SPAN("pcm", "read", _eq.curTick(), finish);
        return finish;
    }

    /** Issue a write; fires @p done once the cell array is updated. */
    Tick
    write(Addr addr, EventCallback done)
    {
        ++statWrites;
        Tick finish = _banks.request(addr, _cfg.writeLatency,
                                     std::move(done));
        statWriteDelay.sample(static_cast<double>(finish - _eq.curTick()));
        TRACE_SPAN("pcm", "write", _eq.curTick(), finish);
        return finish;
    }

    /**
     * Occupy the bank for a read and return the total delay (queuing +
     * service) as seen from now. For callers that compute an aggregate
     * duration instead of chaining events.
     */
    Cycles
    readOccupy(Addr addr)
    {
        ++statReads;
        Tick finish = _banks.request(addr, _cfg.readLatency, nullptr);
        Cycles delay = finish - _eq.curTick();
        statReadDelay.sample(static_cast<double>(delay));
        return delay;
    }

    /** Occupancy-style write; see readOccupy(). */
    Cycles
    writeOccupy(Addr addr)
    {
        ++statWrites;
        Tick finish = _banks.request(addr, _cfg.writeLatency, nullptr);
        Cycles delay = finish - _eq.curTick();
        statWriteDelay.sample(static_cast<double>(delay));
        return delay;
    }

    const PcmConfig &config() const { return _cfg; }

    /** Current tick (for clients without their own EventQueue ref). */
    Tick now() const { return _eq.curTick(); }

    std::uint64_t numReads() const
    { return static_cast<std::uint64_t>(statReads.value()); }
    std::uint64_t numWrites() const
    { return static_cast<std::uint64_t>(statWrites.value()); }

  private:
    EventQueue &_eq;
    PcmConfig _cfg;
    BankedResource _banks;
    StatGroup _stats;

  public:
    Scalar statReads;
    Scalar statWrites;
    Average statReadDelay;
    Average statWriteDelay;
};

} // namespace secpb

#endif // SECPB_MEM_PCM_HH
