/**
 * @file
 * Write Pending Queue (WPQ) -- the ADR persistence domain in the MC.
 *
 * Anything accepted by the WPQ is guaranteed durable: on power loss, ADR
 * flushes the queue to the PCM cell array. The queue coalesces by block
 * address (a second write to a queued block merges into the existing
 * entry), which is what lets counter/MAC block writes from consecutive
 * SecPB drains share slots. When full, pushes fail and the producer must
 * wait for a free-slot notification -- this is the backpressure path that
 * throttles SecPB draining under write-heavy workloads.
 */

#ifndef SECPB_MEM_WPQ_HH
#define SECPB_MEM_WPQ_HH

#include <deque>
#include <vector>

#include "mem/flat_map.hh"
#include "mem/pcm.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace secpb
{

/** The memory controller's ADR write pending queue. */
class WritePendingQueue
{
  public:
    WritePendingQueue(EventQueue &eq, PcmModel &pcm, unsigned num_entries,
                      StatGroup &parent)
        : _eq(eq), _pcm(pcm), _numEntries(num_entries),
          _stats("wpq", &parent),
          statPushes(_stats, "pushes", "writes accepted by the WPQ"),
          statCoalesced(_stats, "coalesced",
                        "writes merged into an existing WPQ entry"),
          statFullRejects(_stats, "full_rejects",
                          "pushes rejected because the WPQ was full"),
          statOccupancy(_stats, "occupancy", "WPQ occupancy at push")
    {
        // Occupancy is capped at _numEntries; one up-front reservation
        // means the queued-block set never rehashes mid-run.
        _queued.reserve(num_entries);
    }

    /**
     * Try to enqueue a persistent write of the block at @p addr.
     * @return true if accepted (possibly coalesced); false if full.
     */
    bool
    push(Addr addr)
    {
        const Addr aligned = blockAlign(addr);
        if (_queued.contains(aligned)) {
            ++statCoalesced;
            return true;
        }
        if (_queued.size() >= _numEntries) {
            ++statFullRejects;
            TRACE_INSTANT("wpq", "wpq_full", _eq.curTick());
            return false;
        }
        _queued.insert(aligned);
        ++statPushes;
        statOccupancy.sample(static_cast<double>(_queued.size()));
        issue(aligned);
        return true;
    }

    /** Register a callback fired the next time a slot frees up. */
    void
    notifyOnSpace(EventCallback cb)
    {
        _waiters.push_back(std::move(cb));
    }

    std::size_t occupancy() const { return _queued.size(); }
    bool full() const { return _queued.size() >= _numEntries; }
    unsigned capacity() const { return _numEntries; }

    /**
     * Worst-case number of block writes the battery must push to PCM if a
     * crash happens right now (the WPQ is in the persistence domain, so
     * this is energy already provisioned by ADR, not the SecPB battery --
     * exposed for the energy model's accounting).
     */
    std::size_t pendingAtCrash() const { return _queued.size(); }

  private:
    void
    issue(Addr aligned)
    {
        _pcm.write(aligned, [this, aligned] {
            _queued.erase(aligned);
            if (!_waiters.empty()) {
                std::vector<EventCallback> waiters;
                waiters.swap(_waiters);
                for (auto &w : waiters)
                    w();
            }
        });
    }

    EventQueue &_eq;
    PcmModel &_pcm;
    unsigned _numEntries;
    FlatSet<Addr> _queued;
    std::vector<EventCallback> _waiters;
    StatGroup _stats;

  public:
    Scalar statPushes;
    Scalar statCoalesced;
    Scalar statFullRejects;
    Average statOccupancy;
};

} // namespace secpb

#endif // SECPB_MEM_WPQ_HH
