/**
 * @file
 * Open-addressing hash containers for the simulator's hot sets.
 *
 * `std::unordered_map` buys pointer stability with one heap node per
 * element; the hot paths here (SecPB index, WPQ queued set, counter
 * blocks, PM image, in-flight walks) pay for that with a cache miss per
 * probe. FlatMap/FlatSet store entries inline in one power-of-two slot
 * array with linear probing and backward-shift deletion (no tombstones),
 * so a lookup is one hash plus a short contiguous scan.
 *
 * Contract differences from unordered_map -- callers must respect them:
 *  - find() returns a value *pointer* (nullptr when absent), not an
 *    iterator.
 *  - Any insert may grow the table and any erase back-shifts its cluster:
 *    both invalidate every outstanding value pointer. Do not hold a
 *    pointer across a mutation.
 *  - forEach() visits entries in slot order. That order is a pure
 *    function of the insert/erase history and the hash, so fixed-seed
 *    runs iterate identically -- but it is NOT sorted; callers needing a
 *    canonical order sort keys (see sortedKeys()).
 *  - Mutating the table inside forEach() is forbidden.
 */

#ifndef SECPB_MEM_FLAT_MAP_HH
#define SECPB_MEM_FLAT_MAP_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace secpb
{

/** Strong avalanche for integral keys (splitmix64 finalizer). */
struct FlatIntHash
{
    constexpr std::uint64_t
    operator()(std::uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }
};

/**
 * Open-addressing hash map: linear probing, power-of-two capacity,
 * backward-shift deletion. Keys and values live inline in one slot
 * array. Grows at 3/4 load.
 */
template <typename K, typename V, typename Hash = FlatIntHash>
class FlatMap
{
  public:
    struct Entry
    {
        K first{};
        V second{};
    };

    FlatMap() = default;

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _slots.size(); }

    /** Value for @p key, or nullptr. Invalidated by any mutation. */
    const V *
    find(const K &key) const
    {
        if (_size == 0)
            return nullptr;
        const std::size_t i = probe(key);
        return _used[i] ? &_slots[i].second : nullptr;
    }

    V *
    find(const K &key)
    {
        return const_cast<V *>(
            static_cast<const FlatMap *>(this)->find(key));
    }

    bool contains(const K &key) const { return find(key) != nullptr; }

    /** Insert-or-find, like unordered_map::operator[]. */
    V &
    operator[](const K &key)
    {
        maybeGrow(_size + 1);
        const std::size_t i = probe(key);
        if (!_used[i]) {
            _used[i] = 1;
            _slots[i].first = key;
            _slots[i].second = V{};
            ++_size;
        }
        return _slots[i].second;
    }

    /** Insert @p value under @p key; returns false if key existed. */
    bool
    insert(const K &key, const V &value)
    {
        maybeGrow(_size + 1);
        const std::size_t i = probe(key);
        if (_used[i])
            return false;
        _used[i] = 1;
        _slots[i].first = key;
        _slots[i].second = value;
        ++_size;
        return true;
    }

    /**
     * Remove @p key, backward-shifting the probe cluster so no tombstone
     * is left behind. Returns false if the key was absent.
     */
    bool
    erase(const K &key)
    {
        if (_size == 0)
            return false;
        std::size_t hole = probe(key);
        if (!_used[hole])
            return false;
        const std::size_t mask = _slots.size() - 1;
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask;
            if (!_used[j])
                break;
            // Slot j may fill the hole iff the hole lies on j's probe
            // path: dist(ideal -> j) >= dist(hole -> j), cyclically.
            const std::size_t ideal = _hash(_slots[j].first) & mask;
            if (((j - ideal) & mask) >= ((j - hole) & mask)) {
                _slots[hole] = _slots[j];
                hole = j;
            }
        }
        _used[hole] = 0;
        _slots[hole] = Entry{};
        --_size;
        return true;
    }

    /** Drop everything; capacity is retained. */
    void
    clear()
    {
        std::fill(_used.begin(), _used.end(), std::uint8_t{0});
        for (Entry &e : _slots)
            e = Entry{};
        _size = 0;
    }

    /** Ensure @p n entries fit without growth (one up-front rehash). */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = std::max<std::size_t>(_slots.size(), kMinCapacity);
        while (n * 4 > cap * 3)
            cap <<= 1;
        if (cap > _slots.size())
            rehash(cap);
    }

    /**
     * Visit every entry as f(key, value) in slot order (deterministic
     * for a deterministic history, unsorted). The table must not be
     * mutated from inside @p f.
     */
    template <typename F>
    void
    forEach(F &&f)
    {
        for (std::size_t i = 0; i < _slots.size(); ++i)
            if (_used[i])
                f(_slots[i].first, _slots[i].second);
    }

    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < _slots.size(); ++i)
            if (_used[i])
                f(_slots[i].first, _slots[i].second);
    }

    /** All keys, sorted -- the canonical deterministic dump order. */
    std::vector<K>
    sortedKeys() const
    {
        std::vector<K> keys;
        keys.reserve(_size);
        forEach([&](const K &k, const V &) { keys.push_back(k); });
        std::sort(keys.begin(), keys.end());
        return keys;
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    /** Slot of @p key if present, else the empty slot to place it in. */
    std::size_t
    probe(const K &key) const
    {
        const std::size_t mask = _slots.size() - 1;
        std::size_t i = _hash(key) & mask;
        while (_used[i] && !(_slots[i].first == key))
            i = (i + 1) & mask;
        return i;
    }

    void
    maybeGrow(std::size_t needed)
    {
        if (_slots.empty())
            rehash(kMinCapacity);
        else if (needed * 4 > _slots.size() * 3)
            rehash(_slots.size() * 2);
    }

    void
    rehash(std::size_t new_cap)
    {
        panic_if(new_cap & (new_cap - 1),
                 "FlatMap capacity must be a power of two");
        std::vector<Entry> old_slots;
        std::vector<std::uint8_t> old_used;
        old_slots.swap(_slots);
        old_used.swap(_used);
        _slots.resize(new_cap);
        _used.assign(new_cap, 0);
        const std::size_t mask = new_cap - 1;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (!old_used[i])
                continue;
            std::size_t j = _hash(old_slots[i].first) & mask;
            while (_used[j])
                j = (j + 1) & mask;
            _used[j] = 1;
            _slots[j] = old_slots[i];
        }
    }

    std::vector<Entry> _slots;
    std::vector<std::uint8_t> _used;
    std::size_t _size = 0;
    Hash _hash;
};

/** Open-addressing hash set: FlatMap machinery without a value. */
template <typename K, typename Hash = FlatIntHash>
class FlatSet
{
  public:
    std::size_t size() const { return _map.size(); }
    bool empty() const { return _map.empty(); }

    bool contains(const K &key) const { return _map.contains(key); }
    std::size_t count(const K &key) const { return contains(key) ? 1 : 0; }

    /** Insert @p key; returns false if it was already present. */
    bool insert(const K &key) { return _map.insert(key, Unit{}); }

    bool erase(const K &key) { return _map.erase(key); }
    void clear() { _map.clear(); }
    void reserve(std::size_t n) { _map.reserve(n); }

    template <typename F>
    void
    forEach(F &&f) const
    {
        _map.forEach([&](const K &k, const Unit &) { f(k); });
    }

    std::vector<K> sortedKeys() const { return _map.sortedKeys(); }

  private:
    struct Unit
    {
    };
    FlatMap<K, Unit, Hash> _map;
};

} // namespace secpb

#endif // SECPB_MEM_FLAT_MAP_HH
