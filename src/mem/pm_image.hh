/**
 * @file
 * Functional image of persistent memory.
 *
 * Everything that would survive power loss lives here: data ciphertext,
 * split-counter blocks, MACs. (BMT nodes are owned by BonsaiMerkleTree,
 * which is likewise treated as PM-resident; the root lives in an on-chip
 * battery-backed register.) Sparse open-addressing tables keep an 8 GB
 * device cheap to model while staying cache-friendly on the persist path.
 * Tamper hooks let integrity tests corrupt state the way a physical
 * attacker would.
 */

#ifndef SECPB_MEM_PM_IMAGE_HH
#define SECPB_MEM_PM_IMAGE_HH

#include <cstdint>

#include "crypto/cipher.hh"
#include "crypto/counters.hh"
#include "mem/block_data.hh"
#include "mem/flat_map.hh"
#include "sim/types.hh"

namespace secpb
{

/** Sparse functional state of the PM device. */
class PmImage
{
  public:
    /** Read the ciphertext of a data block (zero block if untouched). */
    BlockData
    readData(Addr block_addr) const
    {
        const BlockData *b = _data.find(blockAlign(block_addr));
        return b ? *b : zeroBlock();
    }

    /** Persist the ciphertext of a data block. */
    void
    writeData(Addr block_addr, const BlockData &ciphertext)
    {
        _data[blockAlign(block_addr)] = ciphertext;
    }

    /** True if a data block has ever been persisted. */
    bool
    hasData(Addr block_addr) const
    {
        return _data.contains(blockAlign(block_addr));
    }

    /** Read the counter block for page @p page_idx (default if untouched). */
    CounterBlock
    readCounterBlock(std::uint64_t page_idx) const
    {
        const CounterBlock *cb = _counters.find(page_idx);
        return cb ? *cb : CounterBlock{};
    }

    /** Persist a counter block. */
    void
    writeCounterBlock(std::uint64_t page_idx, const CounterBlock &cb)
    {
        _counters[page_idx] = cb;
    }

    /** True if the page's counter block was ever persisted. */
    bool
    hasCounterBlock(std::uint64_t page_idx) const
    {
        return _counters.contains(page_idx);
    }

    /** Drop a page's persisted counter block (page migration). */
    void
    eraseCounterBlock(std::uint64_t page_idx)
    {
        _counters.erase(page_idx);
    }

    /** Read the stored MAC for a data block (0 if untouched). */
    MacValue
    readMac(Addr block_addr) const
    {
        const MacValue *m = _macs.find(blockAlign(block_addr));
        return m ? *m : 0;
    }

    /** Persist a MAC. */
    void
    writeMac(Addr block_addr, MacValue mac)
    {
        _macs[blockAlign(block_addr)] = mac;
    }

    /** Number of distinct data blocks ever persisted. */
    std::size_t numDataBlocks() const { return _data.size(); }

    /**
     * All persisted data block addresses, sorted (recovery scans). The
     * sorted dump is the canonical order: recovery work is identical
     * regardless of the table's probe history.
     */
    std::vector<Addr>
    dataBlockAddrs() const
    {
        return _data.sortedKeys();
    }

    /** All page indices with a persisted counter block, sorted. */
    std::vector<std::uint64_t>
    counterPages() const
    {
        return _counters.sortedKeys();
    }

    /** Pre-size the hot tables (warm-up rehash churn skews short reps). */
    void
    reserve(std::size_t data_blocks, std::size_t pages)
    {
        _data.reserve(data_blocks);
        _macs.reserve(data_blocks);
        _counters.reserve(pages);
    }

    /**
     * Quarantine a data block (restore.hh): drop its ciphertext and MAC
     * so a detected-torn block reads as never-persisted instead of
     * lingering as corrupt state a later power cycle would trip over.
     */
    void
    eraseDataBlock(Addr block_addr)
    {
        _data.erase(blockAlign(block_addr));
        _macs.erase(blockAlign(block_addr));
    }

    /**
     * @name Tamper hooks (integrity tests)
     * These emulate a physical attacker flipping bits in the NVDIMM.
     * @{
     */
    void
    tamperData(Addr block_addr, unsigned byte, std::uint8_t xor_mask)
    {
        _data[blockAlign(block_addr)][byte % BlockSize] ^= xor_mask;
    }

    void
    tamperCounter(std::uint64_t page_idx, unsigned minor_idx,
                  std::uint8_t xor_mask = 1)
    {
        CounterBlock cb = readCounterBlock(page_idx);
        cb.minors[minor_idx % BlocksPerPage] ^= xor_mask;
        _counters[page_idx] = cb;
    }

    void
    tamperMac(Addr block_addr, std::uint64_t xor_mask)
    {
        _macs[blockAlign(block_addr)] ^= xor_mask;
    }

    /**
     * Replay attack: roll a block's tuple (ciphertext, counter minor, MAC)
     * back to a previously captured version.
     */
    void
    replayTuple(Addr block_addr, const BlockData &old_ct,
                const CounterBlock &old_cb, MacValue old_mac,
                std::uint64_t page_idx)
    {
        writeData(block_addr, old_ct);
        writeCounterBlock(page_idx, old_cb);
        writeMac(block_addr, old_mac);
    }
    /** @} */

  private:
    FlatMap<Addr, BlockData> _data;
    FlatMap<std::uint64_t, CounterBlock> _counters;
    FlatMap<Addr, MacValue> _macs;
};

} // namespace secpb

#endif // SECPB_MEM_PM_IMAGE_HH
