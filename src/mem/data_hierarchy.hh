/**
 * @file
 * The core-side data cache hierarchy (Table I: 64 KB L1D / 512 KB L2 /
 * 4 MB L3).
 *
 * Under the SecPB design data caches need no writebacks: dirty blocks are
 * guaranteed durable by the persist buffer, so LLC evictions of dirty
 * blocks are silently discarded like clean ones (paper Section IV-C(a)).
 * The hierarchy here is therefore a read-side structure: loads probe
 * L1 -> L2 -> L3 -> PM with inclusive fills; stores allocate in L1 in
 * parallel with their SecPB access.
 *
 * Two load-path modes exist in the CPU: the default *statistical* mode
 * (hit levels drawn from the benchmark profile, used by the calibrated
 * paper reproductions) and the *address-driven* mode, where generators
 * emit load addresses and hit levels emerge from these tags.
 */

#ifndef SECPB_MEM_DATA_HIERARCHY_HH
#define SECPB_MEM_DATA_HIERARCHY_HH

#include "cpu/trace_op.hh"
#include "mem/pcm.hh"
#include "mem/set_assoc.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Geometry and latencies of the three-level data hierarchy (Table I). */
struct DataHierarchyConfig
{
    CacheGeometry l1{64 * 1024, 8, 64};
    CacheGeometry l2{512 * 1024, 16, 64};
    CacheGeometry l3{4 * 1024 * 1024, 32, 64};
    Cycles l1Latency = 2;
    Cycles l2Latency = 20;
    Cycles l3Latency = 30;
};

/** Result of a load probe. */
struct LoadOutcome
{
    MemLevel level;
    Cycles latency;   ///< Cumulative access latency to the hit level.
};

/** Three-level inclusive data cache hierarchy. */
class DataHierarchy
{
  public:
    DataHierarchy(const DataHierarchyConfig &cfg, PcmModel &pcm,
                  StatGroup &parent)
        : _cfg(cfg), _l1(cfg.l1), _l2(cfg.l2), _l3(cfg.l3), _pcm(pcm),
          _stats("dcache", &parent),
          statL1Hits(_stats, "l1_hits", "loads hitting in L1D"),
          statL2Hits(_stats, "l2_hits", "loads hitting in L2"),
          statL3Hits(_stats, "l3_hits", "loads hitting in L3"),
          statMemLoads(_stats, "mem_loads", "loads going to PM"),
          statStoreAllocs(_stats, "store_allocs",
                          "store blocks allocated in L1D")
    {}

    /**
     * Probe the hierarchy for a load to @p addr; fills all levels on the
     * way back (inclusive). PM misses occupy a PCM bank.
     */
    LoadOutcome
    load(Addr addr)
    {
        if (_l1.access(addr)) {
            ++statL1Hits;
            return {MemLevel::L1, _cfg.l1Latency};
        }
        if (_l2.access(addr)) {
            ++statL2Hits;
            fill(_l1, addr);
            return {MemLevel::L2, _cfg.l1Latency + _cfg.l2Latency};
        }
        if (_l3.access(addr)) {
            ++statL3Hits;
            fill(_l1, addr);
            fill(_l2, addr);
            return {MemLevel::L3,
                    _cfg.l1Latency + _cfg.l2Latency + _cfg.l3Latency};
        }
        ++statMemLoads;
        const Cycles mem = _pcm.readOccupy(addr);
        fill(_l1, addr);
        fill(_l2, addr);
        fill(_l3, addr);
        return {MemLevel::Mem,
                _cfg.l1Latency + _cfg.l2Latency + _cfg.l3Latency + mem};
    }

    /**
     * A retired store allocates its block in L1 (in parallel with the
     * SecPB access; both the paper's hit/miss cases land here). Dirty
     * state is irrelevant: durability is the SecPB's job.
     */
    void
    storeAllocate(Addr addr)
    {
        ++statStoreAllocs;
        fill(_l1, addr);
        fill(_l2, addr);
        fill(_l3, addr);
    }

    bool residentL1(Addr addr) const { return _l1.contains(addr); }
    bool residentL2(Addr addr) const { return _l2.contains(addr); }
    bool residentL3(Addr addr) const { return _l3.contains(addr); }

    /** Total lines resident (for eADR-style what-if accounting). */
    std::uint64_t
    residentLines() const
    {
        return _l1.numValid() + _l2.numValid() + _l3.numValid();
    }

  private:
    static void
    fill(SetAssocCache &cache, Addr addr)
    {
        // Evictions are silent: dirty blocks in the SecPB design are
        // discarded like clean ones (the persist buffer owns durability).
        cache.insert(addr);
    }

    DataHierarchyConfig _cfg;
    SetAssocCache _l1;
    SetAssocCache _l2;
    SetAssocCache _l3;
    PcmModel &_pcm;
    StatGroup _stats;

  public:
    Scalar statL1Hits;
    Scalar statL2Hits;
    Scalar statL3Hits;
    Scalar statMemLoads;
    Scalar statStoreAllocs;
};

} // namespace secpb

#endif // SECPB_MEM_DATA_HIERARCHY_HH
