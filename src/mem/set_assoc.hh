/**
 * @file
 * Generic set-associative tag store with LRU replacement.
 *
 * Used for the three security-metadata caches (counter, BMT node, MAC) and
 * by the data-cache model tests. Tag-only: functional payloads live in the
 * PM image / metadata structures; this class answers hit/miss questions and
 * picks victims.
 */

#ifndef SECPB_MEM_SET_ASSOC_HH
#define SECPB_MEM_SET_ASSOC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

/** Geometry of a set-associative cache. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 128 * 1024;
    unsigned associativity = 8;
    unsigned blockSize = BlockSize;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(associativity) *
                            blockSize);
    }
};

/**
 * Set-associative tag array, true-LRU.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom)
        : _geom(geom), _numSets(geom.numSets()),
          _ways(_numSets * geom.associativity)
    {
        fatal_if(_numSets == 0, "cache too small for its associativity");
        fatal_if((_numSets & (_numSets - 1)) != 0,
                 "number of cache sets (%llu) must be a power of two",
                 static_cast<unsigned long long>(_numSets));
    }

    /** True if @p addr currently hits; updates LRU on hit. */
    bool
    access(Addr addr)
    {
        Way *way = findWay(blockAlign(addr));
        if (!way)
            return false;
        way->lastUse = ++_useClock;
        return true;
    }

    /** Probe without updating LRU state. */
    bool
    contains(Addr addr) const
    {
        return const_cast<SetAssocCache *>(this)->findWay(blockAlign(addr))
               != nullptr;
    }

    /** An evicted block: its address and whether it was dirty. */
    struct Victim
    {
        Addr addr;
        bool dirty;
    };

    /**
     * Insert @p addr (no-op if present).
     * @return the evicted victim, if a valid block was replaced.
     */
    std::optional<Victim>
    insert(Addr addr)
    {
        const Addr aligned = blockAlign(addr);
        if (Way *way = findWay(aligned)) {
            way->lastUse = ++_useClock;
            return std::nullopt;
        }
        const std::uint64_t set = setIndex(aligned);
        Way *victim = nullptr;
        for (unsigned w = 0; w < _geom.associativity; ++w) {
            Way &cand = _ways[set * _geom.associativity + w];
            if (!cand.valid) {
                victim = &cand;
                break;
            }
            if (!victim || cand.lastUse < victim->lastUse)
                victim = &cand;
        }
        std::optional<Victim> evicted;
        if (victim->valid)
            evicted = Victim{victim->tag, victim->dirty};
        victim->valid = true;
        victim->tag = aligned;
        victim->dirty = false;
        victim->lastUse = ++_useClock;
        return evicted;
    }

    /** Mark @p addr dirty; returns false if not present. */
    bool
    markDirty(Addr addr)
    {
        if (Way *way = findWay(blockAlign(addr))) {
            way->dirty = true;
            return true;
        }
        return false;
    }

    /** Mark @p addr clean (written back); returns false if not present. */
    bool
    markClean(Addr addr)
    {
        if (Way *way = findWay(blockAlign(addr))) {
            way->dirty = false;
            return true;
        }
        return false;
    }

    /** True if @p addr is present and dirty. */
    bool
    isDirty(Addr addr) const
    {
        const Way *way =
            const_cast<SetAssocCache *>(this)->findWay(blockAlign(addr));
        return way && way->dirty;
    }

    /** Invalidate @p addr if present. @return true if it was present. */
    bool
    invalidate(Addr addr)
    {
        if (Way *way = findWay(blockAlign(addr))) {
            way->valid = false;
            way->dirty = false;
            return true;
        }
        return false;
    }

    /** Invalidate everything. */
    void
    flushAll()
    {
        for (Way &w : _ways) {
            w.valid = false;
            w.dirty = false;
        }
    }

    /** Addresses of all valid (optionally only dirty) blocks. */
    std::vector<Addr>
    residentBlocks(bool dirty_only = false) const
    {
        std::vector<Addr> out;
        for (const Way &w : _ways)
            if (w.valid && (!dirty_only || w.dirty))
                out.push_back(w.tag);
        return out;
    }

    std::uint64_t numSets() const { return _numSets; }
    const CacheGeometry &geometry() const { return _geom; }

    std::uint64_t
    numValid() const
    {
        std::uint64_t n = 0;
        for (const Way &w : _ways)
            n += w.valid ? 1 : 0;
        return n;
    }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = InvalidAddr;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t
    setIndex(Addr aligned) const
    {
        return (aligned / _geom.blockSize) & (_numSets - 1);
    }

    Way *
    findWay(Addr aligned)
    {
        const std::uint64_t set = setIndex(aligned);
        for (unsigned w = 0; w < _geom.associativity; ++w) {
            Way &way = _ways[set * _geom.associativity + w];
            if (way.valid && way.tag == aligned)
                return &way;
        }
        return nullptr;
    }

    CacheGeometry _geom;
    std::uint64_t _numSets;
    std::vector<Way> _ways;
    std::uint64_t _useClock = 0;
};

} // namespace secpb

#endif // SECPB_MEM_SET_ASSOC_HH
