/**
 * @file
 * Functional cache-block payloads.
 *
 * The simulator is functional as well as timed: data blocks carry real
 * bytes so that crash-recovery tests can decrypt PM content and compare it
 * against an oracle. BlockData is the 64-byte payload type used everywhere.
 */

#ifndef SECPB_MEM_BLOCK_DATA_HH
#define SECPB_MEM_BLOCK_DATA_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace secpb
{

/** A 64-byte block payload. */
using BlockData = std::array<std::uint8_t, BlockSize>;

/** Number of 64-bit words per block. */
constexpr unsigned WordsPerBlock = BlockSize / 8;

/** An all-zero block. */
inline BlockData
zeroBlock()
{
    BlockData b{};
    return b;
}

/** Read the 64-bit word at word index @p idx (0..7). */
inline std::uint64_t
blockWord(const BlockData &b, unsigned idx)
{
    std::uint64_t w;
    std::memcpy(&w, b.data() + idx * 8, 8);
    return w;
}

/** Write the 64-bit word at word index @p idx (0..7). */
inline void
setBlockWord(BlockData &b, unsigned idx, std::uint64_t value)
{
    std::memcpy(b.data() + idx * 8, &value, 8);
}

/** XOR two blocks (used for one-time-pad encryption). */
inline BlockData
xorBlocks(const BlockData &a, const BlockData &b)
{
    BlockData out;
    for (unsigned i = 0; i < BlockSize; ++i)
        out[i] = a[i] ^ b[i];
    return out;
}

} // namespace secpb

#endif // SECPB_MEM_BLOCK_DATA_HH
