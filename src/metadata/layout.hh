/**
 * @file
 * Physical-address map of the secure PM: where data, counters, MACs, and
 * BMT nodes live. Metadata regions sit above the data region; the layout
 * gives every metadata object a real address so the metadata caches can be
 * modelled as ordinary set-associative caches and PCM bank contention is
 * address-accurate.
 */

#ifndef SECPB_METADATA_LAYOUT_HH
#define SECPB_METADATA_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "crypto/counters.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

/**
 * Secure-PM address map.
 *
 * Layout (byte addresses):
 *   [0, dataSize)                      protected data
 *   [ctrBase, ctrBase + numPages*64)   split-counter blocks, 1 per 4KB page
 *   [macBase, macBase + numBlocks*8)   64-bit MACs, 8 per 64B block
 *   [bmtBase, ...)                     BMT nodes, 64B each, level-major
 */
class MetadataLayout
{
  public:
    explicit MetadataLayout(std::uint64_t data_size = 8ULL << 30)
        : _dataSize(data_size),
          _numPages(data_size / PageSize),
          _numBlocks(data_size / BlockSize),
          _ctrBase(data_size),
          _macBase(_ctrBase + _numPages * BlockSize),
          _bmtBase(_macBase + _numBlocks * 8)
    {
        fatal_if(data_size % PageSize != 0,
                 "PM data size must be page aligned");

        // Precompute level-start offsets while levels still shrink; every
        // level past the last entry is a single node, so its offset is
        // reachable by adding one node per level.
        std::uint64_t nodes = (_numPages + 7) / 8;
        _bmtLevelOffset.push_back(0);
        while (nodes > 1) {
            _bmtLevelOffset.push_back(_bmtLevelOffset.back() + nodes);
            nodes = (nodes + 7) / 8;
        }
    }

    std::uint64_t dataSize() const { return _dataSize; }
    std::uint64_t numPages() const { return _numPages; }
    std::uint64_t numBlocks() const { return _numBlocks; }

    /** True if @p addr falls inside the protected data region. */
    bool isData(Addr addr) const { return addr < _dataSize; }

    /** Page index of a data address. */
    std::uint64_t
    pageIndex(Addr data_addr) const
    {
        return data_addr / PageSize;
    }

    /** Index of the block within its page (0..63). */
    unsigned
    blockInPage(Addr data_addr) const
    {
        return static_cast<unsigned>((data_addr % PageSize) / BlockSize);
    }

    /** PM address of the counter block covering @p data_addr. */
    Addr
    counterAddr(Addr data_addr) const
    {
        return _ctrBase + pageIndex(data_addr) * BlockSize;
    }

    /** PM address of the MAC slot for @p data_addr (8 bytes). */
    Addr
    macAddr(Addr data_addr) const
    {
        return _macBase + blockIndex(data_addr) * 8;
    }

    /** Block-aligned PM address of the MAC block containing the slot. */
    Addr
    macBlockAddr(Addr data_addr) const
    {
        return blockAlign(macAddr(data_addr));
    }

    /**
     * PM address of BMT node (@p level, @p index). Levels are numbered from
     * the leaves (level 0 holds leaf digests) upward; the level-major
     * layout packs each level contiguously.
     */
    Addr
    bmtNodeAddr(unsigned level, std::uint64_t index) const
    {
        // Offsets: level 0 starts at 0; each level l has
        // ceil(numLeaves / 8^(l+1)) nodes. Precomputed in the ctor;
        // single-node levels above the precomputed top add one node each.
        const std::size_t top = _bmtLevelOffset.size() - 1;
        const std::uint64_t offset =
            level <= top ? _bmtLevelOffset[level]
                         : _bmtLevelOffset[top] + (level - top);
        return _bmtBase + (offset + index) * BlockSize;
    }

    Addr ctrBase() const { return _ctrBase; }
    Addr macBase() const { return _macBase; }
    Addr bmtBase() const { return _bmtBase; }

  private:
    std::uint64_t _dataSize;
    std::uint64_t _numPages;
    std::uint64_t _numBlocks;
    Addr _ctrBase;
    Addr _macBase;
    Addr _bmtBase;

    /** Node offset of each BMT level's start, up to the first 1-node level. */
    std::vector<std::uint64_t> _bmtLevelOffset;
};

} // namespace secpb

#endif // SECPB_METADATA_LAYOUT_HH
