/**
 * @file
 * Functional Bonsai Merkle Tree over the split-counter blocks.
 *
 * A BMT (Rogers et al., MICRO'07) protects only counters; data freshness
 * follows transitively because MACs bind data to counters. The tree here is
 * arity-8: each 64-byte node holds eight 64-bit child digests. Level 0
 * nodes hold digests of counter blocks (the leaves); the top node's digest
 * is the root, kept in a battery-backed on-chip register.
 *
 * Storage is a flat structure-of-arrays: each level is a dense index space
 * of nodes backed by 64-node (4 KB) chunks allocated on first touch, plus
 * a touched bitmap distinguishing explicitly written nodes from
 * default-valued ones. A leaf-to-root walk is then pure index arithmetic
 * over contiguous chunk memory -- no hashing of map keys, no per-node heap
 * allocation. Chunking keeps materialization proportional to the touched
 * footprint: an 8 GB PM's level 0 spans 262144 nodes (16 MB), but a
 * workload touching 400 scattered pages allocates at most 400 chunks
 * (~1.6 MB), each pre-filled with that level's default-child digest so
 * sparse-tree semantics are preserved. Timing of updates (one hash per
 * level, serialized in the crypto engine) is modelled separately in
 * metadata/walker.hh.
 */

#ifndef SECPB_METADATA_BMT_HH
#define SECPB_METADATA_BMT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/hash.hh"
#include "metadata/layout.hh"
#include "sim/logging.hh"

namespace secpb
{

/** A BMT node: eight child digests, 64 bytes on the wire. */
struct BmtNode
{
    std::array<Digest, 8> child{};

    /** Serialize to the 64-byte PM representation. */
    BlockData
    pack() const
    {
        BlockData out;
        for (unsigned i = 0; i < 8; ++i)
            setBlockWord(out, i, child[i]);
        return out;
    }

    /**
     * Digest of this node's content. hashWords over the child array is
     * bit-identical to hashBlock(pack(), seed) -- pack() is a memcpy of
     * the same native words -- without materializing the wire form.
     */
    Digest
    digest(std::uint64_t seed) const
    {
        return hashWords(child.data(), child.size(), seed);
    }

    bool operator==(const BmtNode &) const = default;
};

/**
 * Arity-8 Merkle tree over counter blocks, stored as per-level chunked
 * dense node arrays (see file comment).
 */
class BonsaiMerkleTree
{
  public:
    /**
     * @param num_leaves number of counter blocks covered.
     * @param seed hash domain-separation seed (part of the key material).
     */
    explicit BonsaiMerkleTree(std::uint64_t num_leaves,
                              std::uint64_t seed = 0xb0a5a1b0a5a1ULL);

    /** Deep copy (chunk storage is uniquely owned) -- snapshot support
     *  for the intermittent-power injector. */
    BonsaiMerkleTree(const BonsaiMerkleTree &other);
    BonsaiMerkleTree &operator=(const BonsaiMerkleTree &other);
    BonsaiMerkleTree(BonsaiMerkleTree &&) = default;
    BonsaiMerkleTree &operator=(BonsaiMerkleTree &&) = default;

    /** Number of node levels between leaves and root. */
    unsigned numLevels() const { return _numLevels; }

    /**
     * Total hash operations on a leaf-to-root update: one leaf-block hash
     * plus one per node level. For the default 8 GB PM this is 8, matching
     * "BMT: 8 levels" in Table I.
     */
    unsigned updateHashCount() const { return _numLevels + 1; }

    std::uint64_t numLeaves() const { return _numLeaves; }

    /** Current root digest. */
    Digest root() const { return _root; }

    /** Digest of a counter block under this tree's seed. */
    Digest
    leafDigest(const CounterBlock &cb) const
    {
        return hashBlock(cb.pack(), _seed);
    }

    /**
     * Install a new leaf (counter block) digest and propagate to the root.
     * @return the new root digest.
     */
    Digest updateLeaf(std::uint64_t leaf_idx, Digest leaf_digest);

    /**
     * Verify a leaf digest against the stored tree and the root register.
     * Walks leaf -> root checking, at each step, that the recomputed child
     * digest equals the slot stored in the parent node. Detects tampering
     * of counter blocks *and* of interior tree nodes.
     */
    bool verifyLeaf(std::uint64_t leaf_idx, Digest leaf_digest) const;

    /**
     * Node indices along the path of @p leaf_idx, level 0 first. Used by
     * the timing walker to derive node PM addresses for cache modelling.
     */
    std::vector<std::uint64_t> pathIndices(std::uint64_t leaf_idx) const;

    /**
     * Allocation-free variant: fill @p out (cleared first) with the path
     * of @p leaf_idx. The timing walker calls this once per walk with a
     * reusable scratch vector.
     */
    void pathIndices(std::uint64_t leaf_idx,
                     std::vector<std::uint64_t> &out) const;

    /** Read node (@p level, @p index), materializing defaults. */
    BmtNode node(unsigned level, std::uint64_t index) const;

    /**
     * Overwrite a stored node -- test hook for tamper-injection. Returns
     * false if the node was never touched (still default).
     */
    bool tamperNode(unsigned level, std::uint64_t index,
                    const BmtNode &forged);

    /** Whether node (@p level, @p index) was ever explicitly stored. */
    bool
    hasNode(unsigned level, std::uint64_t index) const
    {
        if (level >= _numLevels || index >= _levels[level].width)
            return false;
        const Chunk *c = _levels[level].chunks[index >> kChunkShift].get();
        return c && c->touched[index & (kChunkNodes - 1)];
    }

    /** Overwrite the root register -- test hook for rollback attacks. */
    void setRoot(Digest d) { _root = d; }

    /**
     * Recovery-time rebuild of the volatile upper tree (Triad-NVM): the
     * crash persisted only node levels below @p first_level, so every
     * stored node at levels >= @p first_level is recomputed bottom-up
     * from its children, and the root register is recomputed from the
     * top node. @p first_level must be >= 1 -- level-0 nodes hold leaf
     * digests that are not stored in the tree, so the persisted frontier
     * always includes them. No-op (returns 0) when @p first_level covers
     * the whole tree.
     * @return the number of nodes recomputed.
     */
    std::uint64_t rebuildFromLevel(unsigned first_level);

    /** Default digest of an untouched leaf (all-zero counter block). */
    Digest defaultLeafDigest() const { return _defaultDigest[0]; }

    /** Total number of explicitly stored (touched) nodes. */
    std::size_t touchedNodes() const { return _touchedCount; }

  private:
    /** Nodes per chunk: 64 nodes = 4 KB, one allocation granule. */
    static constexpr std::uint64_t kChunkShift = 6;
    static constexpr std::uint64_t kChunkNodes = 1ULL << kChunkShift;

    /** One 64-node storage granule: nodes plus their touched bitmap. */
    struct Chunk
    {
        std::array<BmtNode, kChunkNodes> nodes;
        std::array<std::uint8_t, kChunkNodes> touched{};
    };

    /** One node level: a dense index space backed by on-demand chunks. */
    struct Level
    {
        std::uint64_t width = 0;
        std::vector<std::unique_ptr<Chunk>> chunks;
    };

    /** Materialize the chunk covering (@p level, @p node_idx),
     *  default-filled for that level. */
    Chunk &ensureChunk(unsigned level, std::uint64_t node_idx);

    /** Child digest feeding level @p level: leaf digest or node digest. */
    Digest defaultChildDigest(unsigned level) const;

    std::uint64_t _numLeaves;
    unsigned _numLevels;
    std::uint64_t _seed;
    Digest _root;

    /** Per-level digest of an untouched child: [0] leaf, [l] node l-1. */
    std::vector<Digest> _defaultDigest;

    /** Chunked per-level node storage, level 0 (above leaves) first. */
    std::vector<Level> _levels;

    /** Number of set bits across all touched bitmaps. */
    std::size_t _touchedCount = 0;
};

} // namespace secpb

#endif // SECPB_METADATA_BMT_HH
