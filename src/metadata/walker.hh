/**
 * @file
 * Timed BMT update walker -- the leaf-to-root integrity-tree update unit.
 *
 * Latency vs. throughput: a single leaf-to-root update hashes the counter
 * block plus one node per level (8 x 40 cycles for the default tree), and
 * a requester on the critical path (the eager schemes) waits for the full
 * walk. Across requests the walker is pipelined PLP-style [MICRO'20]: each
 * level is a pipeline stage, so back-to-back updates issue one initiation
 * interval apart. Updates to a leaf whose walk is still in flight merge
 * into it (the paper's "avoids collisions between two stores updating
 * common ancestors"); merged requests complete with the in-flight walk and
 * do not count as new root updates -- this is what Fig. 8 measures.
 *
 * Bonsai Merkle Forest (BMF, MICRO'21) support: the walk can be truncated
 * to a reduced height (DBMF: 2 levels; SBMF: 5 levels). The truncated walk
 * terminates at a *subtree root* looked up in a small on-chip root cache
 * (4 KB in the paper's comparison); a miss forces the full-height walk and
 * installs the subtree root.
 */

#ifndef SECPB_METADATA_WALKER_HH
#define SECPB_METADATA_WALKER_HH

#include <memory>

#include "crypto/engine.hh"
#include "mem/flat_map.hh"
#include "metadata/bmt.hh"
#include "metadata/layout.hh"
#include "metadata/metadata_cache.hh"
#include "obs/trace.hh"

namespace secpb
{

/** Bonsai-Merkle-Forest height-reduction mode. */
enum class BmfMode
{
    None,   ///< Full-height BMT.
    Dbmf,   ///< Dynamic forest: updates walk 2 levels.
    Sbmf,   ///< Static forest: updates walk 5 levels.
};

/** Configuration of the walker. */
struct WalkerConfig
{
    BmfMode bmfMode = BmfMode::None;
    unsigned dbmfLevels = 2;
    unsigned sbmfLevels = 5;
    /** Pipeline initiation interval between independent walks (cycles). */
    Cycles initiationInterval = 40;
    /** Merge same-leaf updates into in-flight walks (ablation knob:
     *  disabling shows how load-bearing update merging is). */
    bool enableMerging = true;
    /** Geometry of the on-chip subtree-root cache used with BMF. */
    CacheGeometry rootCacheGeom{4 * 1024, 4, BlockSize};
};

/**
 * The pipelined, merge-capable BMT root update unit.
 *
 * Functional tree updates happen at request time (the simulator is
 * functionally eager, timing-lazy); the scheduled completion models when
 * the hardware root write would retire.
 */
class BmtWalker
{
  public:
    BmtWalker(EventQueue &eq, const WalkerConfig &cfg,
              const MetadataLayout &layout, BonsaiMerkleTree &tree,
              MetadataCache &bmt_cache, PcmModel &pcm,
              const CryptoLatencies &lat, StatGroup &parent)
        : _eq(eq), _cfg(cfg), _layout(layout), _tree(tree),
          _bmtCache(bmt_cache), _pcm(pcm), _lat(lat),
          _stats("bmt", &parent),
          statRootUpdates(_stats, "root_updates",
                          "BMT root update walks performed"),
          statMergedUpdates(_stats, "merged_updates",
                            "update requests merged into in-flight walks"),
          statFullWalks(_stats, "full_walks",
                        "updates that walked the full tree height"),
          statRootCacheHits(_stats, "root_cache_hits",
                            "BMF subtree-root cache hits"),
          statUpdateLatency(_stats, "update_latency",
                            "latency of one root update (cycles)")
    {
        if (_cfg.bmfMode != BmfMode::None)
            _rootCache = std::make_unique<SetAssocCache>(_cfg.rootCacheGeom);
        // Walks in flight are bounded by walk latency over the initiation
        // interval (~10); reserving well past that kills rehash churn.
        _inFlight.reserve(64);
        _pathScratch.reserve(_tree.numLevels());
    }

    /**
     * Perform (functionally) and time one leaf-to-root update for the
     * counter block covering @p data_addr, whose fresh digest is
     * @p leaf_digest. Fires @p done when the root write would retire.
     * @return the completion tick.
     */
    /** Ticks of one update: when the pipe accepts it and when the root
     *  write retires. Merged updates are accepted immediately. */
    struct UpdateTiming
    {
        Tick issue;
        Tick completion;
        bool merged;
    };

    Tick
    update(Addr data_addr, Digest leaf_digest, EventCallback done = nullptr)
    {
        return updateTimed(data_addr, leaf_digest, std::move(done))
            .completion;
    }

    /** Like update(), returning both the issue and completion ticks. */
    UpdateTiming
    updateTimed(Addr data_addr, Digest leaf_digest,
                EventCallback done = nullptr)
    {
        const std::uint64_t leaf = _layout.pageIndex(data_addr);
        _tree.updateLeaf(leaf, leaf_digest);

        const Tick now = _eq.curTick();

        // Merge into an in-flight walk of the same leaf: the walk has not
        // retired its root write, so it carries this (already functionally
        // applied) digest as well -- and consumes no new pipe slot.
        const Tick *in_flight = _inFlight.find(leaf);
        if (_cfg.enableMerging && in_flight && *in_flight > now) {
            ++statMergedUpdates;
            TRACE_INSTANT("bmt", "merge", now);
            const Tick completion = *in_flight;
            if (done)
                _eq.schedule(completion, std::move(done));
            return UpdateTiming{now, completion, true};
        }

        ++statRootUpdates;
        const Cycles walk = walkLatency(leaf);
        const Tick issue = std::max(now, _pipeReadyAt);
        _pipeReadyAt = issue + _cfg.initiationInterval;
        const Tick completion = issue + walk;
        statUpdateLatency.sample(static_cast<double>(completion - now));
        TRACE_SPAN("bmt", "walk", issue, completion);

        _inFlight[leaf] = completion;
        _eq.schedule(completion, [this, leaf, completion] {
            // Erase by key: the completion event may run long after later
            // walks of other leaves grew or back-shifted the table, so a
            // stored pointer would dangle -- re-probe, then check this is
            // still our walk (a merged successor reuses the same slot).
            const Tick *t = _inFlight.find(leaf);
            if (t && *t == completion)
                _inFlight.erase(leaf);
        });

        if (done)
            _eq.schedule(completion, std::move(done));
        return UpdateTiming{issue, completion, false};
    }

    /**
     * Number of levels an update walks under the current BMF mode,
     * assuming a root-cache hit where applicable.
     */
    unsigned
    effectiveLevels() const
    {
        switch (_cfg.bmfMode) {
          case BmfMode::Dbmf:
            return std::min(_cfg.dbmfLevels, _tree.numLevels());
          case BmfMode::Sbmf:
            return std::min(_cfg.sbmfLevels, _tree.numLevels());
          case BmfMode::None:
          default:
            return _tree.numLevels();
        }
    }

    std::uint64_t
    rootUpdates() const
    {
        return static_cast<std::uint64_t>(statRootUpdates.value());
    }

    /** Next tick at which the pipeline can accept a new walk. */
    Tick pipeReadyAt() const { return _pipeReadyAt; }

    /** Walks issued but not yet retired (epoch-sampler channel). */
    std::size_t
    inFlightWalks() const
    {
        const Tick now = _eq.curTick();
        std::size_t n = 0;
        _inFlight.forEach([&](const std::uint64_t &, const Tick &t) {
            if (t > now)
                ++n;
        });
        return n;
    }

    /** The functional tree this walker updates. */
    BonsaiMerkleTree &tree() { return _tree; }
    const BonsaiMerkleTree &tree() const { return _tree; }

    /** The BMT node cache (Triad-NVM writes path prefixes through it). */
    MetadataCache &nodeCache() { return _bmtCache; }

  private:
    /** Compute the latency of one walk, probing caches as we go. */
    Cycles
    walkLatency(std::uint64_t leaf)
    {
        unsigned levels = _tree.numLevels();
        bool full_walk = true;

        // One path computation serves both the BMF subroot probe and the
        // level loop; the scratch vector is reused across walks.
        _tree.pathIndices(leaf, _pathScratch);
        const std::vector<std::uint64_t> &path = _pathScratch;

        if (_cfg.bmfMode != BmfMode::None) {
            const unsigned reduced = effectiveLevels();
            const Addr subroot_addr =
                _layout.bmtNodeAddr(reduced - 1, path[reduced - 1]);
            if (_rootCache->access(subroot_addr)) {
                ++statRootCacheHits;
                levels = reduced;
                full_walk = false;
            } else {
                // Miss: a full-height update establishes the subtree
                // root, which is then pinned in the root cache.
                _rootCache->insert(subroot_addr);
            }
        }

        if (full_walk)
            ++statFullWalks;

        Cycles duration = _lat.bmtHash;  // leaf (counter block) hash
        for (unsigned l = 0; l < levels; ++l) {
            const Addr node_addr = _layout.bmtNodeAddr(l, path[l]);
            duration += _bmtCache.readAccess(node_addr);
            duration += _lat.bmtHash;
        }
        return duration;
    }

    EventQueue &_eq;
    WalkerConfig _cfg;
    const MetadataLayout &_layout;
    BonsaiMerkleTree &_tree;
    MetadataCache &_bmtCache;
    PcmModel &_pcm;
    CryptoLatencies _lat;
    std::unique_ptr<SetAssocCache> _rootCache;

    /** Leaf -> completion tick of its in-flight walk. */
    FlatMap<std::uint64_t, Tick> _inFlight;
    Tick _pipeReadyAt = 0;

    /** Reused by walkLatency: the current walk's node path. */
    std::vector<std::uint64_t> _pathScratch;

    StatGroup _stats;

  public:
    Scalar statRootUpdates;
    Scalar statMergedUpdates;
    Scalar statFullWalks;
    Scalar statRootCacheHits;
    Average statUpdateLatency;
};

} // namespace secpb

#endif // SECPB_METADATA_WALKER_HH
