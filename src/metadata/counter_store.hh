/**
 * @file
 * Authoritative functional state of the split counters.
 *
 * This is the merged view of counters held anywhere on-chip (counter cache,
 * SecPB entries) plus PM: the value an increment operates on. Persistence
 * of a counter block into the PM image happens separately, when the block
 * is drained through the WPQ (or by battery after a crash).
 */

#ifndef SECPB_METADATA_COUNTER_STORE_HH
#define SECPB_METADATA_COUNTER_STORE_HH

#include <cstdint>

#include "crypto/counters.hh"
#include "mem/flat_map.hh"
#include "metadata/layout.hh"

namespace secpb
{

/** Result of a counter increment. */
struct CounterIncrement
{
    BlockCounter counter;    ///< The fresh (post-increment) counter.
    bool overflowed;         ///< Minor overflow: page re-encryption needed.
    CounterBlock oldBlock;   ///< Pre-increment block (for re-encryption).
};

/** Functional working copy of every touched counter block. */
class CounterStore
{
  public:
    explicit CounterStore(const MetadataLayout &layout) : _layout(layout) {}

    /**
     * Current counter block for page @p page_idx.
     *
     * The reference points into the open-addressing table: any mutation
     * of the store (increment of ANY page, setBlock) may grow or
     * back-shift the table and invalidate it. Copy the block before
     * calling back into anything that can touch counters.
     */
    const CounterBlock &
    block(std::uint64_t page_idx) const
    {
        static const CounterBlock zero{};
        const CounterBlock *cb = _blocks.find(page_idx);
        return cb ? *cb : zero;
    }

    /** Current (major, minor) counter for the block at @p data_addr. */
    BlockCounter
    counterFor(Addr data_addr) const
    {
        return block(_layout.pageIndex(data_addr))
            .counterFor(_layout.blockInPage(data_addr));
    }

    /**
     * Increment the minor counter for @p data_addr.
     * On minor overflow the block's major is bumped and all minors reset;
     * the caller must re-encrypt the page using the returned old block.
     */
    CounterIncrement
    increment(Addr data_addr)
    {
        const std::uint64_t page = _layout.pageIndex(data_addr);
        CounterBlock &cb = _blocks[page];
        CounterIncrement result;
        result.oldBlock = cb;
        result.overflowed = cb.increment(_layout.blockInPage(data_addr));
        result.counter = cb.counterFor(_layout.blockInPage(data_addr));
        return result;
    }

    /** Number of touched counter blocks. */
    std::size_t numTouched() const { return _blocks.size(); }

    /** Pre-size for @p pages touched counter blocks (warm-up churn). */
    void reserve(std::size_t pages) { _blocks.reserve(pages); }

    /**
     * Install a counter block wholesale (power-cycle restore: the
     * working copy is volatile and reboots cold, so recovery reloads it
     * from the PM image's persisted counter blocks).
     */
    void
    setBlock(std::uint64_t page_idx, const CounterBlock &cb)
    {
        _blocks[page_idx] = cb;
    }

    /** True if the page's counter block was ever touched. */
    bool hasBlock(std::uint64_t page_idx) const
    {
        return _blocks.contains(page_idx);
    }

    /** Drop a page's working counter block (page migration: the block
     *  moves wholesale to the destination core's store). */
    void erase(std::uint64_t page_idx) { _blocks.erase(page_idx); }

  private:
    const MetadataLayout &_layout;
    FlatMap<std::uint64_t, CounterBlock> _blocks;
};

} // namespace secpb

#endif // SECPB_METADATA_COUNTER_STORE_HH
