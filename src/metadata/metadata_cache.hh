/**
 * @file
 * Timed security-metadata cache (counter / BMT-node / MAC caches).
 *
 * Table I: each is 128 KB, 8-way, 64 B blocks, 2-cycle access, volatile,
 * and lives memory-side in the MC, so no coherence with core caches is
 * needed. A miss fetches the metadata block from PCM (occupying a bank) and
 * allocates; dirty evictions of *counters and MACs* must be written back to
 * PCM -- unlike data blocks, which the SecPB design silently discards, the
 * metadata cache is not backed by a persist guarantee once an entry has
 * been drained, so written-back metadata is the persistent copy. BMT
 * interior nodes are recomputable from counters and are treated as clean.
 */

#ifndef SECPB_METADATA_METADATA_CACHE_HH
#define SECPB_METADATA_METADATA_CACHE_HH

#include <string>

#include "mem/pcm.hh"
#include "mem/set_assoc.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Timed metadata cache in front of PCM. */
class MetadataCache
{
  public:
    MetadataCache(std::string name, const CacheGeometry &geom,
                  Cycles hit_latency, PcmModel &pcm, StatGroup &parent,
                  bool writeback_dirty = true)
        : _tags(geom), _hitLatency(hit_latency), _pcm(pcm),
          _writebackDirty(writeback_dirty),
          _stats(std::move(name), &parent),
          statHits(_stats, "hits", "metadata cache hits"),
          statMisses(_stats, "misses", "metadata cache misses"),
          statWritebacks(_stats, "writebacks",
                         "dirty metadata blocks written back to PCM")
    {}

    /**
     * Read access: returns the latency to obtain the metadata block,
     * occupying a PCM bank on a miss. LRU and contents are updated.
     */
    Cycles
    readAccess(Addr addr)
    {
        if (_tags.access(addr)) {
            ++statHits;
            return _hitLatency;
        }
        ++statMisses;
        TRACE_INSTANT(_stats.name(), "miss", _pcm.now());
        const Cycles fetch = _pcm.readOccupy(addr);
        handleFill(addr);
        return _hitLatency + fetch;
    }

    /**
     * Write access (update-in-place): fetches on miss like a read, then
     * marks the block dirty. Returns the access latency.
     */
    Cycles
    writeAccess(Addr addr)
    {
        const Cycles lat = readAccess(addr);
        _tags.markDirty(addr);
        return lat;
    }

    /**
     * Write-through access (SecPM-style): fetches on miss like a read,
     * then writes the updated block straight to PCM. The cached copy
     * stays *clean* -- the persistent copy is always current, so a crash
     * never owes a flush for this block. Returns the access latency
     * including the PCM write occupancy.
     */
    Cycles
    writeThroughAccess(Addr addr)
    {
        const Cycles lat = readAccess(addr);
        ++statWritebacks;
        const Cycles wr = _pcm.writeOccupy(addr);
        _tags.markClean(addr);
        return lat + wr;
    }

    /** Probe without side effects. */
    bool contains(Addr addr) const { return _tags.contains(addr); }

    /** Invalidate a block (coherence with SecPB-resident metadata). */
    void invalidate(Addr addr) { _tags.invalidate(addr); }

    /** Dirty blocks currently resident (crash-flush support). */
    std::vector<Addr>
    dirtyBlocks() const
    {
        return _tags.residentBlocks(true);
    }

    /**
     * Write back up to @p max_blocks dirty blocks to PCM and mark them
     * clean, without evicting. This is the powered write-through
     * degradation the adaptive drain policy uses when battery headroom
     * cannot cover the mandatory crash-time flush of this cache's dirt.
     * @return the number of blocks cleaned.
     */
    std::size_t
    cleanDirty(std::size_t max_blocks)
    {
        std::size_t cleaned = 0;
        for (Addr addr : _tags.residentBlocks(true)) {
            if (cleaned >= max_blocks)
                break;
            ++statWritebacks;
            _pcm.writeOccupy(addr);
            _tags.markClean(addr);
            ++cleaned;
        }
        return cleaned;
    }

    /** Drop everything (post-crash restart). */
    void flushAll() { _tags.flushAll(); }

    double hitRate() const
    {
        const double total = statHits.value() + statMisses.value();
        return total > 0 ? statHits.value() / total : 0.0;
    }

  private:
    void
    handleFill(Addr addr)
    {
        auto evicted = _tags.insert(addr);
        if (evicted && evicted->dirty && _writebackDirty) {
            ++statWritebacks;
            _pcm.writeOccupy(evicted->addr);
        }
    }

    SetAssocCache _tags;
    Cycles _hitLatency;
    PcmModel &_pcm;
    bool _writebackDirty;
    StatGroup _stats;

  public:
    Scalar statHits;
    Scalar statMisses;
    Scalar statWritebacks;
};

} // namespace secpb

#endif // SECPB_METADATA_METADATA_CACHE_HH
