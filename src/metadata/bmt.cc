#include "metadata/bmt.hh"

#include "crypto/counters.hh"

namespace secpb
{

BonsaiMerkleTree::BonsaiMerkleTree(std::uint64_t num_leaves,
                                   std::uint64_t seed)
    : _numLeaves(num_leaves), _seed(seed)
{
    fatal_if(num_leaves == 0, "BMT needs at least one leaf");

    // Count node levels until a single node covers everything.
    _numLevels = 0;
    std::uint64_t width = num_leaves;
    do {
        width = (width + 7) / 8;
        ++_numLevels;
    } while (width > 1);

    // Default digests, bottom-up. _defaultDigest[0] is the digest of an
    // untouched (all-zero) counter block; _defaultDigest[l] for l >= 1 is
    // the digest of a level-(l-1) node whose children are all default.
    _defaultDigest.resize(_numLevels + 1);
    _defaultDigest[0] = hashBlock(CounterBlock{}.pack(), _seed);
    for (unsigned l = 1; l <= _numLevels; ++l) {
        BmtNode n;
        n.child.fill(_defaultDigest[l - 1]);
        _defaultDigest[l] = n.digest(_seed);
    }
    _root = _defaultDigest[_numLevels];
}

Digest
BonsaiMerkleTree::defaultChildDigest(unsigned level) const
{
    return _defaultDigest[level];
}

BmtNode
BonsaiMerkleTree::node(unsigned level, std::uint64_t index) const
{
    panic_if(level >= _numLevels, "BMT node level %u out of range", level);
    auto it = _nodes.find(key(level, index));
    if (it != _nodes.end())
        return it->second;
    BmtNode n;
    n.child.fill(defaultChildDigest(level));
    return n;
}

Digest
BonsaiMerkleTree::updateLeaf(std::uint64_t leaf_idx, Digest leaf_digest)
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        auto [it, inserted] = _nodes.try_emplace(key(level, node_idx));
        if (inserted)
            it->second.child.fill(defaultChildDigest(level));
        it->second.child[slot] = child_digest;
        child_digest = it->second.digest(_seed);
        child_idx = node_idx;
    }
    _root = child_digest;
    return _root;
}

bool
BonsaiMerkleTree::verifyLeaf(std::uint64_t leaf_idx,
                             Digest leaf_digest) const
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        const BmtNode n = node(level, node_idx);
        if (n.child[slot] != child_digest)
            return false;
        child_digest = n.digest(_seed);
        child_idx = node_idx;
    }
    return child_digest == _root;
}

std::vector<std::uint64_t>
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx) const
{
    std::vector<std::uint64_t> path;
    pathIndices(leaf_idx, path);
    return path;
}

void
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx,
                              std::vector<std::uint64_t> &out) const
{
    out.clear();
    out.reserve(_numLevels);
    std::uint64_t idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        idx /= 8;
        out.push_back(idx);
    }
}

bool
BonsaiMerkleTree::tamperNode(unsigned level, std::uint64_t index,
                             const BmtNode &forged)
{
    auto it = _nodes.find(key(level, index));
    if (it == _nodes.end())
        return false;
    it->second = forged;
    return true;
}

} // namespace secpb
