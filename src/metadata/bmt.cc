#include "metadata/bmt.hh"

#include "crypto/counters.hh"

namespace secpb
{

BonsaiMerkleTree::BonsaiMerkleTree(std::uint64_t num_leaves,
                                   std::uint64_t seed)
    : _numLeaves(num_leaves), _seed(seed)
{
    fatal_if(num_leaves == 0, "BMT needs at least one leaf");

    // Count node levels until a single node covers everything.
    _numLevels = 0;
    std::uint64_t width = num_leaves;
    do {
        width = (width + 7) / 8;
        ++_numLevels;
    } while (width > 1);

    // Default digests, bottom-up. _defaultDigest[0] is the digest of an
    // untouched (all-zero) counter block; _defaultDigest[l] for l >= 1 is
    // the digest of a level-(l-1) node whose children are all default.
    _defaultDigest.resize(_numLevels + 1);
    _defaultDigest[0] = hashBlock(CounterBlock{}.pack(), _seed);
    for (unsigned l = 1; l <= _numLevels; ++l) {
        BmtNode n;
        n.child.fill(_defaultDigest[l - 1]);
        _defaultDigest[l] = n.digest(_seed);
    }
    _root = _defaultDigest[_numLevels];
}

Digest
BonsaiMerkleTree::defaultChildDigest(unsigned level) const
{
    return _defaultDigest[level];
}

BmtNode
BonsaiMerkleTree::node(unsigned level, std::uint64_t index) const
{
    panic_if(level >= _numLevels, "BMT node level %u out of range", level);
    auto it = _nodes.find(key(level, index));
    if (it != _nodes.end())
        return it->second;
    BmtNode n;
    n.child.fill(defaultChildDigest(level));
    return n;
}

Digest
BonsaiMerkleTree::updateLeaf(std::uint64_t leaf_idx, Digest leaf_digest)
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        auto [it, inserted] = _nodes.try_emplace(key(level, node_idx));
        if (inserted)
            it->second.child.fill(defaultChildDigest(level));
        it->second.child[slot] = child_digest;
        child_digest = it->second.digest(_seed);
        child_idx = node_idx;
    }
    _root = child_digest;
    return _root;
}

bool
BonsaiMerkleTree::verifyLeaf(std::uint64_t leaf_idx,
                             Digest leaf_digest) const
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        const BmtNode n = node(level, node_idx);
        if (n.child[slot] != child_digest)
            return false;
        child_digest = n.digest(_seed);
        child_idx = node_idx;
    }
    return child_digest == _root;
}

std::vector<std::uint64_t>
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx) const
{
    std::vector<std::uint64_t> path;
    pathIndices(leaf_idx, path);
    return path;
}

void
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx,
                              std::vector<std::uint64_t> &out) const
{
    out.clear();
    out.reserve(_numLevels);
    std::uint64_t idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        idx /= 8;
        out.push_back(idx);
    }
}

std::uint64_t
BonsaiMerkleTree::rebuildFromLevel(unsigned first_level)
{
    if (first_level >= _numLevels)
        return 0;
    panic_if(first_level < 1,
             "BMT rebuild must start at level >= 1 (level-0 nodes hold "
             "leaf digests the tree does not store)");

    // Bottom-up: a level-L node is recomputed from its level-(L-1)
    // children, which at that point are either persisted (below
    // first_level) or already rebuilt by the previous iteration.
    std::uint64_t rebuilt = 0;
    for (unsigned level = first_level; level < _numLevels; ++level) {
        for (auto &kv : _nodes) {
            if (static_cast<unsigned>(kv.first >> 56) != level)
                continue;
            const std::uint64_t node_idx = kv.first & ((1ULL << 56) - 1);
            BmtNode fresh;
            for (unsigned slot = 0; slot < 8; ++slot) {
                auto child = _nodes.find(
                    key(level - 1, node_idx * 8 + slot));
                fresh.child[slot] = child != _nodes.end()
                                        ? child->second.digest(_seed)
                                        : defaultChildDigest(level);
            }
            kv.second = fresh;
            ++rebuilt;
        }
    }

    // The root register itself was battery-backed but stale relative to
    // the rebuilt top node; recompute it.
    auto top = _nodes.find(key(_numLevels - 1, 0));
    _root = top != _nodes.end() ? top->second.digest(_seed)
                                : _defaultDigest[_numLevels];
    return rebuilt;
}

bool
BonsaiMerkleTree::tamperNode(unsigned level, std::uint64_t index,
                             const BmtNode &forged)
{
    auto it = _nodes.find(key(level, index));
    if (it == _nodes.end())
        return false;
    it->second = forged;
    return true;
}

} // namespace secpb
