#include "metadata/bmt.hh"

#include <utility>

#include "crypto/counters.hh"

namespace secpb
{

BonsaiMerkleTree::BonsaiMerkleTree(std::uint64_t num_leaves,
                                   std::uint64_t seed)
    : _numLeaves(num_leaves), _seed(seed)
{
    fatal_if(num_leaves == 0, "BMT needs at least one leaf");

    // Count node levels until a single node covers everything, recording
    // each level's dense width as we go. Chunk pointer tables are sized
    // up front (a few KB total even for 8 GB PM); the chunks themselves
    // materialize on first touch.
    _numLevels = 0;
    std::uint64_t width = num_leaves;
    do {
        width = (width + 7) / 8;
        ++_numLevels;
        Level lv;
        lv.width = width;
        lv.chunks.resize((width + kChunkNodes - 1) >> kChunkShift);
        _levels.push_back(std::move(lv));
    } while (width > 1);

    // Default digests, bottom-up. _defaultDigest[0] is the digest of an
    // untouched (all-zero) counter block; _defaultDigest[l] for l >= 1 is
    // the digest of a level-(l-1) node whose children are all default.
    _defaultDigest.resize(_numLevels + 1);
    _defaultDigest[0] = hashBlock(CounterBlock{}.pack(), _seed);
    for (unsigned l = 1; l <= _numLevels; ++l) {
        BmtNode n;
        n.child.fill(_defaultDigest[l - 1]);
        _defaultDigest[l] = n.digest(_seed);
    }
    _root = _defaultDigest[_numLevels];
}

BonsaiMerkleTree::BonsaiMerkleTree(const BonsaiMerkleTree &other)
    : _numLeaves(other._numLeaves), _numLevels(other._numLevels),
      _seed(other._seed), _root(other._root),
      _defaultDigest(other._defaultDigest),
      _touchedCount(other._touchedCount)
{
    _levels.resize(other._levels.size());
    for (std::size_t l = 0; l < other._levels.size(); ++l) {
        _levels[l].width = other._levels[l].width;
        _levels[l].chunks.resize(other._levels[l].chunks.size());
        for (std::size_t ci = 0; ci < other._levels[l].chunks.size(); ++ci)
            if (const Chunk *c = other._levels[l].chunks[ci].get())
                _levels[l].chunks[ci] = std::make_unique<Chunk>(*c);
    }
}

BonsaiMerkleTree &
BonsaiMerkleTree::operator=(const BonsaiMerkleTree &other)
{
    if (this != &other) {
        BonsaiMerkleTree copy(other);
        *this = std::move(copy);
    }
    return *this;
}

Digest
BonsaiMerkleTree::defaultChildDigest(unsigned level) const
{
    return _defaultDigest[level];
}

BonsaiMerkleTree::Chunk &
BonsaiMerkleTree::ensureChunk(unsigned level, std::uint64_t node_idx)
{
    auto &slot = _levels[level].chunks[node_idx >> kChunkShift];
    if (!slot) {
        slot = std::make_unique<Chunk>();
        BmtNode fill;
        fill.child.fill(defaultChildDigest(level));
        slot->nodes.fill(fill);
    }
    return *slot;
}

BmtNode
BonsaiMerkleTree::node(unsigned level, std::uint64_t index) const
{
    panic_if(level >= _numLevels, "BMT node level %u out of range", level);
    const Level &lv = _levels[level];
    if (index < lv.width) {
        if (const Chunk *c = lv.chunks[index >> kChunkShift].get())
            return c->nodes[index & (kChunkNodes - 1)];
    }
    BmtNode n;
    n.child.fill(defaultChildDigest(level));
    return n;
}

Digest
BonsaiMerkleTree::updateLeaf(std::uint64_t leaf_idx, Digest leaf_digest)
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        Chunk &c = ensureChunk(level, node_idx);
        const std::uint64_t off = node_idx & (kChunkNodes - 1);
        if (!c.touched[off]) {
            c.touched[off] = 1;
            ++_touchedCount;
        }
        BmtNode &n = c.nodes[off];
        n.child[slot] = child_digest;
        child_digest = n.digest(_seed);
        child_idx = node_idx;
    }
    _root = child_digest;
    return _root;
}

bool
BonsaiMerkleTree::verifyLeaf(std::uint64_t leaf_idx,
                             Digest leaf_digest) const
{
    panic_if(leaf_idx >= _numLeaves, "BMT leaf index out of range");

    Digest child_digest = leaf_digest;
    std::uint64_t child_idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        const std::uint64_t node_idx = child_idx / 8;
        const unsigned slot = static_cast<unsigned>(child_idx % 8);
        const BmtNode n = node(level, node_idx);
        if (n.child[slot] != child_digest)
            return false;
        child_digest = n.digest(_seed);
        child_idx = node_idx;
    }
    return child_digest == _root;
}

std::vector<std::uint64_t>
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx) const
{
    std::vector<std::uint64_t> path;
    pathIndices(leaf_idx, path);
    return path;
}

void
BonsaiMerkleTree::pathIndices(std::uint64_t leaf_idx,
                              std::vector<std::uint64_t> &out) const
{
    out.clear();
    out.reserve(_numLevels);
    std::uint64_t idx = leaf_idx;
    for (unsigned level = 0; level < _numLevels; ++level) {
        idx /= 8;
        out.push_back(idx);
    }
}

std::uint64_t
BonsaiMerkleTree::rebuildFromLevel(unsigned first_level)
{
    if (first_level >= _numLevels)
        return 0;
    panic_if(first_level < 1,
             "BMT rebuild must start at level >= 1 (level-0 nodes hold "
             "leaf digests the tree does not store)");

    // Bottom-up: a level-L node is recomputed from its level-(L-1)
    // children, which at that point are either persisted (below
    // first_level) or already rebuilt by the previous iteration. The
    // chunked layout makes this a scan of resident chunks' touched
    // bitmaps instead of a full-map filter pass per level.
    std::uint64_t rebuilt = 0;
    for (unsigned level = first_level; level < _numLevels; ++level) {
        Level &lv = _levels[level];
        const Level &below = _levels[level - 1];
        for (std::size_t ci = 0; ci < lv.chunks.size(); ++ci) {
            Chunk *c = lv.chunks[ci].get();
            if (!c)
                continue;
            const std::uint64_t base = static_cast<std::uint64_t>(ci)
                                       << kChunkShift;
            for (std::uint64_t off = 0; off < kChunkNodes; ++off) {
                if (!c->touched[off])
                    continue;
                const std::uint64_t node_idx = base + off;
                BmtNode fresh;
                for (unsigned slot = 0; slot < 8; ++slot) {
                    const std::uint64_t child_idx = node_idx * 8 + slot;
                    const Chunk *bc =
                        child_idx < below.width
                            ? below.chunks[child_idx >> kChunkShift].get()
                            : nullptr;
                    const std::uint64_t coff = child_idx & (kChunkNodes - 1);
                    fresh.child[slot] = bc && bc->touched[coff]
                                            ? bc->nodes[coff].digest(_seed)
                                            : defaultChildDigest(level);
                }
                c->nodes[off] = fresh;
                ++rebuilt;
            }
        }
    }

    // The root register itself was battery-backed but stale relative to
    // the rebuilt top node; recompute it.
    const Level &top = _levels[_numLevels - 1];
    const Chunk *tc = top.chunks.empty() ? nullptr : top.chunks[0].get();
    _root = tc && tc->touched[0] ? tc->nodes[0].digest(_seed)
                                 : _defaultDigest[_numLevels];
    return rebuilt;
}

bool
BonsaiMerkleTree::tamperNode(unsigned level, std::uint64_t index,
                             const BmtNode &forged)
{
    if (!hasNode(level, index))
        return false;
    _levels[level].chunks[index >> kChunkShift]
        ->nodes[index & (kChunkNodes - 1)] = forged;
    return true;
}

} // namespace secpb
