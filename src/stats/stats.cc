#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace secpb
{

StatBase::StatBase(StatGroup &group, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    group.addStat(this);
}

void
StatBase::printCsv(std::ostream &os, const std::string &prefix) const
{
    for (const auto &[suffix, value] : jsonFields())
        os << prefix << _name << suffix << "," << value << "\n";
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + _name)
       << std::right << std::setw(16) << _value
       << "  # " << _desc << "\n";
}

std::vector<std::pair<std::string, double>>
Scalar::jsonFields() const
{
    return {{"", _value}};
}

void
Average::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + _name)
       << std::right << std::setw(16) << mean()
       << "  # " << _desc << " (n=" << _count << ")\n";
}

std::vector<std::pair<std::string, double>>
Average::jsonFields() const
{
    return {{".mean", mean()}, {".count", static_cast<double>(_count)}};
}

Distribution::Distribution(StatGroup &group, std::string name,
                           std::string desc, double min, double max,
                           unsigned num_buckets)
    : StatBase(group, std::move(name), std::move(desc)),
      _min(min), _max(max),
      _bucketWidth(num_buckets ? (max - min) / num_buckets : 1.0),
      _buckets(num_buckets, 0)
{
    panic_if(max <= min, "Distribution %s: max must exceed min",
             _name.c_str());
    panic_if(num_buckets == 0, "Distribution %s: needs >= 1 bucket",
             _name.c_str());
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _minSeen = v;
        _maxSeen = v;
    } else {
        _minSeen = std::min(_minSeen, v);
        _maxSeen = std::max(_maxSeen, v);
    }
    _sum += v;
    ++_count;

    if (v < _min) {
        ++_underflow;
    } else if (v >= _max) {
        ++_overflow;
    } else {
        auto idx = static_cast<size_t>((v - _min) / _bucketWidth);
        if (idx >= _buckets.size())
            idx = _buckets.size() - 1;
        ++_buckets[idx];
    }
}

void
Distribution::print(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + _name + ".mean")
       << std::right << std::setw(16) << mean()
       << "  # " << _desc << "\n";
    os << std::left << std::setw(48) << (prefix + _name + ".min")
       << std::right << std::setw(16) << _minSeen << "\n";
    os << std::left << std::setw(48) << (prefix + _name + ".max")
       << std::right << std::setw(16) << _maxSeen << "\n";
    os << std::left << std::setw(48) << (prefix + _name + ".count")
       << std::right << std::setw(16) << _count << "\n";
}

std::vector<std::pair<std::string, double>>
Distribution::jsonFields() const
{
    return {{".mean", mean()},
            {".min", _minSeen},
            {".max", _maxSeen},
            {".count", static_cast<double>(_count)}};
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _sum = 0.0;
    _count = 0;
    _minSeen = 0.0;
    _maxSeen = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), _parent(parent)
{
    if (_parent)
        _parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (_parent)
        _parent->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(_children.begin(), _children.end(), child);
    if (it != _children.end())
        _children.erase(it);
}

std::string
StatGroup::fullName() const
{
    if (_parent)
        return _parent->fullName() + "." + _name;
    return _name;
}

void
StatGroup::visitStats(
    const std::function<void(const std::string &prefix,
                             const StatBase &stat)> &visit) const
{
    const std::string prefix = fullName() + ".";
    for (const StatBase *s : _stats)
        visit(prefix, *s);
    for (const StatGroup *child : _children)
        child->visitStats(visit);
}

void
StatGroup::dump(std::ostream &os) const
{
    visitStats([&os](const std::string &prefix, const StatBase &s) {
        s.print(os, prefix);
    });
}

void
StatGroup::dumpCsv(std::ostream &os) const
{
    visitStats([&os](const std::string &prefix, const StatBase &s) {
        s.printCsv(os, prefix);
    });
}

void
StatGroup::toJson(JsonWriter &w) const
{
    w.beginObject();
    visitStats([&w](const std::string &prefix, const StatBase &s) {
        for (const auto &[suffix, value] : s.jsonFields())
            w.field(prefix + s.name() + suffix, value);
    });
    w.endObject();
}

void
StatGroup::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : _stats)
        if (s->name() == name)
            return s;
    return nullptr;
}

const StatBase *
StatGroup::findByPath(const std::string &path) const
{
    const StatGroup *group = this;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t dot = path.find('.', pos);
        if (dot == std::string::npos)
            return group->find(path.substr(pos));
        const std::string segment = path.substr(pos, dot - pos);
        const StatGroup *next = nullptr;
        for (const StatGroup *child : group->_children) {
            if (child->name() == segment) {
                next = child;
                break;
            }
        }
        if (!next)
            return nullptr;
        group = next;
        pos = dot + 1;
    }
}

} // namespace secpb
