#include "stats/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace secpb
{

JsonWriter::JsonWriter(std::ostream &os, bool pretty)
    : _os(os), _pretty(pretty)
{
}

void
JsonWriter::raw(const std::string &s)
{
    _os << s;
}

void
JsonWriter::newlineIndent()
{
    if (!_pretty)
        return;
    _os << '\n';
    for (std::size_t i = 0; i < _stack.size(); ++i)
        _os << "  ";
}

void
JsonWriter::preValue()
{
    if (_keyPending) {
        // Key already emitted the separator; the value follows inline.
        _keyPending = false;
        return;
    }
    if (_stack.empty())
        return;
    if (!_stack.back().first)
        _os << ',';
    _stack.back().first = false;
    newlineIndent();
}

void
JsonWriter::beginObject()
{
    preValue();
    _os << '{';
    _stack.push_back(Level{false, true});
}

void
JsonWriter::endObject()
{
    panic_if(_stack.empty() || _stack.back().array,
             "JsonWriter::endObject with no open object");
    const bool empty = _stack.back().first;
    _stack.pop_back();
    if (!empty)
        newlineIndent();
    _os << '}';
    if (_stack.empty() && _pretty)
        _os << '\n';
}

void
JsonWriter::beginArray()
{
    preValue();
    _os << '[';
    _stack.push_back(Level{true, true});
}

void
JsonWriter::endArray()
{
    panic_if(_stack.empty() || !_stack.back().array,
             "JsonWriter::endArray with no open array");
    const bool empty = _stack.back().first;
    _stack.pop_back();
    if (!empty)
        newlineIndent();
    _os << ']';
}

void
JsonWriter::key(const std::string &k)
{
    panic_if(_stack.empty() || _stack.back().array,
             "JsonWriter::key outside an object");
    panic_if(_keyPending, "JsonWriter::key with a key already pending");
    if (!_stack.back().first)
        _os << ',';
    _stack.back().first = false;
    newlineIndent();
    _os << '"' << escape(k) << "\": ";
    _keyPending = true;
}

void
JsonWriter::value(const std::string &v)
{
    preValue();
    _os << '"' << escape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(bool v)
{
    preValue();
    _os << (v ? "true" : "false");
}

void
JsonWriter::value(double v)
{
    preValue();
    if (!std::isfinite(v)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        _os << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    _os << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    preValue();
    _os << v;
}

void
JsonWriter::value(std::int64_t v)
{
    preValue();
    _os << v;
}

void
JsonWriter::nullValue()
{
    preValue();
    _os << "null";
}

void
JsonWriter::rawValue(const std::string &json)
{
    panic_if(json.empty(), "JsonWriter::rawValue with empty document");
    preValue();
    _os << json;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace secpb
