/**
 * @file
 * Lightweight statistics package, modelled on gem5's Stats.
 *
 * Statistics register themselves with a StatGroup; groups can be dumped as
 * human-readable text or CSV. Three primitive kinds cover everything this
 * project needs: Scalar (a counter or accumulated value), Average (mean of
 * samples), and Distribution (bucketed histogram with min/max/mean).
 */

#ifndef SECPB_STATS_STATS_HH
#define SECPB_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace secpb
{

class JsonWriter;
class StatGroup;

/** Base class for a named, registered statistic. */
class StatBase
{
  public:
    StatBase(StatGroup &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Print "name value # desc" lines. */
    virtual void print(std::ostream &os, const std::string &prefix) const = 0;

    /**
     * Print CSV rows "prefix.name.suffix,value" -- one row per
     * jsonFields() entry, so CSV and JSON report identical fields.
     */
    void printCsv(std::ostream &os, const std::string &prefix) const;

    /**
     * The stat's value(s) as (suffix, value) pairs for machine output.
     * A Scalar reports one pair with an empty suffix; composite stats
     * report ".mean"/".count"-style suffixes appended to their name.
     * This is the single source CSV and JSON emission both draw from.
     */
    virtual std::vector<std::pair<std::string, double>>
        jsonFields() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  protected:
    std::string _name;
    std::string _desc;
};

/** A simple accumulating scalar statistic. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { _value += 1.0; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator=(double v) { _value = v; return *this; }

    double value() const { return _value; }

    void print(std::ostream &os, const std::string &prefix) const override;
    std::vector<std::pair<std::string, double>> jsonFields() const override;
    void reset() override { _value = 0.0; }

  private:
    double _value = 0.0;
};

/** Mean of submitted samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }

    void print(std::ostream &os, const std::string &prefix) const override;
    std::vector<std::pair<std::string, double>> jsonFields() const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/** Linear-bucketed histogram with summary moments. */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup &group, std::string name, std::string desc,
                 double min, double max, unsigned num_buckets);

    void sample(double v);

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }
    double minSeen() const { return _minSeen; }
    double maxSeen() const { return _maxSeen; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t underflows() const { return _underflow; }
    std::uint64_t overflows() const { return _overflow; }

    void print(std::ostream &os, const std::string &prefix) const override;
    std::vector<std::pair<std::string, double>> jsonFields() const override;
    void reset() override;

  private:
    double _min;
    double _max;
    double _bucketWidth;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _minSeen = 0.0;
    double _maxSeen = 0.0;
};

/**
 * A named collection of statistics, optionally nested under a parent.
 * Hardware models own a StatGroup and hang their stats off it.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Fully qualified dotted name (parent.child...). */
    std::string fullName() const;

    /**
     * Visit every stat in this group and its children in registration
     * order, passing the group's dotted prefix ("sys.secpb.") and the
     * stat. The one traversal that text, CSV, and JSON dumps share.
     */
    void visitStats(
        const std::function<void(const std::string &prefix,
                                 const StatBase &stat)> &visit) const;

    /** Dump this group and all children as text. */
    void dump(std::ostream &os) const;

    /** Dump this group and all children as CSV (name,value rows). */
    void dumpCsv(std::ostream &os) const;

    /**
     * Emit this group and all children as one flat JSON object keyed
     * by dotted path ("sys.secpb.persists": 42). The writer must be
     * positioned where a value may start (e.g. after key()).
     */
    void toJson(JsonWriter &w) const;

    /** Reset every stat in this group and its children. */
    void resetAll();

    /** Look up a stat by name within this group only. */
    const StatBase *find(const std::string &name) const;

    /**
     * Look up a stat by dotted path relative to this group, e.g.
     * "cores0.store_buffer.stalls". Returns nullptr when any segment
     * is missing.
     */
    const StatBase *findByPath(const std::string &path) const;

    /** Direct child groups in registration order. */
    const std::vector<StatGroup *> &children() const { return _children; }

    /** Stats registered directly on this group. */
    const std::vector<StatBase *> &stats() const { return _stats; }

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { _stats.push_back(stat); }
    void addChild(StatGroup *child) { _children.push_back(child); }
    void removeChild(StatGroup *child);

    std::string _name;
    StatGroup *_parent;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace secpb

#endif // SECPB_STATS_STATS_HH
