/**
 * @file
 * Minimal hand-rolled JSON writer for experiment results.
 *
 * Streams a JSON document to an ostream with deterministic formatting:
 * fields appear in emission order, doubles print via "%.17g" (shortest
 * round-trippable on one platform), and pretty mode puts one scalar field
 * per line so downstream tools can diff or filter line-wise (the sweep
 * determinism test strips the host-time lines this way). No DOM, no
 * parsing, no allocation beyond the nesting stack -- writing is all this
 * project needs.
 */

#ifndef SECPB_STATS_JSON_HH
#define SECPB_STATS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace secpb
{

/** Streaming JSON emitter with begin/end nesting and typed values. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = true);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; the next value/begin* call is its value. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void nullValue();

    /**
     * Splice @p json -- an already-serialized JSON value -- in value
     * position, verbatim. Lets callers embed documents produced by
     * another JsonWriter (e.g. a compact stats object inside a pretty
     * sweep point) without reparsing.
     */
    void rawValue(const std::string &json);

    /** @name key + value in one call. */
    /** @{ */
    template <typename T>
    void
    field(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }
    /** @} */

    /** Depth of open objects/arrays (0 when the document is complete). */
    std::size_t depth() const { return _stack.size(); }

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    struct Level
    {
        bool array = false;
        bool first = true;
    };

    /** Separator/indent before a value or key at the current position. */
    void preValue();
    void newlineIndent();
    void raw(const std::string &s);

    std::ostream &_os;
    bool _pretty;
    bool _keyPending = false;
    std::vector<Level> _stack;
};

} // namespace secpb

#endif // SECPB_STATS_JSON_HH
