/**
 * @file
 * The pluggable scheme-policy seam (DESIGN.md "SchemePolicy").
 *
 * Historically every per-scheme behavioral difference lived as a
 * `Scheme` enum branch inside src/secpb/secpb.cc. That worked for the
 * paper's six schemes -- they differ only in which tuple components are
 * early, which SchemeTraits already captures -- but the related-work zoo
 * (SecPM, Triad-NVM, eADR, streamlined-BMT) differs along *behavioral*
 * axes the traits cannot express:
 *
 *  - persist-domain membership: what the battery must cover at crash
 *    time (the SecPB entries? the SP WPQ? the whole cache hierarchy?);
 *  - metadata write-through vs lazy: does a counter update also write
 *    through to PCM (SecPM), or stay dirty in the metadata cache?
 *  - BMT persistence depth: how many tree levels are persisted at
 *    drain/crash time (all of them, or Triad-NVM's lowest N with a
 *    recovery-time rebuild of the rest)?
 *  - crash-drain work model: what the worst-case in-flight entry costs,
 *    and what mandatory work (hierarchy flush, tree rebuild) a crash
 *    adds beyond the per-entry completions.
 *
 * A SchemePolicy object answers those questions; the SecPB mechanics ask
 * at the existing decision points. Policies expose *decision values*
 * rather than overriding the mechanics themselves, which keeps the six
 * paper schemes byte-identical to the pre-policy code (their policy
 * returns exactly the defaults the old branches hard-coded).
 */

#ifndef SECPB_SCHEMES_POLICY_HH
#define SECPB_SCHEMES_POLICY_HH

#include <cstdint>
#include <memory>

#include "secpb/scheme.hh"
#include "secpb/secpb.hh"

namespace secpb
{

/**
 * Per-scheme behavior, factored out of the SecPB enum branches. The
 * base class implements the default SecPB scheme behavior (entries are
 * the persist domain, metadata caches are lazy write-back, the full BMT
 * path persists at crash time); subclasses override the axes their
 * design changes. Construct through makeSchemePolicy().
 */
class SchemePolicy
{
  public:
    SchemePolicy(Scheme scheme, const SchemeParams &params)
        : _scheme(scheme), _params(params), _traits(schemeTraits(scheme))
    {}
    virtual ~SchemePolicy() = default;

    Scheme scheme() const { return _scheme; }
    const SchemeParams &params() const { return _params; }
    const SchemeTraits &traits() const { return _traits; }

    /** @name Persist-domain membership. */
    /** @{ */
    /**
     * True when the ADR WPQ -- not the SecPB -- is the persistence
     * domain (the SP baseline): stores persist on WPQ arrival, and the
     * crash drain completes the pending tuples instead of entries.
     */
    virtual bool wpqIsPersistDomain() const { return false; }

    /**
     * Cache lines the battery must flush at crash time *beyond* the
     * SecPB entries. Non-zero only for eADR, where the whole volatile
     * hierarchy is inside the persist domain.
     */
    virtual std::uint64_t crashCacheFlushLines() const { return 0; }
    /** @} */

    /** @name Metadata write-through vs lazy. */
    /** @{ */
    /**
     * True when counter updates write through to PCM (SecPM's
     * data+counter atomicity): the counter-cache block stays clean, so
     * crashes never lose counters, at a per-update PCM write cost.
     */
    virtual bool counterWriteThrough() const { return false; }
    /** @} */

    /** @name BMT persistence depth. */
    /** @{ */
    /**
     * BMT node levels walked on battery power for an entry whose tree
     * update was deferred. Default: the full path. Triad-NVM persists
     * only the lowest N levels.
     */
    virtual unsigned
    crashBmtLevels(unsigned tree_levels) const
    {
        return tree_levels;
    }

    /**
     * BMT path levels written through to PCM when an entry's deferred
     * tree update runs at drain time (Triad-NVM's runtime cost: the
     * persisted frontier must actually be in PCM). Default: none (the
     * tree lives in the walker's cache + battery coverage).
     */
    virtual unsigned
    drainBmtWriteThroughLevels(unsigned tree_levels) const
    {
        (void)tree_levels;
        return 0;
    }

    /**
     * First tree level recovery must rebuild (everything at and above
     * it was volatile). tree_levels (== nothing to rebuild) for schemes
     * whose crash drain persists the full path.
     */
    virtual unsigned
    recoveryRebuildFromLevel(unsigned tree_levels) const
    {
        return tree_levels;
    }

    /**
     * Streamlined BMT updates (Freij/Zhou/Solihin): an early tree
     * update only gates the store-unblock on pipelined walk *issue*;
     * the coalesced root update retires in the background.
     */
    virtual bool streamlinedBmtIssue() const { return false; }
    /** @} */

    /** @name Crash-drain work model. */
    /** @{ */
    /**
     * Worst-case work for the single in-flight entry a crash can land
     * on top of (the adaptive-drain gate margin). Default: one full
     * late tuple -- counter fetch, OTP, full-path BMT walk, MAC, block
     * write.
     */
    virtual CrashWork worstEntryWork(unsigned tree_levels) const;
    /** @} */

  private:
    Scheme _scheme;
    SchemeParams _params;
    SchemeTraits _traits;
};

/** Build the policy object for (@p scheme, @p params). */
std::unique_ptr<SchemePolicy> makeSchemePolicy(Scheme scheme,
                                               const SchemeParams &params);

} // namespace secpb

#endif // SECPB_SCHEMES_POLICY_HH
