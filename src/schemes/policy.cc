#include "schemes/policy.hh"

#include <algorithm>

#include "energy/energy_model.hh"
#include "sim/logging.hh"

namespace secpb
{

CrashWork
SchemePolicy::worstEntryWork(unsigned tree_levels) const
{
    // Worst-case completion of one entry under this scheme: every lazy
    // field missing and the counter block absent on-chip. Ciphertext and
    // MAC are always included -- they are value-dependent, so even an
    // eager scheme can hold them invalid while a coalescing store's
    // regeneration is in flight.
    CrashWork w;
    if (!_traits.secure) {
        w.entriesDrained = 1;
        w.pmBlockWrites = 1;
        return w;
    }
    w.entriesDrained = 1;
    if (!_traits.earlyCounter) {
        w.counterFetches = 1;
        w.countersIncremented = 1;
    }
    if (!_traits.earlyOtp)
        w.otpsGenerated = 1;
    w.ciphertexts = 1;
    w.macsComputed = 1;
    if (!_traits.earlyBmt) {
        w.bmtRootUpdates = 1;
        w.bmtLevelsWalked = crashBmtLevels(tree_levels);
    }
    w.pmBlockWrites = 3;
    return w;
}

namespace
{

/** SP baseline: the WPQ, not the SecPB, is the persistence domain. */
class SpPolicy final : public SchemePolicy
{
  public:
    using SchemePolicy::SchemePolicy;

    bool wpqIsPersistDomain() const override { return true; }

    CrashWork
    worstEntryWork(unsigned /*tree_levels*/) const override
    {
        // SP completes the whole tuple at store-persist time and only
        // then queues the write; the worst unit the gate can admit is a
        // single WPQ-resident block write (predictCrashDrainWork prices
        // the full queue the same way).
        CrashWork w;
        w.pmBlockWrites = 1;
        return w;
    }
};

/** SecPM (Zuo/Hua/Xie): counter write-through, data+counter atomicity. */
class SecpmPolicy final : public SchemePolicy
{
  public:
    using SchemePolicy::SchemePolicy;

    bool counterWriteThrough() const override { return true; }
};

/** Triad-NVM (Awad et al.): persist BMT levels < N, rebuild the rest. */
class TriadPolicy final : public SchemePolicy
{
  public:
    using SchemePolicy::SchemePolicy;

    unsigned
    crashBmtLevels(unsigned tree_levels) const override
    {
        return persistedLevels(tree_levels);
    }

    unsigned
    drainBmtWriteThroughLevels(unsigned tree_levels) const override
    {
        return persistedLevels(tree_levels);
    }

    unsigned
    recoveryRebuildFromLevel(unsigned tree_levels) const override
    {
        return persistedLevels(tree_levels);
    }

  private:
    unsigned
    persistedLevels(unsigned tree_levels) const
    {
        return std::min(params().triadLevels, tree_levels);
    }
};

/** eADR-ideal: the battery flushes the entire cache hierarchy. */
class EadrPolicy final : public SchemePolicy
{
  public:
    using SchemePolicy::SchemePolicy;

    std::uint64_t
    crashCacheFlushLines() const override
    {
        const HierarchyFootprint h;
        return (h.l1Bytes + h.l2Bytes + h.l3Bytes) / BlockSize;
    }
};

/** Streamlined BMT updates: strict tree, unblock at walk issue. */
class StreamPolicy final : public SchemePolicy
{
  public:
    using SchemePolicy::SchemePolicy;

    bool streamlinedBmtIssue() const override { return true; }
};

} // namespace

std::unique_ptr<SchemePolicy>
makeSchemePolicy(Scheme scheme, const SchemeParams &params)
{
    switch (scheme) {
      case Scheme::Sp:
        return std::make_unique<SpPolicy>(scheme, params);
      case Scheme::Secpm:
        return std::make_unique<SecpmPolicy>(scheme, params);
      case Scheme::Triad:
        fatal_if(params.triadLevels < 1,
                 "triad needs at least one persisted BMT level");
        return std::make_unique<TriadPolicy>(scheme, params);
      case Scheme::Eadr:
        return std::make_unique<EadrPolicy>(scheme, params);
      case Scheme::Stream:
        return std::make_unique<StreamPolicy>(scheme, params);
      default:
        return std::make_unique<SchemePolicy>(scheme, params);
    }
}

} // namespace secpb
