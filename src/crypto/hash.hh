/**
 * @file
 * Hash primitives for the security-metadata models.
 *
 * These stand in for the SHA-512 units of the paper. They are fast 64-bit
 * mixing functions -- NOT cryptographically secure -- but they are fully
 * value-dependent, so the integrity-verification logic behaves like the
 * real thing: any bit flip in data, counters, MACs, or tree nodes changes
 * downstream hashes and is caught by verification. The *timing* of the real
 * units (40 processor cycles per hash, Table I) is modelled separately in
 * the crypto engine.
 */

#ifndef SECPB_CRYPTO_HASH_HH
#define SECPB_CRYPTO_HASH_HH

#include <cstdint>
#include <cstring>

#include "mem/block_data.hh"

namespace secpb
{

/** A 64-bit digest. */
using Digest = std::uint64_t;

/** Strong 64-bit integer mix (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/** Hash an arbitrary byte range with a seed. */
inline Digest
hashBytes(const std::uint8_t *data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ULL + len));
    std::size_t i = 0;
    while (i + 8 <= len) {
        std::uint64_t w;
        std::memcpy(&w, data + i, 8);
        h = mix64(h ^ w) * 0x100000001b3ULL;
        i += 8;
    }
    if (i < len) {
        std::uint64_t w = 0;
        std::memcpy(&w, data + i, len - i);
        h = mix64(h ^ w) * 0x100000001b3ULL;
    }
    return mix64(h);
}

/** Hash a whole 64-byte block. */
inline Digest
hashBlock(const BlockData &b, std::uint64_t seed)
{
    return hashBytes(b.data(), b.size(), seed);
}

} // namespace secpb

#endif // SECPB_CRYPTO_HASH_HH
