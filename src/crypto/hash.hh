/**
 * @file
 * Hash primitives for the security-metadata models.
 *
 * These stand in for the SHA-512 units of the paper. They are fast 64-bit
 * mixing functions -- NOT cryptographically secure -- but they are fully
 * value-dependent, so the integrity-verification logic behaves like the
 * real thing: any bit flip in data, counters, MACs, or tree nodes changes
 * downstream hashes and is caught by verification. The *timing* of the real
 * units (40 processor cycles per hash, Table I) is modelled separately in
 * the crypto engine.
 */

#ifndef SECPB_CRYPTO_HASH_HH
#define SECPB_CRYPTO_HASH_HH

#include <cstdint>
#include <cstring>

#include "mem/block_data.hh"

namespace secpb
{

/** A 64-bit digest. */
using Digest = std::uint64_t;

/** Strong 64-bit integer mix (splitmix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/**
 * Hash an arbitrary byte range with a seed. This is the heavyweight
 * generic hash (full per-word mix); workload seeding depends on its
 * exact values, so it must not change. Digest-producing hot paths use
 * hashWords/hashBlock below instead.
 */
inline Digest
hashBytes(const std::uint8_t *data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ULL + len));
    std::size_t i = 0;
    while (i + 8 <= len) {
        std::uint64_t w;
        std::memcpy(&w, data + i, 8);
        h = mix64(h ^ w) * 0x100000001b3ULL;
        i += 8;
    }
    if (i < len) {
        std::uint64_t w = 0;
        std::memcpy(&w, data + i, len - i);
        h = mix64(h ^ w) * 0x100000001b3ULL;
    }
    return mix64(h);
}

/**
 * Hash @p n native 64-bit words -- the digest chain of the metadata
 * models (BMT nodes, counter blocks, MACs). The per-word step
 * (h ^ w) * odd-prime is a bijection of h for fixed w and of w for
 * fixed h, so changing any input word always changes the final digest:
 * single-block tamper detection never aliases away. The splitmix64
 * finalizer supplies output avalanche. One multiply per word (instead
 * of a full mix) keeps the functional BMT walk -- seven node hashes per
 * update -- cheap enough to stay off the simulator's host critical
 * path; digests are only ever compared internally, so their exact
 * values are not part of any output contract.
 */
inline Digest
hashWords(const std::uint64_t *words, std::size_t n, std::uint64_t seed)
{
    std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL + n * 8);
    for (std::size_t i = 0; i < n; ++i)
        h = (h ^ words[i]) * 0x100000001b3ULL;
    return mix64(h);
}

/**
 * Hash a whole 64-byte block: hashWords over its eight native words.
 * Bit-identical to hashWords() on word-structured metadata serialized
 * with setBlockWord (both sides memcpy the native representation), so
 * e.g. a BMT node can hash its child array in place and match the
 * digest of its packed wire form.
 */
inline Digest
hashBlock(const BlockData &b, std::uint64_t seed)
{
    std::uint64_t w[WordsPerBlock];
    std::memcpy(w, b.data(), sizeof(w));
    return hashWords(w, WordsPerBlock, seed);
}

} // namespace secpb

#endif // SECPB_CRYPTO_HASH_HH
