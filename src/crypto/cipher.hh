/**
 * @file
 * Counter-mode encryption: one-time-pad generation, encrypt/decrypt, MAC.
 *
 * The pad generator stands in for AES: pad = PRF(key, block address, major,
 * minor). Because the nonce (address, major, minor) never repeats for a
 * given key -- counters only move forward -- pad reuse never occurs, which
 * is the property counter-mode security rests on. Decryption is the same
 * XOR. The MAC binds ciphertext, address, and counter so splicing (moving a
 * ciphertext to another address) and replay (pairing ciphertext with a
 * stale counter) are both detected.
 */

#ifndef SECPB_CRYPTO_CIPHER_HH
#define SECPB_CRYPTO_CIPHER_HH

#include <cstdint>

#include "crypto/counters.hh"
#include "crypto/hash.hh"
#include "mem/block_data.hh"

namespace secpb
{

/** A 64-bit per-block MAC value (the stored portion of the 512-bit tag). */
using MacValue = std::uint64_t;

/**
 * The processor's memory-encryption keys. In a real system these live in
 * fuses/TPM; here they seed the PRF and MAC.
 */
struct SecurityKeys
{
    std::uint64_t encryptionKey = 0x5ecb0b5ecb0b5ec1ULL;
    std::uint64_t macKey = 0x0ddc0ffee0ddc0ffULL;
};

/**
 * Generate the one-time pad for (@p block_addr, @p ctr).
 * Models the AES pad generation pipeline; timing is charged elsewhere.
 */
inline BlockData
generatePad(const SecurityKeys &keys, Addr block_addr,
            const BlockCounter &ctr)
{
    BlockData pad;
    const std::uint64_t base =
        mix64(keys.encryptionKey ^ mix64(block_addr) ^
              mix64(ctr.major * 1000003ULL + ctr.minor));
    for (unsigned w = 0; w < WordsPerBlock; ++w)
        setBlockWord(pad, w, mix64(base + w));
    return pad;
}

/** Encrypt plaintext into ciphertext: a single XOR with the pad. */
inline BlockData
encryptBlock(const BlockData &plaintext, const BlockData &pad)
{
    return xorBlocks(plaintext, pad);
}

/** Decrypt ciphertext back into plaintext (XOR is its own inverse). */
inline BlockData
decryptBlock(const BlockData &ciphertext, const BlockData &pad)
{
    return xorBlocks(ciphertext, pad);
}

/**
 * Compute the MAC over (ciphertext, address, counter). Covers everything
 * needed to detect spoofing, splicing, and data/counter replay.
 */
inline MacValue
computeMac(const SecurityKeys &keys, Addr block_addr,
           const BlockData &ciphertext, const BlockCounter &ctr)
{
    const std::uint64_t seed =
        mix64(keys.macKey ^ mix64(block_addr) ^
              mix64(ctr.major * 1000003ULL + ctr.minor));
    return hashBlock(ciphertext, seed);
}

} // namespace secpb

#endif // SECPB_CRYPTO_CIPHER_HH
