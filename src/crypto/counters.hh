/**
 * @file
 * Split-counter blocks for counter-mode encryption (Yan et al., ISCA'06).
 *
 * One 64-byte counter block covers a 4 KB data page: a 64-bit major counter
 * shared by the page plus 64 seven-bit minor counters, one per data block.
 * A minor-counter overflow increments the major counter and forces a page
 * re-encryption (every block in the page gets a fresh pad), exactly as in
 * the Bonsai Merkle Tree paper the SecPB design builds on.
 */

#ifndef SECPB_CRYPTO_COUNTERS_HH
#define SECPB_CRYPTO_COUNTERS_HH

#include <array>
#include <cstdint>

#include "mem/block_data.hh"

namespace secpb
{

/** Data page size covered by one counter block. */
constexpr unsigned PageSize = 4096;

/** Data blocks per page == minor counters per counter block. */
constexpr unsigned BlocksPerPage = PageSize / BlockSize;

/** Width of a minor counter in bits (split-counter scheme). */
constexpr unsigned MinorCounterBits = 7;

/** Maximum minor counter value before overflow. */
constexpr std::uint8_t MinorCounterMax = (1u << MinorCounterBits) - 1;

/**
 * The (major, minor) counter pair used as the encryption nonce for one
 * data block.
 */
struct BlockCounter
{
    std::uint64_t major = 0;
    std::uint8_t minor = 0;

    bool operator==(const BlockCounter &) const = default;
};

/**
 * A split-counter block: 64-bit major + 64 x 7-bit minors. In-memory
 * representation keeps minors unpacked for speed; pack()/unpack() produce
 * the canonical 64-byte wire format (8B major + 56B packed minors), which
 * is what gets hashed into the BMT and stored in the PM image.
 */
struct CounterBlock
{
    std::uint64_t major = 0;
    std::array<std::uint8_t, BlocksPerPage> minors{};

    /** Counter pair for the page-local block @p block_in_page (0..63). */
    BlockCounter
    counterFor(unsigned block_in_page) const
    {
        return BlockCounter{major, minors[block_in_page]};
    }

    /**
     * Increment the minor counter for @p block_in_page.
     * @return true if the minor overflowed; the caller must then perform a
     *         page re-encryption: the major counter has been incremented
     *         and every minor reset to zero.
     */
    bool
    increment(unsigned block_in_page)
    {
        if (minors[block_in_page] == MinorCounterMax) {
            ++major;
            minors.fill(0);
            return true;
        }
        ++minors[block_in_page];
        return false;
    }

    /** Serialize into the canonical 64-byte format. */
    BlockData pack() const;

    /** Deserialize from the canonical 64-byte format. */
    static CounterBlock unpack(const BlockData &raw);

    bool operator==(const CounterBlock &) const = default;
};

} // namespace secpb

#endif // SECPB_CRYPTO_COUNTERS_HH
