#include "crypto/counters.hh"

#include <cstring>

namespace secpb
{

BlockData
CounterBlock::pack() const
{
    BlockData out{};
    std::memcpy(out.data(), &major, 8);
    // Pack 64 seven-bit minors into 56 bytes, little-endian bit order.
    unsigned bitpos = 0;
    for (unsigned i = 0; i < BlocksPerPage; ++i) {
        const unsigned v = minors[i] & MinorCounterMax;
        const unsigned byte = 8 + bitpos / 8;
        const unsigned shift = bitpos % 8;
        out[byte] |= static_cast<std::uint8_t>(v << shift);
        if (shift > 8 - MinorCounterBits)
            out[byte + 1] |=
                static_cast<std::uint8_t>(v >> (8 - shift));
        bitpos += MinorCounterBits;
    }
    return out;
}

CounterBlock
CounterBlock::unpack(const BlockData &raw)
{
    CounterBlock cb;
    std::memcpy(&cb.major, raw.data(), 8);
    unsigned bitpos = 0;
    for (unsigned i = 0; i < BlocksPerPage; ++i) {
        const unsigned byte = 8 + bitpos / 8;
        const unsigned shift = bitpos % 8;
        unsigned v = raw[byte] >> shift;
        if (shift > 8 - MinorCounterBits)
            v |= static_cast<unsigned>(raw[byte + 1]) << (8 - shift);
        cb.minors[i] = static_cast<std::uint8_t>(v & MinorCounterMax);
        bitpos += MinorCounterBits;
    }
    return cb;
}

} // namespace secpb
