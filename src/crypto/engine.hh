/**
 * @file
 * The memory controller's cryptographic engine: occupancy models for the
 * AES pad-generation pipeline and the MAC hash unit.
 *
 * Per the paper's methodology (Section V-B), MAC and BMT updates are NOT
 * pipelined: each unit serves one operation at a time, so back-to-back
 * stores queue behind each other -- this is precisely the bottleneck the
 * lazy SecPB schemes remove. The BMT walker (one in-flight root update) is
 * a separate unit in metadata/walker.hh.
 */

#ifndef SECPB_CRYPTO_ENGINE_HH
#define SECPB_CRYPTO_ENGINE_HH

#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Crypto-engine latencies (processor cycles, Table I). */
struct CryptoLatencies
{
    Cycles aesPad = 40;      ///< One-time-pad generation (AES pipeline).
    Cycles macHash = 40;     ///< MAC computation over one block.
    Cycles bmtHash = 40;     ///< One BMT node hash (per tree level).
    Cycles xorCipher = 1;    ///< Ciphertext XOR (single logical op).
    Cycles counterInc = 1;   ///< Counter increment.
    Cycles aesInterval = 4;  ///< AES pipeline initiation interval.
    Cycles macInterval = 4;  ///< MAC pipeline initiation interval.
};

/**
 * A pipelined functional unit: full latency per operation, but
 * back-to-back independent operations issue one initiation interval
 * apart. Critical-path requesters (the eager schemes) still see the full
 * latency because they wait for their own operation's completion -- this
 * matches the paper's "we do not pipeline MAC or BMT root updates" for
 * NoGap/M/CM, whose store acceptance is serialized anyway, while giving
 * the drain engine of the lazy schemes realistic background throughput.
 */
class PipelinedUnit
{
  public:
    PipelinedUnit(EventQueue &eq, Cycles latency, Cycles interval)
        : _eq(eq), _latency(latency), _interval(interval)
    {}

    /** Issue one operation; fires @p done at completion. */
    Tick
    request(EventCallback done = nullptr)
    {
        const Tick issue = std::max(_eq.curTick(), _readyAt);
        _readyAt = issue + _interval;
        const Tick completion = issue + _latency;
        ++_requests;
        if (done)
            _eq.schedule(completion, std::move(done));
        return completion;
    }

    std::uint64_t requests() const { return _requests; }
    Tick readyAt() const { return _readyAt; }

    /**
     * @name Coalesced request trains
     * A burst of same-tick requests forms an arithmetic train: op i
     * issues at first_issue + i*interval and completes latency later,
     * exactly what sequential request() calls would produce. beginTrain()
     * snapshots the first issue tick; commitTrain() folds the whole train
     * into the unit's occupancy in one update. Callbacks are not
     * supported on trains -- burst users price completions, they don't
     * wait on them.
     * @{
     */
    Tick beginTrain() const { return std::max(_eq.curTick(), _readyAt); }

    void
    commitTrain(Tick first_issue, std::uint64_t count)
    {
        if (count == 0)
            return;
        _readyAt = first_issue + count * _interval;
        _requests += count;
    }

    Cycles latency() const { return _latency; }
    Cycles interval() const { return _interval; }
    /** @} */

  private:
    EventQueue &_eq;
    Cycles _latency;
    Cycles _interval;
    Tick _readyAt = 0;
    std::uint64_t _requests = 0;
};

/** Occupancy model of the AES and MAC units. */
class CryptoEngine
{
  public:
    CryptoEngine(EventQueue &eq, const CryptoLatencies &lat,
                 StatGroup &parent)
        : _lat(lat),
          _aesUnit(eq, lat.aesPad, lat.aesInterval),
          _macUnit(eq, lat.macHash, lat.macInterval),
          _stats("crypto", &parent),
          statOtpGenerated(_stats, "otp_generated",
                           "one-time pads generated"),
          statMacGenerated(_stats, "mac_generated", "MACs computed"),
          statCiphertexts(_stats, "ciphertexts", "ciphertext XORs")
    {}

    /** Issue one pad generation on the AES unit. @return finish tick. */
    Tick
    generateOtp(EventCallback done = nullptr)
    {
        ++statOtpGenerated;
        const Tick completion = _aesUnit.request(std::move(done));
        TRACE_SPAN("crypto", "otp", completion - _lat.aesPad, completion);
        return completion;
    }

    /** Issue one MAC computation. @return finish tick. */
    Tick
    generateMac(EventCallback done = nullptr)
    {
        ++statMacGenerated;
        const Tick completion = _macUnit.request(std::move(done));
        TRACE_SPAN("crypto", "mac", completion - _lat.macHash, completion);
        return completion;
    }

    /** Account a ciphertext XOR (1 cycle, no unit contention). */
    Cycles
    generateCiphertext()
    {
        ++statCiphertexts;
        return _lat.xorCipher;
    }

    const CryptoLatencies &latencies() const { return _lat; }
    PipelinedUnit &aesUnit() { return _aesUnit; }
    PipelinedUnit &macUnit() { return _macUnit; }

    /**
     * Batched drain crypto: prices a burst of OTP/MAC generations as one
     * coalesced request train per unit.
     *
     * Pricing contract: each otp()/mac() call charges the identical
     * completion tick, emits the identical trace span, and bumps the
     * identical stats as the equivalent generateOtp()/generateMac() call
     * sequence issued at the same tick -- op i of a unit's train issues
     * at first_issue + i*interval. The only difference is that the unit's
     * occupancy state is written once per unit at commit instead of once
     * per op, so a 64-block page regeneration touches each pipeline
     * twice, not 128 times. Callbacks are not supported (bursts price
     * work; waiters use the per-call path). No ops may be issued after
     * commit(); the destructor commits automatically.
     */
    class RegenBurst
    {
      public:
        explicit RegenBurst(CryptoEngine &eng)
            : _eng(eng),
              _otpBase(eng.aesUnit().beginTrain()),
              _macBase(eng.macUnit().beginTrain())
        {}

        RegenBurst(const RegenBurst &) = delete;
        RegenBurst &operator=(const RegenBurst &) = delete;

        ~RegenBurst() { commit(); }

        /** Price one pad generation. @return finish tick. */
        Tick
        otp()
        {
            ++_eng.statOtpGenerated;
            const CryptoLatencies &lat = _eng.latencies();
            const Tick completion =
                _otpBase + _otpCount * lat.aesInterval + lat.aesPad;
            ++_otpCount;
            TRACE_SPAN("crypto", "otp", completion - lat.aesPad, completion);
            return completion;
        }

        /** Price one MAC computation. @return finish tick. */
        Tick
        mac()
        {
            ++_eng.statMacGenerated;
            const CryptoLatencies &lat = _eng.latencies();
            const Tick completion =
                _macBase + _macCount * lat.macInterval + lat.macHash;
            ++_macCount;
            TRACE_SPAN("crypto", "mac", completion - lat.macHash,
                       completion);
            return completion;
        }

        /** Fold the burst into both units' occupancy. */
        void
        commit()
        {
            _eng.aesUnit().commitTrain(_otpBase, _otpCount);
            _eng.macUnit().commitTrain(_macBase, _macCount);
            _otpCount = 0;
            _macCount = 0;
        }

      private:
        CryptoEngine &_eng;
        Tick _otpBase;
        Tick _macBase;
        std::uint64_t _otpCount = 0;
        std::uint64_t _macCount = 0;
    };

  private:
    CryptoLatencies _lat;
    PipelinedUnit _aesUnit;
    PipelinedUnit _macUnit;
    StatGroup _stats;

  public:
    Scalar statOtpGenerated;
    Scalar statMacGenerated;
    Scalar statCiphertexts;
};

} // namespace secpb

#endif // SECPB_CRYPTO_ENGINE_HH
