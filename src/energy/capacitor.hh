/**
 * @file
 * Supercapacitor / thin-film battery physics for the crash-drain budget.
 *
 * The flat energy model (energy_model.hh) answers "how big must the
 * energy source be"; this class answers "how much can the one we built
 * actually deliver right now". State is the usable stored energy above
 * the regulator cutoff; capacitance and terminal voltage are derived
 * views, so an *ideal* capacitor (no ESR, no leakage, derate 1) sized
 * for E joules delivers exactly E -- bit-identical to the old
 * "fraction of worst case" scalar budget, which sizedFor() replaces.
 *
 * Physics knobs (all optional, all off by default):
 *  - voltage window: usable energy is 1/2 C (V^2 - Vcut^2); a realistic
 *    window wastes the below-cutoff tail, so a real part must be sized
 *    1/usableWindowFraction() larger than the flat model suggests;
 *  - ESR: a series resistance burns I^2 R during the drain, modelled as
 *    a terminal-voltage-dependent discharge efficiency;
 *  - leakage: self-discharge at a constant power while the machine sits
 *    powered off between crash and recovery;
 *  - aging/derating: capacity fade and ESR growth, either applied up
 *    front (a worn part) or mid-run (a brownout event sags the charge).
 */

#ifndef SECPB_ENERGY_CAPACITOR_HH
#define SECPB_ENERGY_CAPACITOR_HH

#include <string>

namespace secpb
{

/** Physical parameters of one energy-storage cell. */
struct CapacitorParams
{
    /** Fully-charged terminal voltage. */
    double ratedVoltage = 5.0;

    /** Regulator cutoff: energy below this voltage is unusable. */
    double cutoffVoltage = 1.0;

    /** Equivalent series resistance (ohms); 0 = lossless discharge. */
    double esrOhms = 0.0;

    /** Nominal drain current (amps) for the ESR loss term. */
    double dischargeCurrentA = 1.0;

    /** Self-discharge power (watts) while sitting idle; 0 = none. */
    double leakagePowerW = 0.0;

    /**
     * Capacity fade applied at construction, in (0, 1]: 1 = fresh part,
     * 0.8 = a cell that has lost 20% of its rated capacity to aging.
     */
    double capacitanceDerate = 1.0;

    /** Technology label (reports only). */
    std::string tech = "ideal";
};

/** Named physics presets for the bench CLI's --battery-tech flag. */
CapacitorParams capacitorPresetFor(const std::string &tech);

/**
 * Fraction of a cell's total stored energy that sits above the cutoff
 * voltage: (V^2 - Vcut^2) / V^2. The flat sizing tables divide by this
 * (and by the aging derate) to get a realistically-provisioned volume.
 */
double usableWindowFraction(const CapacitorParams &p);

/** One battery-backed energy source with explicit state of charge. */
class Capacitor
{
  public:
    /** A zero-capacity placeholder (delivers nothing). */
    Capacitor() = default;

    /**
     * Size a cell so that, fully charged, it delivers @p usable_j usable
     * joules (after the construction-time capacitanceDerate). Starts
     * fully charged. With ideal params the deliverable energy equals
     * @p usable_j exactly -- the byte-identity contract with the flat
     * budget model.
     */
    static Capacitor sizedFor(double usable_j,
                              const CapacitorParams &params = {});

    const CapacitorParams &params() const { return _params; }

    /** Usable energy above cutoff at full charge (post-derate). */
    double capacityJ() const { return _capacityJ; }

    /** Usable energy above cutoff currently stored. */
    double storedEnergyJ() const { return _storedJ; }

    /** Derived capacitance (farads) from capacity and voltage window. */
    double capacitanceF() const;

    /** Terminal voltage at the current state of charge. */
    double voltage() const;

    /**
     * Discharge efficiency at the current terminal voltage:
     * 1 - I*ESR/V, clamped to [0, 1]. Exactly 1.0 when ESR is zero.
     */
    double dischargeEfficiency() const;

    /**
     * Energy the drain circuitry can extract right now: stored energy
     * times the discharge efficiency. This is the crash-drain budget.
     */
    double deliverableEnergyJ() const;

    /**
     * Deliver @p load_j joules to the load, drawing load/efficiency from
     * storage (the ESR share is dissipated). Clamps at empty.
     * @return energy actually delivered to the load.
     */
    double deliver(double load_j);

    /** Recharge to full capacity. */
    void rechargeFull() { _storedJ = _capacityJ; }

    /** Add @p joules of charge, clamped at capacity. */
    void recharge(double joules);

    /** Recharge at @p watts for @p seconds (clamped at capacity). */
    void
    rechargeFor(double seconds, double watts)
    {
        recharge(seconds * watts);
    }

    /** Set the state of charge to @p fraction of capacity, in [0, 1]. */
    void setChargeFraction(double fraction);

    /**
     * Brownout: the supply sags and the cell retains only @p retain of
     * its stored energy (charge bleeds into the dying rails). A nonzero
     * @p reserve_j models the BBU's isolation diode protecting the
     * charge committed to the crash drain: the sag never takes the
     * deliverable energy below reserve_j (clamped to what is stored --
     * the diode cannot create charge).
     */
    void applyBrownout(double retain, double reserve_j = 0.0);

    /**
     * Age the cell mid-life: multiply capacity by @p capacity_fade
     * (clamping the charge) and ESR by @p esr_growth (>= 1).
     */
    void age(double capacity_fade, double esr_growth = 1.0);

    /** Self-discharge for @p seconds of powered-off time. */
    void leak(double seconds);

    /** One-line description for reproducer output. */
    std::string describe() const;

  private:
    CapacitorParams _params;
    double _capacityJ = 0.0;  ///< Usable energy at full charge.
    double _storedJ = 0.0;    ///< Usable energy currently stored.
};

} // namespace secpb

#endif // SECPB_ENERGY_CAPACITOR_HH
