#include "energy/capacitor.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace secpb
{

CapacitorParams
capacitorPresetFor(const std::string &tech)
{
    CapacitorParams p;
    if (tech == "ideal" || tech.empty()) {
        return p;
    }
    if (tech == "supercap") {
        // A small EDLC bank: wide voltage swing, noticeable ESR.
        p.ratedVoltage = 2.7;
        p.cutoffVoltage = 1.0;
        p.esrOhms = 0.05;
        p.dischargeCurrentA = 0.5;
        p.leakagePowerW = 1.0e-6;
        p.tech = "supercap";
        return p;
    }
    if (tech == "li-thin") {
        // Thin-film lithium: flat discharge curve, narrow usable window.
        p.ratedVoltage = 4.0;
        p.cutoffVoltage = 3.0;
        p.esrOhms = 0.02;
        p.dischargeCurrentA = 0.5;
        p.leakagePowerW = 1.0e-7;
        p.tech = "li-thin";
        return p;
    }
    fatal("unknown battery tech '%s' (want ideal|supercap|li-thin)",
          tech.c_str());
}

double
usableWindowFraction(const CapacitorParams &p)
{
    fatal_if(p.ratedVoltage <= p.cutoffVoltage,
             "capacitor rated voltage %.3f V must exceed cutoff %.3f V",
             p.ratedVoltage, p.cutoffVoltage);
    const double v2 = p.ratedVoltage * p.ratedVoltage;
    const double c2 = p.cutoffVoltage * p.cutoffVoltage;
    return (v2 - c2) / v2;
}

Capacitor
Capacitor::sizedFor(double usable_j, const CapacitorParams &params)
{
    fatal_if(usable_j < 0.0, "capacitor sized for negative energy");
    fatal_if(params.capacitanceDerate <= 0.0 ||
                 params.capacitanceDerate > 1.0,
             "capacitanceDerate %.3f out of (0, 1]",
             params.capacitanceDerate);
    usableWindowFraction(params); // validates the voltage window
    Capacitor c;
    c._params = params;
    // The derate is a fabrication/aging haircut on the same nominal
    // part: capacity (and charge) shrink, the voltage window does not.
    c._capacityJ = usable_j * params.capacitanceDerate;
    c._storedJ = c._capacityJ;
    return c;
}

double
Capacitor::capacitanceF() const
{
    const double v2 = _params.ratedVoltage * _params.ratedVoltage;
    const double c2 = _params.cutoffVoltage * _params.cutoffVoltage;
    return 2.0 * _capacityJ / (v2 - c2);
}

double
Capacitor::voltage() const
{
    if (_capacityJ <= 0.0) {
        return _params.cutoffVoltage;
    }
    const double v2 = _params.ratedVoltage * _params.ratedVoltage;
    const double c2 = _params.cutoffVoltage * _params.cutoffVoltage;
    return std::sqrt(c2 + (v2 - c2) * (_storedJ / _capacityJ));
}

double
Capacitor::dischargeEfficiency() const
{
    if (_params.esrOhms <= 0.0) {
        return 1.0;
    }
    const double v = voltage();
    if (v <= 0.0) {
        return 0.0;
    }
    const double drop = _params.dischargeCurrentA * _params.esrOhms;
    return std::clamp(1.0 - drop / v, 0.0, 1.0);
}

double
Capacitor::deliverableEnergyJ() const
{
    return _storedJ * dischargeEfficiency();
}

double
Capacitor::deliver(double load_j)
{
    if (load_j <= 0.0) {
        return 0.0;
    }
    const double eff = dischargeEfficiency();
    if (eff <= 0.0) {
        return 0.0;
    }
    const double draw = load_j / eff;
    if (draw >= _storedJ) {
        const double delivered = _storedJ * eff;
        _storedJ = 0.0;
        return delivered;
    }
    _storedJ -= draw;
    return load_j;
}

void
Capacitor::recharge(double joules)
{
    if (joules > 0.0) {
        _storedJ = std::min(_capacityJ, _storedJ + joules);
    }
}

void
Capacitor::setChargeFraction(double fraction)
{
    _storedJ = std::clamp(fraction, 0.0, 1.0) * _capacityJ;
}

void
Capacitor::applyBrownout(double retain, double reserve_j)
{
    double target = _storedJ * std::clamp(retain, 0.0, 1.0);
    if (reserve_j > 0.0 && target < _storedJ) {
        // Raise the sag floor until the deliverable energy covers the
        // protected reserve (deliverable is monotone in the stored
        // energy, so bisection converges; the reserve caps at what the
        // cell actually holds).
        auto deliverableAt = [this](double stored) {
            const double saved = _storedJ;
            _storedJ = stored;
            const double d = deliverableEnergyJ();
            _storedJ = saved;
            return d;
        };
        if (deliverableAt(_storedJ) <= reserve_j) {
            return; // Already at (or below) the reserve: no sag at all.
        }
        double lo = target, hi = _storedJ;
        if (deliverableAt(lo) < reserve_j) {
            for (int i = 0; i < 64; ++i) {
                const double mid = 0.5 * (lo + hi);
                (deliverableAt(mid) < reserve_j ? lo : hi) = mid;
            }
            target = hi;
        }
    }
    _storedJ = target;
}

void
Capacitor::age(double capacity_fade, double esr_growth)
{
    fatal_if(capacity_fade <= 0.0 || capacity_fade > 1.0,
             "capacity fade %.3f out of (0, 1]", capacity_fade);
    fatal_if(esr_growth < 1.0, "ESR growth %.3f below 1", esr_growth);
    _capacityJ *= capacity_fade;
    _storedJ = std::min(_storedJ, _capacityJ);
    _params.esrOhms *= esr_growth;
}

void
Capacitor::leak(double seconds)
{
    if (seconds > 0.0 && _params.leakagePowerW > 0.0) {
        _storedJ = std::max(0.0, _storedJ -
                                     _params.leakagePowerW * seconds);
    }
}

std::string
Capacitor::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s cap=%.4gJ stored=%.4gJ V=%.3f eff=%.4f",
                  _params.tech.c_str(), _capacityJ, _storedJ, voltage(),
                  dischargeEfficiency());
    return buf;
}

} // namespace secpb
