/**
 * @file
 * Drain-energy and battery-capacity model (paper Section V-B, Tables III,
 * V, VI).
 *
 * The battery (or supercapacitor) must provision, at worst case, the
 * energy to drain every SecPB entry and complete whatever memory-tuple
 * work the chosen scheme deferred. Worst-case assumptions (1)-(6) of the
 * paper are encoded literally: every block is dirty, every metadata cache
 * access misses, BMT update paths never overlap, MACs need computing but
 * not fetching, and XOR/increment energy is negligible.
 *
 * Energy densities: the paper quotes 1e-4 Wh (SuperCap) and 1e-2 Wh
 * (Li-thin-film) energy densities; interpreting them per cm^3 reproduces
 * Table V's volumes from Table III's per-byte costs, so that is the
 * calibration used here (documented in DESIGN.md / EXPERIMENTS.md).
 * Footprint area assumes a cubic cell: area = volume^(2/3), compared
 * against a 5.37 mm^2 client-class core.
 */

#ifndef SECPB_ENERGY_ENERGY_MODEL_HH
#define SECPB_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "energy/capacitor.hh"
#include "secpb/scheme.hh"
#include "secpb/secpb.hh"

namespace secpb
{

/** Per-byte energy costs (Table III). */
struct EnergyCosts
{
    double sramAccess = 1e-12;      ///< SRAM access, J/B.
    double movePbToPm = 11.839e-9;  ///< SecPB -> PM, J/B.
    double moveL1ToPm = 11.839e-9;  ///< L1D -> PM, J/B.
    double moveL2ToPm = 11.228e-9;  ///< L2 -> PM, J/B.
    double moveL3ToPm = 11.228e-9;  ///< L3 -> PM, J/B.
    double moveMcToPm = 11.228e-9;  ///< MC <-> PM (either direction), J/B.
    double shaPerByte = 79.29e-9;   ///< SHA-512 (BMT node / MAC), J/B.
    double aesPerByte = 30e-9;      ///< AES-192 (OTP generation), J/B.
};

/** An energy-storage technology. */
struct BatteryTech
{
    std::string name;
    double densityJPerMm3;  ///< Usable energy density, J/mm^3.
};

/** SuperCap: 1e-4 Wh/cm^3 = 3.6e-4 J/mm^3. */
inline BatteryTech
superCapTech()
{
    return {"SuperCap", 3.6e-4};
}

/** Li thin-film: 1e-2 Wh/cm^3 = 3.6e-2 J/mm^3. */
inline BatteryTech
liThinTech()
{
    return {"Li-Thin", 3.6e-2};
}

/** A battery sizing estimate. */
struct BatteryEstimate
{
    double energyJ = 0.0;
    double volumeMm3 = 0.0;
    double areaRatioToCore = 0.0;  ///< Cubic-cell footprint / core area.
};

/** Cache-hierarchy footprint for the eADR comparisons (Table I). */
struct HierarchyFootprint
{
    std::uint64_t l1Bytes = 64 * 1024;
    std::uint64_t l2Bytes = 512 * 1024;
    std::uint64_t l3Bytes = 4 * 1024 * 1024;
};

/**
 * The analytical drain-energy / battery-capacity model.
 */
class EnergyModel
{
  public:
    EnergyModel(const EnergyCosts &costs = {}, unsigned bmt_levels = 8,
                double core_area_mm2 = 5.37)
        : _costs(costs), _bmtLevels(bmt_levels), _coreAreaMm2(core_area_mm2)
    {}

    /**
     * Worst-case energy to complete the deferred ("late") tuple work for
     * one SecPB entry under @p scheme and drain it to PM.
     */
    double entryDrainEnergy(Scheme scheme) const;

    /**
     * Worst-case battery energy for a @p entries-entry SecPB running
     * @p scheme: all entries drained plus one full in-flight tuple update
     * (a crash may land mid-update).
     */
    double secPbBatteryEnergy(Scheme scheme, unsigned entries) const;

    /** Battery energy for insecure BBB (drain only). */
    double bbbBatteryEnergy(unsigned entries) const;

    /**
     * ADR provisioning for the SP baseline: the WPQ is the persistence
     * domain, and every queued block may still need its full tuple
     * completed when power fails.
     */
    double spAdrEnergy(unsigned wpq_entries) const;

    /**
     * Worst-case battery provisioning for @p scheme: dispatches to the
     * SecPB, BBB, or SP(ADR) sizing rule. This is the budget ceiling that
     * bounded-battery fault experiments scale down from.
     */
    double provisionedEnergy(Scheme scheme, unsigned secpb_entries,
                             unsigned wpq_entries) const;

    /** Battery energy for insecure eADR (flush all caches). */
    double eadrBatteryEnergy(const HierarchyFootprint &h = {}) const;

    /**
     * Battery energy for secure eADR: every cache line dirty, each needing
     * the full worst-case tuple update (assumptions (1)-(5)).
     */
    double sEadrBatteryEnergy(const HierarchyFootprint &h = {}) const;

    /** Size @p energy_j on @p tech; includes the core-area ratio. */
    BatteryEstimate size(double energy_j, const BatteryTech &tech) const;

    /**
     * Size @p energy_j on @p tech under realistic capacitor physics: the
     * cell must hold energy_j *usable* joules, so the ideal volume is
     * inflated by the voltage window (only (V^2 - Vcut^2)/V^2 of the
     * stored energy sits above the regulator cutoff) and by the end-of-
     * life capacity derate. The ideal flat sizing is the special case
     * usableWindowFraction == 1, derate == 1.
     */
    BatteryEstimate sizeWithPhysics(double energy_j,
                                    const BatteryTech &tech,
                                    const CapacitorParams &params) const;

    /**
     * Energy actually consumed by a specific post-crash drain, from the
     * work accounting the SecPB reports. Always <= the worst case the
     * battery was provisioned for.
     */
    double actualCrashEnergy(const CrashWork &work) const;

    const EnergyCosts &costs() const { return _costs; }
    unsigned bmtLevels() const { return _bmtLevels; }
    double coreAreaMm2() const { return _coreAreaMm2; }

    /** Worst-case full late-tuple work for one block (all deferred). */
    double fullLateTupleEnergy() const;

    /**
     * Bytes of SecPB entry state the battery must move out on a drain:
     * the tracked fields of Figure 5 (Dp always; O, Dc, M, C for schemes
     * that pre-compute them). NoGap's 260-byte entry is the paper's
     * Table I "Entry size".
     */
    static unsigned entryFootprintBytes(const SchemeTraits &t);

  private:
    /** Late work for one entry given which components were deferred. */
    double lateWorkEnergy(const SchemeTraits &t) const;

    EnergyCosts _costs;
    unsigned _bmtLevels;
    double _coreAreaMm2;
};

} // namespace secpb

#endif // SECPB_ENERGY_ENERGY_MODEL_HH
