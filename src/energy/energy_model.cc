#include "energy/energy_model.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

double
EnergyModel::lateWorkEnergy(const SchemeTraits &t) const
{
    const double block = static_cast<double>(BlockSize);
    double e = 0.0;

    if (!t.earlyCounter) {
        // Assumption (2): the counter block misses on-chip and must be
        // fetched from PM. The increment itself is negligible (6).
        e += block * _costs.moveMcToPm;
    }
    if (!t.earlyOtp) {
        // Assumption (5): OTPs for ciphertexts must be generated.
        e += block * _costs.aesPerByte;
    }
    if (!t.earlyBmt) {
        // Assumption (3): no path overlap, every BMT cache access misses;
        // each level fetches a node from PM and computes its hash.
        e += _bmtLevels *
             (block * _costs.moveMcToPm + block * _costs.shaPerByte);
    }
    // Assumption (6): the ciphertext XOR is a single-cycle logical
    // operation with negligible energy.
    if (!t.earlyMac) {
        // Assumption (4): MACs need computing but not fetching.
        e += block * _costs.shaPerByte;
    }
    return e;
}

double
EnergyModel::fullLateTupleEnergy() const
{
    return lateWorkEnergy(schemeTraits(Scheme::Cobcm));
}

unsigned
EnergyModel::entryFootprintBytes(const SchemeTraits &t)
{
    // Dp (64B) always; O (64B) if the OTP is pre-computed; Dc (64B) if
    // the ciphertext is; M (64B, the 512-bit MAC field) if the MAC is;
    // C (1B counter snapshot) if the counter is; the B bit is noise.
    unsigned bytes = BlockSize;
    if (t.earlyOtp)
        bytes += BlockSize;
    if (t.earlyCiphertext)
        bytes += BlockSize;
    if (t.earlyMac)
        bytes += BlockSize;
    if (t.earlyCounter)
        bytes += 1;
    return bytes;
}

double
EnergyModel::entryDrainEnergy(Scheme scheme) const
{
    const SchemeTraits t = schemeTraits(scheme);
    double e = entryFootprintBytes(t) * _costs.movePbToPm;
    if (t.secure)
        e += lateWorkEnergy(t);
    return e;
}

double
EnergyModel::secPbBatteryEnergy(Scheme scheme, unsigned entries) const
{
    // All entries drained, plus one more entry's worth as the in-flight
    // margin: a crash may land mid-acceptance, with the write and its
    // deferred metadata generation still pending (Section V-B).
    return (entries + 1) * entryDrainEnergy(scheme);
}

double
EnergyModel::bbbBatteryEnergy(unsigned entries) const
{
    return entries * static_cast<double>(BlockSize) * _costs.movePbToPm;
}

double
EnergyModel::spAdrEnergy(unsigned wpq_entries) const
{
    return wpq_entries * (static_cast<double>(BlockSize) *
                              _costs.moveMcToPm +
                          fullLateTupleEnergy());
}

double
EnergyModel::provisionedEnergy(Scheme scheme, unsigned secpb_entries,
                               unsigned wpq_entries) const
{
    if (scheme == Scheme::Sp)
        return spAdrEnergy(wpq_entries);
    if (scheme == Scheme::Eadr) {
        // eADR: the persist domain is the whole cache hierarchy, every
        // line assumed dirty with a full late tuple owed (the secure
        // eADR row of the Table V comparison).
        return sEadrBatteryEnergy();
    }
    if (schemeTraits(scheme).secure)
        return secPbBatteryEnergy(scheme, secpb_entries);
    return bbbBatteryEnergy(secpb_entries);
}

double
EnergyModel::eadrBatteryEnergy(const HierarchyFootprint &h) const
{
    const double l1_lines = static_cast<double>(h.l1Bytes) / BlockSize;
    const double l2_lines = static_cast<double>(h.l2Bytes) / BlockSize;
    const double l3_lines = static_cast<double>(h.l3Bytes) / BlockSize;
    const double block = static_cast<double>(BlockSize);
    return l1_lines * block * _costs.moveL1ToPm +
           l2_lines * block * _costs.moveL2ToPm +
           l3_lines * block * _costs.moveL3ToPm;
}

double
EnergyModel::sEadrBatteryEnergy(const HierarchyFootprint &h) const
{
    // Assumption (1): every cache line is dirty and needs its full
    // security-metadata tuple generated under the same worst-case
    // assumptions as a fully lazy SecPB entry.
    const double total_lines =
        static_cast<double>(h.l1Bytes + h.l2Bytes + h.l3Bytes) / BlockSize;
    return eadrBatteryEnergy(h) + total_lines * fullLateTupleEnergy();
}

BatteryEstimate
EnergyModel::size(double energy_j, const BatteryTech &tech) const
{
    BatteryEstimate est;
    est.energyJ = energy_j;
    est.volumeMm3 = energy_j / tech.densityJPerMm3;
    const double footprint = std::pow(est.volumeMm3, 2.0 / 3.0);
    est.areaRatioToCore = footprint / _coreAreaMm2;
    return est;
}

BatteryEstimate
EnergyModel::sizeWithPhysics(double energy_j, const BatteryTech &tech,
                             const CapacitorParams &params) const
{
    const double window = usableWindowFraction(params);
    fatal_if(window <= 0.0, "battery sizing: empty usable voltage window");
    fatal_if(params.capacitanceDerate <= 0.0 ||
                 params.capacitanceDerate > 1.0,
             "battery sizing: derate must be in (0, 1]");
    // The cell stores energy_j / window total joules so that energy_j
    // sits above the cutoff, and is built 1/derate larger so the worn
    // end-of-life part still provisions the worst case.
    BatteryEstimate est =
        size(energy_j / (window * params.capacitanceDerate), tech);
    est.energyJ = energy_j;  // Report the *usable* requirement.
    return est;
}

double
EnergyModel::actualCrashEnergy(const CrashWork &work) const
{
    const double block = static_cast<double>(BlockSize);
    double e = 0.0;
    e += work.entriesDrained * block * _costs.movePbToPm;
    e += work.counterFetches * block * _costs.moveMcToPm;
    e += work.otpsGenerated * block * _costs.aesPerByte;
    e += work.bmtLevelsWalked *
         (block * _costs.moveMcToPm + block * _costs.shaPerByte);
    e += work.macsComputed * block * _costs.shaPerByte;
    e += work.pmBlockWrites * block * _costs.moveMcToPm;
    // eADR hierarchy flush: lines move from the cache levels to PM; the
    // MC<->PM cost is the common (and cheapest) leg, keeping the actual
    // spend conservatively below the eadrBatteryEnergy() provisioning.
    e += work.cacheLinesFlushed * block * _costs.moveMcToPm;
    // bmtNodesRebuilt is deliberately NOT priced: the Triad-NVM rebuild
    // runs on mains power at recovery (see DrainLatencyModel).
    return e;
}

} // namespace secpb
