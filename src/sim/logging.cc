#include "sim/logging.hh"

#include <cstdarg>
#include <vector>

namespace secpb
{

namespace
{
bool quiet = false;
} // namespace

std::string
csprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0) {
        va_end(args);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuietLogging(bool q)
{
    quiet = q;
}

bool
quietLogging()
{
    return quiet;
}

} // namespace secpb
