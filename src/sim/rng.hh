/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Xoshiro256** (Blackman & Vigna). We avoid std::mt19937 so that traces are
 * bit-identical across standard library implementations, which keeps the
 * benchmark harness reproducible.
 */

#ifndef SECPB_SIM_RNG_HH
#define SECPB_SIM_RNG_HH

#include <cstdint>

namespace secpb
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine for
        // workload generation; bias is < 2^-64 * bound.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric draw with success probability @p p, values >= 1. */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        std::uint64_t n = 1;
        while (!chance(p) && n < (1ULL << 20))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace secpb

#endif // SECPB_SIM_RNG_HH
