/**
 * @file
 * gem5-style debug tracing.
 *
 * Components guard trace points with named flags; users enable them via
 * the SECPB_DEBUG environment variable (comma-separated list, e.g.
 * `SECPB_DEBUG=SecPb,Walker`) or programmatically. Output goes to a
 * settable sink (stderr by default) so tests can capture it.
 *
 * Hot components cache the flag lookup at construction; the DPRINTF
 * macro itself is for cold/diagnostic paths.
 */

#ifndef SECPB_SIM_DEBUG_HH
#define SECPB_SIM_DEBUG_HH

#include <functional>
#include <string>
#include <vector>

namespace secpb::debug
{

/** True if @p flag is enabled (env SECPB_DEBUG or enable()). */
bool enabled(const std::string &flag);

/**
 * Every flag a DPRINTF in the tree guards, plus the "All" wildcard --
 * what `--debug=<flags>` accepts and `--help` lists. Keep in sync when
 * adding a flag (there is no self-registration; the tree is small).
 */
const std::vector<std::string> &knownFlags();

/** Enable / disable a flag at runtime (tests, interactive tools). */
void enable(const std::string &flag);
void disable(const std::string &flag);

/** Drop all programmatic flags (env-derived ones are re-read). */
void clearAll();

/** Where trace lines go; nullptr restores the stderr default. */
using Sink = std::function<void(const std::string &line)>;
void setSink(Sink sink);

/** Emit one trace line (used by the DPRINTF macro). */
void emit(const char *flag, const std::string &msg);

} // namespace secpb::debug

/** Trace @p fmt under @p flag ("SecPb", "Walker", ...). */
#define DPRINTF(flag, ...)                                                \
    do {                                                                  \
        if (::secpb::debug::enabled(flag))                                \
            ::secpb::debug::emit(flag, ::secpb::csprintf(__VA_ARGS__));   \
    } while (0)

#endif // SECPB_SIM_DEBUG_HH
