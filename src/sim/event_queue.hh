/**
 * @file
 * Discrete-event simulation kernel.
 *
 * EventQueue keeps a time-ordered queue of callbacks. Events scheduled for
 * the same tick fire in FIFO order of scheduling, which keeps simulations
 * deterministic. The kernel is deliberately simple: every hardware model in
 * this project expresses timing by scheduling closures.
 *
 * Hot-path layout: the time order lives in a binary heap of 24-byte
 * {when, seq, slot} records, while the callbacks themselves sit in a
 * pooled slot array indexed by the heap records. Heap sift operations
 * therefore move small PODs instead of closures, and popped slots recycle
 * through a free list, so steady-state schedule/pop performs no heap
 * allocation at all (InlineCallback keeps typical captures inline too).
 */

#ifndef SECPB_SIM_EVENT_QUEUE_HH
#define SECPB_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

/** Callback type fired when an event reaches the head of the queue. */
using EventCallback = InlineCallback;

/** Hook invoked after every executed event (fault injection, probes). */
using PostEventHook = std::function<void()>;

/**
 * A time-ordered event queue; the heart of the simulator.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10, [] { ... });
 *   eq.run();             // runs until the queue drains
 * @endcode
 */
class EventQueue
{
  public:
    /** Current simulated time in core cycles. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (for progress reporting). */
    std::uint64_t numExecuted() const { return _numExecuted; }

    /**
     * Schedule @p cb to fire at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, EventCallback cb)
    {
        panic_if(when < _curTick,
                 "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_curTick));
        std::uint32_t slot;
        if (_freeSlots.empty()) {
            slot = static_cast<std::uint32_t>(_slots.size());
            _slots.push_back(std::move(cb));
        } else {
            slot = _freeSlots.back();
            _freeSlots.pop_back();
            _slots[slot] = std::move(cb);
        }
        _heap.push_back(HeapItem{when, _nextSeq++, slot});
        std::push_heap(_heap.begin(), _heap.end(), Later{});
    }

    /** Schedule @p cb to fire @p delta cycles from now. */
    void
    scheduleIn(Cycles delta, EventCallback cb)
    {
        schedule(_curTick + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /**
     * @name Execution interposition (fault injection)
     * A post-event hook observes the simulation after every executed
     * event -- the only points where model state is consistent -- and may
     * call requestStop() to interrupt run() at an arbitrary event
     * boundary (e.g. to crash the machine mid-run at a chosen cycle or
     * persist count). The stop request is sticky until clearStop().
     * @{
     */
    void setPostEventHook(PostEventHook hook) { _postHook = std::move(hook); }
    void clearPostEventHook() { _postHook = nullptr; }
    void requestStop() { _stopRequested = true; }
    void clearStop() { _stopRequested = false; }
    bool stopRequested() const { return _stopRequested; }
    /** @} */

    /** Tick of the earliest pending event; MaxTick when empty. */
    Tick
    nextTick() const
    {
        return _heap.empty() ? MaxTick : _heap.front().when;
    }

    /**
     * Execute events until the queue drains or @p limit is reached.
     *
     * With an explicit @p limit, time advances to @p limit even when the
     * queue drains first -- a caller running to a deadline observes the
     * deadline, not the tick of whatever event happened to run last. An
     * open-ended run (or one interrupted by requestStop()) leaves time at
     * the last executed event.
     *
     * @return the tick at which execution stopped.
     */
    Tick
    run(Tick limit = MaxTick)
    {
        while (!_heap.empty() && !_stopRequested) {
            if (_heap.front().when > limit) {
                _curTick = limit;
                return _curTick;
            }
            popAndExecute();
        }
        if (limit != MaxTick && !_stopRequested && _curTick < limit)
            _curTick = limit;
        return _curTick;
    }

    /** Execute exactly one event, if any. @return true if one ran. */
    bool
    step()
    {
        if (_heap.empty())
            return false;
        popAndExecute();
        return true;
    }

    /** Reset time and drop all pending events (tests only). */
    void
    reset()
    {
        _curTick = 0;
        _numExecuted = 0;
        _nextSeq = 0;
        _stopRequested = false;
        _postHook = nullptr;
        _heap.clear();
        _slots.clear();
        _freeSlots.clear();
    }

  private:
    /** Heap record: time order only; the callback lives in _slots. */
    struct HeapItem
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void
    popAndExecute()
    {
        const HeapItem top = _heap.front();
        std::pop_heap(_heap.begin(), _heap.end(), Later{});
        _heap.pop_back();
        _curTick = top.when;
        // Move the callback out and recycle the slot *before* invoking:
        // the callback may schedule (growing the pool) or reset() the
        // queue, and moved-from InlineCallback is guaranteed empty.
        EventCallback cb = std::move(_slots[top.slot]);
        _freeSlots.push_back(top.slot);
        ++_numExecuted;
        cb();
        if (_postHook)
            _postHook();
    }

    std::vector<HeapItem> _heap;
    std::vector<EventCallback> _slots;
    std::vector<std::uint32_t> _freeSlots;
    Tick _curTick = 0;
    std::uint64_t _numExecuted = 0;
    std::uint64_t _nextSeq = 0;
    PostEventHook _postHook;
    bool _stopRequested = false;
};

} // namespace secpb

#endif // SECPB_SIM_EVENT_QUEUE_HH
