/**
 * @file
 * Discrete-event simulation kernel.
 *
 * EventQueue keeps a time-ordered queue of callbacks. Events scheduled for
 * the same tick fire in FIFO order of scheduling, which keeps simulations
 * deterministic. The kernel is deliberately simple: every hardware model in
 * this project expresses timing by scheduling closures.
 */

#ifndef SECPB_SIM_EVENT_QUEUE_HH
#define SECPB_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

/** Callback type fired when an event reaches the head of the queue. */
using EventCallback = std::function<void()>;

/** Hook invoked after every executed event (fault injection, probes). */
using PostEventHook = std::function<void()>;

/**
 * A time-ordered event queue; the heart of the simulator.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10, [] { ... });
 *   eq.run();             // runs until the queue drains
 * @endcode
 */
class EventQueue
{
  public:
    /** Current simulated time in core cycles. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (for progress reporting). */
    std::uint64_t numExecuted() const { return _numExecuted; }

    /**
     * Schedule @p cb to fire at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, EventCallback cb)
    {
        panic_if(when < _curTick,
                 "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_curTick));
        _events.push(PendingEvent{when, _nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb to fire @p delta cycles from now. */
    void
    scheduleIn(Cycles delta, EventCallback cb)
    {
        schedule(_curTick + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return _events.empty(); }

    /**
     * @name Execution interposition (fault injection)
     * A post-event hook observes the simulation after every executed
     * event -- the only points where model state is consistent -- and may
     * call requestStop() to interrupt run() at an arbitrary event
     * boundary (e.g. to crash the machine mid-run at a chosen cycle or
     * persist count). The stop request is sticky until clearStop().
     * @{
     */
    void setPostEventHook(PostEventHook hook) { _postHook = std::move(hook); }
    void clearPostEventHook() { _postHook = nullptr; }
    void requestStop() { _stopRequested = true; }
    void clearStop() { _stopRequested = false; }
    bool stopRequested() const { return _stopRequested; }
    /** @} */

    /** Tick of the earliest pending event; MaxTick when empty. */
    Tick
    nextTick() const
    {
        return _events.empty() ? MaxTick : _events.top().when;
    }

    /**
     * Execute events until the queue drains or @p limit is reached.
     * @return the tick at which execution stopped.
     */
    Tick
    run(Tick limit = MaxTick)
    {
        while (!_events.empty() && !_stopRequested) {
            const PendingEvent &top = _events.top();
            if (top.when > limit) {
                _curTick = limit;
                return _curTick;
            }
            _curTick = top.when;
            EventCallback cb = std::move(const_cast<PendingEvent &>(top).cb);
            _events.pop();
            ++_numExecuted;
            cb();
            if (_postHook)
                _postHook();
        }
        return _curTick;
    }

    /** Execute exactly one event, if any. @return true if one ran. */
    bool
    step()
    {
        if (_events.empty())
            return false;
        const PendingEvent &top = _events.top();
        _curTick = top.when;
        EventCallback cb = std::move(const_cast<PendingEvent &>(top).cb);
        _events.pop();
        ++_numExecuted;
        cb();
        if (_postHook)
            _postHook();
        return true;
    }

    /** Reset time and drop all pending events (tests only). */
    void
    reset()
    {
        _curTick = 0;
        _numExecuted = 0;
        _nextSeq = 0;
        _stopRequested = false;
        _postHook = nullptr;
        while (!_events.empty())
            _events.pop();
    }

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq;
        EventCallback cb;
    };

    struct Later
    {
        bool
        operator()(const PendingEvent &a, const PendingEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<PendingEvent, std::vector<PendingEvent>, Later>
        _events;
    Tick _curTick = 0;
    std::uint64_t _numExecuted = 0;
    std::uint64_t _nextSeq = 0;
    PostEventHook _postHook;
    bool _stopRequested = false;
};

} // namespace secpb

#endif // SECPB_SIM_EVENT_QUEUE_HH
