/**
 * @file
 * Discrete-event simulation kernel.
 *
 * EventQueue keeps a time-ordered queue of callbacks. Events scheduled for
 * the same tick fire in FIFO order of scheduling, which keeps simulations
 * deterministic. The kernel is deliberately simple: every hardware model in
 * this project expresses timing by scheduling closures.
 *
 * Hot-path layout: a two-level queue. Events landing inside the near
 * window (the next kRingSize ticks -- which is nearly all of them: model
 * latencies top out around 600 cycles) go into a bucket ring, one FIFO
 * vector per tick, making schedule and pop O(1) with no sift at all.
 * Events beyond the window fall back to a binary heap of 24-byte
 * {when, seq, slot} records. Callbacks themselves sit in a pooled slot
 * array indexed by both structures, and popped slots recycle through a
 * free list, so steady-state schedule/pop performs no heap allocation at
 * all (InlineCallback keeps typical captures inline too).
 *
 * Determinism across the two levels: for any tick T, every heap-resident
 * event was scheduled while curTick <= T - kRingSize, strictly before any
 * ring insert for T (which requires curTick > T - kRingSize); scheduling
 * order is seq order, so draining the heap's T-events (themselves
 * seq-ordered by the heap tie-break) before the T-bucket's FIFO
 * reproduces the exact global (tick, seq) order of a single heap.
 */

#ifndef SECPB_SIM_EVENT_QUEUE_HH
#define SECPB_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace secpb
{

/** Callback type fired when an event reaches the head of the queue. */
using EventCallback = InlineCallback;

/** Hook invoked after every executed event (fault injection, probes). */
using PostEventHook = std::function<void()>;

/**
 * A time-ordered event queue; the heart of the simulator.
 *
 * Usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(10, [] { ... });
 *   eq.run();             // runs until the queue drains
 * @endcode
 */
class EventQueue
{
  public:
    /** Current simulated time in core cycles. */
    Tick curTick() const { return _curTick; }

    /** Number of events executed so far (for progress reporting). */
    std::uint64_t numExecuted() const { return _numExecuted; }

    /**
     * Schedule @p cb to fire at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void
    schedule(Tick when, EventCallback cb)
    {
        panic_if(when < _curTick,
                 "scheduling event in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(_curTick));
        std::uint32_t slot;
        if (_freeSlots.empty()) {
            slot = static_cast<std::uint32_t>(_slots.size());
            _slots.push_back(std::move(cb));
        } else {
            slot = _freeSlots.back();
            _freeSlots.pop_back();
            _slots[slot] = std::move(cb);
        }
        if (when - _curTick < kRingSize) {
            _ring[when & kRingMask].slots.push_back(slot);
            ++_ringCount;
            // The scan cursor may already sit past this tick (it advances
            // over buckets that were empty when last probed).
            if (when < _ringScan)
                _ringScan = when;
        } else {
            _heap.push_back(HeapItem{when, _nextSeq++, slot});
            std::push_heap(_heap.begin(), _heap.end(), Later{});
        }
    }

    /** Schedule @p cb to fire @p delta cycles from now. */
    void
    scheduleIn(Cycles delta, EventCallback cb)
    {
        schedule(_curTick + delta, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return _heap.empty() && _ringCount == 0; }

    /**
     * @name Execution interposition (fault injection)
     * A post-event hook observes the simulation after every executed
     * event -- the only points where model state is consistent -- and may
     * call requestStop() to interrupt run() at an arbitrary event
     * boundary (e.g. to crash the machine mid-run at a chosen cycle or
     * persist count). The stop request is sticky until clearStop().
     * @{
     */
    void setPostEventHook(PostEventHook hook) { _postHook = std::move(hook); }
    void clearPostEventHook() { _postHook = nullptr; }
    void requestStop() { _stopRequested = true; }
    void clearStop() { _stopRequested = false; }
    bool stopRequested() const { return _stopRequested; }
    /** @} */

    /** Tick of the earliest pending event; MaxTick when empty. */
    Tick
    nextTick() const
    {
        return empty() ? MaxTick : nextPendingTick();
    }

    /**
     * Execute events until the queue drains or @p limit is reached.
     *
     * With an explicit @p limit, time advances to @p limit even when the
     * queue drains first -- a caller running to a deadline observes the
     * deadline, not the tick of whatever event happened to run last. An
     * open-ended run (or one interrupted by requestStop()) leaves time at
     * the last executed event.
     *
     * @return the tick at which execution stopped.
     */
    Tick
    run(Tick limit = MaxTick)
    {
        while (!empty() && !_stopRequested) {
            const Tick t = nextPendingTick();
            if (t > limit) {
                _curTick = limit;
                return _curTick;
            }
            popAndExecute(t);
        }
        if (limit != MaxTick && !_stopRequested && _curTick < limit)
            _curTick = limit;
        return _curTick;
    }

    /** Execute exactly one event, if any. @return true if one ran. */
    bool
    step()
    {
        if (empty())
            return false;
        popAndExecute(nextPendingTick());
        return true;
    }

    /** Reset time and drop all pending events (tests only). */
    void
    reset()
    {
        _curTick = 0;
        _numExecuted = 0;
        _nextSeq = 0;
        _stopRequested = false;
        _postHook = nullptr;
        _heap.clear();
        _slots.clear();
        _freeSlots.clear();
        for (Bucket &b : _ring) {
            b.slots.clear();
            b.head = 0;
        }
        _ringCount = 0;
        _ringScan = 0;
    }

  private:
    /** Near-window span: events within this many ticks take the ring. */
    static constexpr std::size_t kRingSize = 1024;
    static constexpr Tick kRingMask = kRingSize - 1;

    /** One ring bucket: FIFO of slot ids for a single pending tick. */
    struct Bucket
    {
        std::vector<std::uint32_t> slots;
        std::size_t head = 0;
    };

    /** Heap record: time order only; the callback lives in _slots. */
    struct HeapItem
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct Later
    {
        bool
        operator()(const HeapItem &a, const HeapItem &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Tick of the earliest pending event; requires !empty(). Advances the
     * (mutable) ring scan cursor over empty buckets -- amortized O(1) per
     * tick of simulated time, since the cursor only moves forward except
     * when schedule() re-arms a closer tick.
     */
    Tick
    nextPendingTick() const
    {
        const Tick heap_t = _heap.empty() ? MaxTick : _heap.front().when;
        if (_ringCount == 0)
            return heap_t;
        if (_ringScan < _curTick)
            _ringScan = _curTick;
        // A non-empty bucket within the window holds exactly the tick the
        // cursor is probing: two ticks kRingSize apart can never be
        // resident together (the later one was >= kRingSize away at
        // schedule time and went to the heap).
        while (true) {
            const Bucket &b = _ring[_ringScan & kRingMask];
            if (b.head < b.slots.size())
                break;
            ++_ringScan;
        }
        return std::min(heap_t, _ringScan);
    }

    void
    popAndExecute(Tick t)
    {
        std::uint32_t slot;
        if (!_heap.empty() && _heap.front().when == t) {
            // Heap events for a tick always precede its ring events in
            // seq order (see file comment), so drain them first.
            slot = _heap.front().slot;
            std::pop_heap(_heap.begin(), _heap.end(), Later{});
            _heap.pop_back();
        } else {
            Bucket &b = _ring[t & kRingMask];
            slot = b.slots[b.head++];
            --_ringCount;
            if (b.head == b.slots.size()) {
                // Drained: recycle in place, keeping the capacity.
                b.slots.clear();
                b.head = 0;
            }
        }
        _curTick = t;
        // Move the callback out and recycle the slot *before* invoking:
        // the callback may schedule (growing the pool) or reset() the
        // queue, and moved-from InlineCallback is guaranteed empty.
        EventCallback cb = std::move(_slots[slot]);
        _freeSlots.push_back(slot);
        ++_numExecuted;
        cb();
        if (_postHook)
            _postHook();
    }

    std::vector<HeapItem> _heap;
    std::vector<EventCallback> _slots;
    std::vector<std::uint32_t> _freeSlots;
    std::array<Bucket, kRingSize> _ring;
    std::size_t _ringCount = 0;
    /** No pending ring entries at ticks below this (scan memoization). */
    mutable Tick _ringScan = 0;
    Tick _curTick = 0;
    std::uint64_t _numExecuted = 0;
    std::uint64_t _nextSeq = 0;
    PostEventHook _postHook;
    bool _stopRequested = false;
};

} // namespace secpb

#endif // SECPB_SIM_EVENT_QUEUE_HH
