#include "sim/debug.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

#include "sim/logging.hh"

namespace secpb::debug
{

namespace
{

std::set<std::string> &
flags()
{
    static std::set<std::string> set = [] {
        std::set<std::string> s;
        if (const char *env = std::getenv("SECPB_DEBUG")) {
            std::stringstream ss(env);
            std::string item;
            while (std::getline(ss, item, ','))
                if (!item.empty())
                    s.insert(item);
        }
        return s;
    }();
    return set;
}

Sink &
sink()
{
    static Sink s;
    return s;
}

} // namespace

bool
enabled(const std::string &flag)
{
    const auto &f = flags();
    return f.count(flag) != 0 || f.count("All") != 0;
}

const std::vector<std::string> &
knownFlags()
{
    static const std::vector<std::string> known = {
        "All", "Fault", "Sampler", "SecPb",
    };
    return known;
}

void
enable(const std::string &flag)
{
    flags().insert(flag);
}

void
disable(const std::string &flag)
{
    flags().erase(flag);
}

void
clearAll()
{
    flags().clear();
}

void
setSink(Sink s)
{
    sink() = std::move(s);
}

void
emit(const char *flag, const std::string &msg)
{
    const std::string line = std::string(flag) + ": " + msg;
    if (sink())
        sink()(line);
    else
        std::fprintf(stderr, "%s\n", line.c_str());
}

} // namespace secpb::debug
