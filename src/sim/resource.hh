/**
 * @file
 * Simple hardware-resource occupancy models.
 *
 * Resource models a unit that can service one request at a time (a hash
 * unit, an AES pipeline stage, a cache port). Requests queue FIFO; each
 * holds the unit for a caller-specified number of cycles and fires a
 * completion callback. BankedResource models N such units with address
 * interleaving (used for PCM banks).
 */

#ifndef SECPB_SIM_RESOURCE_HH
#define SECPB_SIM_RESOURCE_HH

#include <algorithm>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace secpb
{

/**
 * A single-server FIFO resource.
 *
 * request(duration, cb) grants the unit at max(now, freeAt), holds it for
 * @p duration cycles, then fires @p cb. Total busy time is tracked for
 * utilization statistics.
 */
class Resource
{
  public:
    Resource(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name))
    {}

    /**
     * Occupy the unit for @p duration cycles; fire @p done on completion.
     * @return the tick at which the request completes.
     */
    Tick
    request(Cycles duration, EventCallback done)
    {
        Tick start = std::max(_eq.curTick(), _freeAt);
        Tick finish = start + duration;
        _freeAt = finish;
        _busyCycles += duration;
        ++_requests;
        if (done)
            _eq.schedule(finish, std::move(done));
        return finish;
    }

    /** Tick at which the unit next becomes free. */
    Tick freeAt() const { return _freeAt; }

    /** True if a request issued now would start immediately. */
    bool idle() const { return _freeAt <= _eq.curTick(); }

    /** Total cycles this unit has been (or is scheduled to be) busy. */
    Cycles busyCycles() const { return _busyCycles; }

    /** Number of requests serviced. */
    std::uint64_t requests() const { return _requests; }

    const std::string &name() const { return _name; }

  private:
    EventQueue &_eq;
    std::string _name;
    Tick _freeAt = 0;
    Cycles _busyCycles = 0;
    std::uint64_t _requests = 0;
};

/**
 * N parallel servers selected by address interleaving (block granular).
 * Models banked memories: accesses to distinct banks overlap; accesses to
 * the same bank serialize.
 */
class BankedResource
{
  public:
    BankedResource(EventQueue &eq, std::string name, unsigned num_banks)
        : _name(std::move(name))
    {
        panic_if(num_banks == 0, "BankedResource needs >= 1 bank");
        _banks.reserve(num_banks);
        for (unsigned i = 0; i < num_banks; ++i)
            _banks.emplace_back(eq, _name + ".bank" + std::to_string(i));
    }

    /** Bank servicing @p addr. */
    Resource &
    bankFor(Addr addr)
    {
        return _banks[blockIndex(addr) % _banks.size()];
    }

    /** Occupy the bank owning @p addr for @p duration cycles. */
    Tick
    request(Addr addr, Cycles duration, EventCallback done)
    {
        return bankFor(addr).request(duration, std::move(done));
    }

    unsigned numBanks() const { return static_cast<unsigned>(_banks.size()); }

    /** Aggregate busy cycles across banks. */
    Cycles
    busyCycles() const
    {
        Cycles total = 0;
        for (const auto &b : _banks)
            total += b.busyCycles();
        return total;
    }

    std::uint64_t
    requests() const
    {
        std::uint64_t total = 0;
        for (const auto &b : _banks)
            total += b.requests();
        return total;
    }

  private:
    std::string _name;
    std::vector<Resource> _banks;
};

} // namespace secpb

#endif // SECPB_SIM_RESOURCE_HH
