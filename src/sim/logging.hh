/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic() is for internal simulator bugs (conditions that must never happen
 * regardless of user input); fatal() is for user-caused misconfiguration.
 * warn() and inform() are advisory and never stop the simulation.
 */

#ifndef SECPB_SIM_LOGGING_HH
#define SECPB_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace secpb
{

/** Printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Globally silence warn()/inform() output (used by tests and benches). */
void setQuietLogging(bool quiet);
bool quietLogging();

} // namespace secpb

/** Report an internal simulator bug and abort. */
#define panic(...) \
    ::secpb::panicImpl(__FILE__, __LINE__, ::secpb::csprintf(__VA_ARGS__))

/** Report a user-caused error (bad configuration) and exit(1). */
#define fatal(...) \
    ::secpb::fatalImpl(__FILE__, __LINE__, ::secpb::csprintf(__VA_ARGS__))

/** panic() if @p cond does not hold. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() if @p cond does not hold. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

/** Advisory warning; never stops simulation. */
#define warn(...) ::secpb::warnImpl(::secpb::csprintf(__VA_ARGS__))

/** Informational status message. */
#define inform(...) ::secpb::informImpl(::secpb::csprintf(__VA_ARGS__))

#endif // SECPB_SIM_LOGGING_HH
