/**
 * @file
 * Small-buffer-optimized callback for the event kernel.
 *
 * Every piece of timing in this simulator is a scheduled closure, so the
 * callback type is on the hottest path there is. std::function heap
 * allocates for anything beyond a couple of captured words and drags in
 * RTTI-based copy machinery the kernel never uses. InlineCallback stores
 * the common capture sets -- [this], [this, ep], [this, leaf, completion],
 * a shared_ptr plus a lambda -- inline in the pending-event slot, falls
 * back to the heap only for oversized captures, and is move-only, which
 * additionally admits move-only captures (e.g. a captured InlineCallback
 * or unique_ptr) that std::function rejects outright.
 *
 * Dispatch is one indirect call through a per-type static ops table; the
 * moved-from state is guaranteed empty, which the event pool relies on to
 * recycle slots without an explicit clear.
 */

#ifndef SECPB_SIM_CALLBACK_HH
#define SECPB_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace secpb
{

/** Move-only void() callable with inline storage for small captures. */
class InlineCallback
{
  public:
    /**
     * Inline capture budget. 48 bytes covers every closure the models
     * build today (up to a shared_ptr + two nested lambda captures);
     * larger callables transparently spill to the heap.
     */
    static constexpr std::size_t InlineBytes = 48;

    InlineCallback() noexcept = default;
    InlineCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f)
    {
        construct(std::forward<F>(f));
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback &
    operator=(F &&f)
    {
        InlineCallback tmp(std::forward<F>(f));
        reset();
        moveFrom(tmp);
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(&_buf);
    }

    /** Drop the held callable; the callback becomes empty. */
    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(&_buf);
            _ops = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct dst's storage from src's, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= InlineBytes &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    struct InlineOps
    {
        static void
        invoke(void *storage)
        {
            (*std::launder(static_cast<F *>(storage)))();
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            F *from = std::launder(static_cast<F *>(src));
            ::new (dst) F(std::move(*from));
            from->~F();
        }

        static void
        destroy(void *storage) noexcept
        {
            std::launder(static_cast<F *>(storage))->~F();
        }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    struct HeapOps
    {
        static F *&
        slot(void *storage)
        {
            return *std::launder(static_cast<F **>(storage));
        }

        static void invoke(void *storage) { (*slot(storage))(); }

        static void
        relocate(void *dst, void *src) noexcept
        {
            ::new (dst) (F *)(slot(src));
        }

        static void destroy(void *storage) noexcept { delete slot(storage); }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (&_buf) Fn(std::forward<F>(f));
            _ops = &InlineOps<Fn>::ops;
        } else {
            ::new (&_buf) (Fn *)(new Fn(std::forward<F>(f)));
            _ops = &HeapOps<Fn>::ops;
        }
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        _ops = other._ops;
        if (_ops) {
            _ops->relocate(&_buf, &other._buf);
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[InlineBytes];
    const Ops *_ops = nullptr;
};

} // namespace secpb

#endif // SECPB_SIM_CALLBACK_HH
