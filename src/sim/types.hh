/**
 * @file
 * Fundamental simulation types shared by every module.
 *
 * The simulator is cycle granular: one Tick equals one core clock cycle at
 * the configured core frequency (4 GHz by default, matching Table I of the
 * SecPB paper). Wall-clock latencies from the paper (e.g. the 55 ns PCM
 * read) are converted to Ticks through ClockInfo.
 */

#ifndef SECPB_SIM_TYPES_HH
#define SECPB_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace secpb
{

/** Simulation time, in core clock cycles. */
using Tick = std::uint64_t;

/** A duration expressed in core clock cycles. */
using Cycles = std::uint64_t;

/** Physical memory address (byte granular). */
using Addr = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick MaxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr InvalidAddr = std::numeric_limits<Addr>::max();

/** Cache block (and PM access) granularity in bytes. */
constexpr unsigned BlockSize = 64;

/** log2(BlockSize), for address arithmetic. */
constexpr unsigned BlockShift = 6;

/** Align @p addr down to its containing block. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(BlockSize - 1);
}

/** Byte offset of @p addr within its block. */
constexpr unsigned
blockOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (BlockSize - 1));
}

/** Block index of @p addr (addr divided by the block size). */
constexpr std::uint64_t
blockIndex(Addr addr)
{
    return addr >> BlockShift;
}

/**
 * Clock conversion helper.
 *
 * Latencies in the paper are given either in processor cycles (e.g. the
 * 40-cycle MAC) or in nanoseconds (PCM access). ClockInfo converts the
 * latter into Ticks.
 */
struct ClockInfo
{
    /** Core frequency in MHz (Table I: 4.00 GHz). */
    double coreFreqMhz = 4000.0;

    /** Convert a nanosecond latency into core cycles, rounding up. */
    Cycles
    nsToCycles(double ns) const
    {
        double cycles = ns * coreFreqMhz / 1000.0;
        auto whole = static_cast<Cycles>(cycles);
        return (cycles > static_cast<double>(whole)) ? whole + 1 : whole;
    }
};

} // namespace secpb

#endif // SECPB_SIM_TYPES_HH
