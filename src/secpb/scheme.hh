/**
 * @file
 * The SecPB secure-persistency scheme spectrum (paper Section IV, Table II).
 *
 * Each scheme decides which components of the memory tuple
 * (counter, OTP, BMT root, ciphertext, MAC) are produced *early* -- on the
 * critical path of a store entering the SecPB -- versus *late* -- when the
 * entry drains, or post-crash on battery power. Scheme names list the
 * components deferred to late time: e.g. BCM defers Bmt root, Ciphertext,
 * and Mac; COBCM defers everything (Counter, Otp, Bmt, Ciphertext, Mac).
 */

#ifndef SECPB_SECPB_SCHEME_HH
#define SECPB_SECPB_SCHEME_HH

#include <string>

#include "sim/logging.hh"

namespace secpb
{

/** Evaluated persistency schemes (paper Table II). */
enum class Scheme
{
    Bbb,    ///< Insecure battery-backed buffer baseline (HPCA'21).
    Sp,     ///< Strict persistency with SPoP at the MC (PLP, MICRO'20).
    SecWt,  ///< Write-through security: full tuple per store, no
            ///< once-per-dirty-block coalescing (Fig. 8 normalization).
    NoGap,  ///< Eagerly update all metadata.
    M,      ///< Defer MAC.
    Cm,     ///< Defer ciphertext, MAC.
    Bcm,    ///< Defer BMT root, ciphertext, MAC.
    Obcm,   ///< Defer OTP, BMT root, ciphertext, MAC.
    Cobcm,  ///< Defer everything; only the data write is early.
};

/** Which tuple components a scheme produces early. */
struct SchemeTraits
{
    bool secure;          ///< Any security metadata at all.
    bool earlyCounter;    ///< Counter fetched+incremented at store persist.
    bool earlyOtp;        ///< One-time pad generated at store persist.
    bool earlyBmt;        ///< BMT root updated at store persist.
    bool earlyCiphertext; ///< Ciphertext regenerated per store.
    bool earlyMac;        ///< MAC regenerated per store.
    /**
     * Apply the Section IV-A optimization: data-value-independent metadata
     * (counter, OTP, BMT root) is produced once per dirty block rather than
     * once per store. On for every scheme except the write-through
     * strawman.
     */
    bool coalesceValueIndependent;
};

/** Traits lookup for @p s. */
constexpr SchemeTraits
schemeTraits(Scheme s)
{
    switch (s) {
      case Scheme::Bbb:
        return {false, false, false, false, false, false, true};
      case Scheme::Sp:
        return {true, true, true, true, true, true, false};
      case Scheme::SecWt:
        return {true, true, true, true, true, true, false};
      case Scheme::NoGap:
        return {true, true, true, true, true, true, true};
      case Scheme::M:
        return {true, true, true, true, true, false, true};
      case Scheme::Cm:
        return {true, true, true, true, false, false, true};
      case Scheme::Bcm:
        return {true, true, true, false, false, false, true};
      case Scheme::Obcm:
        return {true, true, false, false, false, false, true};
      case Scheme::Cobcm:
        return {true, false, false, false, false, false, true};
    }
    return {false, false, false, false, false, false, true};
}

/** Human-readable scheme name (matches the paper's). */
inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Bbb:   return "bbb";
      case Scheme::Sp:    return "sp";
      case Scheme::SecWt: return "sec_wt";
      case Scheme::NoGap: return "NoGap";
      case Scheme::M:     return "M";
      case Scheme::Cm:    return "CM";
      case Scheme::Bcm:   return "BCM";
      case Scheme::Obcm:  return "OBCM";
      case Scheme::Cobcm: return "COBCM";
    }
    return "?";
}

/** Parse a scheme name (case-sensitive, as printed by schemeName). */
inline Scheme
parseScheme(const std::string &name)
{
    for (Scheme s : {Scheme::Bbb, Scheme::Sp, Scheme::SecWt, Scheme::NoGap,
                     Scheme::M, Scheme::Cm, Scheme::Bcm, Scheme::Obcm,
                     Scheme::Cobcm}) {
        if (name == schemeName(s))
            return s;
    }
    fatal("unknown scheme name '%s'", name.c_str());
}

/** All six SecPB schemes, laziest first (for sweeps). */
constexpr Scheme SecPbSchemes[] = {
    Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
    Scheme::Cm, Scheme::M, Scheme::NoGap,
};

} // namespace secpb

#endif // SECPB_SECPB_SCHEME_HH
