/**
 * @file
 * The SecPB secure-persistency scheme spectrum (paper Section IV, Table II),
 * plus the related-work scheme zoo (ROADMAP item 2).
 *
 * Each scheme decides which components of the memory tuple
 * (counter, OTP, BMT root, ciphertext, MAC) are produced *early* -- on the
 * critical path of a store entering the SecPB -- versus *late* -- when the
 * entry drains, or post-crash on battery power. Scheme names list the
 * components deferred to late time: e.g. BCM defers Bmt root, Ciphertext,
 * and Mac; COBCM defers everything (Counter, Otp, Bmt, Ciphertext, Mac).
 *
 * The zoo adds four designs from the related work as first-class schemes
 * (see src/schemes/policy.hh for the per-scheme behavior they plug in):
 *
 *  - secpm:  SecPM's counter write-through (Zuo/Hua/Xie) -- the counter
 *    cache writes through to PCM so data+counter persist atomically; the
 *    BMT stays lazy.
 *  - triad:  Triad-NVM's selective BMT persistence (Awad et al.) -- only
 *    the lowest N tree levels are persisted (knob: `triad:levels=N`);
 *    recovery rebuilds the volatile upper tree, trading recovery time
 *    against runtime/battery cost.
 *  - eadr:   the eADR-ideal baseline -- the battery flushes the *entire*
 *    cache hierarchy at crash time, so runtime is COBCM-lazy but the
 *    provisioned battery must cover the hierarchy footprint (priced via
 *    the sEADR row of the energy model).
 *  - stream: Freij/Zhou/Solihin "Streamlining Integrity Tree Updates" --
 *    NoGap-strict BMT security, but the store unblocks at pipelined walk
 *    *issue* (coalesced root updates retire in the background).
 */

#ifndef SECPB_SECPB_SCHEME_HH
#define SECPB_SECPB_SCHEME_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace secpb
{

/** Evaluated persistency schemes (paper Table II + the scheme zoo). */
enum class Scheme
{
    Bbb,    ///< Insecure battery-backed buffer baseline (HPCA'21).
    Sp,     ///< Strict persistency with SPoP at the MC (PLP, MICRO'20).
    SecWt,  ///< Write-through security: full tuple per store, no
            ///< once-per-dirty-block coalescing (Fig. 8 normalization).
    NoGap,  ///< Eagerly update all metadata.
    M,      ///< Defer MAC.
    Cm,     ///< Defer ciphertext, MAC.
    Bcm,    ///< Defer BMT root, ciphertext, MAC.
    Obcm,   ///< Defer OTP, BMT root, ciphertext, MAC.
    Cobcm,  ///< Defer everything; only the data write is early.
    Secpm,  ///< SecPM: counter write-through, data+counter atomicity.
    Triad,  ///< Triad-NVM: persist BMT levels < N, rebuild the rest.
    Eadr,   ///< eADR-ideal: battery flushes the whole cache hierarchy.
    Stream, ///< Streamlined BMT: strict tree, unblock at walk issue.
};

/** Scheme parameters carried alongside the enum (the zoo's knobs). */
struct SchemeParams
{
    /**
     * Triad-NVM only: number of lowest BMT node levels persisted at
     * drain/crash time (`triad:levels=N`). Levels >= N are rebuilt at
     * recovery. Must be >= 1 -- level 0 (the counter-block digests'
     * parents) anchors the persisted frontier.
     */
    unsigned triadLevels = 2;
};

/** Which tuple components a scheme produces early. */
struct SchemeTraits
{
    bool secure;          ///< Any security metadata at all.
    bool earlyCounter;    ///< Counter fetched+incremented at store persist.
    bool earlyOtp;        ///< One-time pad generated at store persist.
    bool earlyBmt;        ///< BMT root updated at store persist.
    bool earlyCiphertext; ///< Ciphertext regenerated per store.
    bool earlyMac;        ///< MAC regenerated per store.
    /**
     * Apply the Section IV-A optimization: data-value-independent metadata
     * (counter, OTP, BMT root) is produced once per dirty block rather than
     * once per store. On for every scheme except the write-through
     * strawman.
     */
    bool coalesceValueIndependent;
};

/** Traits lookup for @p s. */
constexpr SchemeTraits
schemeTraits(Scheme s)
{
    switch (s) {
      case Scheme::Bbb:
        return {false, false, false, false, false, false, true};
      case Scheme::Sp:
        return {true, true, true, true, true, true, false};
      case Scheme::SecWt:
        return {true, true, true, true, true, true, false};
      case Scheme::NoGap:
        return {true, true, true, true, true, true, true};
      case Scheme::M:
        return {true, true, true, true, true, false, true};
      case Scheme::Cm:
        return {true, true, true, true, false, false, true};
      case Scheme::Bcm:
        return {true, true, true, false, false, false, true};
      case Scheme::Obcm:
        return {true, true, false, false, false, false, true};
      case Scheme::Cobcm:
        return {true, false, false, false, false, false, true};
      case Scheme::Secpm:
        // Everything early except the BMT root: the write-through counter
        // persists with the data; the tree is the one lazy component.
        return {true, true, true, false, true, true, true};
      case Scheme::Triad:
        // BCM-like runtime: counter+OTP early, tree/ciphertext/MAC late.
        // The triad twist (partial tree persistence) lives in the policy.
        return {true, true, true, false, false, false, true};
      case Scheme::Eadr:
        // COBCM-lazy runtime; the battery covers the whole hierarchy.
        return {true, false, false, false, false, false, true};
      case Scheme::Stream:
        // NoGap-strict tuple, but the walk only gates at pipe issue.
        return {true, true, true, true, true, true, true};
    }
    return {false, false, false, false, false, false, true};
}

/** Canonical (lowercase) scheme name, used in CLI and JSON. */
inline const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Bbb:    return "bbb";
      case Scheme::Sp:     return "sp";
      case Scheme::SecWt:  return "sec_wt";
      case Scheme::NoGap:  return "nogap";
      case Scheme::M:      return "m";
      case Scheme::Cm:     return "cm";
      case Scheme::Bcm:    return "bcm";
      case Scheme::Obcm:   return "obcm";
      case Scheme::Cobcm:  return "cobcm";
      case Scheme::Secpm:  return "secpm";
      case Scheme::Triad:  return "triad";
      case Scheme::Eadr:   return "eadr";
      case Scheme::Stream: return "stream";
    }
    return "?";
}

/** Every scheme, for parsing and "valid names" messages. */
constexpr Scheme SchemeList[] = {
    Scheme::Bbb, Scheme::Sp, Scheme::SecWt, Scheme::NoGap, Scheme::M,
    Scheme::Cm, Scheme::Bcm, Scheme::Obcm, Scheme::Cobcm,
    Scheme::Secpm, Scheme::Triad, Scheme::Eadr, Scheme::Stream,
};

/** Comma-separated list of every canonical scheme name. */
inline std::string
allSchemeNames()
{
    std::string out;
    for (Scheme s : SchemeList) {
        if (!out.empty())
            out += ", ";
        out += schemeName(s);
    }
    return out;
}

/**
 * Parse a scheme spec: a canonical name, a legacy mixed-case spelling
 * (accepted case-insensitively with a one-time deprecation note), or a
 * parameterized form (`triad:levels=N`, stored into @p params when
 * non-null). Fatal -- listing every valid name -- on anything else.
 */
inline Scheme
parseSchemeSpec(const std::string &spec, SchemeParams *params = nullptr)
{
    const std::string::size_type colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    std::string lower = name;
    for (char &c : lower)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    Scheme parsed = Scheme::Bbb;
    bool found = false;
    for (Scheme s : SchemeList) {
        if (lower == schemeName(s)) {
            parsed = s;
            found = true;
            break;
        }
    }
    fatal_if(!found,
             "unknown scheme name '%s' (valid: %s; triad accepts "
             "'triad:levels=N')",
             spec.c_str(), allSchemeNames().c_str());

    if (name != schemeName(parsed)) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(stderr,
                         "secpb: note: scheme spelling '%s' is "
                         "deprecated; canonical names are lowercase "
                         "('%s')\n",
                         name.c_str(), schemeName(parsed));
        }
    }

    if (colon != std::string::npos) {
        const std::string tail = spec.substr(colon + 1);
        fatal_if(parsed != Scheme::Triad,
                 "scheme '%s' takes no parameters (got '%s')",
                 schemeName(parsed), spec.c_str());
        const char *prefix = "levels=";
        fatal_if(tail.rfind(prefix, 0) != 0,
                 "bad triad spec '%s' (expected 'triad:levels=N')",
                 spec.c_str());
        char *end = nullptr;
        const std::string num = tail.substr(std::string(prefix).size());
        const unsigned long levels =
            std::strtoul(num.c_str(), &end, 10);
        fatal_if(num.empty() || (end && *end != '\0') || levels < 1 ||
                     levels > 64,
                 "bad triad level count in '%s' (need 1 <= N <= 64)",
                 spec.c_str());
        if (params)
            params->triadLevels = static_cast<unsigned>(levels);
    }
    return parsed;
}

/** Parse a bare scheme name (case-insensitive; no parameters). */
inline Scheme
parseScheme(const std::string &name)
{
    return parseSchemeSpec(name, nullptr);
}

/** Display label for (scheme, params): "triad:levels=N" or the name. */
inline std::string
schemeSpecName(Scheme s, const SchemeParams &params)
{
    if (s == Scheme::Triad)
        return std::string("triad:levels=") +
               std::to_string(params.triadLevels);
    return schemeName(s);
}

/** The paper's six SecPB schemes, laziest first (for paper sweeps). */
constexpr Scheme SecPbSchemes[] = {
    Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
    Scheme::Cm, Scheme::M, Scheme::NoGap,
};

/**
 * The full secure scheme zoo, laziest first: the paper's six plus the
 * four related-work designs. This is the sweep list for the fault soak
 * and the widened-spectrum benches (soak trials map scheme = trial mod
 * std::size(SchemeZoo)).
 */
constexpr Scheme SchemeZoo[] = {
    Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
    Scheme::Cm, Scheme::M, Scheme::NoGap,
    Scheme::Secpm, Scheme::Triad, Scheme::Eadr, Scheme::Stream,
};

} // namespace secpb

#endif // SECPB_SECPB_SCHEME_HH
