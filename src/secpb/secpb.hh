/**
 * @file
 * The Secure Persist Buffer (SecPB) -- the paper's core contribution.
 *
 * SecPB is a small battery-backed buffer next to the L1D that serves as the
 * point of persistency (PoP) for stores. This class implements:
 *
 *  - the BBB-style coalescing buffer with high/low watermark draining;
 *  - the six secure-persistency schemes of Table II, which split the
 *    memory-tuple work (counter, OTP, BMT root, ciphertext, MAC) between
 *    store-persist time ("early") and drain/post-crash time ("late");
 *  - the Section IV-A optimization: data-value-independent metadata is
 *    produced once per dirty block, not once per store;
 *  - the drain engine, which completes the tuple at the MC and pushes the
 *    data, counter, and MAC blocks through the ADR WPQ;
 *  - battery-powered crash draining (functional), with an accounting of
 *    the work actually performed so the energy model's worst case can be
 *    compared against reality;
 *  - the SP baseline (PLP-style strict persistency with the SPoP at the
 *    MC) and the sec_wt write-through strawman used to normalize Fig. 8.
 *
 * Functional-eager, timing-lazy: functional effects (counter increments,
 * pads, tree updates, PM writes) are applied when the operation is
 * initiated; valid bits and timing events model when the hardware would
 * have finished, which is what gates the store-buffer unblock signal.
 */

#ifndef SECPB_SECPB_SECPB_HH
#define SECPB_SECPB_SECPB_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/cipher.hh"
#include "crypto/engine.hh"
#include "mem/flat_map.hh"
#include "mem/pm_image.hh"
#include "mem/wpq.hh"
#include "metadata/counter_store.hh"
#include "metadata/metadata_cache.hh"
#include "metadata/walker.hh"
#include "pb/adaptive.hh"
#include "pb/entry.hh"
#include "recovery/oracle.hh"
#include "secpb/coherence.hh"
#include "secpb/scheme.hh"
#include "stats/stats.hh"

namespace secpb
{

class Capacitor;
class EnergyModel;
class SchemePolicy;

/** SecPB structural configuration (Table I defaults). */
struct SecPbConfig
{
    unsigned numEntries = 32;
    /** Scheme knobs (e.g. triad:levels=N); inert for the paper's six. */
    SchemeParams params;
    Cycles accessLatency = 2;
    double highWatermark = 0.75;   ///< Drain trigger (fraction full).
    double lowWatermark = 0.50;    ///< Drain target (fraction full).
    unsigned drainWidth = 8;       ///< Concurrent drain operations.
    Cycles spTraversalCycles = 52; ///< SP only: core-to-MC traversal.
    /**
     * SP only: per-BMT-level serialization charge per persist. PLP
     * overlaps tuple updates across stores, but consecutive updates
     * share tree levels (always the root), so sustained throughput costs
     * a fraction of a hash per level.
     */
    Cycles spPerLevelCycles = 50;
    /** SP only: cost of a store coalescing into a WPQ-resident block. */
    Cycles spCoalesceCycles = 8;
};

/** Work performed by the battery after a crash (per-component counts). */
struct CrashWork
{
    std::uint64_t entriesDrained = 0;
    std::uint64_t countersIncremented = 0;
    std::uint64_t counterFetches = 0;   ///< Counter blocks missing on-chip.
    std::uint64_t otpsGenerated = 0;
    std::uint64_t bmtRootUpdates = 0;
    std::uint64_t bmtLevelsWalked = 0;
    std::uint64_t macsComputed = 0;
    std::uint64_t ciphertexts = 0;
    std::uint64_t pmBlockWrites = 0;
    std::uint64_t mdcBlockFlushes = 0;  ///< Dirty metadata-cache blocks.
    /** eADR only: cache-hierarchy lines the battery flushes to PM. */
    std::uint64_t cacheLinesFlushed = 0;
    /** Triad only: volatile upper-tree nodes recomputed at recovery
     *  (runs on mains power -- priced into the recovery window, not the
     *  battery). */
    std::uint64_t bmtNodesRebuilt = 0;

    /** @name Bounded-battery accounting (fault injection). */
    /** @{ */
    /** True if the energy budget ran out before the drain finished. */
    bool batteryExhausted = false;
    /** Energy actually consumed, priced when a budget was supplied. */
    double energySpentJ = 0.0;
    /** Resident entries completed, in drain (persist) order. */
    std::vector<Addr> drainedBlocks;
    /** In-order suffix of resident entries the battery abandoned. */
    std::vector<AbandonedResidency> abandoned;
    /** Battery-backed store-buffer stores applied / lost to the budget. */
    std::uint64_t absorbedApplied = 0;
    std::uint64_t absorbedLost = 0;
    /** @} */
};

/**
 * Energy budget for a battery-powered crash drain. The default is an
 * unbounded (ideally provisioned) battery; fault experiments pass a
 * finite budget priced by the energy model, and the drain stops -- at an
 * entry boundary, preserving the persist-order prefix -- once the next
 * entry no longer fits.
 */
struct CrashDrainBudget
{
    /** Unset = unbounded battery (formerly an infinity sentinel). */
    std::optional<double> energyJ;
    /** Pricing model; required when energyJ is set. */
    const EnergyModel *pricing = nullptr;

    bool
    bounded() const
    {
        return energyJ.has_value();
    }
};

/**
 * The secure persist buffer, its controller FSM, and the drain engine.
 */
class SecPb
{
  public:
    SecPb(EventQueue &eq, Scheme scheme, const SecPbConfig &cfg,
          const MetadataLayout &layout, const SecurityKeys &keys,
          CounterStore &counters, PersistOracle &oracle, PmImage &pm,
          CryptoEngine &crypto, BmtWalker &walker,
          MetadataCache &ctr_cache, MetadataCache &mac_cache,
          WritePendingQueue &wpq, StatGroup &parent);

    /** Out-of-line: _policy is an incomplete type here. */
    ~SecPb();

    /** The pluggable per-scheme behavior (src/schemes/policy.hh). */
    const SchemePolicy &policy() const { return *_policy; }

    /**
     * Offer the head store of the store buffer to the SecPB.
     *
     * @param addr 8-byte-aligned store address.
     * @param value the 64-bit store value.
     * @param unblocked fired when the buffer can accept the next store
     *        (i.e. when this store's early tuple subset is complete).
     * @return false if the buffer has no room (or, for SP, the WPQ is
     *         full); the caller should notifyOnSpace() and retry.
     */
    bool tryAcceptStore(Addr addr, std::uint64_t value,
                        EventCallback unblocked,
                        std::uint32_t asid = 0);

    /** Register a one-shot callback fired when room frees up. */
    void notifyOnSpace(EventCallback cb);

    /** Begin draining every entry (clean shutdown); @p done on empty. */
    void drainAll(EventCallback done);

    /**
     * Battery-powered crash drain: functionally complete and persist every
     * resident entry, in persist (allocation) order. Simulated time does
     * not advance -- the battery works while the clock is dead.
     *
     * With a bounded @p budget the drain stops at the first entry whose
     * completion no longer fits: the completed entries form an in-order
     * *prefix* of the persist order and the abandoned suffix is recorded
     * so the recovery verifier can check prefix consistency. Under a
     * bounded budget, battery-backed store-buffer stores (newest in the
     * persist order) are applied strictly after every resident entry,
     * rather than coalesced into them.
     *
     * @param absorbed_stores stores still in a battery-backed store
     *        buffer at crash time (Section IV-C(b)): the battery applies
     *        them, in program order, before draining.
     * @return accounting of the work performed.
     */
    CrashWork crashDrainAll(
        const std::vector<std::pair<Addr, std::uint64_t>>
            &absorbed_stores = {},
        const CrashDrainBudget &budget = {});

    /** Application-crash handling policies (paper Section III-B). */
    enum class AppCrashPolicy
    {
        DrainAll,      ///< Drain every entry (the paper's choice: no
                       ///< ASID tags, but less coalescing for others).
        DrainProcess,  ///< Drain only the crashed process's entries
                       ///< (requires ASID-tagged entries).
    };

    /**
     * Handle an application crash for process @p asid under @p policy.
     * Unlike a system crash, the machine keeps running: drained state is
     * persisted functionally and the entries are freed. With DrainAll
     * the ASID is ignored.
     * @return accounting of the work performed.
     */
    CrashWork applicationCrash(std::uint32_t asid, AppCrashPolicy policy);

    /**
     * Predict (without side effects) the work a crash drain right now
     * would perform: every resident entry completed plus the dirty
     * metadata-cache flush. Priced by the energy model, this is the
     * battery headroom probe the epoch sampler exposes.
     */
    CrashWork predictCrashDrainWork() const;

    std::size_t occupancy() const { return _index.size(); }
    bool empty() const { return _index.empty(); }
    Scheme scheme() const { return _scheme; }
    const SecPbConfig &config() const { return _cfg; }

    /**
     * @name Multi-core coherence (paper Section IV-C(c))
     * Each core has its own SecPB; a page directory at the MC ensures a
     * page's entries (and any metadata inside them) live in at most one
     * of them. Admission is gated: a store to a page this core does not
     * own is rejected like a full buffer, and the epoch-barrier engine
     * migrates the page's entries -- carrying their value-independent
     * metadata so the receiving core does not redo counter/OTP/BMT work.
     * A remote read forces the owner to flush the page's entries.
     * @{
     */

    /** Gate store admission on page ownership (epoch engine wiring). */
    void attachGate(CoherenceGate *gate) { _gate = gate; }

    /**
     * Remove the entry for @p addr so it can migrate to another core.
     * Fails (nullopt) while the entry is draining or has early ops in
     * flight -- the requester retries at a later barrier.
     */
    std::optional<PbEntry> extractForMigration(Addr addr);

    /**
     * Install a migrated entry. The caller must have ensured a free
     * slot. The entry keeps its fields and valid bits; it gets a fresh
     * local allocation sequence (drain order is per-buffer).
     */
    void injectMigrated(const PbEntry &entry);

    /**
     * A remote core read @p addr: flush the local entry to PM (timed,
     * through the normal drain machinery) while the datum is forwarded.
     * @return true if an entry was found and its drain started.
     */
    bool flushForRemoteRead(Addr addr);

    /** Free entry slots available for migrated injections. */
    std::size_t freeEntries() const { return _freeList.size(); }

    /** Resident entry addresses in @p page, sorted (canonical order). */
    std::vector<Addr> entriesForPage(std::uint64_t page) const;

    /** Every resident entry address, sorted (replication invariants). */
    std::vector<Addr> residentAddrs() const;

    /**
     * True when every resident entry in @p page is extractable (not
     * draining, no early ops in flight) and no SP tuple update for the
     * page is pending -- the condition under which the page's durable
     * state can move wholesale to another core.
     */
    bool pageQuiescent(std::uint64_t page) const;

    /** Re-fire the store buffer's space-waiter retries (the epoch engine
     *  schedules this in the slice queue after granting ownership). */
    void kickSpaceWaiters() { wakeSpaceWaiters(); }
    /** @} */

    /**
     * High/low watermark entry counts derived from the config fractions.
     * Always strictly ordered (low < high) even when a tiny buffer makes
     * both fractions derive to the same entry count -- the constructor
     * clamps the low watermark so the drain engine can actually drain.
     */
    unsigned highWatermarkEntries() const { return _highWm; }
    unsigned lowWatermarkEntries() const { return _lowWm; }

    /**
     * @name Adaptive drain policy (pb/adaptive.hh)
     * Couple the drain engine to a live battery: the priced
     * predictCrashDrainWork() probe senses the energy a crash right now
     * would need; the policy tightens the *effective* watermarks to the
     * occupancy the battery can still cover and gates new allocations so
     * the prediction never outgrows deliverableEnergyJ(). The SP
     * baseline is priced too: its crash work is the WPQ-resident queue
     * (one PM block write per pending entry), so a battery sized for SP
     * covers the ADR domain it actually depends on.
     * @{
     */

    /** Attach the sensing (battery + pricing) and policy knobs. */
    void attachBatteryMonitor(const Capacitor *battery,
                              const EnergyModel *pricing,
                              const AdaptiveDrainConfig &cfg);

    /** Priced predictCrashDrainWork(), 0 without an attached monitor. */
    double predictedDrainEnergyJ() const;

    /** Committed crash-drain obligation a brownout must not bleed below:
     *  the prediction plus the gate margin (one liveness-floor entry and
     *  one in-flight regeneration -- the allocation the empty-buffer
     *  liveness rule can always admit even on a dead cell). This is the
     *  BBU's protected reserve (SecPbSystem::applyBrownout). */
    double crashReserveEnergyJ() const;

    /** Price of the worst-case entry this scheme can host (cached). */
    double worstEntryEnergyJ() const { return _worstEntryJ; }

    /** Live occupancy bound; numEntries when the policy is off. */
    unsigned adaptiveOccupancyBoundNow() const;

    /** Watermarks after battery modulation (== static when off). */
    unsigned effectiveHighWatermarkEntries() const;
    unsigned effectiveLowWatermarkEntries() const;
    /** @} */

  private:
    /**
     * Write-through degradation: while the battery cannot cover the
     * committed crash obligation (prediction + gate margin), write dirty
     * counter/MAC cache blocks back to PCM under wall power so the
     * mandatory crash-time MDC flush shrinks. Without this, dirt left
     * behind by drained entries -- which outlives the residency the gate
     * priced -- would grow the crash floor past a sagged cell one
     * liveness-floor admission at a time. No-op when the policy is off.
     */
    void shedMetadataDirt();

    /** Allocate a free entry for @p addr; returns nullptr if full. */
    PbEntry *allocate(Addr addr);

    /** Entry for @p addr or nullptr. */
    PbEntry *find(Addr addr);

    /** Launch the early (store-persist-time) tuple ops for a fresh entry. */
    void launchEarlyOps(PbEntry &e, Tick base, EventCallback unblocked);

    /** Per-store early value-dependent work on a coalescing hit. */
    void launchHitOps(PbEntry &e, Tick base, EventCallback unblocked);

    /** sec_wt strawman: redo the full tuple for every coalescing store. */
    void launchSecWtRegen(PbEntry &e, Tick base);

    /** Functionally persist one SP tuple from the oracle plaintext. */
    void persistSpTuple(Addr block_addr, const BlockCounter &ctr);

    /** SP baseline: full tuple update at the MC, per store. */
    bool acceptStoreSp(Addr addr, std::uint64_t value,
                       EventCallback unblocked);

    /** Functionally complete + persist one entry (crash-drain helper). */
    void completeEntryFunctionally(PbEntry &e, CrashWork &work);

    /**
     * Predict (without side effects) the work completing @p e would add,
     * so a bounded battery can price the entry before committing to it.
     */
    CrashWork predictEntryWork(const PbEntry &e) const;

    /** Functional counter increment + page re-encryption on overflow. */
    BlockCounter incrementCounter(Addr addr);

    /**
     * Counter-cache update dispatched on the policy: lazy write-back for
     * the paper's schemes, write-through to PCM for SecPM.
     */
    Cycles counterWriteAccess(Addr addr);

    /**
     * Triad-NVM drain cost: write the lowest @p levels node levels of
     * @p addr's BMT path through the node cache to PCM.
     */
    void persistBmtPathPrefix(Addr addr, unsigned levels);

    /** Re-encrypt a page after a minor-counter overflow. */
    void reencryptPage(std::uint64_t page_idx, const CounterBlock &old_cb);

    /** Refresh an entry's value-dependent fields from its plaintext. */
    void refreshCiphertext(PbEntry &e);
    void refreshMac(PbEntry &e);

    /** True when the adaptive policy must refuse a new allocation. */
    bool batteryGateBlocksAllocation() const;

    /** Kick the drain engine if the high watermark is reached. */
    void maybeStartDrain();

    /** Drain the oldest drainable entry. */
    void drainNext();

    /** Complete the tuple for @p e at the MC, then persist it. */
    void startDrainOf(PbEntry &e);

    /** Push data + counter + MAC blocks of @p e through the WPQ. */
    void finalizeDrain(std::uint64_t entry_idx);

    /** Free a drained entry and wake space waiters. */
    void releaseEntry(PbEntry &e);

    /** Fire and clear all registered space waiters. */
    void wakeSpaceWaiters();

    EventQueue &_eq;
    Scheme _scheme;
    SchemeTraits _traits;
    std::unique_ptr<SchemePolicy> _policy;
    SecPbConfig _cfg;
    const MetadataLayout &_layout;
    SecurityKeys _keys;
    CounterStore &_counters;
    PersistOracle &_oracle;
    PmImage &_pm;
    CryptoEngine &_crypto;
    BmtWalker &_walker;
    MetadataCache &_ctrCache;
    MetadataCache &_macCache;
    WritePendingQueue &_wpq;

    std::vector<PbEntry> _entries;
    FlatMap<Addr, std::uint64_t> _index;  ///< addr -> entry idx.
    std::vector<std::uint64_t> _freeList;
    std::uint64_t _allocSeq = 0;

    unsigned _highWm;
    unsigned _lowWm;

    /** @name Adaptive drain policy state (inert unless attached). */
    /** @{ */
    const Capacitor *_battery = nullptr;
    const EnergyModel *_pricing = nullptr;
    AdaptiveDrainConfig _adaptive;
    double _worstEntryJ = 0.0;   ///< Priced worst-case entry completion.
    double _gateMarginJ = 0.0;   ///< Headroom an admission must leave.
    /** @} */

    unsigned _drainsActive = 0;
    bool _drainAllMode = false;
    EventCallback _drainAllDone;

    std::vector<EventCallback> _spaceWaiters;

    /** Cached at construction: tracing under the "SecPb" debug flag. */
    bool _dbg = false;

    /** Admission gate (null when single-core: every store is allowed). */
    CoherenceGate *_gate = nullptr;

    /**
     * Tracker for the (single) in-flight store acceptance. The store
     * buffer issues one store at a time and waits for the unblock signal,
     * so a single slot suffices.
     */
    struct AcceptTracker
    {
        unsigned pending = 0;
        Tick start = 0;
        EventCallback cb;
    };
    AcceptTracker _accept;

    /**
     * SP baseline: blocks with an in-flight tuple update headed for the
     * WPQ. Later stores to the same block coalesce into the pending
     * entry (the WPQ is the persistence domain, so they persist on
     * arrival); the tuple is generated from the final plaintext when the
     * update completes. On a crash the battery completes every pending
     * tuple -- covered by the in-flight provisioning margin.
     */
    FlatMap<Addr, BlockCounter> _spPending;

    /**
     * Begin tracking one early op for the in-flight acceptance.
     * @param gates_unblock false for operations that proceed in the
     *        background without delaying the store-buffer unblock signal
     *        (e.g. OBCM's counter fetch, which the paper overlaps -- the
     *        unblock only waits for the two SecPB accesses).
     */
    void opStarted(PbEntry *e, bool gates_unblock = true);

    /** Complete one early op; fires the unblock when all gating ops are
     *  done. The @p gates_unblock flag must match the opStarted call. */
    void opFinished(PbEntry *e, bool gates_unblock = true);

    StatGroup _stats;

  public:
    Scalar statPersists;        ///< Stores accepted (PPTI numerator).
    Scalar statAllocs;          ///< New entry allocations.
    Scalar statCoalescedHits;   ///< Stores coalesced into resident entries.
    Scalar statFullRejects;     ///< Accept attempts rejected (buffer full).
    Scalar statDrainedEntries;  ///< Entries drained during execution.
    Scalar statPageReencrypts;  ///< Minor-counter-overflow re-encryptions.
    Average statNwpe;           ///< Writes per entry residency (NWPE).
    Average statUnblockLatency; ///< Store-accept to unblock (cycles).
    Average statOccupancy;      ///< Occupancy sampled at each accept.
    Scalar statBatteryStalls;   ///< Allocations gated by battery headroom.
    Scalar statMdcShedWrites;   ///< Dirty metadata cleaned under battery
                                ///< pressure (write-through degradation).
};

} // namespace secpb

#endif // SECPB_SECPB_SECPB_HH
