/**
 * @file
 * Multi-core SecPB coherence (paper Section IV-C) -- functional model.
 *
 * With one SecPB per core, two kinds of state must never be replicated:
 *
 *  - security metadata: normally memory-side (no replication possible),
 *    but eager schemes keep counters/MACs inside SecPB entries. A
 *    directory in the MC tracks which core's SecPB may hold metadata for
 *    a block; a miss in another core *migrates* the entry rather than
 *    copying it.
 *  - data blocks: a remote read sends the datum from the owner and
 *    triggers a flush of the owner's SecPB entry to PM (read case); a
 *    remote write migrates the SecPB entry to the writer (write case).
 *    Migration moves the data-value-independent metadata with the entry,
 *    so the receiving core does not redo counter/OTP/BMT work.
 *
 * The paper describes but does not evaluate this protocol (the timing
 * study is single-core, Table I); accordingly this is a functional unit
 * with its own invariant checks and tests: at most one SecPB holds a
 * block, the directory always matches reality, and flush-on-remote-read
 * persists the latest value.
 */

#ifndef SECPB_SECPB_COHERENCE_HH
#define SECPB_SECPB_COHERENCE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Core identifier. */
using CoreId = unsigned;

/** Sentinel: no SecPB holds the block. */
constexpr CoreId NoOwner = ~0u;

/**
 * A minimal per-core SecPB occupancy view used by the directory. The
 * full SecPb class models the single-core timing path; this companion
 * tracks which (core, block) pairs exist across cores and enforces the
 * no-replication invariant.
 */
class SecPbDirectory
{
  public:
    SecPbDirectory(unsigned num_cores, StatGroup &parent)
        : _numCores(num_cores),
          _stats("secpb_directory", &parent),
          statMigrations(_stats, "migrations",
                         "entries migrated between SecPBs"),
          statRemoteReadFlushes(_stats, "remote_read_flushes",
                                "entries flushed by remote reads"),
          statLocalHits(_stats, "local_hits",
                        "accesses that hit the local SecPB")
    {
        fatal_if(num_cores == 0, "directory needs >= 1 core");
    }

    unsigned numCores() const { return _numCores; }

    /** Which core's SecPB holds @p addr (NoOwner if none). */
    CoreId
    owner(Addr addr) const
    {
        auto it = _owner.find(blockAlign(addr));
        return it != _owner.end() ? it->second : NoOwner;
    }

    /**
     * Core @p core writes @p addr.
     *
     * @return the action the hardware performs:
     *   - LocalHit: entry already in this core's SecPB;
     *   - Allocate: no SecPB holds it; allocate locally;
     *   - Migrate: another SecPB holds it; the entry (with its
     *     value-independent metadata) moves here.
     */
    enum class WriteAction
    {
        LocalHit,
        Allocate,
        Migrate,
    };

    WriteAction
    write(CoreId core, Addr addr)
    {
        checkCore(core);
        const Addr block = blockAlign(addr);
        const CoreId cur = owner(block);
        if (cur == core) {
            ++statLocalHits;
            return WriteAction::LocalHit;
        }
        if (cur == NoOwner) {
            _owner[block] = core;
            return WriteAction::Allocate;
        }
        // Remote write: migrate the entry; the directory is updated so
        // the block is never replicated across SecPBs.
        _owner[block] = core;
        ++statMigrations;
        return WriteAction::Migrate;
    }

    /**
     * Core @p core reads @p addr.
     *
     * A remote read forces the owner to flush the entry to PM (and the
     * datum is forwarded); the block then leaves every SecPB -- it is in
     * shared state in the caches.
     *
     * @return true if a remote SecPB flush was triggered.
     */
    bool
    read(CoreId core, Addr addr)
    {
        checkCore(core);
        const Addr block = blockAlign(addr);
        const CoreId cur = owner(block);
        if (cur == NoOwner || cur == core) {
            if (cur == core)
                ++statLocalHits;
            return false;
        }
        _owner.erase(block);
        ++statRemoteReadFlushes;
        return true;
    }

    /** The owner's entry drained (watermark/crash): block leaves SecPBs. */
    void
    drained(CoreId core, Addr addr)
    {
        const Addr block = blockAlign(addr);
        auto it = _owner.find(block);
        panic_if(it == _owner.end() || it->second != core,
                 "drain from a core that does not own the block");
        _owner.erase(it);
    }

    /** Blocks currently owned by @p core. */
    std::vector<Addr>
    blocksOwnedBy(CoreId core) const
    {
        std::vector<Addr> out;
        for (const auto &kv : _owner)
            if (kv.second == core)
                out.push_back(kv.first);
        return out;
    }

    /** Invariant: every block has at most one owner (holds by
     *  construction; exposed for property tests over random traces). */
    bool
    invariantSingleOwner() const
    {
        for (const auto &kv : _owner)
            if (kv.second >= _numCores)
                return false;
        return true;
    }

    std::size_t numTracked() const { return _owner.size(); }

  private:
    void
    checkCore(CoreId core) const
    {
        panic_if(core >= _numCores, "core id %u out of range", core);
    }

    unsigned _numCores;
    std::unordered_map<Addr, CoreId> _owner;
    StatGroup _stats;

  public:
    Scalar statMigrations;
    Scalar statRemoteReadFlushes;
    Scalar statLocalHits;
};

} // namespace secpb

#endif // SECPB_SECPB_COHERENCE_HH
