/**
 * @file
 * Multi-core SecPB coherence (paper Section IV-C) -- page directory and
 * per-core admission gates for the sharded epoch-barrier engine.
 *
 * With one SecPB per core, two kinds of state must never be replicated:
 *
 *  - security metadata: normally memory-side (no replication possible),
 *    but eager schemes keep counters/MACs inside SecPB entries. The
 *    directory tracks which core may hold metadata for a page; a miss in
 *    another core *migrates* the entries rather than copying them.
 *  - data blocks: a remote read sends the datum from the owner and
 *    triggers a flush of the owner's SecPB entries to PM (read case); a
 *    remote write migrates the SecPB entries to the writer (write case).
 *    Migration moves the data-value-independent metadata with the
 *    entries, so the receiving core does not redo counter/OTP/BMT work.
 *
 * Tracking is page-granular because that is the security-metadata
 * granule: one split-counter block and one BMT leaf cover a 4 KB page,
 * so ownership of a page is exactly the right to mutate that page's
 * counter block and leaf.
 *
 * Concurrency contract (this is what makes the sharded engine both safe
 * and deterministic):
 *
 *  - during an epoch, the owner map is READ-ONLY; every shard thread may
 *    call PageDirectory::owner() concurrently;
 *  - a CoherenceGate belongs to one core and is touched only by that
 *    core's slice thread during an epoch (allows() files requests into
 *    per-gate storage);
 *  - all mutation (ownership transfer, stop marks, request retirement)
 *    happens at epoch barriers, on one thread, in canonical
 *    (requestTick, coreId, perGateSeq) order.
 */

#ifndef SECPB_SECPB_COHERENCE_HH
#define SECPB_SECPB_COHERENCE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/counters.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Core identifier. */
using CoreId = unsigned;

/** Sentinel: no SecPB holds the page. */
constexpr CoreId NoOwner = ~0u;

/** Page index of a data address (counter-block / BMT-leaf granule). */
inline std::uint64_t
coherencePage(Addr addr)
{
    return addr / PageSize;
}

/**
 * One denied store admission, filed by a CoherenceGate for its core.
 * Barriers grant requests in (tick, core, seq) order; tick is the slice
 * time of the *first* denial for the page, seq the per-gate filing
 * order -- both are pure functions of the simulated run, never of shard
 * scheduling.
 */
struct PageRequest
{
    std::uint64_t page = 0;
    Tick tick = 0;
    std::uint64_t seq = 0;
};

/**
 * Which core may write each page (owner) and which core's durable state
 * (PM image, counter store, BMT leaf, persist oracle) holds the page
 * (residence). Ownership moves on write misses and clears on remote
 * reads; residence is sticky -- it moves only when ownership is granted
 * to a different core, so at any quiescent point exactly one slice can
 * verify the page end to end.
 */
class PageDirectory
{
  public:
    PageDirectory(unsigned num_cores, StatGroup &parent)
        : _numCores(num_cores),
          _stats("secpb_directory", &parent),
          statMigrations(_stats, "migrations",
                         "page ownership transfers between SecPBs"),
          statRemoteReadFlushes(_stats, "remote_read_flushes",
                                "pages flushed by remote reads"),
          statFirstTouches(_stats, "first_touches",
                           "pages claimed unowned (no transfer needed)")
    {
        fatal_if(num_cores == 0, "directory needs >= 1 core");
    }

    unsigned numCores() const { return _numCores; }

    /** Which core's SecPB may write the page containing @p addr. */
    CoreId
    owner(Addr addr) const
    {
        return ownerOfPage(coherencePage(addr));
    }

    CoreId
    ownerOfPage(std::uint64_t page) const
    {
        auto it = _owner.find(page);
        return it != _owner.end() ? it->second : NoOwner;
    }

    /** Which core's durable state holds the page (NoOwner = untouched). */
    CoreId
    residenceOfPage(std::uint64_t page) const
    {
        auto it = _residence.find(page);
        return it != _residence.end() ? it->second : NoOwner;
    }

    CoreId
    residence(Addr addr) const
    {
        return residenceOfPage(coherencePage(addr));
    }

    /** @name Barrier-only mutation (serial context). */
    /** @{ */
    void
    setOwner(std::uint64_t page, CoreId core)
    {
        checkCore(core);
        _owner[page] = core;
    }

    void clearOwner(std::uint64_t page) { _owner.erase(page); }

    void
    setResidence(std::uint64_t page, CoreId core)
    {
        checkCore(core);
        _residence[page] = core;
    }
    /** @} */

    /** Pages currently owned by @p core, sorted (canonical order). */
    std::vector<std::uint64_t>
    pagesOwnedBy(CoreId core) const
    {
        std::vector<std::uint64_t> out;
        for (const auto &kv : _owner)
            if (kv.second == core)
                out.push_back(kv.first);
        std::sort(out.begin(), out.end());
        return out;
    }

    /** Invariant: every tracked page has an in-range owner/residence. */
    bool
    invariantSingleOwner() const
    {
        for (const auto &kv : _owner)
            if (kv.second >= _numCores)
                return false;
        for (const auto &kv : _residence)
            if (kv.second >= _numCores)
                return false;
        return true;
    }

    std::size_t numTracked() const { return _owner.size(); }

  private:
    void
    checkCore(CoreId core) const
    {
        panic_if(core >= _numCores, "core id %u out of range", core);
    }

    unsigned _numCores;
    std::unordered_map<std::uint64_t, CoreId> _owner;
    std::unordered_map<std::uint64_t, CoreId> _residence;
    StatGroup _stats;

  public:
    Scalar statMigrations;
    Scalar statRemoteReadFlushes;
    Scalar statFirstTouches;
};

/**
 * Per-core store-admission gate. SecPb consults it at the very top of
 * tryAcceptStore(): a store to a page this core does not own (or that a
 * pending transfer has stop-marked) is rejected exactly like a full
 * persist buffer -- the store buffer's existing retry machinery waits
 * for space, and the epoch engine kicks the waiters once the barrier
 * has granted ownership.
 */
class CoherenceGate
{
  public:
    CoherenceGate(PageDirectory &dir, CoreId core)
        : _dir(dir), _core(core)
    {}

    CoreId core() const { return _core; }

    /**
     * May this core accept a store to @p addr right now? On denial the
     * page is filed as a pending request (deduplicated; the first
     * denial's tick orders it at the barrier).
     */
    bool
    allows(Addr addr, Tick now)
    {
        const std::uint64_t page = coherencePage(addr);
        if (_dir.ownerOfPage(page) == _core && !_stopMarks.count(page))
            return true;
        if (_requested.insert(page).second)
            _requests.push_back(PageRequest{page, now, _nextSeq++});
        return false;
    }

    /** @name Barrier-side interface (serial context). */
    /** @{ */
    const std::vector<PageRequest> &pending() const { return _requests; }

    /** Retire a granted request (keeps the others, in filing order). */
    void
    retireRequest(std::uint64_t page)
    {
        _requested.erase(page);
        for (std::size_t i = 0; i < _requests.size(); ++i) {
            if (_requests[i].page == page) {
                _requests.erase(_requests.begin() + i);
                return;
            }
        }
    }

    void markStop(std::uint64_t page) { _stopMarks.insert(page); }
    void clearStop(std::uint64_t page) { _stopMarks.erase(page); }
    bool stopMarked(std::uint64_t page) const
    {
        return _stopMarks.count(page) != 0;
    }
    /** @} */

  private:
    PageDirectory &_dir;
    CoreId _core;

    /** Pages with a filed, un-granted request (dedup set). */
    std::unordered_set<std::uint64_t> _requested;
    std::vector<PageRequest> _requests;
    std::uint64_t _nextSeq = 0;

    /** Owned pages quiescing for a pending transfer: reject new stores. */
    std::unordered_set<std::uint64_t> _stopMarks;
};

} // namespace secpb

#endif // SECPB_SECPB_COHERENCE_HH
