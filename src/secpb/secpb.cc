#include "secpb/secpb.hh"

#include <algorithm>
#include <optional>

#include "energy/energy_model.hh"
#include "obs/trace.hh"
#include "schemes/policy.hh"
#include "sim/debug.hh"

namespace secpb
{

SecPb::SecPb(EventQueue &eq, Scheme scheme, const SecPbConfig &cfg,
             const MetadataLayout &layout, const SecurityKeys &keys,
             CounterStore &counters, PersistOracle &oracle, PmImage &pm,
             CryptoEngine &crypto, BmtWalker &walker,
             MetadataCache &ctr_cache, MetadataCache &mac_cache,
             WritePendingQueue &wpq, StatGroup &parent)
    : _eq(eq), _scheme(scheme), _traits(schemeTraits(scheme)),
      _policy(makeSchemePolicy(scheme, cfg.params)), _cfg(cfg),
      _layout(layout), _keys(keys), _counters(counters), _oracle(oracle),
      _pm(pm), _crypto(crypto), _walker(walker), _ctrCache(ctr_cache),
      _macCache(mac_cache), _wpq(wpq),
      _entries(cfg.numEntries),
      _highWm(std::max<unsigned>(
          1, static_cast<unsigned>(cfg.numEntries * cfg.highWatermark))),
      _lowWm(static_cast<unsigned>(cfg.numEntries * cfg.lowWatermark)),
      _stats("secpb", &parent),
      statPersists(_stats, "persists", "stores accepted by the SecPB"),
      statAllocs(_stats, "allocs", "new SecPB entry allocations"),
      statCoalescedHits(_stats, "coalesced_hits",
                        "stores coalesced into resident entries"),
      statFullRejects(_stats, "full_rejects",
                      "accepts rejected because the buffer was full"),
      statDrainedEntries(_stats, "drained_entries",
                         "entries drained during execution"),
      statPageReencrypts(_stats, "page_reencrypts",
                         "page re-encryptions from minor-counter overflow"),
      statNwpe(_stats, "nwpe", "writes per entry residency (NWPE)"),
      statUnblockLatency(_stats, "unblock_latency",
                         "store accept to unblock signal (cycles)"),
      statOccupancy(_stats, "occupancy", "occupancy sampled at accepts"),
      statBatteryStalls(_stats, "battery_stalls",
                        "allocations gated by battery headroom"),
      statMdcShedWrites(_stats, "mdc_shed_writes",
                        "dirty metadata written through under battery "
                        "pressure")
{
    fatal_if(cfg.numEntries == 0, "SecPB needs at least one entry");
    fatal_if(cfg.lowWatermark >= cfg.highWatermark,
             "SecPB low watermark must be below the high watermark");
    fatal_if(cfg.highWatermark <= 0.0 || cfg.highWatermark > 1.0,
             "SecPB high watermark fraction must be in (0, 1]");
    fatal_if(cfg.lowWatermark < 0.0,
             "SecPB low watermark fraction must be non-negative");
    // For tiny buffers the watermark *fractions* can derive to the same
    // entry count (e.g. numEntries=2 with 0.75/0.50 gives 1/1), which
    // would stall the drain engine the moment it starts. The watermarks
    // must also be strictly ordered in entries: clamp the low watermark
    // below the high one (_highWm >= 1, so _lowWm >= 0 always works).
    if (_lowWm >= _highWm)
        _lowWm = _highWm - 1;
    fatal_if(_lowWm >= _highWm,
             "SecPB derived watermarks degenerate (low %u >= high %u)",
             _lowWm, _highWm);
    _index.reserve(cfg.numEntries);
    _freeList.reserve(cfg.numEntries);
    if (_policy->wpqIsPersistDomain())
        _spPending.reserve(64);
    for (unsigned i = 0; i < cfg.numEntries; ++i)
        _freeList.push_back(cfg.numEntries - 1 - i);
    _dbg = debug::enabled("SecPb");
}

SecPb::~SecPb() = default;

Cycles
SecPb::counterWriteAccess(Addr addr)
{
    if (_policy->counterWriteThrough())
        return _ctrCache.writeThroughAccess(_layout.counterAddr(addr));
    return _ctrCache.writeAccess(_layout.counterAddr(addr));
}

void
SecPb::persistBmtPathPrefix(Addr addr, unsigned levels)
{
    std::vector<std::uint64_t> path;
    _walker.tree().pathIndices(_layout.pageIndex(addr), path);
    MetadataCache &nodes = _walker.nodeCache();
    for (unsigned l = 0; l < levels && l < path.size(); ++l)
        nodes.writeThroughAccess(_layout.bmtNodeAddr(l, path[l]));
}

PbEntry *
SecPb::find(Addr addr)
{
    const std::uint64_t *idx = _index.find(blockAlign(addr));
    return idx ? &_entries[*idx] : nullptr;
}

PbEntry *
SecPb::allocate(Addr addr)
{
    if (_freeList.empty())
        return nullptr;
    const std::uint64_t idx = _freeList.back();
    _freeList.pop_back();
    PbEntry &e = _entries[idx];
    e.clear();
    e.valid = true;
    e.addr = blockAlign(addr);
    e.allocSeq = ++_allocSeq;
    _index.insert(e.addr, idx);
    return &e;
}

void
SecPb::opStarted(PbEntry *e, bool gates_unblock)
{
    if (gates_unblock)
        ++_accept.pending;
    if (e)
        ++e->pendingEarlyOps;
}

void
SecPb::opFinished(PbEntry *e, bool gates_unblock)
{
    if (e) {
        panic_if(e->pendingEarlyOps == 0, "early-op underflow");
        --e->pendingEarlyOps;
    }
    if (!gates_unblock) {
        maybeStartDrain();
        return;
    }
    panic_if(_accept.pending == 0, "accept-op underflow");
    if (--_accept.pending == 0) {
        statUnblockLatency.sample(
            static_cast<double>(_eq.curTick() - _accept.start));
        TRACE_SPAN("secpb", "accept", _accept.start, _eq.curTick());
        EventCallback cb = std::move(_accept.cb);
        _accept.cb = nullptr;
        if (cb)
            cb();
    }
    maybeStartDrain();
}

void
SecPb::refreshCiphertext(PbEntry &e)
{
    e.ciphertext = encryptBlock(e.plaintext, e.otp);
    e.vCt = true;
}

void
SecPb::refreshMac(PbEntry &e)
{
    e.mac = computeMac(_keys, e.addr, e.ciphertext, e.counter);
    e.vMac = true;
}

BlockCounter
SecPb::incrementCounter(Addr addr)
{
    CounterIncrement r = _counters.increment(addr);
    if (r.overflowed) {
        ++statPageReencrypts;
        if (_dbg)
            DPRINTF("SecPb", "minor overflow -> re-encrypt page %llu",
                    static_cast<unsigned long long>(
                        _layout.pageIndex(addr)));
        reencryptPage(_layout.pageIndex(addr), r.oldBlock);
    }
    return r.counter;
}

void
SecPb::reencryptPage(std::uint64_t page_idx, const CounterBlock &old_cb)
{
    // Copy, not reference: the counter store is an open-addressing table
    // now, so a held reference dies with the store's next mutation. The
    // loop below doesn't touch counters today, but a 64-block walk that
    // calls back into crypto and PM is exactly where that assumption
    // would rot silently.
    const CounterBlock nb = _counters.block(page_idx);
    const Addr page_base = page_idx * PageSize;

    // The whole page regenerates in one burst: OTP/MAC pricing goes
    // through a coalesced request train per unit (identical per-block
    // completion ticks, spans, and stats as per-call issue).
    CryptoEngine::RegenBurst burst(_crypto);

    for (unsigned b = 0; b < BlocksPerPage; ++b) {
        const Addr addr = page_base + b * BlockSize;
        if (PbEntry *e = find(addr)) {
            // Resident block: retarget its counter snapshot and regenerate
            // any value-dependent fields it already produced.
            e->counter = nb.counterFor(b);
            if (e->vOtp) {
                e->otp = generatePad(_keys, addr, e->counter);
                burst.otp();
            }
            if (e->vCt)
                refreshCiphertext(*e);
            if (e->vMac) {
                refreshMac(*e);
                burst.mac();
            }
        } else if (_pm.hasData(addr)) {
            // Persisted, non-resident block: transcrypt in place.
            const BlockData old_pad =
                generatePad(_keys, addr, old_cb.counterFor(b));
            const BlockData pt = decryptBlock(_pm.readData(addr), old_pad);
            const BlockCounter nc = nb.counterFor(b);
            const BlockData new_pad = generatePad(_keys, addr, nc);
            const BlockData ct = encryptBlock(pt, new_pad);
            _pm.writeData(addr, ct);
            _pm.writeMac(addr, computeMac(_keys, addr, ct, nc));
            burst.otp();
            burst.mac();
        }
    }
    burst.commit();

    // Persist the fresh counter block and fold it into the BMT.
    _pm.writeCounterBlock(page_idx, nb);
    _walker.update(page_base, _walker.tree().leafDigest(nb));
}

bool
SecPb::tryAcceptStore(Addr addr, std::uint64_t value,
                      EventCallback unblocked, std::uint32_t asid)
{
    // Coherence (Section IV-C(c)): the gate rejects stores to pages this
    // core does not own, exactly like a full buffer -- the store buffer
    // waits for space, and the epoch engine kicks the waiters once the
    // barrier has migrated the page's entries here. Checked before the
    // SP dispatch so the SPoP-at-the-MC baseline is gated too.
    if (_gate && !_gate->allows(addr, _eq.curTick())) {
        ++statFullRejects;
        TRACE_INSTANT_P("secpb", "gate_reject", _eq.curTick(), asid);
        return false;
    }

    if (_policy->wpqIsPersistDomain())
        return acceptStoreSp(addr, value, std::move(unblocked));

    PbEntry *e = find(addr);
    if (e && e->draining) {
        // The entry is mid-drain; a fresh residency must wait for the
        // drain to free the slot. Treat as full.
        ++statFullRejects;
        TRACE_INSTANT_P("secpb", "pb_full", _eq.curTick(), asid);
        return false;
    }

    if (!e && _freeList.empty()) {
        ++statFullRejects;
        TRACE_INSTANT_P("secpb", "pb_full", _eq.curTick(), asid);
        maybeStartDrain();
        return false;
    }

    // Adaptive drain policy: admitting a new residency must leave the
    // battery able to cover the priced crash prediction plus one
    // worst-case entry and one in-flight regeneration (the gate margin).
    // An empty buffer always admits -- a liveness floor of one entry --
    // otherwise a dead-enough capacitor would wedge the machine instead
    // of degrading it to write-through behavior.
    // Shed metadata dirt first: an allocation the gate is about to
    // price deserves a floor as small as wall power can make it, and
    // the liveness-floor admission below must not ride on a floor the
    // battery cannot cover.
    if (!e)
        shedMetadataDirt();
    if (!e && batteryGateBlocksAllocation()) {
        ++statBatteryStalls;
        ++statFullRejects;
        TRACE_INSTANT_P("secpb", "battery_stall", _eq.curTick(), asid);
        maybeStartDrain();
        return false;
    }

    panic_if(_accept.pending != 0,
             "store offered while a previous acceptance is in flight");
    _accept.start = _eq.curTick();
    _accept.cb = std::move(unblocked);

    ++statPersists;
    statOccupancy.sample(static_cast<double>(_index.size()));

    const Tick base = _eq.curTick() + _cfg.accessLatency;

    if (e) {
        ++statCoalescedHits;
        ++e->numWrites;
        TRACE_INSTANT_P("secpb", "coalesce", _eq.curTick(), e->asid);
        if (_dbg)
            DPRINTF("SecPb", "coalesce %#llx (writes=%llu) @%llu",
                    static_cast<unsigned long long>(e->addr),
                    static_cast<unsigned long long>(e->numWrites),
                    static_cast<unsigned long long>(_eq.curTick()));
        // PoP: the store persists the moment the entry's plaintext is
        // updated.
        setBlockWord(e->plaintext, blockOffset(addr) / 8, value);
        _oracle.applyStore(addr, value);
        launchHitOps(*e, base, nullptr);
    } else {
        e = allocate(addr);
        ++statAllocs;
        TRACE_INSTANT_P("secpb", "alloc", _eq.curTick(), asid);
        if (_dbg)
            DPRINTF("SecPb", "alloc %#llx occupancy=%zu @%llu",
                    static_cast<unsigned long long>(e->addr),
                    _index.size(),
                    static_cast<unsigned long long>(_eq.curTick()));
        e->asid = asid;
        e->numWrites = 1;
        e->plaintext = _oracle.blockContent(addr);
        setBlockWord(e->plaintext, blockOffset(addr) / 8, value);
        e->vData = true;
        _oracle.applyStore(addr, value);
        launchEarlyOps(*e, base, nullptr);
        maybeStartDrain();
    }
    return true;
}

void
SecPb::launchEarlyOps(PbEntry &e, Tick base, EventCallback /*unused*/)
{
    PbEntry *ep = &e;

    // The buffer write itself (access latency).
    opStarted(ep);
    _eq.schedule(base, [this, ep] { opFinished(ep); });

    if (!_traits.secure)
        return;

    // Counter: fetch from the counter cache (miss -> PCM) and increment.
    // When nothing downstream is produced early (OBCM), the fetch runs in
    // the background: the unblock only waits for a second SecPB access
    // that checks the counter valid bit (paper Section VI-B).
    Tick t_ctr = base;
    if (_traits.earlyCounter) {
        const bool gates = _traits.earlyOtp || _traits.earlyBmt;
        const Cycles d_ctr =
            counterWriteAccess(e.addr) +
            _crypto.latencies().counterInc;
        e.counter = incrementCounter(e.addr);
        e.ctrIncremented = true;
        t_ctr = base + d_ctr;
        opStarted(ep, gates);
        _eq.schedule(t_ctr, [this, ep, gates] {
            ep->vCtr = true;
            opFinished(ep, gates);
        });
        if (!gates) {
            // The valid-bit check costs one more SecPB access.
            opStarted(ep);
            _eq.schedule(base + _cfg.accessLatency,
                         [this, ep] { opFinished(ep); });
        }
    }

    // OTP (depends on the counter), then ciphertext, then MAC.
    if (_traits.earlyOtp) {
        opStarted(ep);
        _eq.schedule(t_ctr, [this, ep] {
            _crypto.generateOtp([this, ep] {
                ep->otp = generatePad(_keys, ep->addr, ep->counter);
                ep->vOtp = true;
                if (_traits.earlyCiphertext) {
                    opStarted(ep);
                    _eq.scheduleIn(_crypto.generateCiphertext(),
                                   [this, ep] {
                        refreshCiphertext(*ep);
                        if (_traits.earlyMac) {
                            opStarted(ep);
                            _crypto.generateMac([this, ep] {
                                refreshMac(*ep);
                                _macCache.writeAccess(
                                    _layout.macAddr(ep->addr));
                                opFinished(ep);
                            });
                        }
                        opFinished(ep);
                    });
                }
                opFinished(ep);
            });
        });
    }

    // BMT root update (depends on the counter; parallel with the OTP).
    if (_traits.earlyBmt) {
        opStarted(ep);
        _eq.schedule(t_ctr, [this, ep] {
            const std::uint64_t page = _layout.pageIndex(ep->addr);
            const Digest d =
                _walker.tree().leafDigest(_counters.block(page));
            if (_policy->streamlinedBmtIssue()) {
                // Streamlined updates: the store only waits for the
                // pipelined walker to *accept* the walk; the coalesced
                // root update retires in the background (the battery
                // provisioning covers the in-flight window, exactly as
                // it does for the drain engine's deferred walks).
                const BmtWalker::UpdateTiming t =
                    _walker.updateTimed(ep->addr, d);
                ep->vBmt = true;
                _eq.schedule(std::max(t.issue, _eq.curTick()),
                             [this, ep] { opFinished(ep); });
            } else {
                _walker.update(ep->addr, d, [this, ep] {
                    ep->vBmt = true;
                    opFinished(ep);
                });
            }
        });
    }
}

void
SecPb::launchHitOps(PbEntry &e, Tick base, EventCallback /*unused*/)
{
    PbEntry *ep = &e;

    // The coalescing write itself.
    opStarted(ep);
    _eq.schedule(base, [this, ep] { opFinished(ep); });

    if (!_traits.secure)
        return;

    if (!_traits.coalesceValueIndependent) {
        // sec_wt strawman: every store redoes the whole tuple.
        e.vCtr = e.vOtp = e.vBmt = false;
        e.vCt = e.vMac = false;
        e.ctrIncremented = false;
        launchSecWtRegen(e, base);
        return;
    }

    // Value-dependent metadata must reflect the new plaintext: invalidate
    // stale ciphertext/MAC immediately; eager schemes regenerate them now,
    // lazy schemes leave them for drain time.
    e.vCt = false;
    e.vMac = false;

    if (_traits.earlyCiphertext) {
        opStarted(ep);
        _eq.schedule(base + _crypto.generateCiphertext(), [this, ep] {
            refreshCiphertext(*ep);
            if (_traits.earlyMac) {
                opStarted(ep);
                _crypto.generateMac([this, ep] {
                    refreshMac(*ep);
                    _macCache.writeAccess(_layout.macAddr(ep->addr));
                    opFinished(ep);
                });
            }
            opFinished(ep);
        });
    }
}

void
SecPb::launchSecWtRegen(PbEntry &e, Tick base)
{
    // Write-through security: redo counter, OTP, BMT, ciphertext, MAC for
    // this store, with no coalescing of value-independent work.
    PbEntry *ep = &e;
    const Cycles d_ctr =
        _ctrCache.writeAccess(_layout.counterAddr(e.addr)) +
        _crypto.latencies().counterInc;
    e.counter = incrementCounter(e.addr);
    e.ctrIncremented = true;
    const Tick t_ctr = base + d_ctr;

    opStarted(ep);
    _eq.schedule(t_ctr, [this, ep] {
        ep->vCtr = true;
        opFinished(ep);
    });

    opStarted(ep);
    _eq.schedule(t_ctr, [this, ep] {
        _crypto.generateOtp([this, ep] {
            ep->otp = generatePad(_keys, ep->addr, ep->counter);
            ep->vOtp = true;
            opStarted(ep);
            _eq.scheduleIn(_crypto.generateCiphertext(), [this, ep] {
                refreshCiphertext(*ep);
                opStarted(ep);
                _crypto.generateMac([this, ep] {
                    refreshMac(*ep);
                    _macCache.writeAccess(_layout.macAddr(ep->addr));
                    opFinished(ep);
                });
                opFinished(ep);
            });
            opFinished(ep);
        });
    });

    opStarted(ep);
    _eq.schedule(t_ctr, [this, ep] {
        const std::uint64_t page = _layout.pageIndex(ep->addr);
        const Digest d = _walker.tree().leafDigest(_counters.block(page));
        _walker.update(ep->addr, d, [this, ep] {
            ep->vBmt = true;
            opFinished(ep);
        });
    });
}

bool
SecPb::acceptStoreSp(Addr addr, std::uint64_t value,
                     EventCallback unblocked)
{
    const Addr block_addr = blockAlign(addr);

    panic_if(_accept.pending != 0,
             "store offered while a previous acceptance is in flight");

    // Coalescing window: a store to a block whose tuple update is still
    // in flight persists on arrival (the target WPQ slot is already
    // reserved in the ADR domain); the pending tuple picks up the value.
    if (_spPending.contains(block_addr)) {
        _accept.start = _eq.curTick();
        _accept.cb = std::move(unblocked);
        ++statPersists;
        ++statCoalescedHits;
        _oracle.applyStore(addr, value);
        opStarted(nullptr);
        _eq.scheduleIn(_cfg.spCoalesceCycles,
                       [this] { opFinished(nullptr); });
        return true;
    }

    if (_wpq.full()) {
        ++statFullRejects;
        return false;
    }

    _accept.start = _eq.curTick();
    _accept.cb = std::move(unblocked);

    ++statPersists;
    ++statAllocs;

    // Traverse the hierarchy to the MC, then fetch and bump the counter.
    const Cycles d_ctr =
        _ctrCache.writeAccess(_layout.counterAddr(block_addr)) +
        _crypto.latencies().counterInc;
    const BlockCounter ctr = incrementCounter(block_addr);
    const Tick t_ctr = _eq.curTick() + _cfg.spTraversalCycles + d_ctr;

    _oracle.applyStore(addr, value);
    _spPending.insert(block_addr, ctr);

    // Shared finalization state for the parallel chains.
    struct SpState
    {
        unsigned pending = 0;
        Addr blockAddr;
        BlockCounter ctr;
        bool pushedData = false;
    };
    auto st = std::make_shared<SpState>();
    st->blockAddr = block_addr;
    st->ctr = ctr;

    // Persist the data block through the WPQ (metadata lands dirty in the
    // MDCs); retried if the WPQ is momentarily full.
    auto persist_tuple =
        [this, st](auto &&self) -> void {
        if (!st->pushedData) {
            if (!_wpq.push(st->blockAddr)) {
                _wpq.notifyOnSpace([self] { self(self); });
                return;
            }
            st->pushedData = true;
            _macCache.writeAccess(_layout.macAddr(st->blockAddr));
        }
        // The tuple is generated from the final (coalesced) plaintext.
        persistSpTuple(st->blockAddr, st->ctr);
        _spPending.erase(st->blockAddr);
    };

    auto finish_one = [st, persist_tuple] {
        if (--st->pending > 0)
            return;
        // Full tuple produced: persist through the WPQ. Under strict
        // persistency the store only completes once the tuple is durable.
        persist_tuple(persist_tuple);
    };

    // The store buffer is released once the persist pipeline has
    // absorbed this store: after the MC traversal and counter access,
    // when the walker can take the walk, plus the per-level
    // serialization charge (shared tree levels across updates).
    opStarted(nullptr);
    const Tick pipe_free = std::max(t_ctr, _walker.pipeReadyAt());
    const Tick unblock_at =
        pipe_free + _walker.effectiveLevels() * _cfg.spPerLevelCycles;
    _eq.schedule(unblock_at, [this] { opFinished(nullptr); });

    // Chain 1: OTP -> ciphertext -> MAC.
    st->pending = 2;
    _eq.schedule(t_ctr, [this, st, finish_one] {
        _crypto.generateOtp([this, st, finish_one] {
            _eq.scheduleIn(_crypto.generateCiphertext(),
                           [this, st, finish_one] {
                _crypto.generateMac([this, st, finish_one]
                                    { finish_one(); });
            });
        });
    });

    // Chain 2: BMT leaf-to-root update (pipelined/merged in the walker).
    _eq.schedule(t_ctr, [this, st, finish_one] {
        const std::uint64_t page = _layout.pageIndex(st->blockAddr);
        const Digest d = _walker.tree().leafDigest(_counters.block(page));
        _walker.update(st->blockAddr, d,
                       [finish_one] { finish_one(); });
    });

    return true;
}

void
SecPb::persistSpTuple(Addr block_addr, const BlockCounter &ctr)
{
    const BlockData pt = _oracle.blockContent(block_addr);
    const BlockData pad = generatePad(_keys, block_addr, ctr);
    const BlockData ct = encryptBlock(pt, pad);
    _crypto.generateCiphertext();
    const std::uint64_t page = _layout.pageIndex(block_addr);
    _pm.writeData(block_addr, ct);
    _pm.writeCounterBlock(page, _counters.block(page));
    _pm.writeMac(block_addr, computeMac(_keys, block_addr, ct, ctr));
}

void
SecPb::notifyOnSpace(EventCallback cb)
{
    _spaceWaiters.push_back(std::move(cb));
}

void
SecPb::wakeSpaceWaiters()
{
    if (_spaceWaiters.empty())
        return;
    std::vector<EventCallback> waiters;
    waiters.swap(_spaceWaiters);
    for (auto &w : waiters)
        w();
}

void
SecPb::attachBatteryMonitor(const Capacitor *battery,
                            const EnergyModel *pricing,
                            const AdaptiveDrainConfig &cfg)
{
    if (!battery || !pricing || !cfg.enabled) {
        _battery = nullptr;
        _pricing = nullptr;
        _adaptive = AdaptiveDrainConfig{};
        _worstEntryJ = _gateMarginJ = 0.0;
        return;
    }
    _battery = battery;
    _pricing = pricing;
    _adaptive = cfg;

    // Worst-case completion of one entry under this scheme: the policy
    // knows which lazy fields can be missing, how deep a crash-time BMT
    // walk goes, and (for SP) that the unit of crash work is a
    // WPQ-resident block write instead of an entry.
    const CrashWork w =
        _policy->worstEntryWork(_walker.tree().numLevels());
    _worstEntryJ = pricing->actualCrashEnergy(w);

    // Gate margin: the marginEntries reserve plus one in-flight
    // ciphertext+MAC regeneration (the store buffer issues one store at
    // a time, so at most one regeneration is pending at any instant).
    // SP has no crash-time regeneration -- its value work happens on
    // mains power before the WPQ ever admits the store.
    CrashWork transient;
    if (!_policy->wpqIsPersistDomain()) {
        transient.ciphertexts = 1;
        transient.macsComputed = 1;
    }
    _gateMarginJ =
        double(std::max(1u, _adaptive.marginEntries)) * _worstEntryJ +
        pricing->actualCrashEnergy(transient);
}

double
SecPb::predictedDrainEnergyJ() const
{
    if (!_pricing)
        return 0.0;
    return _pricing->actualCrashEnergy(predictCrashDrainWork());
}

double
SecPb::crashReserveEnergyJ() const
{
    if (!_pricing)
        return 0.0;
    // The committed obligation a brownout must not bleed below: every
    // resident entry plus the mandatory metadata-cache flush (both in
    // the prediction), plus the gate margin -- one worst-case entry the
    // empty-buffer liveness rule can admit even on a dead cell, and one
    // value-dependent regeneration that may be in flight when the sag
    // hits. Reserving the margin keeps the brownout floor consistent
    // with what batteryGateBlocksAllocation() lets through.
    return predictedDrainEnergyJ() + _gateMarginJ;
}

void
SecPb::shedMetadataDirt()
{
    if (!_adaptive.enabled || !_traits.secure)
        return;
    const double safety = std::max(_adaptive.safetyFactor, 1.0);
    const double budget = _battery->deliverableEnergyJ() / safety;
    // Resident entries cannot be shed from here (the gate and the
    // effective watermarks bound those); once the caches are clean the
    // loop stops making progress and exits, leaving the gate to reject.
    while (predictedDrainEnergyJ() + _gateMarginJ > budget) {
        const std::size_t cleaned =
            _ctrCache.cleanDirty(4) + _macCache.cleanDirty(4);
        if (cleaned == 0)
            break;
        statMdcShedWrites += static_cast<double>(cleaned);
    }
}

bool
SecPb::batteryGateBlocksAllocation() const
{
    if (!_adaptive.enabled)
        return false;
    if (_index.empty())
        return false;  // liveness floor: one entry may always allocate
    const double safety = std::max(_adaptive.safetyFactor, 1.0);
    return predictedDrainEnergyJ() + _gateMarginJ >
           _battery->deliverableEnergyJ() / safety;
}

unsigned
SecPb::adaptiveOccupancyBoundNow() const
{
    if (!_adaptive.enabled)
        return _cfg.numEntries;
    // Fixed floor: the mandatory metadata-cache flush at its current
    // dirtiness, plus the in-flight regeneration reserve. Sharing the
    // gate's margin keeps the two halves consistent: whenever the gate
    // rejects, occupancy already exceeds this bound, so the (tightened)
    // high watermark has drains running and space waiters will wake.
    CrashWork floor_work;
    if (_traits.secure) {
        floor_work.mdcBlockFlushes = _ctrCache.dirtyBlocks().size() +
                                     _macCache.dirtyBlocks().size();
        floor_work.pmBlockWrites += floor_work.mdcBlockFlushes;
        floor_work.cacheLinesFlushed = _policy->crashCacheFlushLines();
    }
    CrashWork transient;
    transient.ciphertexts = 1;
    transient.macsComputed = 1;
    const double fixed_floor = _pricing->actualCrashEnergy(floor_work) +
                               _pricing->actualCrashEnergy(transient);
    AdaptiveDrainConfig cfg = _adaptive;
    cfg.marginEntries = std::max(1u, _adaptive.marginEntries);
    return adaptiveOccupancyBound(_battery->deliverableEnergyJ(),
                                  fixed_floor, _worstEntryJ,
                                  _cfg.numEntries, cfg);
}

unsigned
SecPb::effectiveHighWatermarkEntries() const
{
    if (!_adaptive.enabled)
        return _highWm;
    // Never below one: occupancy above the bound must trigger drains.
    return std::min(_highWm,
                    std::max(1u, adaptiveOccupancyBoundNow()));
}

unsigned
SecPb::effectiveLowWatermarkEntries() const
{
    const unsigned high = effectiveHighWatermarkEntries();
    return std::min(_lowWm, high - 1);
}

void
SecPb::maybeStartDrain()
{
    const unsigned high_wm = effectiveHighWatermarkEntries();
    const unsigned low_wm = effectiveLowWatermarkEntries();
    const bool over_wm = _index.size() >= high_wm;
    if (!over_wm && !_drainAllMode)
        return;
    // Start up to drainWidth concurrent drains, but never so many that
    // completing them would undershoot the low watermark (coalescing
    // opportunity would be wasted). drainAll mode ignores the floor.
    while (_drainsActive < _cfg.drainWidth) {
        const std::size_t would_remain = _index.size() - _drainsActive;
        if (!_drainAllMode && would_remain <= low_wm)
            break;
        if (_drainAllMode && would_remain == 0)
            break;
        const unsigned before = _drainsActive;
        drainNext();
        if (_drainsActive == before)
            break;  // no eligible entry right now
    }
}

void
SecPb::drainNext()
{
    // Oldest drainable entry: valid, not already draining, no early ops
    // still in flight.
    PbEntry *victim = nullptr;
    _index.forEach([&](const Addr &, const std::uint64_t &idx) {
        PbEntry &e = _entries[idx];
        if (e.draining || e.pendingEarlyOps != 0)
            return;
        if (!victim || e.allocSeq < victim->allocSeq)
            victim = &e;
    });
    if (!victim)
        return;
    ++_drainsActive;
    victim->draining = true;
    startDrainOf(*victim);
}

void
SecPb::startDrainOf(PbEntry &e)
{
    PbEntry *ep = &e;
    const std::uint64_t *idxp = _index.find(e.addr);
    panic_if(!idxp, "draining an entry the index does not know");
    const std::uint64_t idx = *idxp;
    e.drainStart = _eq.curTick();

    if (!_traits.secure) {
        // Insecure BBB baseline: the "tuple" is just the data block, which
        // drains as-is (no encryption).
        e.ciphertext = e.plaintext;
        e.ctrIncremented = true;
        e.vCtr = e.vOtp = e.vCt = e.vMac = e.vBmt = true;
        e.pushedCtr = true;
        e.pushedMac = true;
        e.drainPending = 1;
        _eq.schedule(_eq.curTick(), [this, idx, ep] {
            if (--ep->drainPending == 0)
                finalizeDrain(idx);
        });
        return;
    }

    // Complete the missing tuple components at the MC ("late" work).
    Tick t_ctr = _eq.curTick();
    if (!e.ctrIncremented) {
        const Cycles d_ctr =
            counterWriteAccess(e.addr) +
            _crypto.latencies().counterInc;
        e.counter = incrementCounter(e.addr);
        e.ctrIncremented = true;
        t_ctr += d_ctr;
    }
    e.vCtr = true;

    e.drainPending = 2;
    auto branch_done = [this, idx, ep] {
        if (--ep->drainPending == 0)
            finalizeDrain(idx);
    };

    // One fused kick event runs both late-work branches. They used to be
    // two consecutive same-tick events nothing could schedule between
    // (back-to-back schedule calls, adjacent sequence numbers), so fusing
    // them halves drain-path event traffic while keeping pop order -- and
    // therefore every downstream tick, span, and stat -- bit-identical.
    _eq.schedule(t_ctr, [this, ep, branch_done] {
        // Branch A: OTP -> ciphertext -> MAC (skipping already-valid
        // parts).
        auto after_otp = [this, ep, branch_done] {
            auto after_ct = [this, ep, branch_done] {
                if (!ep->vMac) {
                    _crypto.generateMac([this, ep, branch_done] {
                        refreshMac(*ep);
                        _macCache.writeAccess(_layout.macAddr(ep->addr));
                        branch_done();
                    });
                } else {
                    branch_done();
                }
            };
            if (!ep->vCt) {
                _eq.scheduleIn(_crypto.generateCiphertext(),
                               [this, ep, after_ct] {
                    refreshCiphertext(*ep);
                    after_ct();
                });
            } else {
                after_ct();
            }
        };
        if (!ep->vOtp) {
            _crypto.generateOtp([this, ep, after_otp] {
                ep->otp = generatePad(_keys, ep->addr, ep->counter);
                ep->vOtp = true;
                after_otp();
            });
        } else {
            after_otp();
        }

        // Branch B: BMT root update, if this residency hasn't done it.
        // The drain does not wait for the walk to *retire* -- the battery
        // provisioning includes one in-flight tuple update for exactly
        // that window -- but it does wait for the pipelined walker to
        // *accept* the walk, so walker throughput backpressures draining.
        // Merged same-leaf updates are accepted instantly.
        if (!ep->vBmt) {
            const std::uint64_t page = _layout.pageIndex(ep->addr);
            const Digest d =
                _walker.tree().leafDigest(_counters.block(page));
            const BmtWalker::UpdateTiming t =
                _walker.updateTimed(ep->addr, d);
            ep->vBmt = true;
            // Triad-NVM runtime cost: the persisted frontier (the
            // lowest N path levels) must actually reach PCM at drain
            // time, not just the walker's volatile node cache.
            const unsigned wt = _policy->drainBmtWriteThroughLevels(
                _walker.tree().numLevels());
            if (wt > 0)
                persistBmtPathPrefix(ep->addr, wt);
            _eq.schedule(std::max(t.issue, _eq.curTick()),
                         [branch_done] { branch_done(); });
        } else {
            branch_done();
        }
    });
}

void
SecPb::finalizeDrain(std::uint64_t entry_idx)
{
    PbEntry &e = _entries[entry_idx];
    panic_if(!e.valid || !e.draining, "finalizing a non-draining entry");

    // Push the data block through the ADR WPQ. Counter and MAC updates
    // land in the (volatile) metadata caches, dirty; they reach PM on MDC
    // eviction or, after a crash, via the battery-powered MDC flush --
    // exactly the state the paper's battery-sizing assumptions (2) and (4)
    // describe. Functionally they are applied to the PM image now, since
    // the crash path always flushes them.
    if (!e.pushedData) {
        if (!_wpq.push(e.addr)) {
            _wpq.notifyOnSpace([this, entry_idx]
                               { finalizeDrain(entry_idx); });
            return;
        }
        e.pushedData = true;
        _pm.writeData(e.addr, e.ciphertext);
        if (_traits.secure) {
            counterWriteAccess(e.addr);
            _macCache.writeAccess(_layout.macAddr(e.addr));
            const std::uint64_t page = _layout.pageIndex(e.addr);
            _pm.writeCounterBlock(page, _counters.block(page));
            _pm.writeMac(e.addr, e.mac);
        }
    }

    TRACE_SPAN_P("secpb", "drain", e.drainStart, _eq.curTick(), e.asid);
    releaseEntry(e);

    panic_if(_drainsActive == 0, "drain bookkeeping underflow");
    --_drainsActive;

    // A powered drain converts entry work into MDC dirt (the counter and
    // MAC writebacks above); under battery pressure, write it through
    // now rather than letting the crash floor outgrow the cell.
    shedMetadataDirt();

    const bool keep_draining =
        _drainAllMode ? !_index.empty()
                      : _index.size() > effectiveLowWatermarkEntries();
    if (keep_draining) {
        maybeStartDrain();
    } else if (_drainAllMode && _index.empty() && _drainsActive == 0) {
        _drainAllMode = false;
        if (_drainAllDone) {
            EventCallback cb = std::move(_drainAllDone);
            _drainAllDone = nullptr;
            cb();
        }
    }
}

void
SecPb::releaseEntry(PbEntry &e)
{
    if (_dbg)
        DPRINTF("SecPb", "drain %#llx nwpe=%llu @%llu",
                static_cast<unsigned long long>(e.addr),
                static_cast<unsigned long long>(e.numWrites),
                static_cast<unsigned long long>(_eq.curTick()));
    ++statDrainedEntries;
    statNwpe.sample(static_cast<double>(e.numWrites));
    const std::uint64_t *idxp = _index.find(e.addr);
    panic_if(!idxp, "releasing an entry the index does not know");
    const std::uint64_t idx = *idxp;
    _index.erase(e.addr);
    e.clear();
    _freeList.push_back(idx);
    wakeSpaceWaiters();
}

void
SecPb::drainAll(EventCallback done)
{
    if (_index.empty() && _drainsActive == 0) {
        if (done)
            done();
        return;
    }
    _drainAllMode = true;
    _drainAllDone = std::move(done);
    maybeStartDrain();
}

void
SecPb::completeEntryFunctionally(PbEntry &e, CrashWork &work)
{
    ++work.entriesDrained;

    if (!_traits.secure) {
        // BBB: the battery just moves the plaintext blocks out.
        _pm.writeData(e.addr, e.plaintext);
        ++work.pmBlockWrites;
        return;
    }

    if (!e.ctrIncremented) {
        if (!_ctrCache.contains(_layout.counterAddr(e.addr)))
            ++work.counterFetches;
        e.counter = incrementCounter(e.addr);
        e.ctrIncremented = true;
        ++work.countersIncremented;
    }
    if (!e.vOtp) {
        e.otp = generatePad(_keys, e.addr, e.counter);
        e.vOtp = true;
        ++work.otpsGenerated;
    }
    if (!e.vCt) {
        refreshCiphertext(e);
        ++work.ciphertexts;
    }
    if (!e.vMac) {
        refreshMac(e);
        ++work.macsComputed;
    }
    if (!e.vBmt) {
        const std::uint64_t page = _layout.pageIndex(e.addr);
        _walker.tree().updateLeaf(
            page, _walker.tree().leafDigest(_counters.block(page)));
        e.vBmt = true;
        ++work.bmtRootUpdates;
        // Triad-NVM persists only the lowest N path levels on battery
        // power; the volatile remainder is rebuilt at recovery (counted
        // separately in bmtNodesRebuilt by crashDrainAll).
        work.bmtLevelsWalked +=
            _policy->crashBmtLevels(_walker.tree().numLevels());
    }

    const std::uint64_t page = _layout.pageIndex(e.addr);
    _pm.writeData(e.addr, e.ciphertext);
    _pm.writeCounterBlock(page, _counters.block(page));
    _pm.writeMac(e.addr, e.mac);
    work.pmBlockWrites += 3;
}

CrashWork
SecPb::applicationCrash(std::uint32_t asid, AppCrashPolicy policy)
{
    CrashWork work;
    TRACE_INSTANT_P("secpb", "app_crash", _eq.curTick(), asid);

    // Collect the victims in persist order. Entries with early ops or a
    // drain in flight are left to their normal pipelines -- an
    // application crash does not stop the clock, so in-flight hardware
    // operations retire normally.
    std::vector<PbEntry *> victims;
    _index.forEach([&](const Addr &, const std::uint64_t &idx) {
        PbEntry &e = _entries[idx];
        if (e.draining || e.pendingEarlyOps != 0)
            return;
        if (policy == AppCrashPolicy::DrainProcess && e.asid != asid)
            return;
        victims.push_back(&e);
    });
    std::sort(victims.begin(), victims.end(),
              [](const PbEntry *a, const PbEntry *b)
              { return a->allocSeq < b->allocSeq; });

    for (PbEntry *ep : victims) {
        completeEntryFunctionally(*ep, work);
        releaseEntry(*ep);
    }
    return work;
}

CrashWork
SecPb::predictCrashDrainWork() const
{
    CrashWork w;
    if (_policy->wpqIsPersistDomain()) {
        // SP's crash-time obligation lives in the WPQ, not the PB: every
        // queued write still owes one PCM block write at power failure.
        // The WPQ sits in the ADR domain, but a battery sized for SP has
        // to carry exactly that domain, so the probe prices it instead
        // of reporting zero (which made SP look crash-free and barred it
        // from the adaptive policy). Secure schemes are unchanged: their
        // WPQ traffic is already-persisted data on its way out.
        w.pmBlockWrites += _wpq.pendingAtCrash();
    }
    if (_traits.secure) {
        w.mdcBlockFlushes = _ctrCache.dirtyBlocks().size() +
                            _macCache.dirtyBlocks().size();
        w.pmBlockWrites += w.mdcBlockFlushes;
        // eADR: the whole volatile hierarchy is inside the persist
        // domain, so every crash owes the full flush regardless of
        // SecPB occupancy.
        w.cacheLinesFlushed = _policy->crashCacheFlushLines();
    }
    _index.forEach([&](const Addr &, const std::uint64_t &idx) {
        const CrashWork d = predictEntryWork(_entries[idx]);
        w.entriesDrained += d.entriesDrained;
        w.countersIncremented += d.countersIncremented;
        w.counterFetches += d.counterFetches;
        w.otpsGenerated += d.otpsGenerated;
        w.bmtRootUpdates += d.bmtRootUpdates;
        w.bmtLevelsWalked += d.bmtLevelsWalked;
        w.macsComputed += d.macsComputed;
        w.ciphertexts += d.ciphertexts;
        w.pmBlockWrites += d.pmBlockWrites;
    });
    return w;
}

CrashWork
SecPb::predictEntryWork(const PbEntry &e) const
{
    CrashWork d;
    ++d.entriesDrained;
    if (!_traits.secure) {
        ++d.pmBlockWrites;
        return d;
    }
    if (!e.ctrIncremented) {
        if (!_ctrCache.contains(_layout.counterAddr(e.addr)))
            ++d.counterFetches;
        ++d.countersIncremented;
    }
    if (!e.vOtp)
        ++d.otpsGenerated;
    if (!e.vCt)
        ++d.ciphertexts;
    if (!e.vMac)
        ++d.macsComputed;
    if (!e.vBmt) {
        ++d.bmtRootUpdates;
        d.bmtLevelsWalked +=
            _policy->crashBmtLevels(_walker.tree().numLevels());
    }
    d.pmBlockWrites += 3;
    return d;
}

CrashWork
SecPb::crashDrainAll(
    const std::vector<std::pair<Addr, std::uint64_t>> &absorbed_stores,
    const CrashDrainBudget &budget)
{
    CrashWork work;
    panic_if(budget.bounded() && budget.pricing == nullptr,
             "bounded crash-drain budget needs a pricing model");
    TRACE_INSTANT("secpb", "crash_drain", _eq.curTick());

    const auto price = [&budget](const CrashWork &w) {
        return budget.pricing ? budget.pricing->actualCrashEnergy(w) : 0.0;
    };

    if (_dbg)
        DPRINTF("SecPb", "crash drain: %zu resident, %zu sb-absorbed",
                _index.size(), absorbed_stores.size());

    // Battery-backed store buffer: absorb its stores in program order.
    // With an unbounded battery, stores to resident blocks fold into the
    // entry (stale value-dependent fields are invalidated) and the rest
    // complete as one-off tuples after the resident pass. Under a
    // bounded budget, absorbed stores -- the *newest* stores in the
    // persist order -- are instead deferred until every resident entry
    // has drained, so an exhausted battery always loses an in-order
    // suffix rather than tearing the middle of the order.
    std::vector<Addr> absorbed_blocks;
    if (!budget.bounded()) {
        for (const auto &[addr, value] : absorbed_stores) {
            _oracle.applyStore(addr, value);
            if (PbEntry *e = find(addr)) {
                setBlockWord(e->plaintext, blockOffset(addr) / 8, value);
                e->vCt = false;
                e->vMac = false;
            } else {
                const Addr block = blockAlign(addr);
                if (std::find(absorbed_blocks.begin(),
                              absorbed_blocks.end(),
                              block) == absorbed_blocks.end())
                    absorbed_blocks.push_back(block);
            }
        }
    }

    // SP: the battery completes every pending tuple update so the
    // functional BMT/counter state and the PM image stay consistent.
    // Visit order is slot order, which is fine: each tuple touches only
    // its own block/page, and the work counters are order-insensitive.
    _spPending.forEach([&](const Addr &addr, const BlockCounter &ctr) {
        persistSpTuple(addr, ctr);
        const std::uint64_t page = _layout.pageIndex(addr);
        _walker.tree().updateLeaf(
            page, _walker.tree().leafDigest(_counters.block(page)));
        ++work.entriesDrained;
        ++work.otpsGenerated;
        ++work.macsComputed;
        ++work.bmtRootUpdates;
        work.bmtLevelsWalked += _walker.tree().numLevels();
        work.pmBlockWrites += 3;
    });
    _spPending.clear();

    // Reserve the metadata-cache flush up front: the persistent copies
    // of counters and MACs for *already drained* blocks live dirty in
    // the MDCs (assumptions (2) and (4) of the battery sizing), so their
    // flush outranks draining further entries. It is mandatory, charged
    // even when it alone exceeds a tiny budget (those functional writes
    // happened at drain time and cannot be torn in this model), so
    // energySpentJ can exceed the budget by at most this fixed floor.
    // The flush itself runs after the entry pass so the cache contents
    // still inform the per-entry predictions.
    if (_traits.secure) {
        work.mdcBlockFlushes = _ctrCache.dirtyBlocks().size() +
                               _macCache.dirtyBlocks().size();
        work.pmBlockWrites += work.mdcBlockFlushes;
        // eADR: the hierarchy flush is as mandatory as the MDC flush --
        // the battery contract is "everything volatile reaches PM" --
        // and is charged up front on the same terms.
        work.cacheLinesFlushed = _policy->crashCacheFlushLines();
    }

    // Persist order: complete entries oldest-first. A bounded battery
    // prices each entry before committing to it and stops at the first
    // entry that no longer fits -- the drained set is an in-order prefix
    // and the abandoned suffix is reported for prefix verification.
    std::vector<PbEntry *> resident;
    resident.reserve(_index.size());
    _index.forEach([&](const Addr &, const std::uint64_t &idx) {
        resident.push_back(&_entries[idx]);
    });
    std::sort(resident.begin(), resident.end(),
              [](const PbEntry *a, const PbEntry *b)
              { return a->allocSeq < b->allocSeq; });

    std::vector<PbEntry *> drained;
    drained.reserve(resident.size());
    for (PbEntry *ep : resident) {
        if (work.batteryExhausted) {
            work.abandoned.push_back({ep->addr, ep->numWrites});
            continue;
        }
        if (budget.bounded() &&
            price(work) + price(predictEntryWork(*ep)) > *budget.energyJ) {
            work.batteryExhausted = true;
            work.abandoned.push_back({ep->addr, ep->numWrites});
            continue;
        }
        completeEntryFunctionally(*ep, work);
        work.drainedBlocks.push_back(ep->addr);
        drained.push_back(ep);
    }

    // Complete the absorbed stores. Unbounded: the deduplicated blocks
    // that had no resident entry. Bounded: every store, in program
    // order, each priced as a full one-off tuple; the battery stops
    // mid-list when the budget dies, losing only newer stores.
    if (!budget.bounded()) {
        for (Addr block : absorbed_blocks) {
            PbEntry tmp;
            tmp.valid = true;
            tmp.addr = block;
            tmp.plaintext = _oracle.blockContent(block);
            tmp.vData = true;
            completeEntryFunctionally(tmp, work);
            work.absorbedApplied += 1;
        }
    } else {
        for (const auto &[addr, value] : absorbed_stores) {
            if (work.batteryExhausted) {
                ++work.absorbedLost;
                continue;
            }
            const Addr block = blockAlign(addr);
            PbEntry tmp;
            tmp.valid = true;
            tmp.addr = block;
            if (price(work) + price(predictEntryWork(tmp)) >
                *budget.energyJ) {
                work.batteryExhausted = true;
                ++work.absorbedLost;
                continue;
            }
            _oracle.applyStore(addr, value);
            tmp.plaintext = _oracle.blockContent(block);
            tmp.vData = true;
            completeEntryFunctionally(tmp, work);
            ++work.absorbedApplied;
        }
    }

    // The MDC flush reserved above (accounting only; see comment there).
    if (_traits.secure) {
        _ctrCache.flushAll();
        _macCache.flushAll();
    }

    // Clear the drained entries (the WPQ content was already
    // functionally applied when pushed -- ADR guarantees it reaches the
    // cell array). Abandoned entries stay resident: their state was
    // never persisted and simply dies with the machine.
    for (PbEntry *ep : drained) {
        const std::uint64_t *idxp = _index.find(ep->addr);
        panic_if(!idxp, "crash-drained entry missing from the index");
        const std::uint64_t idx = *idxp;
        _index.erase(ep->addr);
        ep->clear();
        _freeList.push_back(idx);
    }
    _drainsActive = 0;

    // Triad-NVM recovery: the battery persisted only the lowest path
    // levels; the volatile upper tree is recomputed bottom-up from the
    // persisted frontier before verification can run. This happens on
    // mains power at restart -- it lengthens the recovery window (the
    // drain-latency model prices bmtNodesRebuilt) but costs the battery
    // nothing.
    const unsigned tree_levels = _walker.tree().numLevels();
    const unsigned rebuild_from =
        _policy->recoveryRebuildFromLevel(tree_levels);
    if (rebuild_from < tree_levels)
        work.bmtNodesRebuilt =
            _walker.tree().rebuildFromLevel(rebuild_from);

    work.energySpentJ = price(work);
    return work;
}

std::optional<PbEntry>
SecPb::extractForMigration(Addr addr)
{
    const std::uint64_t *idxp = _index.find(blockAlign(addr));
    if (!idxp)
        return std::nullopt;
    // Copy the slot index out before erasing: erase back-shifts the
    // probe cluster, so the pointer from find() does not survive it.
    const std::uint64_t idx = *idxp;
    PbEntry &e = _entries[idx];
    if (e.draining || e.pendingEarlyOps != 0)
        return std::nullopt;
    PbEntry copy = e;
    _index.erase(e.addr);
    e.clear();
    _freeList.push_back(idx);
    wakeSpaceWaiters();
    return copy;
}

void
SecPb::injectMigrated(const PbEntry &entry)
{
    panic_if(_freeList.empty(), "injectMigrated without a free slot");
    const std::uint64_t idx = _freeList.back();
    _freeList.pop_back();
    PbEntry &e = _entries[idx];
    e = entry;
    e.allocSeq = ++_allocSeq;
    e.draining = false;
    e.pendingEarlyOps = 0;
    e.drainPending = 0;
    e.pushedData = false;
    _index.insert(e.addr, idx);
}

bool
SecPb::flushForRemoteRead(Addr addr)
{
    PbEntry *e = find(addr);
    if (!e || e->draining || e->pendingEarlyOps != 0)
        return false;
    e->draining = true;
    ++_drainsActive;
    startDrainOf(*e);
    return true;
}

std::vector<Addr>
SecPb::entriesForPage(std::uint64_t page) const
{
    std::vector<Addr> out;
    _index.forEach([&](const Addr &addr, const std::uint64_t &) {
        if (addr / PageSize == page)
            out.push_back(addr);
    });
    std::sort(out.begin(), out.end());
    return out;
}

bool
SecPb::pageQuiescent(std::uint64_t page) const
{
    bool quiescent = true;
    _index.forEach([&](const Addr &addr, const std::uint64_t &idx) {
        if (addr / PageSize != page)
            return;
        const PbEntry &e = _entries[idx];
        if (e.draining || e.pendingEarlyOps != 0)
            quiescent = false;
    });
    // SP baseline: a pending tuple update is an in-flight WPQ persist for
    // the page -- its functional effects landed, but the timed completion
    // closure still references this slice's counter store.
    _spPending.forEach([&](const Addr &addr, const BlockCounter &) {
        if (addr / PageSize == page)
            quiescent = false;
    });
    return quiescent;
}

std::vector<Addr>
SecPb::residentAddrs() const
{
    std::vector<Addr> out;
    out.reserve(occupancy());
    _index.forEach([&](const Addr &addr, const std::uint64_t &) {
        out.push_back(addr);
    });
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace secpb
