#include "workload/generators.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace secpb
{

namespace
{

/** Pad region carve-outs to a page multiple so layouts stay readable. */
constexpr Addr
regionBytes(std::uint64_t blocks)
{
    const Addr bytes = blocks * BlockSize;
    return (bytes + 0xfff) & ~static_cast<Addr>(0xfff);
}

} // namespace

// ---------------------------------------------------------------------
// KvWalGenerator
// ---------------------------------------------------------------------

KvWalGenerator::KvWalGenerator(const KvWalParams &params,
                               std::uint64_t total_instructions,
                               std::uint64_t seed, Addr region_base)
    : QueueGenerator(total_instructions, seed),
      _p(params),
      _zipf(params.keys, params.zipf),
      _tableBase(region_base)
{
    fatal_if(_p.puts < 0.0 || _p.scans < 0.0 || _p.puts + _p.scans > 1.0,
             "kv_wal: puts (%f) + scans (%f) must stay within [0, 1]",
             _p.puts, _p.scans);
    fatal_if(_p.valueWords == 0 || _p.valueWords > BlockSize / 8,
             "kv_wal: valueWords %u out of range [1, %u]",
             _p.valueWords, BlockSize / 8);
    fatal_if(_p.walWords == 0, "kv_wal: walWords must be nonzero");

    _walBase = _tableBase + regionBytes(_p.keys);
    // Size the WAL ring so checkpoints, not wrap-around, bound the
    // recovery window: 4 checkpoint intervals of records.
    const std::uint64_t interval =
        _p.checkpointEvery ? _p.checkpointEvery : 1024;
    _walBlocks =
        std::max<std::uint64_t>(
            64, 4 * interval * _p.walWords / (BlockSize / 8) + 1);
    _ckptBase = _walBase + regionBytes(_walBlocks);
}

void
KvWalGenerator::refill()
{
    emitInstr(static_cast<std::uint32_t>(
        _rng.geometric(1.0 / std::max(1u, _p.thinkInstrs))));

    const double u = _rng.uniform();
    const std::uint64_t key = _zipf.sample(_rng);
    const Addr keyBlock = _tableBase + key * BlockSize;

    if (u < _p.puts) {
        // Put: append a WAL record, commit it, update the table row.
        for (unsigned w = 0; w < _p.walWords; ++w) {
            const std::uint64_t word = _walCursor++;
            const Addr addr =
                _walBase + 8 * (word % (_walBlocks * (BlockSize / 8)));
            emitStore(blockAlign(addr), blockOffset(addr) / 8);
        }
        emitBarrier();
        for (unsigned w = 0; w < _p.valueWords; ++w)
            emitStore(keyBlock, w);
        ++_puts;

        if (_p.checkpointEvery && _puts % _p.checkpointEvery == 0) {
            // Checkpoint storm: rewrite a sequential region, fence, and
            // logically truncate the log (cursor keeps advancing; the
            // ring addresses wrap by construction).
            for (unsigned b = 0; b < _p.checkpointBlocks; ++b) {
                const Addr block = _ckptBase + b * BlockSize;
                emitStore(block, 0);
                emitStore(block, 1);
            }
            emitBarrier();
            ++_checkpoints;
        }
    } else if (u < _p.puts + _p.scans) {
        // Scan: a sequential run of key reads from a random start.
        const std::uint64_t start = _rng.below(_p.keys);
        for (unsigned i = 0; i < _p.scanLength; ++i) {
            const std::uint64_t k = (start + i) % _p.keys;
            emitLoad(drawLevel(0.25, 0.20, 0.30),
                     _tableBase + k * BlockSize);
        }
    } else {
        // Get: point read of a popular key -- mostly cache resident.
        emitLoad(drawLevel(0.30, 0.10, 0.05), keyBlock);
    }
}

// ---------------------------------------------------------------------
// JournalGenerator
// ---------------------------------------------------------------------

JournalGenerator::JournalGenerator(const JournalParams &params,
                                   std::uint64_t total_instructions,
                                   std::uint64_t seed, Addr region_base)
    : QueueGenerator(total_instructions, seed),
      _p(params),
      _metaBase(region_base)
{
    fatal_if(_p.txnStores == 0, "journal: txnStores must be nonzero");
    fatal_if(_p.metaBlocks == 0, "journal: metaBlocks must be nonzero");
    fatal_if(_p.commitEvery == 0, "journal: commitEvery must be nonzero");
    fatal_if(_p.journalBlocks == 0,
             "journal: journalBlocks must be nonzero");

    _journalBase = _metaBase + regionBytes(_p.metaBlocks);
    // Journal ring: a few commit trains deep, like a small jbd2 area.
    _journalRing = std::max<std::uint64_t>(64, 8 * _p.journalBlocks);
    _dumpBase = _journalBase + regionBytes(_journalRing);
}

void
JournalGenerator::refill()
{
    emitInstr(static_cast<std::uint32_t>(
        _rng.geometric(1.0 / std::max(1u, _p.thinkInstrs))));

    // One transaction: scattered metadata updates, interleaved with the
    // reads that found them.
    for (unsigned s = 0; s < _p.txnStores; ++s) {
        const Addr block =
            _metaBase + _rng.below(_p.metaBlocks) * BlockSize;
        if (_rng.chance(0.5))
            emitLoad(drawLevel(0.30, 0.25, 0.15), block);
        emitStore(block, static_cast<unsigned>(_rng.below(BlockSize / 8)));
    }
    ++_txns;

    if (++_txnsSinceCommit >= _p.commitEvery) {
        _txnsSinceCommit = 0;
        // Commit train: descriptor + data blocks back to back, then the
        // commit record, then the fence that makes it durable.
        for (unsigned b = 0; b < _p.journalBlocks; ++b) {
            const Addr block =
                _journalBase +
                ((_journalCursor + b) % _journalRing) * BlockSize;
            for (unsigned w = 0; w < 2; ++w)
                emitStore(block, w);
        }
        _journalCursor += _p.journalBlocks;
        emitBarrier();
        emitStore(_journalBase +
                      (_journalCursor % _journalRing) * BlockSize,
                  0);  // commit record
        ++_journalCursor;
        emitBarrier();
        ++_commits;
    }

    if (_p.dumpEvery && _txns % _p.dumpEvery == 0) {
        // Panic dump (pstore): long uninterrupted sequential burst.
        for (unsigned b = 0; b < _p.dumpBlocks; ++b) {
            const Addr block = _dumpBase + b * BlockSize;
            emitStore(block, 0);
            emitStore(block, 1);
        }
        emitBarrier();
        ++_dumps;
    }
}

// ---------------------------------------------------------------------
// ZipfMixGenerator
// ---------------------------------------------------------------------

ZipfMixGenerator::ZipfMixGenerator(const ZipfMixParams &params,
                                   std::uint64_t total_instructions,
                                   std::uint64_t seed, Addr region_base)
    : QueueGenerator(total_instructions, seed),
      _p(params),
      _tenantZipf(params.tenants, params.tenantZipf),
      _keyZipf(params.keysPerTenant, params.keyZipf),
      _base(region_base),
      _putsSinceCommit(params.tenants, 0)
{
    fatal_if(_p.tenants == 0, "zipf_mix: tenants must be nonzero");
    fatal_if(_p.puts < 0.0 || _p.puts > 1.0,
             "zipf_mix: puts %f must be in [0, 1]", _p.puts);
    fatal_if(_p.commitEvery == 0, "zipf_mix: commitEvery must be nonzero");
}

void
ZipfMixGenerator::refill()
{
    emitInstr(static_cast<std::uint32_t>(
        _rng.geometric(1.0 / std::max(1u, _p.thinkInstrs))));

    const auto tenant =
        static_cast<std::uint32_t>(_tenantZipf.sample(_rng));
    const std::uint64_t key = _keyZipf.sample(_rng);
    const Addr block =
        _base + (static_cast<Addr>(tenant) * _p.keysPerTenant + key) *
                    BlockSize;

    if (_rng.chance(_p.puts)) {
        emitStore(block, static_cast<unsigned>(_rng.below(2)), tenant);
        if (++_putsSinceCommit[tenant] >= _p.commitEvery) {
            _putsSinceCommit[tenant] = 0;
            emitBarrier(tenant);
        }
    } else {
        // Hot tenants are cache resident, the long tail is not.
        const bool hot = tenant < _p.tenants / 16 + 1;
        emitLoad(hot ? drawLevel(0.25, 0.10, 0.05)
                     : drawLevel(0.20, 0.30, 0.45),
                 block, tenant);
    }
}

// ---------------------------------------------------------------------
// BurstyArrivalGenerator
// ---------------------------------------------------------------------

BurstyArrivalGenerator::BurstyArrivalGenerator(
    std::unique_ptr<WorkloadGenerator> inner, const BurstParams &params)
    : _inner(std::move(inner)), _p(params)
{
    fatal_if(!_inner, "bursty wrapper needs an inner generator");
    fatal_if(_p.onOps == 0, "burst: onOps must be nonzero");
    fatal_if(!(_p.duty > 0.0) || _p.duty > 1.0,
             "burst: duty %f must be in (0, 1]", _p.duty);
    fatal_if(_p.idleBundle == 0, "burst: idleBundle must be nonzero");
}

bool
BurstyArrivalGenerator::next(TraceOp &op)
{
    // Pay off the idle gap first: emit plain-instruction bundles that
    // model the server spinning between arrival bursts.
    if (_idleLeft > 0) {
        op = TraceOp{};
        op.kind = TraceOp::Kind::Instr;
        op.count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(_idleLeft, _p.idleBundle));
        _idleLeft -= op.count;
        countOp(_ctr, op);
        return true;
    }

    if (_innerDone)
        return false;

    while (_inner->next(op)) {
        if (_p.stripThinkTime && op.kind == TraceOp::Kind::Instr)
            continue;  // line-rate arrivals: drop inner think time
        countOp(_ctr, op);
        _burstInstrs +=
            op.kind == TraceOp::Kind::Instr ? op.count : 1;
        if (++_opsThisBurst >= _p.onOps) {
            // Size the off period so this burst occupies `duty` of the
            // wall-clock instruction budget: idle = on * (1 - d) / d.
            _idleLeft = static_cast<std::uint64_t>(
                static_cast<double>(_burstInstrs) * (1.0 - _p.duty) /
                _p.duty);
            _opsThisBurst = 0;
            _burstInstrs = 0;
        }
        return true;
    }
    _innerDone = true;
    return false;
}

} // namespace secpb
