/**
 * @file
 * Server-scale heavy-traffic generators.
 *
 * The synthetic SPEC profiles (workload/synthetic.hh) reproduce the
 * paper's aggregate statistics; nothing in them resembles production
 * NVM traffic. These generators model the write *shapes* that decide
 * the runtime-overhead vs recovery/battery tradeoff in real deployments
 * (Triad-NVM, the eADR study): log-append bursts with commit barriers,
 * checkpoint storms, journal commit trains, skewed key reuse, and
 * thousands of tenants hammering one machine.
 *
 * All of them derive from QueueGenerator: a seeded-Rng base that emits
 * through an internal op queue, counts every emission (WorkloadCounters
 * feed the per-workload sampler channels), and stops at an instruction
 * budget -- so any (params, budget, seed) triple is a bit-identical
 * TraceOp stream on any host, and recording + replaying one is
 * indistinguishable from running it live.
 */

#ifndef SECPB_WORKLOAD_GENERATORS_HH
#define SECPB_WORKLOAD_GENERATORS_HH

#include <deque>
#include <memory>

#include "cpu/trace_op.hh"
#include "sim/rng.hh"
#include "workload/trace_file.hh"
#include "workload/zipf.hh"

namespace secpb
{

/** Seeded base: subclasses script requests into the op queue. */
class QueueGenerator : public WorkloadGenerator
{
  public:
    QueueGenerator(std::uint64_t total_instructions, std::uint64_t seed)
        : _rng(seed), _budget(total_instructions)
    {}

    bool
    next(TraceOp &op) override
    {
        while (_queue.empty()) {
            if (_ctr.instructions >= _budget)
                return false;
            refill();
            if (_queue.empty())
                return false;  // a refill that emits nothing ends it
        }
        op = _queue.front();
        _queue.pop_front();
        countOp(_ctr, op);
        return true;
    }

    const WorkloadCounters *counters() const override { return &_ctr; }

  protected:
    /** Script the next request (one or more ops) into the queue. */
    virtual void refill() = 0;

    /** @name Emission helpers. */
    /** @{ */
    void
    emitInstr(std::uint32_t count)
    {
        if (count == 0)
            return;
        TraceOp op;
        op.kind = TraceOp::Kind::Instr;
        op.count = count;
        _queue.push_back(op);
    }

    void
    emitLoad(MemLevel level, Addr addr = 0, std::uint32_t asid = 0)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Load;
        op.level = level;
        op.addr = addr;
        op.asid = asid;
        _queue.push_back(op);
    }

    /** Store a fresh pseudo-random value to word @p word of @p block. */
    void
    emitStore(Addr block, unsigned word, std::uint32_t asid = 0)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Store;
        op.addr = block + 8 * (word % (BlockSize / 8));
        op.value = _rng.next();
        op.asid = asid;
        _queue.push_back(op);
    }

    void
    emitBarrier(std::uint32_t asid = 0)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Barrier;
        op.asid = asid;
        _queue.push_back(op);
    }

    /** A load whose hit level follows a hot/warm/cold mixture. */
    MemLevel
    drawLevel(double p_l2, double p_l3, double p_mem)
    {
        const double u = _rng.uniform();
        if (u < p_mem)
            return MemLevel::Mem;
        if (u < p_mem + p_l3)
            return MemLevel::L3;
        if (u < p_mem + p_l3 + p_l2)
            return MemLevel::L2;
        return MemLevel::L1;
    }
    /** @} */

    std::uint64_t budget() const { return _budget; }
    std::uint64_t emitted() const { return _ctr.instructions; }

    Rng _rng;

  private:
    std::uint64_t _budget;
    std::deque<TraceOp> _queue;
    WorkloadCounters _ctr;
};

/** Parameters of the KV-store / write-ahead-log generator. */
struct KvWalParams
{
    double puts = 0.6;          ///< P(request is a put).
    double scans = 0.05;        ///< P(request is a scan); rest are gets.
    std::uint64_t keys = 4096;  ///< Distinct keys (one block each).
    double zipf = 0.99;         ///< Key-popularity skew (YCSB default).
    unsigned valueWords = 2;    ///< 8-byte words written per put.
    unsigned walWords = 2;      ///< WAL record words per put.
    unsigned scanLength = 16;   ///< Keys touched by one scan.
    unsigned thinkInstrs = 48;  ///< Mean non-memory gap per request.
    /** Puts between checkpoints; 0 disables checkpointing. */
    unsigned checkpointEvery = 512;
    /** Blocks rewritten by one checkpoint storm. */
    unsigned checkpointBlocks = 64;
};

/**
 * Put-heavy KV store with a write-ahead log: each put appends a WAL
 * record and commits with a persist barrier before updating the table
 * in place; periodic checkpoints storm a sequential region and fence.
 * This is the log-append + checkpoint shape Triad-NVM identifies as the
 * decisive recovery-vs-overhead workload.
 */
class KvWalGenerator : public QueueGenerator
{
  public:
    KvWalGenerator(const KvWalParams &params,
                   std::uint64_t total_instructions, std::uint64_t seed,
                   Addr region_base = 0);

    std::uint64_t putsIssued() const { return _puts; }
    std::uint64_t checkpoints() const { return _checkpoints; }

  protected:
    void refill() override;

  private:
    KvWalParams _p;
    ZipfSampler _zipf;
    Addr _tableBase;
    Addr _walBase;
    Addr _ckptBase;
    std::uint64_t _walBlocks;
    std::uint64_t _walCursor = 0;  ///< Word offset into the WAL ring.
    std::uint64_t _puts = 0;
    std::uint64_t _checkpoints = 0;
};

/** Parameters of the journal-burst generators (fs_journal, pstore). */
struct JournalParams
{
    /** Metadata stores scattered between commits (one transaction). */
    unsigned txnStores = 12;
    /** Distinct metadata blocks those stores fall into. */
    std::uint64_t metaBlocks = 1024;
    /** Transactions batched into one commit burst. */
    unsigned commitEvery = 4;
    /** Sequential journal blocks written per commit burst. */
    unsigned journalBlocks = 16;
    /** Mean non-memory gap between transactions. */
    unsigned thinkInstrs = 96;
    /** Requests between panic dumps; 0 disables them (fs_journal). */
    unsigned dumpEvery = 0;
    /** Back-to-back blocks one panic dump writes (pstore shape). */
    unsigned dumpBlocks = 128;
};

/**
 * Filesystem-journal / pstore burst patterns: quiet metadata updates,
 * then a commit train -- descriptor block, data blocks, commit record,
 * fence -- every few transactions. The pstore personality adds rare
 * panic dumps: a long, uninterrupted sequential store burst ending in a
 * barrier, which is the worst case for SecPB full-stall behaviour.
 */
class JournalGenerator : public QueueGenerator
{
  public:
    JournalGenerator(const JournalParams &params,
                     std::uint64_t total_instructions, std::uint64_t seed,
                     Addr region_base = 0);

    std::uint64_t commits() const { return _commits; }
    std::uint64_t dumps() const { return _dumps; }

  protected:
    void refill() override;

  private:
    JournalParams _p;
    Addr _metaBase;
    Addr _journalBase;
    Addr _dumpBase;
    std::uint64_t _journalCursor = 0;  ///< Block offset into the ring.
    std::uint64_t _journalRing;
    unsigned _txnsSinceCommit = 0;
    std::uint64_t _txns = 0;
    std::uint64_t _commits = 0;
    std::uint64_t _dumps = 0;
};

/** Parameters of the Zipfian multi-tenant mix. */
struct ZipfMixParams
{
    std::uint32_t tenants = 2048;      ///< Distinct ASIDs.
    double tenantZipf = 1.1;           ///< Skew of tenant request rates.
    std::uint64_t keysPerTenant = 64;  ///< Blocks per tenant.
    double keyZipf = 0.99;             ///< Skew within a tenant.
    double puts = 0.5;                 ///< P(store | request).
    unsigned thinkInstrs = 32;         ///< Mean gap between requests.
    /** Puts by one tenant between its commit barriers. */
    unsigned commitEvery = 8;
};

/**
 * Thousands of address spaces multiplexed through one SecPB: tenant
 * and key choice are both Zipfian, so a hot head of tenants dominates
 * while a long tail keeps the ASID space churning -- the multi-tenant
 * "millions of users" shape for the multi-ASID path.
 */
class ZipfMixGenerator : public QueueGenerator
{
  public:
    ZipfMixGenerator(const ZipfMixParams &params,
                     std::uint64_t total_instructions, std::uint64_t seed,
                     Addr region_base = 0);

    std::uint32_t tenants() const { return _p.tenants; }

  protected:
    void refill() override;

  private:
    ZipfMixParams _p;
    ZipfSampler _tenantZipf;
    ZipfSampler _keyZipf;
    Addr _base;
    std::vector<std::uint16_t> _putsSinceCommit;  ///< Per tenant.
};

/** Parameters of the open-loop bursty-arrival wrapper. */
struct BurstParams
{
    /** Inner ops passed through per burst. */
    std::uint64_t onOps = 2000;
    /** Duty cycle in (0, 1]: fraction of wall instructions that are
     *  burst; the idle gap is sized from what the burst emitted. */
    double duty = 0.25;
    /** Strip the inner generator's think-time Instr ops during the
     *  burst, so requests arrive back to back at line rate. */
    bool stripThinkTime = true;
    /** Idle bundle granularity (instructions per emitted Instr op). */
    std::uint32_t idleBundle = 64;
};

/**
 * Open-loop duty-cycled arrival modulation of any inner workload:
 * bursts of back-to-back requests (optionally with think time stripped)
 * alternating with idle gaps sized to hit the duty cycle. Open loop
 * means the idle/burst schedule never reacts to backpressure -- exactly
 * the arrival process that drives a SecPB into full-stall and the
 * adaptive drain policy into its pressure regime.
 */
class BurstyArrivalGenerator : public WorkloadGenerator
{
  public:
    BurstyArrivalGenerator(std::unique_ptr<WorkloadGenerator> inner,
                           const BurstParams &params);

    bool next(TraceOp &op) override;
    const WorkloadCounters *counters() const override { return &_ctr; }

  private:
    std::unique_ptr<WorkloadGenerator> _inner;
    BurstParams _p;
    WorkloadCounters _ctr;
    std::uint64_t _opsThisBurst = 0;
    std::uint64_t _burstInstrs = 0;   ///< Instructions this burst emitted.
    std::uint64_t _idleLeft = 0;      ///< Idle instructions still owed.
    bool _innerDone = false;
};

} // namespace secpb

#endif // SECPB_WORKLOAD_GENERATORS_HH
