#include "workload/registry.hh"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "workload/generators.hh"
#include "workload/synthetic.hh"
#include "workload/trace_file.hh"

namespace secpb
{

namespace
{

/**
 * Typed accessor over a spec's params that tracks which keys were
 * consumed, so a trailing check can reject typos instead of silently
 * running the default workload the user did not ask for.
 */
class ParamReader
{
  public:
    explicit ParamReader(const WorkloadSpec &spec) : _spec(spec) {}

    double
    number(const std::string &key, double fallback)
    {
        const std::string raw = take(key);
        if (raw.empty())
            return fallback;
        char *end = nullptr;
        const double v = std::strtod(raw.c_str(), &end);
        fatal_if(end == raw.c_str() || *end != '\0',
                 "workload '%s': parameter %s=%s is not a number",
                 _spec.name.c_str(), key.c_str(), raw.c_str());
        return v;
    }

    std::uint64_t
    count(const std::string &key, std::uint64_t fallback)
    {
        const double v = number(key, static_cast<double>(fallback));
        fatal_if(v < 0 || v != static_cast<double>(
                              static_cast<std::uint64_t>(v)),
                 "workload '%s': parameter %s must be a whole count",
                 _spec.name.c_str(), key.c_str());
        return static_cast<std::uint64_t>(v);
    }

    std::string
    text(const std::string &key, const std::string &fallback = "")
    {
        const std::string raw = take(key);
        return raw.empty() ? fallback : raw;
    }

    /** Fatal if any parameter was never consumed. */
    void
    finish() const
    {
        for (const auto &[k, v] : _spec.params) {
            fatal_if(!_used.count(k),
                     "workload '%s' does not take a parameter '%s'",
                     _spec.name.c_str(), k.c_str());
        }
    }

  private:
    std::string
    take(const std::string &key)
    {
        _used.insert(key);
        return _spec.get(key);
    }

    const WorkloadSpec &_spec;
    std::set<std::string> _used;
};

/** Wrap @p inner in the burst modulator if the spec asks for it. */
std::unique_ptr<WorkloadGenerator>
applyBurst(std::unique_ptr<WorkloadGenerator> inner, ParamReader &p,
           const WorkloadSpec &spec)
{
    const std::uint64_t period = p.count("burst_period", 0);
    const double duty = p.number("burst_duty", 0.25);
    const std::uint64_t bundle = p.count("burst_bundle", 64);
    if (period == 0) {
        fatal_if(spec.has("burst_duty") || spec.has("burst_bundle"),
                 "workload '%s': burst_duty/burst_bundle need "
                 "burst_period to be set",
                 spec.name.c_str());
        return inner;
    }
    BurstParams bp;
    bp.onOps = period;
    bp.duty = duty;
    bp.idleBundle = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, bundle));
    return std::make_unique<BurstyArrivalGenerator>(std::move(inner), bp);
}

} // namespace

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    WorkloadSpec spec;
    const auto colon = text.find(':');
    spec.name = text.substr(0, colon);
    fatal_if(spec.name.empty(), "empty workload name in '%s'",
             text.c_str());

    if (colon == std::string::npos)
        return spec;

    std::string rest = text.substr(colon + 1);
    std::istringstream ss(rest);
    std::string item;
    while (std::getline(ss, item, ',')) {
        const auto eq = item.find('=');
        fatal_if(eq == std::string::npos || eq == 0,
                 "workload '%s': parameter '%s' is not key=value",
                 spec.name.c_str(), item.c_str());
        const std::string key = item.substr(0, eq);
        fatal_if(spec.has(key),
                 "workload '%s': duplicate parameter '%s'",
                 spec.name.c_str(), key.c_str());
        spec.params.emplace_back(key, item.substr(eq + 1));
    }
    return spec;
}

std::string
WorkloadSpec::canonical() const
{
    std::string out = name;
    for (std::size_t i = 0; i < params.size(); ++i) {
        out += i == 0 ? ':' : ',';
        out += params[i].first + "=" + params[i].second;
    }
    return out;
}

bool
WorkloadSpec::has(const std::string &key) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return true;
    return false;
}

std::string
WorkloadSpec::get(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v;
    return fallback;
}

const std::vector<std::string> &
registeredWorkloadNames()
{
    static const std::vector<std::string> names = {
        "kv_wal", "fs_journal", "pstore", "zipf_mix", "replay", "spec",
    };
    return names;
}

bool
isRegisteredWorkload(const std::string &name)
{
    const auto &names = registeredWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<WorkloadGenerator>
makeWorkload(const WorkloadSpec &spec, std::uint64_t instructions,
             std::uint64_t seed)
{
    ParamReader p(spec);
    std::unique_ptr<WorkloadGenerator> gen;

    if (spec.name == "kv_wal") {
        KvWalParams kp;
        kp.puts = p.number("puts", kp.puts);
        kp.scans = p.number("scans", kp.scans);
        kp.keys = p.count("keys", kp.keys);
        kp.zipf = p.number("zipf", kp.zipf);
        kp.valueWords =
            static_cast<unsigned>(p.count("value_words", kp.valueWords));
        kp.walWords =
            static_cast<unsigned>(p.count("wal_words", kp.walWords));
        kp.scanLength =
            static_cast<unsigned>(p.count("scan_len", kp.scanLength));
        kp.thinkInstrs =
            static_cast<unsigned>(p.count("think", kp.thinkInstrs));
        kp.checkpointEvery = static_cast<unsigned>(
            p.count("ckpt_every", kp.checkpointEvery));
        kp.checkpointBlocks = static_cast<unsigned>(
            p.count("ckpt_blocks", kp.checkpointBlocks));
        gen = std::make_unique<KvWalGenerator>(kp, instructions, seed);
    } else if (spec.name == "fs_journal" || spec.name == "pstore") {
        JournalParams jp;
        if (spec.name == "pstore") {
            // Panic-dump personality: rarer, bigger commits plus dumps.
            jp.dumpEvery = 64;
            jp.commitEvery = 8;
        }
        jp.txnStores =
            static_cast<unsigned>(p.count("txn_stores", jp.txnStores));
        jp.metaBlocks = p.count("meta_blocks", jp.metaBlocks);
        jp.commitEvery =
            static_cast<unsigned>(p.count("commit_every", jp.commitEvery));
        jp.journalBlocks = static_cast<unsigned>(
            p.count("journal_blocks", jp.journalBlocks));
        jp.thinkInstrs =
            static_cast<unsigned>(p.count("think", jp.thinkInstrs));
        jp.dumpEvery =
            static_cast<unsigned>(p.count("dump_every", jp.dumpEvery));
        jp.dumpBlocks =
            static_cast<unsigned>(p.count("dump_blocks", jp.dumpBlocks));
        gen = std::make_unique<JournalGenerator>(jp, instructions, seed);
    } else if (spec.name == "zipf_mix") {
        ZipfMixParams zp;
        zp.tenants =
            static_cast<std::uint32_t>(p.count("tenants", zp.tenants));
        zp.tenantZipf = p.number("tenant_zipf", zp.tenantZipf);
        zp.keysPerTenant = p.count("keys", zp.keysPerTenant);
        zp.keyZipf = p.number("key_zipf", zp.keyZipf);
        zp.puts = p.number("puts", zp.puts);
        zp.thinkInstrs =
            static_cast<unsigned>(p.count("think", zp.thinkInstrs));
        zp.commitEvery =
            static_cast<unsigned>(p.count("commit_every", zp.commitEvery));
        gen = std::make_unique<ZipfMixGenerator>(zp, instructions, seed);
    } else if (spec.name == "replay") {
        const std::string file = p.text("file");
        fatal_if(file.empty(),
                 "replay workload needs file=<path> "
                 "(or use --trace-in PATH)");
        gen = std::make_unique<ReplayGenerator>(file);
    } else if (spec.name == "spec") {
        const std::string profile = p.text("profile");
        fatal_if(profile.empty(),
                 "spec workload needs profile=<name> (e.g. "
                 "spec:profile=mcf)");
        gen = std::make_unique<SyntheticGenerator>(
            profileByName(profile), instructions, seed);
    } else {
        std::string known;
        for (const auto &n : registeredWorkloadNames())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown workload '%s' (registered: %s)",
              spec.name.c_str(), known.c_str());
    }

    gen = applyBurst(std::move(gen), p, spec);
    p.finish();
    return gen;
}

std::unique_ptr<WorkloadGenerator>
makeWorkload(const std::string &text, std::uint64_t instructions,
             std::uint64_t seed)
{
    return makeWorkload(WorkloadSpec::parse(text), instructions, seed);
}

const BenchmarkProfile &
serverWorkloadProfile()
{
    // Only the core-side fields matter here (the generators own their
    // locality): a server core with healthy MLP that still pays for a
    // meaningful slice of each PCM miss.
    static const BenchmarkProfile profile = [] {
        BenchmarkProfile p;
        p.name = "server";
        p.nonMemCpi = 0.40;
        p.memOverlap = 0.55;
        return p;
    }();
    return profile;
}

} // namespace secpb
