#include "workload/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "crypto/counters.hh"
#include "crypto/hash.hh"
#include "sim/logging.hh"

namespace secpb
{

SyntheticGenerator::SyntheticGenerator(const BenchmarkProfile &profile,
                                       std::uint64_t total_instructions,
                                       std::uint64_t seed, Addr region_base)
    : _profile(profile), _budget(total_instructions),
      _rng(seed ^ hashBytes(
               reinterpret_cast<const std::uint8_t *>(profile.name.data()),
               profile.name.size(), 0x5eed)),
      _regionBase(region_base)
{
    const double mem_pki =
        profile.loadsPerKiloInstr + profile.storesPerKiloInstr;
    fatal_if(mem_pki <= 0.0, "profile '%s' has no memory operations",
             profile.name.c_str());
    fatal_if(mem_pki > 1000.0, "profile '%s' has > 1000 mem ops per ki",
             profile.name.c_str());
    _meanGap = 1000.0 / mem_pki - 1.0;
    _pLoad = profile.loadsPerKiloInstr / mem_pki;
    _seqCursor = region_base;
}

void
SyntheticGenerator::rememberBlock(Addr block)
{
    _recent.push_front(block);
    if (_recent.size() > RecentCap)
        _recent.pop_back();
}

void
SyntheticGenerator::rememberAllocation(Addr block)
{
    if (!_history.empty() && _history.front() == block)
        return;
    _history.push_front(block);
    if (_history.size() > RecentCap)
        _history.pop_back();
}

Addr
SyntheticGenerator::pickStoreAddr()
{
    const double r = _rng.uniform();
    const std::uint64_t ws_bytes = _profile.workingSetPages * PageSize;

    double acc = _profile.pRewriteHot;
    if (r < acc && !_recent.empty()) {
        const std::size_t w =
            std::min<std::size_t>(_profile.hotWindow, _recent.size());
        return _recent[_rng.below(w)] + 8 * _rng.below(WordsPerBlock);
    }
    acc += _profile.pRewriteWarm;
    if (r < acc && !_recent.empty()) {
        const std::size_t w =
            std::min<std::size_t>(_profile.warmWindow, _recent.size());
        return _recent[_rng.below(w)] + 8 * _rng.below(WordsPerBlock);
    }
    // Long-tail reuse skips the most recent allocations (those are still
    // buffer-resident and would coalesce); it targets blocks that have
    // long drained, so only large SecPBs capture the reuse.
    acc += _profile.pRewriteLong;
    constexpr std::size_t long_skip = 64;
    if (r < acc && _history.size() > long_skip) {
        const std::size_t w = std::min<std::size_t>(
            _profile.longWindow, _history.size() - long_skip);
        return _history[long_skip + _rng.below(w)] +
               8 * _rng.below(WordsPerBlock);
    }
    acc += _profile.pSequential;
    if (r < acc) {
        // Streaming: consecutive 8-byte words, flowing naturally from
        // block to block (so a pure stream writes each block 8 times)
        // and from page to page (so BMT leaf updates cluster).
        const Addr addr = _seqCursor;
        _seqCursor += 8;
        if (_seqCursor >= _regionBase + ws_bytes)
            _seqCursor = _regionBase;
        rememberAllocation(blockAlign(addr));
        return addr;
    }
    // Fresh block: stay within the current allocation page with
    // probability pPageCluster, else jump to a new random page. The
    // stream cursor follows so sequential stores continue from here.
    Addr block;
    if (_clusterPage != InvalidAddr && _rng.chance(_profile.pPageCluster)) {
        block = _clusterPage + BlockSize * _rng.below(BlocksPerPage);
    } else {
        _clusterPage = _regionBase +
            (_rng.below(ws_bytes) / PageSize) * PageSize;
        block = _clusterPage + BlockSize * _rng.below(BlocksPerPage);
    }
    _seqCursor = block + 8;
    rememberAllocation(block);
    return block + 8 * _rng.below(WordsPerBlock);
}

Addr
SyntheticGenerator::pickLoadAddr(MemLevel level)
{
    // Region-based locality: regions sized so that, against the Table I
    // hierarchy, a load drawn for level X predominantly hits level X
    // after warm-up. Read regions sit above the store working set.
    const std::uint64_t ws_bytes = _profile.workingSetPages * PageSize;
    const Addr read_base = _regionBase + ws_bytes;
    switch (level) {
      case MemLevel::L1:
        return read_base + blockAlign(_rng.below(32 * 1024));
      case MemLevel::L2:
        return read_base + blockAlign(_rng.below(384 * 1024));
      case MemLevel::L3:
        return read_base + blockAlign(_rng.below(3 * 1024 * 1024));
      case MemLevel::Mem:
      default:
        return read_base + blockAlign(_rng.below(256ULL << 20));
    }
}

bool
SyntheticGenerator::next(TraceOp &op)
{
    if (_emitted >= _budget)
        return false;

    // Alternate instruction bundles and memory operations. Each
    // instruction slot is a memory op with probability 1/(meanGap+1), so
    // bundle sizes are geometric -- drawn by inversion to keep the mem-op
    // density exact.
    if (!_inMemOp) {
        const double p = 1.0 / (_meanGap + 1.0);
        const double u = std::max(_rng.uniform(), 1e-300);
        std::uint64_t count = static_cast<std::uint64_t>(
            std::log(u) / std::log1p(-p));
        count = std::min<std::uint64_t>(count, _budget - _emitted);
        _inMemOp = true;
        if (count > 0) {
            op.kind = TraceOp::Kind::Instr;
            op.count = static_cast<std::uint32_t>(count);
            _emitted += count;
            return true;
        }
        // Zero-length bundle: fall through to the memory op.
    }
    _inMemOp = false;

    ++_emitted;
    if (_rng.uniform() < _pLoad) {
        ++_loads;
        op.kind = TraceOp::Kind::Load;
        const double r = _rng.uniform();
        if (r < _profile.pLoadMem)
            op.level = MemLevel::Mem;
        else if (r < _profile.pLoadMem + _profile.pLoadL3)
            op.level = MemLevel::L3;
        else if (r < _profile.pLoadMem + _profile.pLoadL3 +
                         _profile.pLoadL2)
            op.level = MemLevel::L2;
        else
            op.level = MemLevel::L1;
        op.addr = pickLoadAddr(op.level);
        return true;
    }

    ++_stores;
    const Addr addr = pickStoreAddr();
    rememberBlock(blockAlign(addr));
    op.kind = TraceOp::Kind::Store;
    op.addr = addr;
    op.value = _rng.next();
    return true;
}

} // namespace secpb
