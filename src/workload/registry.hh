/**
 * @file
 * Workload registry: name -> generator factory, with inline parameters.
 *
 * Every front end (the 13 benches, fault_soak, workload_suite, tests)
 * selects workloads through one grammar:
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. "kv_wal:puts=0.8,ckpt_every=256" or "replay:file=run.trc". The
 * registry owns the name space, validates parameters loudly (unknown
 * keys and malformed values are fatal, never ignored), and applies the
 * cross-cutting burst wrapper: every workload accepts burst_period /
 * burst_duty to duty-cycle its arrivals through BurstyArrivalGenerator.
 *
 * Registered names: kv_wal, fs_journal, pstore, zipf_mix, replay, and
 * spec (the synthetic SPEC profiles, so one flag reaches everything).
 */

#ifndef SECPB_WORKLOAD_REGISTRY_HH
#define SECPB_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/trace_op.hh"
#include "workload/profile.hh"

namespace secpb
{

/** A parsed "name:k=v,k=v" workload selector. */
struct WorkloadSpec
{
    std::string name;
    /** In the order written; duplicate keys are fatal at parse time. */
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse a selector string (fatal on syntax errors). */
    static WorkloadSpec parse(const std::string &text);

    /** Canonical round-trippable form ("name:k=v,..."). */
    std::string canonical() const;

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;
};

/** All registered workload names, in display order. */
const std::vector<std::string> &registeredWorkloadNames();

/** Whether @p name (bare, no params) is a registered workload. */
bool isRegisteredWorkload(const std::string &name);

/**
 * Build the generator a spec describes.
 *
 * @param spec parsed selector; unknown names/keys are fatal.
 * @param instructions emission budget (ignored by replay: the trace's
 *        own length governs).
 * @param seed RNG seed; identical (spec, instructions, seed) triples
 *        yield bit-identical op streams.
 */
std::unique_ptr<WorkloadGenerator> makeWorkload(
    const WorkloadSpec &spec, std::uint64_t instructions,
    std::uint64_t seed);

/** Convenience: parse and build in one step. */
std::unique_ptr<WorkloadGenerator> makeWorkload(
    const std::string &text, std::uint64_t instructions,
    std::uint64_t seed);

/**
 * Machine-model profile for registry-driven experiment points. The
 * generators own their locality, so only the profile's core-side
 * parameters (memory-level parallelism, PCM-miss overlap) matter; this
 * is a server-tuned profile used uniformly so results across workloads
 * are comparable.
 */
const BenchmarkProfile &serverWorkloadProfile();

} // namespace secpb

#endif // SECPB_WORKLOAD_REGISTRY_HH
