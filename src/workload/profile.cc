#include "workload/profile.hh"

#include "sim/logging.hh"

namespace secpb
{

namespace
{

/** Build the 18-benchmark table once. */
std::vector<BenchmarkProfile>
makeProfiles()
{
    // Fields: name, nonMemCpi, loadsPKI, storesPKI(PPTI),
    //         pHot, hotW, pWarm, warmW, pSeq, wsPages,
    //         pL2, pL3, pMem, memOverlap
    // Anchors from the paper: gamess PPTI 47.4 / NWPE ~2.1,
    // povray PPTI 38.8 / NWPE ~17.6 (Section VI-B).
    std::vector<BenchmarkProfile> v;
    auto add = [&v](const char *name, double cpi, double lpki, double spki,
                    double ph, unsigned hw, double pw, unsigned ww,
                    double ps, double plong, double pcluster,
                    std::uint64_t ws, double pl2, double pl3, double pmem,
                    double ov) {
        BenchmarkProfile p;
        p.name = name;
        p.nonMemCpi = cpi;
        p.loadsPerKiloInstr = lpki;
        p.storesPerKiloInstr = spki;
        p.pRewriteHot = ph;
        p.hotWindow = hw;
        p.pRewriteWarm = pw;
        p.warmWindow = ww;
        p.pSequential = ps;
        p.pRewriteLong = plong;
        p.pPageCluster = pcluster;
        p.workingSetPages = ws;
        p.pLoadL2 = pl2;
        p.pLoadL3 = pl3;
        p.pLoadMem = pmem;
        p.memOverlap = ov;
        v.push_back(p);
    };

    add("astar",      0.40, 280, 12.0, 0.72, 4, 0.05, 32, 0.04, 0.06, 0.50, 1024,
        0.05, 0.015, 0.004, 0.60);
    add("bwaves",     0.55, 300,  6.0, 0.02, 4, 0.02, 16, 0.92, 0.02, 0.30, 8192,
        0.08, 0.030, 0.012, 0.75);
    add("bzip2",      0.42, 260, 11.0, 0.84, 4, 0.03, 24, 0.03, 0.03, 0.50, 2048,
        0.05, 0.015, 0.003, 0.60);
    add("cactusADM",  0.50, 300, 14.0, 0.80, 4, 0.04, 32, 0.06, 0.04, 0.50, 4096,
        0.06, 0.020, 0.006, 0.70);
    add("gamess",     0.40, 180, 47.4, 0.42, 3, 0.05, 16, 0.02, 0.06, 0.92, 1536,
        0.03, 0.010, 0.001, 0.50);
    add("gcc",        0.50, 270, 16.0, 0.80, 6, 0.04, 32, 0.04, 0.05, 0.50, 2048,
        0.07, 0.020, 0.004, 0.60);
    add("gobmk",      0.40, 250, 22.0, 0.55, 4, 0.28, 80, 0.04, 0.08, 0.45, 1536,
        0.05, 0.015, 0.002, 0.50);
    add("gromacs",    0.38, 230,  8.0, 0.88, 4, 0.03, 24, 0.01, 0.03, 0.50, 1024,
        0.04, 0.010, 0.002, 0.55);
    add("h264ref",    0.38, 290,  7.0, 0.90, 4, 0.02, 16, 0.01, 0.03, 0.50,  512,
        0.04, 0.012, 0.002, 0.50);
    add("hmmer",      0.35, 310, 13.0, 0.88, 4, 0.02, 16, 0.01, 0.03, 0.50,  512,
        0.03, 0.008, 0.001, 0.50);
    add("lbm",        0.40, 280, 14.0, 0.03, 4, 0.03, 16, 0.75, 0.04, 0.40, 16384,
        0.07, 0.030, 0.015, 0.80);
    add("leslie3d",   0.50, 300, 10.0, 0.10, 4, 0.08, 32, 0.55, 0.05, 0.30, 8192,
        0.07, 0.030, 0.010, 0.70);
    add("libquantum", 0.60, 320,  5.0, 0.02, 4, 0.01, 16, 0.94, 0.02, 0.30, 16384,
        0.08, 0.040, 0.018, 0.85);
    add("mcf",        0.55, 350,  9.0, 0.62, 6, 0.10, 48, 0.02, 0.06, 0.20, 8192,
        0.10, 0.050, 0.028, 0.65);
    add("milc",       0.55, 290,  8.0, 0.06, 4, 0.06, 24, 0.60, 0.04, 0.30, 8192,
        0.07, 0.030, 0.012, 0.70);
    add("omnetpp",    0.70, 300, 13.0, 0.84, 8, 0.03, 64, 0.01, 0.04, 0.30, 4096,
        0.08, 0.040, 0.012, 0.60);
    add("povray",     0.42, 260, 38.8, 0.87, 3, 0.02, 16, 0.02, 0.03, 0.60, 1024,
        0.04, 0.012, 0.002, 0.50);
    add("sjeng",      0.45, 270,  6.0, 0.92, 6, 0.01, 32, 0.01, 0.02, 0.50, 1024,
        0.05, 0.020, 0.003, 0.55);
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2006Profiles()
{
    static const std::vector<BenchmarkProfile> profiles = makeProfiles();
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : spec2006Profiles())
        if (p.name == name)
            return p;
    fatal("unknown benchmark profile '%s'", name.c_str());
}

} // namespace secpb
