/**
 * @file
 * Synthetic benchmark profiles standing in for SPEC CPU2006.
 *
 * The paper evaluates 18 SPEC2006 benchmarks (250M-instruction SimPoint
 * regions). SPEC binaries and inputs cannot be redistributed, so we model
 * each benchmark by the statistics that, per the paper's own analysis
 * (Section VI-B), determine secure-persistency overhead:
 *
 *  - PPTI: persists (stores) per thousand instructions;
 *  - NWPE: writes per SecPB entry residency, produced here by a
 *    reuse-distance mixture (hot / warm / streaming / fresh stores);
 *  - base CPI, from the non-memory CPI and the load-level mixture.
 *
 * The two anchor points the paper quotes are matched directly: gamess
 * (PPTI 47.4, NWPE 2.1) and povray (PPTI 38.8, NWPE 17.6). Other values
 * are plausible assignments for those benchmarks' well-known behaviour
 * (e.g. mcf is a pointer-chasing cache thrasher; lbm and bwaves stream;
 * gobmk's reuse distances straddle the SecPB capacity so it keeps gaining
 * from larger buffers, Fig. 7). EXPERIMENTS.md records the measured
 * PPTI/NWPE per profile next to the paper's numbers.
 */

#ifndef SECPB_WORKLOAD_PROFILE_HH
#define SECPB_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace secpb
{

/** Statistical model of one benchmark's memory behaviour. */
struct BenchmarkProfile
{
    std::string name;

    /** CPI of the non-memory instruction stream (4-wide OOO core). */
    double nonMemCpi = 0.35;

    double loadsPerKiloInstr = 250.0;
    double storesPerKiloInstr = 10.0;   ///< == PPTI.

    /** @name Store reuse-distance mixture.
     * A store rewrites one of the last `hotWindow` distinct blocks with
     * probability pRewriteHot; one of the last `warmWindow` with
     * pRewriteWarm; continues a sequential stream with pSequential; and
     * otherwise touches a fresh random block in the working set.
     * @{ */
    double pRewriteHot = 0.3;
    unsigned hotWindow = 4;
    double pRewriteWarm = 0.2;
    unsigned warmWindow = 24;
    /** Long-tail reuse: rewrites of blocks hundreds of blocks back.
     * Invisible to small SecPBs (the block has long drained) but captured
     * by large ones -- this is what keeps Fig. 7 improving past 64
     * entries for capacity-sensitive workloads. */
    double pRewriteLong = 0.05;
    unsigned longWindow = 448;
    double pSequential = 0.2;
    /**
     * Page clustering of fresh blocks: with this probability a fresh
     * store picks another block of the current allocation page instead of
     * jumping to a new random page. High values model allocators and
     * array writers that fill pages before moving on -- this is what
     * makes counter-cache hits and BMT leaf-update merging possible.
     */
    double pPageCluster = 0.4;
    /** @} */

    /** Store working set, in 4 KB pages. */
    std::uint64_t workingSetPages = 4096;

    /** @name Load hit-level mixture (conditional on being a load). */
    /** @{ */
    double pLoadL2 = 0.06;
    double pLoadL3 = 0.02;
    double pLoadMem = 0.005;
    /** @} */

    /** Fraction of a PCM-read miss hidden by MLP / OOO overlap. */
    double memOverlap = 0.6;

    /** Effective PCM-load penalty in cycles given @p raw_read_latency. */
    double
    memPenalty(double raw_read_latency) const
    {
        return raw_read_latency * (1.0 - memOverlap);
    }
};

/** The 18 SPEC2006-like profiles used throughout the evaluation. */
const std::vector<BenchmarkProfile> &spec2006Profiles();

/** Look up a profile by name (fatal on unknown name). */
const BenchmarkProfile &profileByName(const std::string &name);

} // namespace secpb

#endif // SECPB_WORKLOAD_PROFILE_HH
