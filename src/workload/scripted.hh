/**
 * @file
 * Scripted workloads: an explicit op list with a small builder API.
 *
 * Used by tests (to drive exact store sequences through the SecPB) and by
 * example applications (to express application-level persistence logic,
 * e.g. a key-value store's write-ahead log, as a trace).
 */

#ifndef SECPB_WORKLOAD_SCRIPTED_HH
#define SECPB_WORKLOAD_SCRIPTED_HH

#include <vector>

#include "cpu/trace_op.hh"

namespace secpb
{

/** A workload defined by an explicit list of TraceOps. */
class ScriptedGenerator : public WorkloadGenerator
{
  public:
    ScriptedGenerator() = default;

    explicit ScriptedGenerator(std::vector<TraceOp> ops)
        : _ops(std::move(ops))
    {}

    /** @name Builder API.
     * Ops default to the current address space set by asid(); store()
     * may still pin one explicitly. persistBarrier()/flushFence() emit
     * the commit-point op that holds retirement until every prior store
     * is in the persistence domain -- so tests and examples can script
     * WAL-commit / journal-commit sequences, including multi-tenant
     * ones, without hand-building TraceOps. */
    /** @{ */
    /** Set the address space subsequent ops belong to. */
    ScriptedGenerator &
    asid(std::uint32_t id)
    {
        _asid = id;
        return *this;
    }

    ScriptedGenerator &
    store(Addr addr, std::uint64_t value)
    {
        return store(addr, value, _asid);
    }

    ScriptedGenerator &
    store(Addr addr, std::uint64_t value, std::uint32_t asid)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Store;
        op.addr = addr;
        op.value = value;
        op.asid = asid;
        _ops.push_back(op);
        return *this;
    }

    ScriptedGenerator &
    load(MemLevel level = MemLevel::L1)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Load;
        op.level = level;
        op.asid = _asid;
        _ops.push_back(op);
        return *this;
    }

    ScriptedGenerator &
    instr(std::uint32_t count)
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Instr;
        op.count = count;
        op.asid = _asid;
        _ops.push_back(op);
        return *this;
    }

    /** A persist barrier (e.g. a WAL commit's ordering point). */
    ScriptedGenerator &
    persistBarrier()
    {
        TraceOp op;
        op.kind = TraceOp::Kind::Barrier;
        op.asid = _asid;
        _ops.push_back(op);
        return *this;
    }

    /** Flush + fence (clwb; sfence): same ordering semantics here --
     *  the persistence domain is the SecPB, so a fence that waits for
     *  flushed lines to persist is a persist barrier. */
    ScriptedGenerator &
    flushFence()
    {
        return persistBarrier();
    }
    /** @} */

    bool
    next(TraceOp &op) override
    {
        if (_cursor >= _ops.size())
            return false;
        op = _ops[_cursor++];
        return true;
    }

    /** Restart from the beginning (for re-runs). */
    void rewind() { _cursor = 0; }

    std::size_t size() const { return _ops.size(); }

  private:
    std::vector<TraceOp> _ops;
    std::size_t _cursor = 0;
    std::uint32_t _asid = 0;
};

} // namespace secpb

#endif // SECPB_WORKLOAD_SCRIPTED_HH
