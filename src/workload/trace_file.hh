/**
 * @file
 * The secpb-trace file format: versioned, seekable TraceOp streams.
 *
 * Two encodings share one schema-checked header so real memtraces (via
 * tools/convert_memtrace.py) and recorded generator runs replay through
 * the exact same path:
 *
 *  - text: line oriented and diffable.
 *        secpb-trace v1 text
 *        meta <key> <value>       (zero or more)
 *        ops <count>
 *        I <count>
 *        L <level> <addr> <asid>      level in {l1,l2,l3,mem}
 *        S <addr> <value> <asid>
 *        B <asid>
 *        end
 *  - binary: compact records for server-scale traces. Fixed 20-byte
 *    header (magic "SECPBTRC", u16 version, u8 encoding, u8 meta count,
 *    u64 op count, little endian), length-prefixed meta strings, then
 *    one tag byte per op (kind | level << 4) followed by LEB128 varints
 *    (store values stay fixed 8 bytes -- they are pseudo-random and do
 *    not compress).
 *
 * Both encodings round-trip TraceOps losslessly and deterministically:
 * write(read(f)) == f. Headers are validated eagerly and loudly -- a bad
 * magic, version, encoding, or a truncated payload is fatal, never a
 * silently shortened workload. Readers are seekable: rewind() returns
 * to the first op without reopening, which is what lets one
 * ReplayGenerator instance drive multi-cycle fault experiments.
 */

#ifndef SECPB_WORKLOAD_TRACE_FILE_HH
#define SECPB_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpu/trace_op.hh"

namespace secpb
{

/** On-disk encodings of a trace file. */
enum class TraceEncoding
{
    Text,
    Binary,
};

/** Parse "text"/"binary" (fatal on anything else). */
TraceEncoding parseTraceEncoding(const std::string &name);
const char *traceEncodingName(TraceEncoding enc);

/** Streaming writer; the op count is patched into the header on close. */
class TraceFileWriter
{
  public:
    /**
     * Open @p path and write the header. @p meta records free-form
     * provenance (workload spec, seed) replay tools can display.
     */
    TraceFileWriter(
        const std::string &path, TraceEncoding encoding,
        std::vector<std::pair<std::string, std::string>> meta = {});
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one op. */
    void add(const TraceOp &op);

    /** Finish: patch the op count, flush, fail loudly on I/O errors.
     *  Idempotent; the destructor calls it as a backstop. */
    void close();

    std::uint64_t numOps() const { return _numOps; }

  private:
    void writeHeader();

    std::string _path;
    TraceEncoding _encoding;
    std::vector<std::pair<std::string, std::string>> _meta;
    std::ofstream _out;
    std::uint64_t _numOps = 0;
    std::ofstream::pos_type _countPos = 0;  ///< Binary: patch offset.
    bool _closed = false;
};

/** Validating reader over either encoding (auto-detected). */
class TraceFileReader
{
  public:
    /** Open @p path, validate the header, position at the first op. */
    explicit TraceFileReader(const std::string &path);

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    /**
     * Read the next op. @return false once all `numOps()` ops were
     * consumed; a malformed or truncated record is fatal.
     */
    bool next(TraceOp &op);

    /** Seek back to the first op. */
    void rewind();

    TraceEncoding encoding() const { return _encoding; }
    std::uint64_t numOps() const { return _numOps; }
    std::uint64_t opsRead() const { return _opsRead; }

    const std::vector<std::pair<std::string, std::string>> &
    meta() const
    {
        return _meta;
    }

    /** First value recorded for @p key, or @p fallback. */
    std::string metaValue(const std::string &key,
                          const std::string &fallback = "") const;

  private:
    void openText(std::ifstream &probe);
    void openBinary();
    bool nextText(TraceOp &op);
    bool nextBinary(TraceOp &op);

    std::string _path;
    TraceEncoding _encoding = TraceEncoding::Text;
    std::ifstream _in;
    std::uint64_t _numOps = 0;
    std::uint64_t _opsRead = 0;
    std::ifstream::pos_type _payloadPos = 0;
    std::vector<std::pair<std::string, std::string>> _meta;
};

/** Replays a trace file as a WorkloadGenerator. */
class ReplayGenerator : public WorkloadGenerator
{
  public:
    explicit ReplayGenerator(const std::string &path);

    bool next(TraceOp &op) override;
    const WorkloadCounters *counters() const override { return &_ctr; }

    /** Restart the trace from the first op (multi-cycle experiments). */
    void rewind();

    const TraceFileReader &reader() const { return *_reader; }

  private:
    std::unique_ptr<TraceFileReader> _reader;
    WorkloadCounters _ctr;
};

/**
 * Tees an inner generator into a trace file: the stream the consumer
 * sees is exactly what lands on disk, so a replay of the recording is
 * byte-identical to the live run.
 */
class RecordingGenerator : public WorkloadGenerator
{
  public:
    RecordingGenerator(
        std::unique_ptr<WorkloadGenerator> inner, const std::string &path,
        TraceEncoding encoding = TraceEncoding::Binary,
        std::vector<std::pair<std::string, std::string>> meta = {});

    bool next(TraceOp &op) override;

    const WorkloadCounters *
    counters() const override
    {
        return _inner->counters();
    }

    /** Close the underlying writer (also done on exhaustion). */
    void finish();

  private:
    std::unique_ptr<WorkloadGenerator> _inner;
    TraceFileWriter _writer;
    bool _finished = false;
};

/** Count how a WorkloadCounters advances for one op (shared helper). */
inline void
countOp(WorkloadCounters &c, const TraceOp &op)
{
    ++c.ops;
    switch (op.kind) {
      case TraceOp::Kind::Instr:
        c.instructions += op.count;
        break;
      case TraceOp::Kind::Load:
        ++c.instructions;
        ++c.loads;
        break;
      case TraceOp::Kind::Store:
        ++c.instructions;
        ++c.stores;
        break;
      case TraceOp::Kind::Barrier:
        ++c.instructions;
        ++c.barriers;
        break;
    }
}

} // namespace secpb

#endif // SECPB_WORKLOAD_TRACE_FILE_HH
