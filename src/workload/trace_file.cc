#include "workload/trace_file.hh"

#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace secpb
{

namespace
{

constexpr char TextMagic[] = "secpb-trace";
constexpr char BinaryMagic[8] = {'S', 'E', 'C', 'P', 'B', 'T', 'R', 'C'};
constexpr std::uint16_t FormatVersion = 1;
constexpr std::size_t BinaryHeaderBytes = 8 + 2 + 1 + 1 + 8;

const char *
levelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1:  return "l1";
      case MemLevel::L2:  return "l2";
      case MemLevel::L3:  return "l3";
      case MemLevel::Mem: return "mem";
    }
    return "?";
}

MemLevel
parseLevel(const std::string &name, const std::string &path)
{
    if (name == "l1")
        return MemLevel::L1;
    if (name == "l2")
        return MemLevel::L2;
    if (name == "l3")
        return MemLevel::L3;
    if (name == "mem")
        return MemLevel::Mem;
    fatal("%s: unknown load level '%s'", path.c_str(), name.c_str());
}

void
putVarint(std::ofstream &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.put(static_cast<char>(v));
}

std::uint64_t
getVarint(std::ifstream &in, const std::string &path)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const int c = in.get();
        fatal_if(c == std::ifstream::traits_type::eof(),
                 "%s: truncated varint", path.c_str());
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return v;
    }
    fatal("%s: varint overruns 64 bits", path.c_str());
    return 0;
}

void
putU64(std::ofstream &out, std::uint64_t v)
{
    char b[8];
    for (unsigned i = 0; i < 8; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    out.write(b, 8);
}

std::uint64_t
getU64(std::ifstream &in, const std::string &path)
{
    char b[8];
    in.read(b, 8);
    fatal_if(in.gcount() != 8, "%s: truncated 64-bit field",
             path.c_str());
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(b[i])) << (8 * i);
    return v;
}

void
putU16(std::ofstream &out, std::uint16_t v)
{
    out.put(static_cast<char>(v & 0xff));
    out.put(static_cast<char>(v >> 8));
}

std::uint16_t
getU16(std::ifstream &in, const std::string &path)
{
    const int lo = in.get();
    const int hi = in.get();
    fatal_if(hi == std::ifstream::traits_type::eof(),
             "%s: truncated 16-bit field", path.c_str());
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

void
putString(std::ofstream &out, const std::string &s)
{
    putVarint(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getString(std::ifstream &in, const std::string &path)
{
    const std::uint64_t n = getVarint(in, path);
    fatal_if(n > (1ULL << 20), "%s: meta string of %llu bytes",
             path.c_str(), static_cast<unsigned long long>(n));
    std::string s(n, '\0');
    in.read(s.data(), static_cast<std::streamsize>(n));
    fatal_if(static_cast<std::uint64_t>(in.gcount()) != n,
             "%s: truncated meta string", path.c_str());
    return s;
}

std::uint8_t
opTag(const TraceOp &op)
{
    return static_cast<std::uint8_t>(op.kind) |
           static_cast<std::uint8_t>(
               static_cast<unsigned>(op.level) << 4);
}

} // namespace

TraceEncoding
parseTraceEncoding(const std::string &name)
{
    if (name == "text")
        return TraceEncoding::Text;
    if (name == "binary")
        return TraceEncoding::Binary;
    fatal("unknown trace encoding '%s' (want text|binary)", name.c_str());
    return TraceEncoding::Text;
}

const char *
traceEncodingName(TraceEncoding enc)
{
    return enc == TraceEncoding::Text ? "text" : "binary";
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

TraceFileWriter::TraceFileWriter(
    const std::string &path, TraceEncoding encoding,
    std::vector<std::pair<std::string, std::string>> meta)
    : _path(path), _encoding(encoding), _meta(std::move(meta)),
      _out(path, _encoding == TraceEncoding::Binary
                     ? std::ios::binary | std::ios::trunc
                     : std::ios::trunc)
{
    fatal_if(!_out, "cannot open trace file '%s' for writing",
             path.c_str());
    for (const auto &[k, v] : _meta)
        fatal_if(k.empty() ||
                     k.find_first_of(" \n") != std::string::npos ||
                     v.find('\n') != std::string::npos,
                 "trace meta key/value ('%s') must be newline-free and "
                 "the key one word", k.c_str());
    fatal_if(_meta.size() > 255, "at most 255 trace meta entries");
    writeHeader();
}

TraceFileWriter::~TraceFileWriter()
{
    if (!_closed)
        close();
}

void
TraceFileWriter::writeHeader()
{
    if (_encoding == TraceEncoding::Text) {
        _out << TextMagic << " v" << FormatVersion << " text\n";
        for (const auto &[k, v] : _meta)
            _out << "meta " << k << " " << v << "\n";
        // The op count is patched on close; a fixed-width field keeps
        // the payload offset stable so the patch never shifts it.
        _countPos = _out.tellp();
        _out << "ops " << std::string(20, '0') << "\n";
    } else {
        _out.write(BinaryMagic, sizeof(BinaryMagic));
        putU16(_out, FormatVersion);
        _out.put(static_cast<char>(1));  // encoding: 1 = binary
        _out.put(static_cast<char>(_meta.size()));
        _countPos = _out.tellp();
        putU64(_out, 0);
        for (const auto &[k, v] : _meta) {
            putString(_out, k);
            putString(_out, v);
        }
    }
}

void
TraceFileWriter::add(const TraceOp &op)
{
    panic_if(_closed, "TraceFileWriter::add after close");
    fatal_if(op.kind == TraceOp::Kind::Store && op.addr % 8 != 0,
             "trace '%s': store address %llx is not 8-byte aligned",
             _path.c_str(), static_cast<unsigned long long>(op.addr));
    ++_numOps;
    if (_encoding == TraceEncoding::Text) {
        switch (op.kind) {
          case TraceOp::Kind::Instr:
            _out << "I " << op.count << "\n";
            break;
          case TraceOp::Kind::Load:
            _out << "L " << levelName(op.level) << " " << op.addr << " "
                 << op.asid << "\n";
            break;
          case TraceOp::Kind::Store:
            _out << "S " << op.addr << " " << op.value << " " << op.asid
                 << "\n";
            break;
          case TraceOp::Kind::Barrier:
            _out << "B " << op.asid << "\n";
            break;
        }
        return;
    }
    _out.put(static_cast<char>(opTag(op)));
    switch (op.kind) {
      case TraceOp::Kind::Instr:
        putVarint(_out, op.count);
        break;
      case TraceOp::Kind::Load:
        putVarint(_out, op.addr);
        putVarint(_out, op.asid);
        break;
      case TraceOp::Kind::Store:
        putVarint(_out, op.addr);
        putU64(_out, op.value);
        putVarint(_out, op.asid);
        break;
      case TraceOp::Kind::Barrier:
        putVarint(_out, op.asid);
        break;
    }
}

void
TraceFileWriter::close()
{
    if (_closed)
        return;
    _closed = true;
    if (_encoding == TraceEncoding::Text)
        _out << "end\n";
    _out.seekp(_countPos);
    if (_encoding == TraceEncoding::Text) {
        std::ostringstream count;
        count << _numOps;
        std::string padded(20 - count.str().size(), '0');
        _out << "ops " << padded << count.str();
    } else {
        putU64(_out, _numOps);
    }
    _out.flush();
    fatal_if(!_out, "I/O error writing trace file '%s'", _path.c_str());
    _out.close();
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

TraceFileReader::TraceFileReader(const std::string &path) : _path(path)
{
    std::ifstream probe(path, std::ios::binary);
    fatal_if(!probe, "cannot open trace file '%s'", path.c_str());
    char magic[8] = {};
    probe.read(magic, sizeof(magic));
    if (probe.gcount() == 8 &&
        std::memcmp(magic, BinaryMagic, sizeof(BinaryMagic)) == 0) {
        _encoding = TraceEncoding::Binary;
        _in.open(path, std::ios::binary);
        openBinary();
    } else {
        _encoding = TraceEncoding::Text;
        openText(probe);
    }
}

void
TraceFileReader::openText(std::ifstream &probe)
{
    probe.seekg(0);
    probe.clear();
    _in.open(_path);
    fatal_if(!_in, "cannot open trace file '%s'", _path.c_str());

    std::string line;
    fatal_if(!std::getline(_in, line),
             "%s: empty file, not a secpb-trace", _path.c_str());
    std::istringstream hdr(line);
    std::string magic, version, enc;
    hdr >> magic >> version >> enc;
    fatal_if(magic != TextMagic,
             "%s: bad magic '%s' (want '%s')", _path.c_str(),
             magic.c_str(), TextMagic);
    fatal_if(version != "v1",
             "%s: unsupported trace version '%s' (want v1)",
             _path.c_str(), version.c_str());
    fatal_if(enc != "text", "%s: bad encoding tag '%s' in text header",
             _path.c_str(), enc.c_str());

    while (std::getline(_in, line)) {
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "meta") {
            std::string key;
            ls >> key;
            std::string value;
            std::getline(ls, value);
            if (!value.empty() && value.front() == ' ')
                value.erase(0, 1);
            fatal_if(key.empty(), "%s: meta line without a key",
                     _path.c_str());
            _meta.emplace_back(key, value);
            continue;
        }
        fatal_if(word != "ops",
                 "%s: expected 'ops <count>' after header, got '%s'",
                 _path.c_str(), word.c_str());
        std::string count;
        ls >> count;
        fatal_if(count.empty() ||
                     count.find_first_not_of("0123456789") !=
                         std::string::npos,
                 "%s: malformed op count '%s'", _path.c_str(),
                 count.c_str());
        _numOps = std::stoull(count);
        _payloadPos = _in.tellg();
        return;
    }
    fatal("%s: header ends without an 'ops' line", _path.c_str());
}

void
TraceFileReader::openBinary()
{
    fatal_if(!_in, "cannot open trace file '%s'", _path.c_str());
    _in.seekg(8);  // past the magic the probe verified
    const std::uint16_t version = getU16(_in, _path);
    fatal_if(version != FormatVersion,
             "%s: unsupported trace version %u (want %u)", _path.c_str(),
             version, FormatVersion);
    const int enc = _in.get();
    fatal_if(enc != 1, "%s: binary header carries encoding tag %d",
             _path.c_str(), enc);
    const int n_meta = _in.get();
    fatal_if(n_meta == std::ifstream::traits_type::eof(),
             "%s: truncated header (%zu-byte minimum)", _path.c_str(),
             BinaryHeaderBytes);
    _numOps = getU64(_in, _path);
    for (int i = 0; i < n_meta; ++i) {
        std::string k = getString(_in, _path);
        std::string v = getString(_in, _path);
        _meta.emplace_back(std::move(k), std::move(v));
    }
    _payloadPos = _in.tellg();
}

void
TraceFileReader::rewind()
{
    _in.clear();
    _in.seekg(_payloadPos);
    _opsRead = 0;
}

std::string
TraceFileReader::metaValue(const std::string &key,
                           const std::string &fallback) const
{
    for (const auto &[k, v] : _meta)
        if (k == key)
            return v;
    return fallback;
}

bool
TraceFileReader::next(TraceOp &op)
{
    if (_opsRead >= _numOps)
        return false;
    const bool ok = _encoding == TraceEncoding::Text ? nextText(op)
                                                     : nextBinary(op);
    fatal_if(!ok, "%s: truncated after %llu of %llu ops", _path.c_str(),
             static_cast<unsigned long long>(_opsRead),
             static_cast<unsigned long long>(_numOps));
    ++_opsRead;
    return true;
}

bool
TraceFileReader::nextText(TraceOp &op)
{
    std::string line;
    while (std::getline(_in, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        fatal_if(word == "end",
                 "%s: 'end' after %llu ops but header promised %llu",
                 _path.c_str(),
                 static_cast<unsigned long long>(_opsRead),
                 static_cast<unsigned long long>(_numOps));
        op = TraceOp{};
        bool parsed = false;
        if (word == "I") {
            op.kind = TraceOp::Kind::Instr;
            parsed = static_cast<bool>(ls >> op.count);
        } else if (word == "L") {
            op.kind = TraceOp::Kind::Load;
            std::string level;
            parsed = static_cast<bool>(ls >> level >> op.addr >> op.asid);
            if (parsed)
                op.level = parseLevel(level, _path);
        } else if (word == "S") {
            op.kind = TraceOp::Kind::Store;
            parsed =
                static_cast<bool>(ls >> op.addr >> op.value >> op.asid);
        } else if (word == "B") {
            op.kind = TraceOp::Kind::Barrier;
            parsed = static_cast<bool>(ls >> op.asid);
        } else {
            fatal("%s: unknown op record '%s'", _path.c_str(),
                  word.c_str());
        }
        fatal_if(!parsed, "%s: malformed %s record '%s'", _path.c_str(),
                 word.c_str(), line.c_str());
        return true;
    }
    return false;
}

bool
TraceFileReader::nextBinary(TraceOp &op)
{
    const int tag = _in.get();
    if (tag == std::ifstream::traits_type::eof())
        return false;
    const unsigned kind = tag & 0x0f;
    const unsigned level = (tag >> 4) & 0x0f;
    fatal_if(kind > 3 || level > 3, "%s: corrupt op tag 0x%02x",
             _path.c_str(), tag);
    op = TraceOp{};
    op.kind = static_cast<TraceOp::Kind>(kind);
    op.level = static_cast<MemLevel>(level);
    switch (op.kind) {
      case TraceOp::Kind::Instr:
        op.count = static_cast<std::uint32_t>(getVarint(_in, _path));
        break;
      case TraceOp::Kind::Load:
        op.addr = getVarint(_in, _path);
        op.asid = static_cast<std::uint32_t>(getVarint(_in, _path));
        break;
      case TraceOp::Kind::Store:
        op.addr = getVarint(_in, _path);
        op.value = getU64(_in, _path);
        op.asid = static_cast<std::uint32_t>(getVarint(_in, _path));
        break;
      case TraceOp::Kind::Barrier:
        op.asid = static_cast<std::uint32_t>(getVarint(_in, _path));
        break;
    }
    return true;
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

ReplayGenerator::ReplayGenerator(const std::string &path)
    : _reader(std::make_unique<TraceFileReader>(path))
{}

bool
ReplayGenerator::next(TraceOp &op)
{
    if (!_reader->next(op))
        return false;
    countOp(_ctr, op);
    return true;
}

void
ReplayGenerator::rewind()
{
    _reader->rewind();
    _ctr = WorkloadCounters{};
}

RecordingGenerator::RecordingGenerator(
    std::unique_ptr<WorkloadGenerator> inner, const std::string &path,
    TraceEncoding encoding,
    std::vector<std::pair<std::string, std::string>> meta)
    : _inner(std::move(inner)), _writer(path, encoding, std::move(meta))
{
    fatal_if(!_inner, "RecordingGenerator needs an inner workload");
}

bool
RecordingGenerator::next(TraceOp &op)
{
    if (!_inner->next(op)) {
        finish();
        return false;
    }
    _writer.add(op);
    return true;
}

void
RecordingGenerator::finish()
{
    if (_finished)
        return;
    _finished = true;
    _writer.close();
}

} // namespace secpb
