/**
 * @file
 * Deterministic Zipfian rank sampling for the heavy-traffic generators.
 *
 * Key popularity in production KV stores and multi-tenant request rates
 * both follow power laws (YCSB's default is Zipf with s = 0.99). The
 * sampler precomputes the normalized CDF over n ranks once and draws by
 * binary search on a single uniform variate, so draws cost O(log n),
 * depend only on the Rng stream, and are bit-identical across hosts.
 */

#ifndef SECPB_WORKLOAD_ZIPF_HH
#define SECPB_WORKLOAD_ZIPF_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace secpb
{

/** Zipf(s) sampler over ranks [0, n); rank 0 is the most popular. */
class ZipfSampler
{
  public:
    /** Precompute the CDF. @p n must be in [1, 2^24] (table memory). */
    ZipfSampler(std::uint64_t n, double exponent)
    {
        fatal_if(n == 0, "ZipfSampler needs at least one rank");
        fatal_if(n > (1ULL << 24),
                 "ZipfSampler rank count %llu too large (max 2^24)",
                 static_cast<unsigned long long>(n));
        fatal_if(exponent < 0.0 || !std::isfinite(exponent),
                 "Zipf exponent %f must be finite and >= 0", exponent);
        _cdf.resize(n);
        double sum = 0.0;
        for (std::uint64_t r = 0; r < n; ++r) {
            sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
            _cdf[r] = sum;
        }
        const double inv = 1.0 / sum;
        for (double &c : _cdf)
            c *= inv;
        _cdf.back() = 1.0;  // guard against rounding at the tail
    }

    /** Draw one rank using (exactly) one uniform variate from @p rng. */
    std::uint64_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        const auto it = std::upper_bound(_cdf.begin(), _cdf.end(), u);
        return static_cast<std::uint64_t>(it - _cdf.begin());
    }

    std::uint64_t numRanks() const { return _cdf.size(); }

    /** Probability mass of the @p k most popular ranks. */
    double
    headMass(std::uint64_t k) const
    {
        if (k == 0)
            return 0.0;
        return _cdf[std::min<std::uint64_t>(k, _cdf.size()) - 1];
    }

  private:
    std::vector<double> _cdf;  ///< cdf[r] = P(rank <= r), ascending.
};

} // namespace secpb

#endif // SECPB_WORKLOAD_ZIPF_HH
