/**
 * @file
 * Synthetic trace generator driven by a BenchmarkProfile.
 *
 * Produces a deterministic (seeded) interleaving of instruction bundles,
 * loads (with hit levels drawn from the profile's mixture), and stores
 * whose addresses follow the profile's reuse-distance model. Store values
 * are pseudo-random, so the functional persistence path carries real data.
 */

#ifndef SECPB_WORKLOAD_SYNTHETIC_HH
#define SECPB_WORKLOAD_SYNTHETIC_HH

#include <deque>

#include "cpu/trace_op.hh"
#include "sim/rng.hh"
#include "workload/profile.hh"

namespace secpb
{

/** Profile-driven synthetic workload. */
class SyntheticGenerator : public WorkloadGenerator
{
  public:
    /**
     * @param profile the benchmark model to imitate.
     * @param total_instructions trace length (instructions incl. mem ops).
     * @param seed RNG seed; identical (profile, seed) pairs yield
     *        bit-identical traces.
     * @param region_base lowest data address the workload touches.
     */
    SyntheticGenerator(const BenchmarkProfile &profile,
                       std::uint64_t total_instructions,
                       std::uint64_t seed = 1,
                       Addr region_base = 0);

    bool next(TraceOp &op) override;

    std::uint64_t instructionsEmitted() const { return _emitted; }
    std::uint64_t storesEmitted() const { return _stores; }
    std::uint64_t loadsEmitted() const { return _loads; }

  private:
    Addr pickStoreAddr();
    void rememberBlock(Addr block);

    const BenchmarkProfile &_profile;
    std::uint64_t _budget;
    std::uint64_t _emitted = 0;
    std::uint64_t _stores = 0;
    std::uint64_t _loads = 0;
    Rng _rng;
    Addr _regionBase;

    /** Mean plain-instruction gap between memory operations. */
    double _meanGap;
    /** P(load | memory op). */
    double _pLoad;

    /** Recently written blocks, most recent at the front (may contain
     * duplicates; feeds the hot/warm windows). */
    std::deque<Addr> _recent;
    static constexpr std::size_t RecentCap = 512;

    /** Distinct block allocation history (fresh/stream blocks only),
     * feeding the long-tail reuse window. */
    std::deque<Addr> _history;

    /** Record a newly allocated (fresh or stream) block in the history. */
    void rememberAllocation(Addr block);

    /** Sequential-stream cursor (block address). */
    Addr _seqCursor;

    /** Current allocation page for clustered fresh blocks. */
    Addr _clusterPage = InvalidAddr;

    /** Pick a load address whose locality matches the profile's
     *  hit-level mixture (for the address-driven load path). */
    Addr pickLoadAddr(MemLevel level);

    /** Alternation state: next emission is the memory op of the pair. */
    bool _inMemOp = false;
};

} // namespace secpb

#endif // SECPB_WORKLOAD_SYNTHETIC_HH
