/**
 * @file
 * Persist-buffer entry layout (paper Figure 5).
 *
 * Each SecPB entry tracks the data plaintext (Dp, 64 B) plus -- depending
 * on the scheme -- the pre-computed one-time pad (O, 64 B), data ciphertext
 * (Dc, 64 B), counter snapshot (C), a BMT-root-updated acknowledgement bit
 * (B), and the MAC (M). Every field carries a valid bit; an entry is
 * *drainable* once the scheme's early subset is valid, and *complete* once
 * all six are.
 */

#ifndef SECPB_PB_ENTRY_HH
#define SECPB_PB_ENTRY_HH

#include <cstdint>

#include "crypto/cipher.hh"
#include "crypto/counters.hh"
#include "mem/block_data.hh"
#include "sim/types.hh"

namespace secpb
{

/** One persist-buffer entry. */
struct PbEntry
{
    bool valid = false;
    Addr addr = InvalidAddr;       ///< Block-aligned data address.

    /**
     * Address-space identifier of the owning process. Only used by the
     * drain-process application-crash policy (paper Section III-B); the
     * default drain-all policy ignores it (and hardware then doesn't
     * need the tag bits).
     */
    std::uint32_t asid = 0;

    BlockData plaintext{};         ///< Dp: the persisted plaintext.
    BlockData otp{};               ///< O: pre-computed one-time pad.
    BlockData ciphertext{};        ///< Dc: pre-computed ciphertext.
    BlockCounter counter{};        ///< C: the counter this residency uses.
    MacValue mac = 0;              ///< M: pre-computed MAC.

    /** @name Per-field valid bits (vB acknowledges the BMT root update). */
    /** @{ */
    bool vData = false;
    bool vCtr = false;
    bool vOtp = false;
    bool vCt = false;
    bool vMac = false;
    bool vBmt = false;
    /** @} */

    /**
     * Functional flag: the counter increment for this residency has been
     * applied to the counter store. Kept separate from the vCtr timing bit
     * so a crash mid-operation never double-increments (which would
     * desynchronize pads/MACs computed from the first increment).
     */
    bool ctrIncremented = false;

    /** Early metadata operations still in flight for this entry. */
    unsigned pendingEarlyOps = 0;

    /** Drain-time (late) operations still in flight. */
    unsigned drainPending = 0;

    /** @name WPQ push progress during drain finalization. */
    /** @{ */
    bool pushedData = false;
    bool pushedCtr = false;
    bool pushedMac = false;
    /** @} */

    /** True once the entry has been handed to the drain engine. */
    bool draining = false;

    /** Tick the drain engine took the entry (trace span start). */
    Tick drainStart = 0;

    /** Stores coalesced into this entry during its residency (NWPE). */
    std::uint64_t numWrites = 0;

    /** Allocation order for FIFO draining. */
    std::uint64_t allocSeq = 0;

    /** Reset to the invalid state. */
    void
    clear()
    {
        *this = PbEntry{};
    }

    /** True once all tuple components are produced and persisted. */
    bool
    complete() const
    {
        return vData && vCtr && vOtp && vCt && vMac && vBmt;
    }
};

} // namespace secpb

#endif // SECPB_PB_ENTRY_HH
