/**
 * @file
 * Adaptive drain policy: occupancy bound from live battery headroom.
 *
 * The static SecPB watermarks assume the battery can always absorb a
 * full buffer's worst-case drain. When the crash budget comes from a
 * physical Capacitor that ages, browns out, or was provisioned below
 * worst case, that assumption breaks silently. The adaptive policy
 * closes the loop: the sensing half is the live priced
 * predictCrashDrainWork() probe (the same probe the obs Sampler
 * exports), the actuating half tightens the effective high/low
 * watermarks and gates new allocations so the priced drain prediction
 * never exceeds what the capacitor can deliver.
 *
 * The invariant it preserves (see DESIGN.md): whenever an allocation is
 * admitted, priced-predicted-drain + one worst-case entry + one
 * worst-case in-flight regeneration still fits in deliverableEnergyJ().
 * Timed drains only ever lower the prediction (removing an entry saves
 * more than the <= 2 metadata blocks it can dirty), so the bound holds
 * at any later crash instant until the battery itself is derated by an
 * external event (brownout), after which the policy re-tightens on the
 * next allocation.
 */

#ifndef SECPB_PB_ADAPTIVE_HH
#define SECPB_PB_ADAPTIVE_HH

#include <algorithm>
#include <cmath>

namespace secpb
{

/** Knobs for battery-aware watermark modulation (off by default). */
struct AdaptiveDrainConfig
{
    /** Master switch; disabled keeps the static watermarks bit-exact. */
    bool enabled = false;

    /**
     * Paranoia multiplier on required headroom: the policy plans as if
     * only deliverable/safetyFactor joules were available. >= 1.
     */
    double safetyFactor = 1.0;

    /**
     * Extra worst-case entries of slack reserved beyond the one
     * admission the gate is currently deciding.
     */
    unsigned marginEntries = 1;
};

/**
 * Occupancy bound for watermark modulation: the largest entry count n
 * such that n worst-case entries plus the fixed floor (metadata-cache
 * flush) plus the configured margin fit in the planned-usable energy.
 * Returns @p num_entries (no constraint) when the policy is disabled.
 */
inline unsigned
adaptiveOccupancyBound(double deliverable_j, double fixed_floor_j,
                       double worst_entry_j, unsigned num_entries,
                       const AdaptiveDrainConfig &cfg)
{
    if (!cfg.enabled || worst_entry_j <= 0.0) {
        return num_entries;
    }
    const double safety = std::max(cfg.safetyFactor, 1.0);
    const double avail = deliverable_j / safety - fixed_floor_j -
                         double(cfg.marginEntries) * worst_entry_j;
    if (avail <= 0.0) {
        return 0;
    }
    const double n = std::floor(avail / worst_entry_j);
    if (n >= double(num_entries)) {
        return num_entries;
    }
    return n <= 0.0 ? 0u : unsigned(n);
}

} // namespace secpb

#endif // SECPB_PB_ADAPTIVE_HH
