#include "recovery/restore.hh"

#include <algorithm>
#include <unordered_set>

#include "core/system.hh"
#include "crypto/cipher.hh"
#include "sim/debug.hh"

namespace secpb
{

RestoreReport
RestoreManager::restore(const std::vector<AbandonedResidency> &abandoned,
                        const RestoreOptions &opts)
{
    RestoreReport report;
    PmImage &pm = _sys.pm();
    PersistOracle &oracle = _sys.oracle();
    const MetadataLayout &layout = _sys.layout();
    const SchemeTraits traits = schemeTraits(_sys.config().scheme);
    const SecurityKeys &keys = _sys.config().keys;

    // -- Step 1: reload the volatile counter working copy from PM.
    // Deterministic order; idempotent (plain overwrites).
    std::vector<std::uint64_t> pages = pm.counterPages();
    std::sort(pages.begin(), pages.end());
    if (traits.secure) {
        for (std::uint64_t page : pages) {
            _sys.counters().setBlock(page, pm.readCounterBlock(page));
            ++report.counterPagesReloaded;
        }
    }

    // -- Step 2: triage the abandoned suffix. Mirrors the verifier's
    // classification (recovery/verifier.hh verifyAbandoned), but acts on
    // it: the oracle -- the reference the *next* power cycle persists on
    // top of -- is reconciled with the durable truth.
    std::vector<AbandonedResidency> triage = abandoned;
    std::sort(triage.begin(), triage.end(),
              [](const AbandonedResidency &a, const AbandonedResidency &b)
              { return a.addr < b.addr; });
    std::unordered_set<std::uint64_t> abandonedPages;
    for (const AbandonedResidency &a : triage) {
        const Addr addr = blockAlign(a.addr);
        abandonedPages.insert(layout.pageIndex(addr));
        const std::uint64_t total = oracle.storeCount(addr);
        const std::uint64_t pre =
            total - std::min(total, a.pendingWrites);

        if (!pm.hasData(addr)) {
            if (pre == 0) {
                // Never durable: the first-ever residency died in the
                // buffer. Nothing to recover; drop the expectation.
                oracle.forgetBlock(addr);
                ++report.blocksForgotten;
            } else {
                // Data vanished below an older version -- detected loss.
                oracle.forgetBlock(addr);
                ++report.blocksQuarantined;
            }
            continue;
        }

        BlockData pt;
        bool intact;
        if (traits.secure) {
            const std::uint64_t page = layout.pageIndex(addr);
            const CounterBlock cb = pm.readCounterBlock(page);
            const BlockCounter ctr =
                cb.counterFor(layout.blockInPage(addr));
            const BlockData ct = pm.readData(addr);
            intact = computeMac(keys, addr, ct, ctr) == pm.readMac(addr);
            pt = decryptBlock(ct, generatePad(keys, addr, ctr));
        } else {
            intact = true;
            pt = pm.readData(addr);
        }

        if (intact && pt == oracle.blockContent(addr)) {
            // The drain had in fact finished before the budget died.
            ++report.blocksRetained;
        } else if (intact && pt == oracle.blockVersion(addr, pre)) {
            oracle.rollbackBlock(addr, pre);
            ++report.blocksRolledBack;
        } else {
            // Torn tuple (e.g. a sibling drain persisted the page's
            // counter block with this block's eager minor bump, so the
            // old ciphertext no longer decrypts). The pre-image is
            // cryptographically unrecoverable: quarantine it. Recorded
            // loss, never silent acceptance.
            pm.eraseDataBlock(addr);
            oracle.forgetBlock(addr);
            ++report.blocksQuarantined;
        }
    }

    // -- Step 3: rebuild the BMT leaves from the persisted counter
    // blocks. Pages of abandoned residencies are included even without a
    // PM counter block: an eager scheme's root may cover a counter
    // increment that never became durable, and resetting the leaf to the
    // (default) PM view is exactly the repair. This is the expensive
    // walk that a second power loss can interrupt.
    if (traits.secure) {
        std::vector<std::uint64_t> rebuild = pages;
        for (std::uint64_t page : abandonedPages)
            if (!std::binary_search(pages.begin(), pages.end(), page))
                rebuild.push_back(page);
        std::sort(rebuild.begin(), rebuild.end());

        BonsaiMerkleTree &tree = _sys.tree();
        for (std::uint64_t page : rebuild) {
            if (report.leavesRebuilt >= opts.maxLeafRepairs) {
                // Power died mid-recovery. Durable state is further
                // along than before (the repairs so far persisted), but
                // the machine must not resume: re-run restore().
                DPRINTF("Restore",
                        "interrupted after %llu leaf repairs",
                        static_cast<unsigned long long>(
                            report.leavesRebuilt));
                return report;
            }
            tree.updateLeaf(page,
                            tree.leafDigest(pm.readCounterBlock(page)));
            ++report.leavesRebuilt;
        }
    }
    report.complete = true;

    // -- Step 4: verify the reconciled image. Zero tolerance: a restore
    // that cannot prove prefix consistency is a failed restore.
    if (traits.secure) {
        RecoveryVerifier verifier(layout, keys);
        report.verify = verifier.verifyAll(pm, _sys.tree(), oracle);
        report.verified = report.verify.ok();
    } else {
        report.verify.blocksChecked = 0;
        bool ok = true;
        for (Addr addr : oracle.touchedBlocks()) {
            ++report.verify.blocksChecked;
            if (pm.readData(addr) != oracle.blockContent(addr)) {
                ++report.verify.plaintextMismatches;
                report.verify.faults.push_back(
                    {addr, BlockFaultKind::PlaintextMismatch});
                ok = false;
            }
        }
        report.verified = ok;
    }
    return report;
}

} // namespace secpb
