/**
 * @file
 * The crash-recovery observer's reference state.
 *
 * A store reaches its point of persistency (PoP) the moment it is accepted
 * by the persist buffer (paper Section III). The oracle applies every
 * accepted store, in acceptance order, to a plaintext shadow of the
 * persistent address space. After a crash plus battery-powered drain,
 * recovery must reproduce exactly this state -- the oracle is what the
 * crash-recovery tests compare decrypted PM content against.
 */

#ifndef SECPB_RECOVERY_ORACLE_HH
#define SECPB_RECOVERY_ORACLE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/block_data.hh"
#include "sim/types.hh"

namespace secpb
{

/**
 * A SecPB residency the battery abandoned when its energy budget ran
 * out: the block's recovered content must be its pre-residency version
 * (the @p pendingWrites coalesced stores of the final residency are
 * lost together, never torn apart).
 */
struct AbandonedResidency
{
    Addr addr = InvalidAddr;          ///< Block-aligned data address.
    std::uint64_t pendingWrites = 0;  ///< Stores coalesced in the entry.
};

/** Plaintext shadow of all persisted stores, in persist order. */
class PersistOracle
{
  public:
    /** Apply an accepted 64-bit store to the shadow state. */
    void
    applyStore(Addr addr, std::uint64_t value)
    {
        const Addr block = blockAlign(addr);
        BlockData &b = _blocks[block];
        const unsigned word = blockOffset(addr) / 8;
        setBlockWord(b, word, value);
        _log[block].push_back(
            StoreRecord{static_cast<std::uint8_t>(word), value});
        ++_numPersists;
    }

    /** Last-persisted plaintext of the block containing @p addr. */
    BlockData
    blockContent(Addr addr) const
    {
        auto it = _blocks.find(blockAlign(addr));
        return it != _blocks.end() ? it->second : zeroBlock();
    }

    /** True if any store to this block has persisted. */
    bool
    touched(Addr addr) const
    {
        return _blocks.count(blockAlign(addr)) != 0;
    }

    /** All block addresses ever persisted to. */
    std::vector<Addr>
    touchedBlocks() const
    {
        std::vector<Addr> out;
        out.reserve(_blocks.size());
        for (const auto &kv : _blocks)
            out.push_back(kv.first);
        return out;
    }

    std::uint64_t numPersists() const { return _numPersists; }
    std::size_t numBlocks() const { return _blocks.size(); }

    /**
     * @name Per-block version history
     * Bounded-battery crash drains can legitimately recover a block at an
     * *older* version (its content before the abandoned final residency).
     * The per-block store log lets the verifier reconstruct any
     * historical version and decide whether a recovered image is a
     * persist-order-consistent prefix or silent corruption.
     * @{
     */

    /** Number of stores ever persisted to the block containing @p addr. */
    std::uint64_t
    storeCount(Addr addr) const
    {
        auto it = _log.find(blockAlign(addr));
        return it != _log.end() ? it->second.size() : 0;
    }

    /**
     * Plaintext of the block containing @p addr after its first
     * @p version stores (version 0 = the pristine zero block).
     */
    BlockData
    blockVersion(Addr addr, std::uint64_t version) const
    {
        BlockData b = zeroBlock();
        auto it = _log.find(blockAlign(addr));
        if (it == _log.end())
            return b;
        const auto &records = it->second;
        const std::uint64_t n =
            std::min<std::uint64_t>(version, records.size());
        for (std::uint64_t i = 0; i < n; ++i)
            setBlockWord(b, records[i].word, records[i].value);
        return b;
    }

    /** True if @p content matches some historical version of the block. */
    bool
    isHistoricalVersion(Addr addr, const BlockData &content) const
    {
        const std::uint64_t n = storeCount(addr);
        for (std::uint64_t v = 0; v <= n; ++v)
            if (blockVersion(addr, v) == content)
                return true;
        return false;
    }
    /** @} */

    /**
     * @name Power-cycle recovery (restore.hh)
     * A crash on a bounded battery abandons the newest stores of some
     * blocks. When the machine reboots and keeps *running* (crash-
     * recover-crash), the reference state must match what actually
     * survived: RestoreManager rolls the shadow back to the recovered
     * version so subsequent persists build on durable state only.
     * _numPersists stays monotone -- it counts stores that reached the
     * PoP, a fact a later power loss cannot unmake.
     * @{
     */

    /**
     * Roll the block containing @p addr back to its first @p version
     * stores. Version 0 means the block reverts to pristine (untouched).
     */
    void
    rollbackBlock(Addr addr, std::uint64_t version)
    {
        const Addr block = blockAlign(addr);
        if (version == 0) {
            forgetBlock(block);
            return;
        }
        auto it = _log.find(block);
        if (it == _log.end())
            return;
        if (version < it->second.size())
            it->second.resize(version);
        _blocks[block] = blockVersion(block, version);
    }

    /** Drop the block entirely (it was never durable). */
    void
    forgetBlock(Addr addr)
    {
        const Addr block = blockAlign(addr);
        _blocks.erase(block);
        _log.erase(block);
    }
    /** @} */

    /**
     * Page migration (multi-core): move the shadow content and store log
     * of every block in [page_base, page_base + page_bytes) into @p dst.
     * _numPersists stays put on both sides -- each core's oracle counts
     * the stores *it* accepted, so per-core persist sums stay correct.
     */
    void
    movePageTo(PersistOracle &dst, Addr page_base, std::uint64_t page_bytes)
    {
        for (Addr a = page_base; a < page_base + page_bytes;
             a += BlockSize) {
            auto it = _blocks.find(a);
            if (it == _blocks.end())
                continue;
            dst._blocks[a] = it->second;
            dst._log[a] = std::move(_log[a]);
            _blocks.erase(it);
            _log.erase(a);
        }
    }

  private:
    struct StoreRecord
    {
        std::uint8_t word;    ///< Word index within the block.
        std::uint64_t value;
    };

    std::unordered_map<Addr, BlockData> _blocks;
    std::unordered_map<Addr, std::vector<StoreRecord>> _log;
    std::uint64_t _numPersists = 0;
};

} // namespace secpb

#endif // SECPB_RECOVERY_ORACLE_HH
