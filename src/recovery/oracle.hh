/**
 * @file
 * The crash-recovery observer's reference state.
 *
 * A store reaches its point of persistency (PoP) the moment it is accepted
 * by the persist buffer (paper Section III). The oracle applies every
 * accepted store, in acceptance order, to a plaintext shadow of the
 * persistent address space. After a crash plus battery-powered drain,
 * recovery must reproduce exactly this state -- the oracle is what the
 * crash-recovery tests compare decrypted PM content against.
 */

#ifndef SECPB_RECOVERY_ORACLE_HH
#define SECPB_RECOVERY_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/block_data.hh"
#include "sim/types.hh"

namespace secpb
{

/** Plaintext shadow of all persisted stores, in persist order. */
class PersistOracle
{
  public:
    /** Apply an accepted 64-bit store to the shadow state. */
    void
    applyStore(Addr addr, std::uint64_t value)
    {
        BlockData &b = _blocks[blockAlign(addr)];
        setBlockWord(b, blockOffset(addr) / 8, value);
        ++_numPersists;
    }

    /** Last-persisted plaintext of the block containing @p addr. */
    BlockData
    blockContent(Addr addr) const
    {
        auto it = _blocks.find(blockAlign(addr));
        return it != _blocks.end() ? it->second : zeroBlock();
    }

    /** True if any store to this block has persisted. */
    bool
    touched(Addr addr) const
    {
        return _blocks.count(blockAlign(addr)) != 0;
    }

    /** All block addresses ever persisted to. */
    std::vector<Addr>
    touchedBlocks() const
    {
        std::vector<Addr> out;
        out.reserve(_blocks.size());
        for (const auto &kv : _blocks)
            out.push_back(kv.first);
        return out;
    }

    std::uint64_t numPersists() const { return _numPersists; }
    std::size_t numBlocks() const { return _blocks.size(); }

  private:
    std::unordered_map<Addr, BlockData> _blocks;
    std::uint64_t _numPersists = 0;
};

} // namespace secpb

#endif // SECPB_RECOVERY_ORACLE_HH
