/**
 * @file
 * Power-cycle restore: bring a rebooted machine back to a verified state.
 *
 * A crash on a bounded battery leaves three durable artifacts: the PM
 * image (ciphertext, counter blocks, MACs), the BMT (PM-resident nodes
 * plus the battery-backed root register), and -- in this simulator --
 * the persist oracle recording what *should* have survived. Everything
 * else (counter working copy, metadata caches, persist buffers) reboots
 * cold. RestoreManager rebuilds the volatile state and reconciles the
 * oracle with what the battery actually managed to drain:
 *
 *  1. reload the counter working copy from the PM image's counter blocks;
 *  2. triage every abandoned residency: roll the oracle back to the
 *     durable version (stale-consistent), forget blocks that never
 *     reached PM, and quarantine detectably torn tuples (erase the
 *     ciphertext+MAC and drop the block -- the loss is *recorded*, never
 *     silently served);
 *  3. rebuild the BMT leaves from the persisted counter blocks (undoing
 *     eager root updates whose counter increment died with the battery);
 *  4. re-verify the full image against the reconciled oracle.
 *
 * Step 3 is the expensive walk, and RestoreOptions::maxLeafRepairs can
 * cut the power mid-way through it: the run returns complete=false and a
 * later restore() call re-runs convergently (steps 1-2 are idempotent,
 * step 3 picks the same deterministic order back up).
 */

#ifndef SECPB_RECOVERY_RESTORE_HH
#define SECPB_RECOVERY_RESTORE_HH

#include <cstdint>
#include <vector>

#include "recovery/oracle.hh"
#include "recovery/verifier.hh"

namespace secpb
{

class SecPbSystem;

/** Knobs for one restore pass. */
struct RestoreOptions
{
    /**
     * Power budget for the BMT rebuild, in leaf repairs; the default
     * never interrupts. An interrupted restore returns complete=false
     * and must be re-run before the machine resumes.
     */
    std::uint64_t maxLeafRepairs = UINT64_MAX;
};

/** Outcome of one restore pass. */
struct RestoreReport
{
    std::uint64_t counterPagesReloaded = 0;
    std::uint64_t leavesRebuilt = 0;

    /** Abandoned blocks rolled back to their durable pre-version. */
    std::uint64_t blocksRolledBack = 0;

    /** Abandoned blocks whose final version had in fact persisted. */
    std::uint64_t blocksRetained = 0;

    /** Abandoned blocks that never reached PM (dropped, nothing lost
     *  that was ever durable). */
    std::uint64_t blocksForgotten = 0;

    /** Detected-torn tuples quarantined: data erased, block dropped.
     *  Recorded data loss -- the opposite of silent acceptance. */
    std::uint64_t blocksQuarantined = 0;

    /** False when power died mid-rebuild (re-run restore()). */
    bool complete = false;

    /** Post-restore verification verdict (only when complete). */
    bool verified = false;

    /** The full post-restore verification evidence. */
    RecoveryReport verify;
};

/** Rebuilds one rebooted SecPbSystem; see file comment for the steps. */
class RestoreManager
{
  public:
    explicit RestoreManager(SecPbSystem &sys) : _sys(sys) {}

    /**
     * Run one restore pass over the (adopted) persistent state.
     * @param abandoned the crash report's abandoned suffix.
     */
    RestoreReport restore(const std::vector<AbandonedResidency> &abandoned,
                          const RestoreOptions &opts = {});

  private:
    SecPbSystem &_sys;
};

} // namespace secpb

#endif // SECPB_RECOVERY_RESTORE_HH
