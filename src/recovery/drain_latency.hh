/**
 * @file
 * Post-crash drain-latency model.
 *
 * Section III-B: while the battery closes the draining and sec-sync
 * gaps, the crash observer must be *blocked* (recovery unavailable) or
 * *warned* (state not yet consistent). How long that window lasts is a
 * direct function of how much tuple work the scheme deferred -- the other
 * axis of the early/late trade-off next to battery capacity.
 *
 * The model prices the CrashWork accounting that the SecPB reports from
 * an actual drain: cryptographic work runs on the (pipeline-parallel)
 * engine, PM traffic runs on the banked PCM, and the window is the
 * slower of the two plus the serial tail of the last tuple.
 */

#ifndef SECPB_RECOVERY_DRAIN_LATENCY_HH
#define SECPB_RECOVERY_DRAIN_LATENCY_HH

#include <algorithm>

#include "crypto/engine.hh"
#include "mem/pcm.hh"
#include "secpb/secpb.hh"

namespace secpb
{

/** Analytical estimate of the battery-drain (observer-blocked) window. */
class DrainLatencyModel
{
  public:
    DrainLatencyModel(const CryptoLatencies &lat, const PcmConfig &pcm,
                      unsigned crypto_parallelism = 4)
        : _lat(lat), _pcm(pcm), _par(std::max(1u, crypto_parallelism))
    {}

    /** Cycles from crash detection until the PM image is consistent. */
    Cycles
    estimate(const CrashWork &work) const
    {
        // Crypto/compute stream: pads, MACs, and BMT node hashes, spread
        // over the engine's parallel units. Triad-NVM's recovery rebuild
        // is one hash per recomputed node -- it runs on mains power, but
        // it is inside the observer-blocked window all the same.
        const std::uint64_t compute =
            work.otpsGenerated * _lat.aesPad +
            work.macsComputed * _lat.macHash +
            (work.bmtLevelsWalked + work.bmtNodesRebuilt) * _lat.bmtHash;

        // PM stream: counter fetches + node fetches (one read per level
        // walked and per node rebuilt, worst case) + all block writes
        // (including the eADR hierarchy flush), over the banks.
        const std::uint64_t reads =
            work.counterFetches + work.bmtLevelsWalked +
            work.bmtNodesRebuilt;
        const std::uint64_t writes =
            work.pmBlockWrites + work.mdcBlockFlushes +
            work.cacheLinesFlushed;
        const std::uint64_t pm_traffic =
            reads * _pcm.readLatency + writes * _pcm.writeLatency;

        const Cycles compute_window =
            static_cast<Cycles>(compute / _par);
        const Cycles pm_window = static_cast<Cycles>(
            pm_traffic / std::max(1u, _pcm.numBanks));

        // Serial tail: the last entry's tuple cannot be parallelized
        // away -- one counter fetch, one pad, one full BMT walk, one MAC,
        // one write.
        const Cycles tail = _pcm.readLatency + _lat.aesPad +
                            8 * _lat.bmtHash + _lat.macHash +
                            _pcm.writeLatency;

        return std::max(compute_window, pm_window) + tail;
    }

    /** The same window in nanoseconds at @p clock. */
    double
    estimateNs(const CrashWork &work, const ClockInfo &clock = {}) const
    {
        return static_cast<double>(estimate(work)) * 1000.0 /
               clock.coreFreqMhz;
    }

  private:
    CryptoLatencies _lat;
    PcmConfig _pcm;
    unsigned _par;
};

} // namespace secpb

#endif // SECPB_RECOVERY_DRAIN_LATENCY_HH
