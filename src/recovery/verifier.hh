/**
 * @file
 * Post-crash recovery and integrity verification.
 *
 * After a crash plus battery drain, the recovery observer walks the PM
 * image: for every block the workload ever persisted to, it fetches the
 * tuple (ciphertext, counter, MAC), verifies the MAC, verifies the counter
 * block against the BMT and its root register, decrypts, and -- in tests --
 * compares the plaintext against the persist oracle. This checks both PLP
 * invariants end to end:
 *
 *  - tuple atomicity: a mismatch in any component shows up as a MAC or
 *    BMT failure or a plaintext mismatch;
 *  - persist order: the oracle applies stores in acceptance order, so a
 *    recovered state missing an older store but containing a newer one
 *    diverges from the oracle.
 */

#ifndef SECPB_RECOVERY_VERIFIER_HH
#define SECPB_RECOVERY_VERIFIER_HH

#include <cstdint>

#include "crypto/cipher.hh"
#include "mem/pm_image.hh"
#include "metadata/bmt.hh"
#include "metadata/layout.hh"
#include "recovery/oracle.hh"

namespace secpb
{

/** Result of a recovery pass. */
struct RecoveryReport
{
    std::uint64_t blocksChecked = 0;
    std::uint64_t macFailures = 0;
    std::uint64_t bmtFailures = 0;
    std::uint64_t plaintextMismatches = 0;

    bool
    ok() const
    {
        return macFailures == 0 && bmtFailures == 0 &&
               plaintextMismatches == 0;
    }
};

/** The recovery observer. */
class RecoveryVerifier
{
  public:
    RecoveryVerifier(const MetadataLayout &layout, const SecurityKeys &keys)
        : _layout(layout), _keys(keys)
    {}

    /**
     * Verify and decrypt one block from the PM image.
     * @param expected if non-null, the plaintext the block must decrypt to.
     */
    void
    verifyBlock(const PmImage &pm, const BonsaiMerkleTree &tree,
                Addr block_addr, const BlockData *expected,
                RecoveryReport &report) const
    {
        ++report.blocksChecked;
        const std::uint64_t page = _layout.pageIndex(block_addr);
        const CounterBlock cb = pm.readCounterBlock(page);
        const BlockCounter ctr =
            cb.counterFor(_layout.blockInPage(block_addr));
        const BlockData ct = pm.readData(block_addr);

        // Integrity of the counter: leaf digest must chain to the root.
        if (!tree.verifyLeaf(page, tree.leafDigest(cb)))
            ++report.bmtFailures;

        // Integrity of the data: stored MAC must match (ct, addr, ctr).
        const MacValue mac = computeMac(_keys, block_addr, ct, ctr);
        if (mac != pm.readMac(block_addr))
            ++report.macFailures;

        if (expected) {
            const BlockData pad = generatePad(_keys, block_addr, ctr);
            if (decryptBlock(ct, pad) != *expected)
                ++report.plaintextMismatches;
        }
    }

    /**
     * Full recovery scan: verify every block the oracle saw persisted and
     * compare the decrypted plaintext against the oracle state.
     */
    RecoveryReport
    verifyAll(const PmImage &pm, const BonsaiMerkleTree &tree,
              const PersistOracle &oracle) const
    {
        RecoveryReport report;
        for (Addr addr : oracle.touchedBlocks()) {
            const BlockData expected = oracle.blockContent(addr);
            verifyBlock(pm, tree, addr, &expected, report);
        }
        return report;
    }

    /** Integrity-only scan (no plaintext oracle), as a real system would. */
    RecoveryReport
    verifyIntegrity(const PmImage &pm, const BonsaiMerkleTree &tree) const
    {
        RecoveryReport report;
        for (Addr addr : pm.dataBlockAddrs())
            verifyBlock(pm, tree, addr, nullptr, report);
        return report;
    }

  private:
    const MetadataLayout &_layout;
    SecurityKeys _keys;
};

} // namespace secpb

#endif // SECPB_RECOVERY_VERIFIER_HH
