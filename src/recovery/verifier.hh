/**
 * @file
 * Post-crash recovery and integrity verification.
 *
 * After a crash plus battery drain, the recovery observer walks the PM
 * image: for every block the workload ever persisted to, it fetches the
 * tuple (ciphertext, counter, MAC), verifies the MAC, verifies the counter
 * block against the BMT and its root register, decrypts, and -- in tests --
 * compares the plaintext against the persist oracle. This checks both PLP
 * invariants end to end:
 *
 *  - tuple atomicity: a mismatch in any component shows up as a MAC or
 *    BMT failure or a plaintext mismatch;
 *  - persist order: the oracle applies stores in acceptance order, so a
 *    recovered state missing an older store but containing a newer one
 *    diverges from the oracle.
 *
 * Two additional scan modes exist for fault-injection experiments:
 *
 *  - the spurious-block scan flags PM blocks that the oracle never saw
 *    persisted (an attacker-planted or wild write must be reported, not
 *    silently ignored);
 *  - verifyPartial() checks a *bounded-battery* drain: a battery that
 *    exhausted its energy budget abandons an in-order suffix of SecPB
 *    entries, so each abandoned block must either be flagged by the
 *    integrity checks (a detected torn residency) or decrypt exactly to
 *    its pre-residency version -- anything else is silent corruption.
 */

#ifndef SECPB_RECOVERY_VERIFIER_HH
#define SECPB_RECOVERY_VERIFIER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/cipher.hh"
#include "mem/pm_image.hh"
#include "metadata/bmt.hh"
#include "metadata/layout.hh"
#include "recovery/oracle.hh"

namespace secpb
{

/** Classification of a per-block recovery anomaly. */
enum class BlockFaultKind
{
    MacMismatch,        ///< Stored MAC does not match (ct, addr, ctr).
    BmtMismatch,        ///< Counter block fails the BMT root check.
    PlaintextMismatch,  ///< Decrypts, but not to the oracle plaintext.
    SpuriousBlock,      ///< Present in PM yet never persisted per oracle.
    MissingBlock,       ///< Persisted per oracle yet absent from PM.
    TornResidency,      ///< Abandoned entry flagged by integrity checks
                        ///< (detected data loss -- expected when the
                        ///< battery budget ran out mid-drain).
    PrefixViolation,    ///< Abandoned entry passes integrity but holds
                        ///< content that is no valid version of the
                        ///< block: silent corruption.
};

/** Human-readable fault-kind name (reproducer lines, reports). */
inline const char *
blockFaultName(BlockFaultKind k)
{
    switch (k) {
      case BlockFaultKind::MacMismatch:       return "mac_mismatch";
      case BlockFaultKind::BmtMismatch:       return "bmt_mismatch";
      case BlockFaultKind::PlaintextMismatch: return "plaintext_mismatch";
      case BlockFaultKind::SpuriousBlock:     return "spurious_block";
      case BlockFaultKind::MissingBlock:      return "missing_block";
      case BlockFaultKind::TornResidency:     return "torn_residency";
      case BlockFaultKind::PrefixViolation:   return "prefix_violation";
    }
    return "?";
}

/** One classified per-block anomaly. */
struct BlockFault
{
    Addr addr = InvalidAddr;
    BlockFaultKind kind = BlockFaultKind::MacMismatch;
};

/** Result of a recovery pass. */
struct RecoveryReport
{
    std::uint64_t blocksChecked = 0;
    std::uint64_t macFailures = 0;
    std::uint64_t bmtFailures = 0;
    std::uint64_t plaintextMismatches = 0;
    std::uint64_t spuriousBlocks = 0;
    std::uint64_t missingBlocks = 0;
    std::uint64_t prefixViolations = 0;

    /** Abandoned residencies the integrity checks flagged (detected). */
    std::uint64_t tornDetected = 0;
    /** Abandoned residencies intact at their pre-residency version. */
    std::uint64_t staleConsistent = 0;

    /** Every anomaly, classified per block (includes detected torn
     *  residencies, which do not fail ok()). */
    std::vector<BlockFault> faults;

    bool
    ok() const
    {
        return macFailures == 0 && bmtFailures == 0 &&
               plaintextMismatches == 0 && spuriousBlocks == 0 &&
               missingBlocks == 0 && prefixViolations == 0;
    }
};

/** The recovery observer. */
class RecoveryVerifier
{
  public:
    RecoveryVerifier(const MetadataLayout &layout, const SecurityKeys &keys)
        : _layout(layout), _keys(keys)
    {}

    /**
     * Verify and decrypt one block from the PM image.
     * @param expected if non-null, the plaintext the block must decrypt to.
     */
    void
    verifyBlock(const PmImage &pm, const BonsaiMerkleTree &tree,
                Addr block_addr, const BlockData *expected,
                RecoveryReport &report) const
    {
        ++report.blocksChecked;
        const std::uint64_t page = _layout.pageIndex(block_addr);
        const CounterBlock cb = pm.readCounterBlock(page);
        const BlockCounter ctr =
            cb.counterFor(_layout.blockInPage(block_addr));
        const BlockData ct = pm.readData(block_addr);

        // Integrity of the counter: leaf digest must chain to the root.
        if (!tree.verifyLeaf(page, tree.leafDigest(cb))) {
            ++report.bmtFailures;
            report.faults.push_back(
                {block_addr, BlockFaultKind::BmtMismatch});
        }

        // Integrity of the data: stored MAC must match (ct, addr, ctr).
        const MacValue mac = computeMac(_keys, block_addr, ct, ctr);
        if (mac != pm.readMac(block_addr)) {
            ++report.macFailures;
            report.faults.push_back(
                {block_addr, BlockFaultKind::MacMismatch});
        }

        if (expected) {
            const BlockData pad = generatePad(_keys, block_addr, ctr);
            if (decryptBlock(ct, pad) != *expected) {
                ++report.plaintextMismatches;
                report.faults.push_back(
                    {block_addr, BlockFaultKind::PlaintextMismatch});
            }
        }
    }

    /**
     * Full recovery scan: verify every block the oracle saw persisted and
     * compare the decrypted plaintext against the oracle state. Blocks
     * present in the PM image but absent from the oracle are reported as
     * spurious -- an extra write must never be silently accepted.
     */
    RecoveryReport
    verifyAll(const PmImage &pm, const BonsaiMerkleTree &tree,
              const PersistOracle &oracle) const
    {
        RecoveryReport report;
        for (Addr addr : oracle.touchedBlocks()) {
            const BlockData expected = oracle.blockContent(addr);
            verifyBlock(pm, tree, addr, &expected, report);
        }
        scanSpurious(pm, oracle, report);
        return report;
    }

    /**
     * Recovery scan after a *bounded-battery* crash drain. Entries the
     * battery abandoned (an in-order suffix of the persist order) may
     * legitimately be recovered at their pre-residency version; every
     * other block must verify exactly as in verifyAll(). For each
     * abandoned block, one of three outcomes is acceptable:
     *
     *  - never persisted before the abandoned residency and still absent
     *    from PM (nothing to recover, nothing fabricated);
     *  - flagged by the MAC/BMT integrity checks (torn residency --
     *    counted in tornDetected, not an error: the loss is *detected*);
     *  - intact and decrypting to its pre-residency version, or to its
     *    final version (the entry's drain had already reached PM when
     *    the budget died).
     *
     * Intact content matching neither version is silent corruption and
     * is reported as a prefix violation.
     */
    RecoveryReport
    verifyPartial(const PmImage &pm, const BonsaiMerkleTree &tree,
                  const PersistOracle &oracle,
                  const std::vector<AbandonedResidency> &abandoned) const
    {
        RecoveryReport report;
        std::unordered_map<Addr, std::uint64_t> pending;
        std::unordered_set<std::uint64_t> abandonedPages;
        for (const AbandonedResidency &a : abandoned) {
            pending[blockAlign(a.addr)] = a.pendingWrites;
            abandonedPages.insert(_layout.pageIndex(a.addr));
        }

        for (Addr addr : oracle.touchedBlocks()) {
            auto it = pending.find(addr);
            if (it == pending.end()) {
                const BlockData expected = oracle.blockContent(addr);
                if (!pm.hasData(addr)) {
                    ++report.blocksChecked;
                    ++report.missingBlocks;
                    report.faults.push_back(
                        {addr, BlockFaultKind::MissingBlock});
                    continue;
                }
                if (abandonedPages.count(_layout.pageIndex(addr))) {
                    // An abandoned residency can leave its whole page's
                    // counter block and the durable BMT root covering
                    // different counter versions (the abandoned minor
                    // increment made it into one but not the other).
                    // Sibling blocks then fail the BMT check even though
                    // their own MAC and plaintext are exact -- detected
                    // collateral of the dead battery, not corruption.
                    verifyCollateral(pm, tree, addr, expected, report);
                    continue;
                }
                verifyBlock(pm, tree, addr, &expected, report);
                continue;
            }
            verifyAbandoned(pm, tree, oracle, addr, it->second, report);
        }
        scanSpurious(pm, oracle, report);
        return report;
    }

    /** Integrity-only scan (no plaintext oracle), as a real system would. */
    RecoveryReport
    verifyIntegrity(const PmImage &pm, const BonsaiMerkleTree &tree) const
    {
        RecoveryReport report;
        for (Addr addr : pm.dataBlockAddrs())
            verifyBlock(pm, tree, addr, nullptr, report);
        return report;
    }

  private:
    /** Flag PM data blocks the oracle never saw persisted. */
    void
    scanSpurious(const PmImage &pm, const PersistOracle &oracle,
                 RecoveryReport &report) const
    {
        for (Addr addr : pm.dataBlockAddrs()) {
            if (!oracle.touched(addr)) {
                ++report.spuriousBlocks;
                report.faults.push_back(
                    {addr, BlockFaultKind::SpuriousBlock});
            }
        }
    }

    /**
     * Verify a drained block that shares its page with an abandoned
     * residency: a BMT-only failure with MAC and plaintext intact is
     * counted as detected torn collateral, everything else verifies
     * exactly as usual (tampering must still surface as hard faults).
     */
    void
    verifyCollateral(const PmImage &pm, const BonsaiMerkleTree &tree,
                     Addr addr, const BlockData &expected,
                     RecoveryReport &report) const
    {
        ++report.blocksChecked;
        const std::uint64_t page = _layout.pageIndex(addr);
        const CounterBlock cb = pm.readCounterBlock(page);
        const BlockCounter ctr = cb.counterFor(_layout.blockInPage(addr));
        const BlockData ct = pm.readData(addr);

        const bool bmt_ok = tree.verifyLeaf(page, tree.leafDigest(cb));
        const bool mac_ok =
            computeMac(_keys, addr, ct, ctr) == pm.readMac(addr);
        const BlockData pad = generatePad(_keys, addr, ctr);
        const bool pt_ok = decryptBlock(ct, pad) == expected;

        if (!bmt_ok && mac_ok && pt_ok) {
            ++report.tornDetected;
            report.faults.push_back({addr, BlockFaultKind::TornResidency});
            return;
        }
        if (!bmt_ok) {
            ++report.bmtFailures;
            report.faults.push_back({addr, BlockFaultKind::BmtMismatch});
        }
        if (!mac_ok) {
            ++report.macFailures;
            report.faults.push_back({addr, BlockFaultKind::MacMismatch});
        }
        if (!pt_ok) {
            ++report.plaintextMismatches;
            report.faults.push_back(
                {addr, BlockFaultKind::PlaintextMismatch});
        }
    }

    /** Classify one abandoned-residency block (see verifyPartial). */
    void
    verifyAbandoned(const PmImage &pm, const BonsaiMerkleTree &tree,
                    const PersistOracle &oracle, Addr addr,
                    std::uint64_t pending_writes,
                    RecoveryReport &report) const
    {
        ++report.blocksChecked;
        const std::uint64_t total = oracle.storeCount(addr);
        const std::uint64_t pre_version =
            total - std::min(total, pending_writes);

        if (!pm.hasData(addr)) {
            if (pre_version == 0) {
                // First-ever residency abandoned: the block never
                // reached PM, and recovery has nothing to hand out.
                ++report.staleConsistent;
            } else {
                ++report.missingBlocks;
                report.faults.push_back(
                    {addr, BlockFaultKind::MissingBlock});
            }
            return;
        }

        const std::uint64_t page = _layout.pageIndex(addr);
        const CounterBlock cb = pm.readCounterBlock(page);
        const BlockCounter ctr = cb.counterFor(_layout.blockInPage(addr));
        const BlockData ct = pm.readData(addr);

        const bool bmt_ok = tree.verifyLeaf(page, tree.leafDigest(cb));
        const bool mac_ok =
            computeMac(_keys, addr, ct, ctr) == pm.readMac(addr);
        if (!bmt_ok || !mac_ok) {
            // The abandoned residency left a detectably inconsistent
            // tuple (e.g. an eager scheme's durable BMT root already
            // covers the lost counter update). Loss is flagged, not
            // silently served -- exactly what the threat model requires.
            ++report.tornDetected;
            report.faults.push_back(
                {addr, BlockFaultKind::TornResidency});
            return;
        }

        const BlockData pad = generatePad(_keys, addr, ctr);
        const BlockData pt = decryptBlock(ct, pad);
        if (pt == oracle.blockVersion(addr, pre_version) ||
            pt == oracle.blockContent(addr)) {
            ++report.staleConsistent;
        } else {
            ++report.prefixViolations;
            report.faults.push_back(
                {addr, BlockFaultKind::PrefixViolation});
        }
    }

    const MetadataLayout &_layout;
    SecurityKeys _keys;
};

} // namespace secpb

#endif // SECPB_RECOVERY_VERIFIER_HH
