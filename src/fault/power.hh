/**
 * @file
 * Intermittent-power fault mode: seeded schedules of brownouts, repeated
 * crash-recover-crash cycles, and power loss during recovery.
 *
 * A PowerScheduleSpec describes (deterministically, from one seed) a
 * sequence of power cycles. Each cycle boots a *fresh* SecPbSystem
 * incarnation -- volatile state dies with the power -- adopts the
 * durable state carried from the previous cycle (PM image, BMT, persist
 * oracle), restores it via RestoreManager (possibly interrupted partway
 * by another power loss, then re-run), runs a freshly-seeded workload
 * segment on top, possibly browns the capacitor out mid-run, and
 * crashes again on whatever energy the cell still holds. The one piece
 * of state that survives *physically* rather than logically is the
 * Capacitor itself: charge, capacity fade, and ESR growth carry across
 * incarnations, and between cycles it leaks and (partially) recharges.
 *
 * Every cycle's outcome is classified by the prefix-consistency
 * verifier and the restore pass -- zero silent acceptance. Tampers, if
 * requested, are injected only on the final cycle so attacker damage is
 * never conflated with battery loss.
 */

#ifndef SECPB_FAULT_POWER_HH
#define SECPB_FAULT_POWER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "fault/injector.hh"
#include "recovery/restore.hh"

namespace secpb
{

/** Deterministic per-cycle draw from a PowerScheduleSpec. */
struct PowerCycleDraw
{
    std::uint64_t instructions = 0;   ///< Workload segment length.
    std::uint64_t workloadSeed = 0;   ///< Segment generator seed.

    bool crashAtPersist = false;      ///< Else crash at a tick.
    std::uint64_t crashDelta = 0;     ///< Persists (or ticks) into the run.

    bool brownout = false;            ///< Derate the capacitor mid-run.
    double brownoutRetain = 1.0;      ///< Charge fraction retained.
    Tick brownoutTick = 0;            ///< When the sag hits.

    bool interruptRestore = false;    ///< Power loss during recovery.
    std::uint64_t restoreBudget = 0;  ///< Leaf repairs before it dies.

    double rechargeFraction = 1.0;    ///< Charge level at next boot.
    double downtimeS = 0.0;           ///< Powered-off leakage window.

    unsigned tampers = 0;             ///< Final cycle only.
    std::uint64_t tamperSeed = 1;
};

/** A seeded intermittent-power schedule (see file comment). */
struct PowerScheduleSpec
{
    unsigned cycles = 4;
    std::uint64_t seed = 2026;

    std::uint64_t minInstructions = 4000;
    std::uint64_t maxInstructions = 12000;

    double brownoutChance = 0.5;
    double brownoutRetainMin = 0.55;
    double brownoutRetainMax = 0.90;

    double interruptChance = 0.35;

    /** Chance the next boot starts below full charge. */
    double partialRechargeChance = 0.5;
    /** Minimum charge fraction a partial recharge reaches. */
    double rechargeFloor = 0.6;

    /** Capacity fade multiplier applied per power cycle (1 = no aging). */
    double capacityFadePerCycle = 1.0;

    /** Tampers drawn for the final cycle (0..max, inclusive). */
    unsigned finalTamperMax = 2;

    /**
     * Parse "key=value,key=value" (e.g. "cycles=3,seed=9,brownout=0.5").
     * Keys: cycles, seed, min-instr, max-instr, brownout, retain-min,
     * retain-max, interrupt, partial-recharge, recharge-floor,
     * tamper-max. Unknown keys or malformed values are fatal.
     */
    static PowerScheduleSpec parse(const std::string &kv);

    /** One-line description for reproducer output. */
    std::string describe() const;

    /** The deterministic draw for cycle @p cycle (0-based). */
    PowerCycleDraw draw(unsigned cycle) const;
};

/** What one power cycle did and whether it held the guarantees. */
struct PowerCycleOutcome
{
    FaultReport fault;              ///< Crash + verification of the segment.
    double deliverableAtCrashJ = 0; ///< Capacitor budget at crash time.
    double energySpentJ = 0;        ///< What the drain actually consumed.
    bool brownoutApplied = false;

    /** Restore of the *previous* cycle's crash (cycle 0: all-default). */
    RestoreReport restoreFirst;     ///< Possibly interrupted partway.
    bool restoreInterrupted = false;
    RestoreReport restoreFinal;     ///< The completed (re-run) restore.

    /** Segment verified, restore verified, no silent acceptance. */
    bool ok = false;
};

/** Aggregate outcome of one intermittent-power schedule. */
struct IntermittentReport
{
    std::vector<PowerCycleOutcome> cycles;

    bool
    ok() const
    {
        for (const PowerCycleOutcome &c : cycles)
            if (!c.ok)
                return false;
        return !cycles.empty();
    }
};

/**
 * Executes one PowerScheduleSpec against one configuration. The config
 * must have battery.enabled set -- intermittent power without a physical
 * battery model has no budget to crash on.
 */
class IntermittentPowerInjector
{
  public:
    IntermittentPowerInjector(const SystemConfig &cfg,
                              const PowerScheduleSpec &spec,
                              std::string profile);

    /** Run the full schedule; deterministic for a given (cfg, spec). */
    IntermittentReport run();

  private:
    SystemConfig _cfg;
    PowerScheduleSpec _spec;
    std::string _profile;
};

} // namespace secpb

#endif // SECPB_FAULT_POWER_HH
