/**
 * @file
 * Post-crash tamper injection: a physical attacker flipping bits in the
 * NVDIMM between power loss and recovery.
 *
 * The injector targets the four persistent regions of the secure-PM
 * address map -- data ciphertexts, split-counter blocks, MAC slots, and
 * stored BMT nodes -- and records every mutation it makes. The matching
 * detector then checks a RecoveryReport against the records: every
 * injected tamper must surface as at least one classified fault at the
 * right location (zero silent acceptances). This exercises the paper's
 * threat model end to end: MACs bind ciphertexts to counters, the BMT
 * root register (battery-backed, on-chip, out of the attacker's reach)
 * anchors counter freshness, and interior-node forgeries break the
 * digest chain one level up.
 */

#ifndef SECPB_FAULT_TAMPER_HH
#define SECPB_FAULT_TAMPER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/pm_image.hh"
#include "metadata/bmt.hh"
#include "metadata/layout.hh"
#include "recovery/verifier.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace secpb
{

/** Which persistent region a tamper hit. */
enum class TamperRegion
{
    Data,     ///< Ciphertext byte flipped in a data block.
    Counter,  ///< Minor counter flipped in a split-counter block.
    Mac,      ///< Stored MAC word flipped.
    BmtNode,  ///< Child digest flipped inside a stored BMT node.
};

inline const char *
tamperRegionName(TamperRegion r)
{
    switch (r) {
      case TamperRegion::Data:    return "data";
      case TamperRegion::Counter: return "counter";
      case TamperRegion::Mac:     return "mac";
      case TamperRegion::BmtNode: return "bmt_node";
    }
    return "?";
}

/** One recorded mutation. */
struct TamperRecord
{
    TamperRegion region = TamperRegion::Data;
    Addr blockAddr = InvalidAddr;   ///< Data block the tamper targets.
    std::uint64_t page = 0;         ///< Page index (Counter/BmtNode).
    unsigned level = 0;             ///< BMT level (BmtNode only).
    std::uint64_t nodeIndex = 0;    ///< BMT node index (BmtNode only).
    std::uint64_t mask = 0;         ///< Nonzero xor mask applied.

    /** One-line description for reproducer output. */
    std::string describe() const;
};

/**
 * Seeded tamper injector. Deterministic: the same seed over the same
 * candidate list produces the same mutations.
 */
class TamperInjector
{
  public:
    explicit TamperInjector(std::uint64_t seed) : _rng(seed) {}

    /**
     * Apply @p count random tampers to @p pm / @p tree, choosing victim
     * blocks from @p candidates (blocks known to be persisted and fully
     * drained -- tampering an abandoned block would conflate attacker
     * damage with battery loss). Returns the records, in order.
     */
    std::vector<TamperRecord> inject(PmImage &pm, BonsaiMerkleTree &tree,
                                     const MetadataLayout &layout,
                                     const std::vector<Addr> &candidates,
                                     unsigned count);

    /**
     * True if @p report contains a fault attributable to @p rec:
     *  - Data/Mac tampers must flag the tampered block itself;
     *  - Counter tampers must flag some block of the tampered page;
     *  - BmtNode tampers must flag a BMT failure on a path through the
     *    forged node.
     */
    static bool detected(const TamperRecord &rec,
                         const RecoveryReport &report,
                         const MetadataLayout &layout,
                         const BonsaiMerkleTree &tree);

    /** All-records conjunction of detected(). */
    static bool allDetected(const std::vector<TamperRecord> &recs,
                            const RecoveryReport &report,
                            const MetadataLayout &layout,
                            const BonsaiMerkleTree &tree);

  private:
    Rng _rng;
};

} // namespace secpb

#endif // SECPB_FAULT_TAMPER_HH
