/**
 * @file
 * Fault-injection driver: crash a run at an arbitrary point, drain on a
 * bounded battery, tamper with the PM image, verify recovery.
 *
 * A FaultPlan names the experiment: *when* to crash (an absolute cycle,
 * a persist count, or end-of-run if neither triggers), *how much* battery
 * energy the drain gets (a fraction of the worst-case provisioning), and
 * *what* an attacker corrupts afterwards. FaultInjector executes the plan
 * against one SecPbSystem via the event queue's post-event hook -- the
 * only boundaries where model state is consistent -- so a crash can land
 * between any two events of the simulation, not just at quiescence.
 *
 * The resulting FaultReport composes the crash-drain accounting, the
 * recovery verification (prefix-consistency under a bounded battery), the
 * injected tamper records, and the post-tamper re-verification with the
 * zero-silent-acceptance check.
 */

#ifndef SECPB_FAULT_INJECTOR_HH
#define SECPB_FAULT_INJECTOR_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hh"
#include "fault/tamper.hh"

namespace secpb
{

/** One fault-injection experiment. */
struct FaultPlan
{
    /** Crash once simulated time reaches this cycle. */
    std::optional<Tick> crashAtTick;

    /** Crash once this many stores have reached the PoP. */
    std::optional<std::uint64_t> crashAtPersist;

    /**
     * Battery energy as a fraction of the configuration's worst-case
     * provisioning (SecPbSystem::provisionedCrashEnergy). Unset (the
     * default) models the correctly-provisioned battery; values < 1
     * model an under-provisioned or partially-discharged one and force
     * prefix verification. Values >= 1 can never exhaust (provisioning
     * is worst-case by construction). An engaged value is one way to
     * initialize a Capacitor; a system-owned Capacitor (see
     * BatteryConfig) supplies the budget when this is unset.
     *
     * This used to be an infinity sentinel; std::optional keeps the
     * "unbounded" state representable without relying on IEEE compare
     * semantics (which -ffast-math-style flags break) and serializes
     * cleanly in sweep JSON.
     */
    std::optional<double> batteryFraction;

    /** Number of post-crash tampers to inject (secure schemes only). */
    unsigned tamperCount = 0;

    /** Seed for the tamper injector's RNG. */
    std::uint64_t tamperSeed = 1;

    /** Shim kept from the infinity-sentinel era: is a bound set? */
    bool
    boundedBattery() const
    {
        return batteryFraction.has_value();
    }

    /** One-line description for reproducer output. */
    std::string describe() const;
};

/** Outcome of one fault-injection experiment. */
struct FaultReport
{
    /** True if the crash interrupted the run (vs. end-of-workload). */
    bool crashedMidRun = false;

    Tick crashTick = 0;
    std::uint64_t persistsAtCrash = 0;

    /** Drain accounting + recovery verification at the crash point. */
    CrashReport crash;

    /** Tampers injected after the drain (empty if none requested). */
    std::vector<TamperRecord> tampers;

    /** Re-verification of the tampered image. */
    RecoveryReport postTamper;

    /** Every injected tamper surfaced as a classified fault. */
    bool tampersAllDetected = true;

    /**
     * The experiment's pass condition: recovery of the (possibly
     * partial) drain is consistent, and no tamper went undetected.
     * The tampered image itself is *expected* to fail verification --
     * that failure is the detection.
     */
    bool
    ok() const
    {
        return crash.recovered && tampersAllDetected;
    }
};

/** Executes one FaultPlan against one system. */
class FaultInjector
{
  public:
    FaultInjector(SecPbSystem &sys, const FaultPlan &plan)
        : _sys(sys), _plan(plan)
    {}

    /** Run @p gen under the plan: crash, drain, tamper, verify. */
    FaultReport run(WorkloadGenerator &gen);

  private:
    SecPbSystem &_sys;
    FaultPlan _plan;
};

} // namespace secpb

#endif // SECPB_FAULT_INJECTOR_HH
