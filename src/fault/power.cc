#include "fault/power.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/simulation.hh"
#include "recovery/restore.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/synthetic.hh"

namespace secpb
{

namespace
{

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double d = std::strtod(value.c_str(), &end);
    fatal_if(end == value.c_str() || *end != '\0',
             "power schedule: bad value '%s' for key '%s'",
             value.c_str(), key.c_str());
    return d;
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const std::uint64_t u = std::strtoull(value.c_str(), &end, 10);
    fatal_if(end == value.c_str() || *end != '\0',
             "power schedule: bad value '%s' for key '%s'",
             value.c_str(), key.c_str());
    return u;
}

} // namespace

PowerScheduleSpec
PowerScheduleSpec::parse(const std::string &kv)
{
    PowerScheduleSpec spec;
    std::size_t pos = 0;
    while (pos < kv.size()) {
        std::size_t comma = kv.find(',', pos);
        if (comma == std::string::npos)
            comma = kv.size();
        const std::string pair = kv.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;

        const std::size_t eq = pair.find('=');
        fatal_if(eq == std::string::npos,
                 "power schedule: expected key=value, got '%s'",
                 pair.c_str());
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);

        if (key == "cycles")
            spec.cycles = static_cast<unsigned>(parseU64(key, value));
        else if (key == "seed")
            spec.seed = parseU64(key, value);
        else if (key == "min-instr")
            spec.minInstructions = parseU64(key, value);
        else if (key == "max-instr")
            spec.maxInstructions = parseU64(key, value);
        else if (key == "brownout")
            spec.brownoutChance = parseDouble(key, value);
        else if (key == "retain-min")
            spec.brownoutRetainMin = parseDouble(key, value);
        else if (key == "retain-max")
            spec.brownoutRetainMax = parseDouble(key, value);
        else if (key == "interrupt")
            spec.interruptChance = parseDouble(key, value);
        else if (key == "partial-recharge")
            spec.partialRechargeChance = parseDouble(key, value);
        else if (key == "recharge-floor")
            spec.rechargeFloor = parseDouble(key, value);
        else if (key == "fade")
            spec.capacityFadePerCycle = parseDouble(key, value);
        else if (key == "tamper-max")
            spec.finalTamperMax =
                static_cast<unsigned>(parseU64(key, value));
        else
            fatal("power schedule: unknown key '%s'", key.c_str());
    }
    fatal_if(spec.cycles == 0, "power schedule: cycles must be >= 1");
    fatal_if(spec.maxInstructions < spec.minInstructions,
             "power schedule: max-instr < min-instr");
    fatal_if(spec.capacityFadePerCycle <= 0.0 ||
                 spec.capacityFadePerCycle > 1.0,
             "power schedule: fade must be in (0, 1]");
    return spec;
}

std::string
PowerScheduleSpec::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%u seed=%llu instr=[%llu,%llu] brownout=%.2f "
                  "retain=[%.2f,%.2f] interrupt=%.2f partial=%.2f "
                  "floor=%.2f fade=%.3f tamper-max=%u",
                  cycles, static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(minInstructions),
                  static_cast<unsigned long long>(maxInstructions),
                  brownoutChance, brownoutRetainMin, brownoutRetainMax,
                  interruptChance, partialRechargeChance, rechargeFloor,
                  capacityFadePerCycle, finalTamperMax);
    return buf;
}

PowerCycleDraw
PowerScheduleSpec::draw(unsigned cycle) const
{
    // One independent stream per cycle: draw(k) never depends on how
    // many values earlier cycles consumed, so adding a knob to one
    // cycle's logic cannot silently reshuffle the whole schedule.
    Rng rng(seed * 0x100000001b3ULL + cycle);

    PowerCycleDraw d;
    d.instructions = minInstructions +
                     rng.below(maxInstructions - minInstructions + 1);
    d.workloadSeed = rng.next();

    // Crash mostly on a persist count (robust to workload mix); one in
    // four cycles crashes on a raw tick to land between arbitrary
    // events. Either way, overshooting the segment degenerates to an
    // end-of-workload crash, which still drains whatever is resident.
    d.crashAtPersist = !rng.chance(0.25);
    if (d.crashAtPersist)
        d.crashDelta = 40 + rng.below(d.instructions / 8 + 1);
    else
        d.crashDelta = 20'000 + rng.below(180'000);

    d.brownout = rng.chance(brownoutChance);
    d.brownoutRetain = brownoutRetainMin +
                       rng.uniform() *
                           (brownoutRetainMax - brownoutRetainMin);
    d.brownoutTick = 2'000 + rng.below(30'000);

    d.interruptRestore = rng.chance(interruptChance);
    d.restoreBudget = rng.below(3);

    d.rechargeFraction = rng.chance(partialRechargeChance)
                             ? rechargeFloor +
                                   rng.uniform() * (1.0 - rechargeFloor)
                             : 1.0;
    d.downtimeS = rng.uniform() * 30.0;

    if (cycle + 1 == cycles && finalTamperMax > 0)
        d.tampers = static_cast<unsigned>(rng.below(finalTamperMax + 1));
    d.tamperSeed = rng.next() | 1;
    return d;
}

IntermittentPowerInjector::IntermittentPowerInjector(
    const SystemConfig &cfg, const PowerScheduleSpec &spec,
    std::string profile)
    : _cfg(cfg), _spec(spec), _profile(std::move(profile))
{
    fatal_if(!_cfg.battery.enabled,
             "intermittent power needs a physical battery model "
             "(BatteryConfig::enabled)");
}

IntermittentReport
IntermittentPowerInjector::run()
{
    IntermittentReport report;

    // Durable state carried across power cycles. The PM image, BMT, and
    // oracle survive *logically* (adopted by the next incarnation); the
    // Capacitor survives *physically* (same cell, aged and re-charged).
    PmImage pm;
    PersistOracle oracle;
    Capacitor cell;
    std::vector<AbandonedResidency> abandoned;
    // The tree needs system geometry; captured from the first incarnation.
    std::unique_ptr<BonsaiMerkleTree> tree;

    const BenchmarkProfile profile = profileByName(_profile);

    for (unsigned cycle = 0; cycle < _spec.cycles; ++cycle) {
        const PowerCycleDraw d = _spec.draw(cycle);
        PowerCycleOutcome out;

        // Each incarnation is a fresh machine built through the facade;
        // the injector drives the single-core system underneath.
        SimulationSpec spec;
        spec.base = _cfg;
        Simulation incarnation(spec);
        SecPbSystem &sys = incarnation.system();

        if (cycle == 0) {
            // First boot: pristine machine, nothing to restore.
            out.restoreFirst.complete = out.restoreFirst.verified = true;
            out.restoreFinal = out.restoreFirst;
            cell = *sys.battery();
        } else {
            sys.adoptPersistentState(pm, *tree, oracle);

            // The physical cell sat powered off (leaking), aged one
            // cycle, and the returning wall power recharged it -- maybe
            // only partially if the outage recurs quickly.
            cell.leak(d.downtimeS);
            cell.age(_spec.capacityFadePerCycle);
            const double have =
                cell.capacityJ() > 0.0
                    ? cell.storedEnergyJ() / cell.capacityJ()
                    : 0.0;
            if (d.rechargeFraction > have)
                cell.setChargeFraction(d.rechargeFraction);

            // Restore, possibly dying partway through the BMT rebuild.
            // The model is functional, so "reboot and retry" is exactly
            // a second restore() call over the same durable state: the
            // repairs that did complete persisted, steps 1-2 re-run
            // idempotently, and the walk resumes in the same order.
            RestoreOptions ro;
            if (d.interruptRestore)
                ro.maxLeafRepairs = d.restoreBudget;
            RestoreManager rm(sys);
            out.restoreFirst = rm.restore(abandoned, ro);
            out.restoreInterrupted = !out.restoreFirst.complete;
            out.restoreFinal = out.restoreInterrupted
                                   ? rm.restore(abandoned)
                                   : out.restoreFirst;
        }
        *sys.battery() = cell;

        DPRINTF("Fault",
                "power cycle %u/%u: %llu instr, %s, battery %.3g/%.3g J",
                cycle + 1, _spec.cycles,
                static_cast<unsigned long long>(d.instructions),
                d.brownout ? "brownout" : "clean",
                sys.battery()->storedEnergyJ(),
                sys.battery()->capacityJ());

        // Brownout mid-segment: the supply sags and the cell bleeds
        // charge into the dying rails (minus the BBU-protected reserve
        // when the adaptive policy is attached). The adaptive policy
        // sees the reduced headroom on its next gate check.
        if (d.brownout) {
            sys.eventQueue().schedule(
                d.brownoutTick, [&sys, &out, retain = d.brownoutRetain] {
                    sys.applyBrownout(retain);
                    out.brownoutApplied = true;
                });
        }

        FaultPlan plan;
        if (d.crashAtPersist)
            plan.crashAtPersist = oracle.numPersists() + d.crashDelta;
        else
            plan.crashAtTick = d.crashDelta;
        // No batteryFraction: the budget comes from the live Capacitor.
        plan.tamperCount = d.tampers;
        plan.tamperSeed = d.tamperSeed;

        SyntheticGenerator gen(profile, d.instructions, d.workloadSeed);
        FaultInjector injector(sys, plan);
        out.fault = injector.run(gen);
        out.deliverableAtCrashJ =
            out.fault.crash.batteryBudgetJ.value_or(0.0);
        out.energySpentJ = out.fault.crash.work.energySpentJ;

        // The cycle's pass condition: the previous crash restored to a
        // verified image, and this crash's (possibly partial) drain is
        // prefix-consistent with every tamper detected. Nothing is
        // accepted silently.
        out.ok = out.restoreFinal.complete && out.restoreFinal.verified &&
                 out.fault.ok();

        // Carry the durable world into the next incarnation.
        pm = sys.pm();
        if (!tree)
            tree = std::make_unique<BonsaiMerkleTree>(sys.tree());
        else
            *tree = sys.tree();
        oracle = sys.oracle();
        cell = *sys.battery();
        abandoned = out.fault.crash.work.abandoned;

        report.cycles.push_back(std::move(out));
    }
    return report;
}

} // namespace secpb
