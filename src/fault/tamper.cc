#include "fault/tamper.hh"

#include <cstdio>
#include <map>
#include <tuple>

namespace secpb
{

std::string
TamperRecord::describe() const
{
    char buf[128];
    switch (region) {
      case TamperRegion::Data:
        std::snprintf(buf, sizeof(buf), "data@%#llx^%#llx",
                      static_cast<unsigned long long>(blockAddr),
                      static_cast<unsigned long long>(mask));
        break;
      case TamperRegion::Counter:
        std::snprintf(buf, sizeof(buf), "counter@page%llu",
                      static_cast<unsigned long long>(page));
        break;
      case TamperRegion::Mac:
        std::snprintf(buf, sizeof(buf), "mac@%#llx^%#llx",
                      static_cast<unsigned long long>(blockAddr),
                      static_cast<unsigned long long>(mask));
        break;
      case TamperRegion::BmtNode:
        std::snprintf(buf, sizeof(buf), "bmt@L%u[%llu]^%#llx",
                      level, static_cast<unsigned long long>(nodeIndex),
                      static_cast<unsigned long long>(mask));
        break;
    }
    return buf;
}

std::vector<TamperRecord>
TamperInjector::inject(PmImage &pm, BonsaiMerkleTree &tree,
                       const MetadataLayout &layout,
                       const std::vector<Addr> &candidates, unsigned count)
{
    std::vector<TamperRecord> records;
    if (candidates.empty())
        return records;

    // Net XOR applied so far per tampered location. Two random tampers
    // landing on the same spot with the same mask would restore the
    // original bits -- PM identical to the untampered image, so "every
    // tamper detected" would be unsatisfiable. When a draw would zero a
    // location's net mask, nudge it (stays odd, stays nonzero).
    std::map<std::tuple<int, std::uint64_t, std::uint64_t, std::uint64_t>,
             std::uint64_t>
        net;
    const auto effective = [&net](int region, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t c,
                                  std::uint64_t mask) {
        std::uint64_t &n = net[{region, a, b, c}];
        if ((n ^ mask) == 0)
            mask ^= 2;
        n ^= mask;
        return mask;
    };

    for (unsigned i = 0; i < count; ++i) {
        TamperRecord rec;
        rec.blockAddr = candidates[_rng.below(candidates.size())];
        rec.page = layout.pageIndex(rec.blockAddr);
        rec.mask = (_rng.next() & 0xff) | 1;

        switch (_rng.below(4)) {
          case 0: {
            rec.region = TamperRegion::Data;
            const auto byte = _rng.below(BlockSize);
            rec.mask = effective(0, blockAlign(rec.blockAddr), byte, 0,
                                 rec.mask);
            pm.tamperData(rec.blockAddr, static_cast<unsigned>(byte),
                          static_cast<std::uint8_t>(rec.mask));
            break;
          }
          case 1: {
            rec.region = TamperRegion::Counter;
            const unsigned slot = layout.blockInPage(rec.blockAddr);
            rec.mask = effective(1, rec.page, slot, 0, rec.mask);
            pm.tamperCounter(rec.page, slot,
                             static_cast<std::uint8_t>(rec.mask));
            break;
          }
          case 2:
            rec.region = TamperRegion::Mac;
            rec.mask = effective(2, blockAlign(rec.blockAddr), 0, 0,
                                 rec.mask);
            pm.tamperMac(rec.blockAddr, rec.mask);
            break;
          case 3: {
            rec.region = TamperRegion::BmtNode;
            const auto path = tree.pathIndices(rec.page);
            rec.level = static_cast<unsigned>(_rng.below(path.size()));
            rec.nodeIndex = path[rec.level];
            // Flip the on-path child slot so the forgery sits on the
            // verification path of the victim block's page.
            const unsigned slot = static_cast<unsigned>(
                rec.level == 0 ? rec.page % 8 : path[rec.level - 1] % 8);
            BmtNode forged = tree.node(rec.level, rec.nodeIndex);
            if (!tree.hasNode(rec.level, rec.nodeIndex)) {
                // Node never materialized (cannot happen for a persisted
                // page, but stay deterministic): fall back to the MAC.
                rec.region = TamperRegion::Mac;
                rec.mask = effective(2, blockAlign(rec.blockAddr), 0, 0,
                                     rec.mask);
                pm.tamperMac(rec.blockAddr, rec.mask);
                break;
            }
            rec.mask = effective(3, rec.level, rec.nodeIndex, slot,
                                 rec.mask);
            forged.child[slot] ^= rec.mask;
            tree.tamperNode(rec.level, rec.nodeIndex, forged);
            break;
          }
        }
        records.push_back(rec);
    }
    return records;
}

bool
TamperInjector::detected(const TamperRecord &rec,
                         const RecoveryReport &report,
                         const MetadataLayout &layout,
                         const BonsaiMerkleTree &tree)
{
    for (const BlockFault &f : report.faults) {
        switch (rec.region) {
          case TamperRegion::Data:
          case TamperRegion::Mac:
            if (blockAlign(f.addr) == blockAlign(rec.blockAddr))
                return true;
            break;
          case TamperRegion::Counter:
            if (layout.pageIndex(f.addr) == rec.page)
                return true;
            break;
          case TamperRegion::BmtNode: {
            if (f.kind != BlockFaultKind::BmtMismatch &&
                f.kind != BlockFaultKind::TornResidency)
                break;
            const auto path = tree.pathIndices(layout.pageIndex(f.addr));
            if (rec.level < path.size() &&
                path[rec.level] == rec.nodeIndex)
                return true;
            break;
          }
        }
    }
    return false;
}

bool
TamperInjector::allDetected(const std::vector<TamperRecord> &recs,
                            const RecoveryReport &report,
                            const MetadataLayout &layout,
                            const BonsaiMerkleTree &tree)
{
    for (const TamperRecord &rec : recs)
        if (!detected(rec, report, layout, tree))
            return false;
    return true;
}

} // namespace secpb
