#include "fault/injector.hh"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "obs/trace.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace secpb
{

std::string
FaultPlan::describe() const
{
    std::string out;
    char buf[96];
    if (crashAtTick) {
        std::snprintf(buf, sizeof(buf), "crash@tick=%llu",
                      static_cast<unsigned long long>(*crashAtTick));
        out += buf;
    }
    if (crashAtPersist) {
        std::snprintf(buf, sizeof(buf), "%scrash@persist=%llu",
                      out.empty() ? "" : " ",
                      static_cast<unsigned long long>(*crashAtPersist));
        out += buf;
    }
    if (out.empty())
        out = "crash@end";
    if (boundedBattery()) {
        std::snprintf(buf, sizeof(buf), " battery=%.4f",
                      *batteryFraction);
        out += buf;
    }
    if (tamperCount) {
        std::snprintf(buf, sizeof(buf), " tampers=%u tamper_seed=%llu",
                      tamperCount,
                      static_cast<unsigned long long>(tamperSeed));
        out += buf;
    }
    return out;
}

FaultReport
FaultInjector::run(WorkloadGenerator &gen)
{
    FaultReport report;
    EventQueue &eq = _sys.eventQueue();

    _sys.start(gen);

    if (_plan.crashAtPersist) {
        const std::uint64_t target = *_plan.crashAtPersist;
        eq.setPostEventHook([this, &eq, target] {
            if (_sys.oracle().numPersists() >= target)
                eq.requestStop();
        });
    }

    const Tick limit = _plan.crashAtTick.value_or(MaxTick);
    eq.run(limit);
    eq.clearPostEventHook();
    eq.clearStop();

    report.crashTick = eq.curTick();
    report.persistsAtCrash = _sys.oracle().numPersists();
    report.crashedMidRun = !_sys.finished();

    TRACE_INSTANT("fault", "crash", report.crashTick);
    DPRINTF("Fault", "crash at tick %llu after %llu persists",
            static_cast<unsigned long long>(report.crashTick),
            static_cast<unsigned long long>(report.persistsAtCrash));

    CrashOptions opts;
    if (_plan.boundedBattery())
        opts.batteryEnergyJ =
            *_plan.batteryFraction * _sys.provisionedCrashEnergy();
    report.crash = _sys.crashNow(opts);
    TRACE_INSTANT("fault",
                  report.crash.work.batteryExhausted
                      ? "battery_exhausted" : "drain_complete",
                  report.crashTick);

    // Tamper phase: corrupt the post-drain image, then re-verify and
    // demand that every mutation is flagged. Only meaningful for secure
    // schemes -- BBB plaintext carries no integrity metadata.
    if (_plan.tamperCount > 0 &&
        schemeTraits(_sys.config().scheme).secure) {
        std::unordered_set<Addr> abandoned;
        for (const AbandonedResidency &a : report.crash.work.abandoned)
            abandoned.insert(blockAlign(a.addr));

        // Victims: blocks fully persisted and actually present in PM.
        // Tampering an abandoned block would conflate attacker damage
        // with battery loss and make detection attribution ambiguous.
        std::vector<Addr> candidates;
        for (Addr addr : _sys.oracle().touchedBlocks())
            if (!abandoned.count(addr) && _sys.pm().hasData(addr))
                candidates.push_back(addr);
        std::sort(candidates.begin(), candidates.end());

        TamperInjector injector(_plan.tamperSeed);
        report.tampers =
            injector.inject(_sys.pm(), _sys.tree(), _sys.layout(),
                            candidates, _plan.tamperCount);
        TRACE_INSTANT("fault", "tamper", report.crashTick);
        DPRINTF("Fault", "injected %zu tampers", report.tampers.size());

        RecoveryVerifier verifier(_sys.layout(), _sys.config().keys);
        const bool partial = report.crash.work.batteryExhausted ||
                             !report.crash.work.abandoned.empty();
        report.postTamper = partial
            ? verifier.verifyPartial(_sys.pm(), _sys.tree(), _sys.oracle(),
                                     report.crash.work.abandoned)
            : verifier.verifyAll(_sys.pm(), _sys.tree(), _sys.oracle());
        report.tampersAllDetected = TamperInjector::allDetected(
            report.tampers, report.postTamper, _sys.layout(), _sys.tree());
        TRACE_INSTANT("fault",
                      report.tampersAllDetected ? "recovery_verified"
                                                : "recovery_failed",
                      report.crashTick);
    }

    return report;
}

} // namespace secpb
