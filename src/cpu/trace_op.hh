/**
 * @file
 * Trace operations consumed by the core model.
 *
 * The evaluation is trace driven: a workload generator (synthetic SPEC-like
 * profiles, scripted test traces, or example applications) produces a
 * stream of TraceOps that the core retires. Loads carry the hierarchy
 * level they hit in -- the generator owns the locality model -- and stores
 * carry a real 64-bit value so the persistence path stays functional.
 */

#ifndef SECPB_CPU_TRACE_OP_HH
#define SECPB_CPU_TRACE_OP_HH

#include <cstdint>

#include "sim/types.hh"

namespace secpb
{

/** Which level of the data hierarchy a load hits in. */
enum class MemLevel
{
    L1,
    L2,
    L3,
    Mem,
};

/** One trace record. */
struct TraceOp
{
    enum class Kind
    {
        Instr,   ///< A bundle of non-memory instructions.
        Load,    ///< One load; `level` says where it hits.
        Store,   ///< One 8-byte store to `addr` with `value`.
        Barrier, ///< Persist barrier: retire stalls until every prior
                 ///< store has reached the persistence domain (the SecPB
                 ///< has accepted it). Application-level commit points --
                 ///< WAL commits, journal commit records -- are expressed
                 ///< with this op.
    };

    Kind kind = Kind::Instr;
    std::uint32_t count = 1;      ///< Instr: bundle size.
    Addr addr = 0;                ///< Store: 8-byte-aligned address.
    std::uint64_t value = 0;      ///< Store: value written.
    MemLevel level = MemLevel::L1; ///< Load: hit level.
    std::uint32_t asid = 0;       ///< Address-space id (process owner).
};

/**
 * Cumulative emission counters a generator may expose (see
 * WorkloadGenerator::counters). Monotone over the run, so they can feed
 * side-effect-free sampler probes (per-workload channels).
 */
struct WorkloadCounters
{
    std::uint64_t ops = 0;          ///< TraceOps emitted.
    std::uint64_t instructions = 0; ///< Instructions (incl. mem ops).
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t barriers = 0;
};

/** Pull interface implemented by every workload source. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /**
     * Produce the next op.
     * @return false when the workload is exhausted (@p op untouched).
     */
    virtual bool next(TraceOp &op) = 0;

    /**
     * Live emission counters, or nullptr when this source does not keep
     * them. Readers must treat the result as read-only probe state.
     */
    virtual const WorkloadCounters *counters() const { return nullptr; }
};

} // namespace secpb

#endif // SECPB_CPU_TRACE_OP_HH
