/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * The evaluation's timing is dominated by the store/persist path; the core
 * is therefore modelled at the retirement boundary: a retire width for
 * plain instructions, per-level load penalties (with memory-level
 * parallelism folded into the miss penalty), and an in-order store buffer
 * feeding the SecPB. The core stalls when the store buffer fills -- the
 * only way persist latency reaches execution time, exactly as in BBB.
 *
 * Instructions are processed in quanta: up to `quantum` instructions are
 * retired per event, accumulating fractional cycles, then the core
 * reschedules itself. This keeps event counts (and simulation time) low
 * while bounding intra-quantum timestamp skew to a few dozen cycles.
 */

#ifndef SECPB_CPU_TRACE_CPU_HH
#define SECPB_CPU_TRACE_CPU_HH

#include <cmath>
#include <optional>

#include "cpu/store_buffer.hh"
#include "mem/data_hierarchy.hh"
#include "cpu/trace_op.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace secpb
{

/** Effective per-load penalties (cycles), MLP folded in. */
struct LoadPenalties
{
    double l1 = 0.0;    ///< L1 hits are covered by the base CPI.
    double l2 = 8.0;
    double l3 = 20.0;
    double mem = 180.0; ///< PCM read with overlap factor applied.
};

/** Core configuration. */
struct CpuConfig
{
    unsigned retireWidth = 4;
    unsigned quantum = 128;       ///< Instructions retired per CPU event.
    LoadPenalties loadPenalties;
    /**
     * Load-path mode: false (default) draws hit levels from the workload
     * profile's statistics -- the calibrated mode used by the paper
     * reproductions; true drives the real L1/L2/L3 tag arrays with the
     * generator's load addresses, letting hit levels emerge.
     */
    bool addressDrivenLoads = false;
};

/** The trace-driven core. */
class TraceCpu
{
  public:
    TraceCpu(EventQueue &eq, StoreBuffer &sb, const CpuConfig &cfg,
             StatGroup &parent, DataHierarchy *dcache = nullptr)
        : _eq(eq), _sb(sb), _cfg(cfg), _dcache(dcache),
          _stats("cpu", &parent),
          statInstructions(_stats, "instructions", "instructions retired"),
          statLoads(_stats, "loads", "loads retired"),
          statStores(_stats, "stores", "stores retired"),
          statSbStalls(_stats, "sb_stalls",
                       "retire stalls on a full store buffer"),
          statBarriers(_stats, "barriers", "persist barriers retired"),
          statBarrierStalls(_stats, "barrier_stalls",
                            "barriers that waited for the store buffer")
    {
        fatal_if(cfg.retireWidth == 0, "retire width must be >= 1");
        fatal_if(cfg.quantum == 0, "CPU quantum must be >= 1");
    }

    /**
     * Begin executing ops pulled from @p gen; @p done fires when the
     * generator is exhausted and the last instruction has retired (the
     * store buffer may still hold stores at that point).
     */
    void
    run(WorkloadGenerator &gen, EventCallback done)
    {
        panic_if(_gen, "TraceCpu::run called while already running");
        _gen = &gen;
        _done = std::move(done);
        _eq.schedule(_eq.curTick(), [this] { wake(); });
    }

    std::uint64_t instructions() const
    {
        return static_cast<std::uint64_t>(statInstructions.value());
    }

  private:
    void
    wake()
    {
        double frac = 0.0;

        // A store that previously found the store buffer full retries
        // first; if still blocked, wait for a slot.
        if (_pendingStore) {
            if (!_sb.tryPush(_pendingStore->addr, _pendingStore->value,
                             _pendingStore->asid)) {
                _sb.notifyOnSpace([this] { wake(); });
                return;
            }
            _pendingStore.reset();
        }

        unsigned executed = 0;
        TraceOp op;
        while (executed < _cfg.quantum) {
            if (!_gen->next(op)) {
                finish(frac);
                return;
            }
            switch (op.kind) {
              case TraceOp::Kind::Instr:
                frac += static_cast<double>(op.count) / _cfg.retireWidth;
                executed += op.count;
                statInstructions += op.count;
                break;
              case TraceOp::Kind::Load: {
                MemLevel level = op.level;
                if (_cfg.addressDrivenLoads && _dcache)
                    level = _dcache->load(op.addr).level;
                frac += 1.0 / _cfg.retireWidth + loadPenalty(level);
                ++executed;
                ++statInstructions;
                ++statLoads;
                break;
              }
              case TraceOp::Kind::Store:
                if (_cfg.addressDrivenLoads && _dcache)
                    _dcache->storeAllocate(op.addr);
                frac += 1.0 / _cfg.retireWidth;
                ++executed;
                ++statInstructions;
                ++statStores;
                if (!_sb.tryPush(op.addr, op.value, op.asid)) {
                    // Core stalls: charge the cycles accumulated so far,
                    // then retry the push.
                    ++statSbStalls;
                    TRACE_INSTANT_P("cpu", "sb_stall", _eq.curTick(),
                                    op.asid);
                    _pendingStore = PendingStore{op.addr, op.value,
                                                 op.asid};
                    _eq.scheduleIn(ceilCycles(frac), [this] { wake(); });
                    return;
                }
                break;
              case TraceOp::Kind::Barrier:
                frac += 1.0 / _cfg.retireWidth;
                ++executed;
                ++statInstructions;
                ++statBarriers;
                if (!_sb.empty()) {
                    // Persist barrier: charge the cycles accumulated so
                    // far, then hold retirement until every prior store
                    // has been accepted into the persistence domain.
                    ++statBarrierStalls;
                    TRACE_INSTANT_P("cpu", "barrier_stall", _eq.curTick(),
                                    op.asid);
                    _eq.scheduleIn(ceilCycles(frac), [this] {
                        _sb.notifyWhenEmpty([this] { wake(); });
                    });
                    return;
                }
                break;
            }
        }
        _eq.scheduleIn(std::max<Cycles>(1, ceilCycles(frac)),
                       [this] { wake(); });
    }

    void
    finish(double frac)
    {
        _gen = nullptr;
        if (_done) {
            EventCallback cb = std::move(_done);
            _done = nullptr;
            _eq.scheduleIn(ceilCycles(frac), std::move(cb));
        }
    }

    double
    loadPenalty(MemLevel level) const
    {
        switch (level) {
          case MemLevel::L1:  return _cfg.loadPenalties.l1;
          case MemLevel::L2:  return _cfg.loadPenalties.l2;
          case MemLevel::L3:  return _cfg.loadPenalties.l3;
          case MemLevel::Mem: return _cfg.loadPenalties.mem;
        }
        return 0.0;
    }

    static Cycles
    ceilCycles(double frac)
    {
        return static_cast<Cycles>(std::ceil(frac));
    }

    struct PendingStore
    {
        Addr addr;
        std::uint64_t value;
        std::uint32_t asid;
    };

    EventQueue &_eq;
    StoreBuffer &_sb;
    CpuConfig _cfg;
    DataHierarchy *_dcache;
    WorkloadGenerator *_gen = nullptr;
    EventCallback _done;
    std::optional<PendingStore> _pendingStore;
    StatGroup _stats;

  public:
    Scalar statInstructions;
    Scalar statLoads;
    Scalar statStores;
    Scalar statSbStalls;
    Scalar statBarriers;
    Scalar statBarrierStalls;
};

} // namespace secpb

#endif // SECPB_CPU_TRACE_CPU_HH
