/**
 * @file
 * The core's store buffer.
 *
 * Retired stores wait here until the SecPB accepts them. Stores issue to
 * the SecPB strictly in program order, one at a time: the SecPB raises its
 * unblock signal when the current store's early tuple subset is complete,
 * and only then is the next store offered (paper Section IV-B). When the
 * buffer fills, the core stalls retirement -- this is the mechanism that
 * converts security-metadata latency into slowdown.
 */

#ifndef SECPB_CPU_STORE_BUFFER_HH
#define SECPB_CPU_STORE_BUFFER_HH

#include <deque>

#include "secpb/secpb.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace secpb
{

/** In-order store buffer feeding the SecPB. */
class StoreBuffer
{
  public:
    StoreBuffer(EventQueue &eq, SecPb &pb, unsigned num_entries,
                StatGroup &parent)
        : _eq(eq), _pb(pb), _numEntries(num_entries),
          _stats("store_buffer", &parent),
          statPushes(_stats, "pushes", "stores retired into the buffer"),
          statFullStalls(_stats, "full_stalls",
                         "retire attempts rejected: buffer full"),
          statOccupancy(_stats, "occupancy", "occupancy at each push")
    {
        fatal_if(num_entries == 0, "store buffer needs >= 1 entry");
    }

    /**
     * Retire a store into the buffer.
     * @return false if the buffer is full (core must stall).
     */
    bool
    tryPush(Addr addr, std::uint64_t value, std::uint32_t asid = 0)
    {
        if (_queue.size() >= _numEntries) {
            ++statFullStalls;
            TRACE_INSTANT_P("store_buffer", "full_stall", _eq.curTick(),
                            asid);
            return false;
        }
        ++statPushes;
        statOccupancy.sample(static_cast<double>(_queue.size()));
        _queue.push_back(PendingStore{addr, value, asid});
        issueHead();
        return true;
    }

    /** Register a one-shot callback fired when a slot frees. */
    void
    notifyOnSpace(EventCallback cb)
    {
        _spaceWaiters.push_back(std::move(cb));
    }

    /** Register a one-shot callback fired when the buffer drains empty. */
    void
    notifyWhenEmpty(EventCallback cb)
    {
        if (_queue.empty() && !_issueInFlight) {
            cb();
            return;
        }
        _emptyWaiters.push_back(std::move(cb));
    }

    bool empty() const { return _queue.empty() && !_issueInFlight; }
    std::size_t occupancy() const { return _queue.size(); }

    /**
     * Stores retired but not yet accepted by the SecPB, in program
     * order. With a battery-backed store buffer (paper Section IV-C(b))
     * these are part of the persistence domain and the battery absorbs
     * them at crash time.
     */
    std::vector<std::pair<Addr, std::uint64_t>>
    pendingStores() const
    {
        std::vector<std::pair<Addr, std::uint64_t>> out;
        out.reserve(_queue.size());
        // The head entry stays queued until its unblock arrives; when an
        // issue is in flight the SecPB has already accepted (persisted)
        // it, so it must not be absorbed a second time.
        std::size_t skip = _issueInFlight ? 1 : 0;
        for (const PendingStore &ps : _queue) {
            if (skip > 0) {
                --skip;
                continue;
            }
            out.emplace_back(ps.addr, ps.value);
        }
        return out;
    }

  private:
    struct PendingStore
    {
        Addr addr;
        std::uint64_t value;
        std::uint32_t asid;
    };

    void
    issueHead()
    {
        if (_issueInFlight || _queue.empty())
            return;
        const PendingStore &head = _queue.front();
        _issueInFlight = true;
        const bool accepted = _pb.tryAcceptStore(
            head.addr, head.value, [this] { headUnblocked(); },
            head.asid);
        if (!accepted) {
            _issueInFlight = false;
            if (!_waitingForPbSpace) {
                _waitingForPbSpace = true;
                _pb.notifyOnSpace([this] {
                    _waitingForPbSpace = false;
                    issueHead();
                });
            }
        }
    }

    void
    headUnblocked()
    {
        _queue.pop_front();
        _issueInFlight = false;
        wake(_spaceWaiters);
        if (_queue.empty())
            wake(_emptyWaiters);
        else
            issueHead();
    }

    void
    wake(std::vector<EventCallback> &waiters)
    {
        if (waiters.empty())
            return;
        std::vector<EventCallback> fired;
        fired.swap(waiters);
        for (auto &w : fired)
            w();
    }

    EventQueue &_eq;
    SecPb &_pb;
    unsigned _numEntries;
    std::deque<PendingStore> _queue;
    bool _issueInFlight = false;
    bool _waitingForPbSpace = false;
    std::vector<EventCallback> _spaceWaiters;
    std::vector<EventCallback> _emptyWaiters;
    StatGroup _stats;

  public:
    Scalar statPushes;
    Scalar statFullStalls;
    Average statOccupancy;
};

} // namespace secpb

#endif // SECPB_CPU_STORE_BUFFER_HH
