/**
 * @file
 * Schema-versioned JSON serialization of a completed sweep.
 *
 * Schema "secpb.sweep" v2 (one scalar field per line in pretty mode, so
 * line-wise filters work; `host_seconds` fields are the only
 * non-deterministic content). v2 adds two optional per-point fields:
 * "samples" (the epoch time-series, when the point sampled) and "stats"
 * (the flat dotted-path stats dump, when the point captured it); both
 * are deterministic and omitted when absent, so a v1 consumer reading
 * only the v1 fields still parses a v2 document.
 *
 * {
 *   "schema": "secpb.sweep",
 *   "schema_version": 2,
 *   "bench": "fig6",
 *   "jobs": 8,
 *   "host_seconds": 12.3,
 *   "points": [
 *     {
 *       "label": "gamess/CM",
 *       "scheme": "CM",
 *       "profile": "gamess",
 *       "instructions": 300000,
 *       "secpb_entries": 32,
 *       "bmf": "none",
 *       "seed": 7,
 *       "tags": {"drain_width": "4"},
 *       "result": { ...SimulationResult::toJson()... },
 *       "extra": {"window_ns": 1834.0},
 *       "samples": {"period": 1000, "channels": [...], "ticks": [...],
 *                   "values": [[...], ...], "epochs_dropped": 0},
 *       "stats": {"system.secpb.persists": 4242.0, ...},
 *       "host_seconds": 0.41
 *     }, ...
 *   ],
 *   "derived": [
 *     {"name": "geomean_slowdown", "group": "CM", "value": 1.71}, ...
 *   ]
 * }
 */

#ifndef SECPB_EXP_REPORT_HH
#define SECPB_EXP_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace secpb
{

/** A post-sweep aggregate row (slowdown, geomean, paper delta, ...). */
struct DerivedRow
{
    std::string name;   ///< Metric name ("geomean_slowdown").
    std::string group;  ///< What it aggregates over ("CM", "size=64").
    double value = 0.0;
};

/** Everything one bench run hands to the serializer. */
struct SweepReport
{
    std::string bench;
    unsigned jobs = 1;
    double hostSeconds = 0.0;
    std::vector<ExperimentPoint> points;
    std::vector<ExperimentResult> results;  ///< Indexed like points.
    std::vector<DerivedRow> derived;
};

/** Write the v2 JSON document for @p report to @p os. */
void writeSweepJson(std::ostream &os, const SweepReport &report);

/**
 * Serialize to a string with every `host_seconds` line blanked -- the
 * deterministic projection the determinism test (and any byte-compare
 * tooling) uses.
 */
std::string sweepJsonDeterministic(const SweepReport &report);

} // namespace secpb

#endif // SECPB_EXP_REPORT_HH
