/**
 * @file
 * Work-stealing thread pool for the experiment engine.
 *
 * Each worker owns a deque: it pops its own work LIFO from the front and
 * steals FIFO from the back of a sibling when empty, so long point chains
 * stay cache-warm on one worker while idle workers drain the stragglers.
 * Submission is round-robin across worker deques and blocks once the
 * total backlog reaches the queue bound -- a producer building a huge
 * point vector cannot outrun the workers into unbounded memory.
 *
 * Tasks are std::packaged_task<void()>, so an exception thrown by a task
 * is captured and rethrown from the future submit() returned; the pool
 * itself never dies from a task failure. One mutex guards all deques:
 * experiment points run for milliseconds to seconds, so queue contention
 * is noise and simplicity wins over lock-free choreography.
 *
 * Destruction requests stop, wakes everyone, and std::jthread joins;
 * already-queued tasks are completed first so no future is abandoned.
 */

#ifndef SECPB_EXP_THREAD_POOL_HH
#define SECPB_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace secpb
{

/** Bounded, exception-propagating, work-stealing task pool. */
class ThreadPool
{
  public:
    /**
     * @param workers      Worker-thread count (>= 1; 0 is clamped to 1).
     * @param queue_bound  Max queued-but-unstarted tasks before submit()
     *                     blocks; 0 picks 4x workers.
     */
    explicit ThreadPool(unsigned workers, std::size_t queue_bound = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue @p fn; blocks while the backlog is at the bound. The returned
     * future completes when the task ran and rethrows anything it threw.
     */
    std::future<void> submit(std::function<void()> fn);

    /**
     * Non-blocking submit: nullopt when the backlog is at the bound.
     * The building block for nested helpers that must never wait on the
     * pool (a worker waiting on its own pool's queue is a deadlock).
     */
    std::optional<std::future<void>> trySubmit(std::function<void()> fn);

    /**
     * Run fn(0..n-1) across the pool, with the CALLING thread claiming
     * indices too. Helpers are enlisted with trySubmit, so a nested call
     * from inside a pool task degrades to the caller doing all the work
     * instead of deadlocking -- this is the nested-parallelism
     * arbitration between sweep-level jobs and shard-level workers: both
     * draw from one global worker budget and oversubscription is
     * impossible by construction. The first exception any index throws
     * is rethrown here after all indices finish.
     *
     * @param max_concurrency  Cap on threads working indices at once
     *                         (caller included); 0 = no cap beyond the
     *                         worker count. `--jobs N` maps here.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t max_concurrency = 0);

    /**
     * The process-wide pool, sized to the hardware concurrency. Sweep
     * jobs and shard workers share this one budget.
     */
    static ThreadPool &global();

    unsigned workers() const { return static_cast<unsigned>(_deques.size()); }
    std::size_t queueBound() const { return _bound; }

  private:
    using Task = std::packaged_task<void()>;

    void workerLoop(std::stop_token st, unsigned index);

    /** Pop own front, else steal a sibling's back. Caller holds _mx. */
    bool takeTask(unsigned self, Task &out);

    std::mutex _mx;
    std::condition_variable _cvTask;   ///< Workers wait for work.
    std::condition_variable _cvSpace;  ///< Producers wait for queue space.
    std::vector<std::deque<Task>> _deques;
    std::size_t _queued = 0;           ///< Total tasks across all deques.
    std::size_t _bound;
    unsigned _nextDeque = 0;           ///< Round-robin submission cursor.

    std::vector<std::jthread> _threads;  ///< Last member: joins first.
};

} // namespace secpb

#endif // SECPB_EXP_THREAD_POOL_HH
