/**
 * @file
 * Work-stealing thread pool for the experiment engine.
 *
 * Each worker owns a deque: it pops its own work LIFO from the front and
 * steals FIFO from the back of a sibling when empty, so long point chains
 * stay cache-warm on one worker while idle workers drain the stragglers.
 * Submission is round-robin across worker deques and blocks once the
 * total backlog reaches the queue bound -- a producer building a huge
 * point vector cannot outrun the workers into unbounded memory.
 *
 * Tasks are std::packaged_task<void()>, so an exception thrown by a task
 * is captured and rethrown from the future submit() returned; the pool
 * itself never dies from a task failure. One mutex guards all deques:
 * experiment points run for milliseconds to seconds, so queue contention
 * is noise and simplicity wins over lock-free choreography.
 *
 * Destruction requests stop, wakes everyone, and std::jthread joins;
 * already-queued tasks are completed first so no future is abandoned.
 */

#ifndef SECPB_EXP_THREAD_POOL_HH
#define SECPB_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace secpb
{

/** Bounded, exception-propagating, work-stealing task pool. */
class ThreadPool
{
  public:
    /**
     * @param workers      Worker-thread count (>= 1; 0 is clamped to 1).
     * @param queue_bound  Max queued-but-unstarted tasks before submit()
     *                     blocks; 0 picks 4x workers.
     */
    explicit ThreadPool(unsigned workers, std::size_t queue_bound = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue @p fn; blocks while the backlog is at the bound. The returned
     * future completes when the task ran and rethrows anything it threw.
     */
    std::future<void> submit(std::function<void()> fn);

    unsigned workers() const { return static_cast<unsigned>(_deques.size()); }
    std::size_t queueBound() const { return _bound; }

  private:
    using Task = std::packaged_task<void()>;

    void workerLoop(std::stop_token st, unsigned index);

    /** Pop own front, else steal a sibling's back. Caller holds _mx. */
    bool takeTask(unsigned self, Task &out);

    std::mutex _mx;
    std::condition_variable _cvTask;   ///< Workers wait for work.
    std::condition_variable _cvSpace;  ///< Producers wait for queue space.
    std::vector<std::deque<Task>> _deques;
    std::size_t _queued = 0;           ///< Total tasks across all deques.
    std::size_t _bound;
    unsigned _nextDeque = 0;           ///< Round-robin submission cursor.

    std::vector<std::jthread> _threads;  ///< Last member: joins first.
};

} // namespace secpb

#endif // SECPB_EXP_THREAD_POOL_HH
