#include "exp/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "exp/thread_pool.hh"

namespace secpb
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Refreshing stderr progress line, shared by the serial and pooled paths. */
class ProgressMeter
{
  public:
    ProgressMeter(const SweepOptions &opts, std::size_t total)
        : _enabled(opts.progress && total > 0),
          _prefix(opts.name.empty() ? "" : opts.name + " "), _total(total),
          _start(Clock::now())
    {
    }

    void
    completed()
    {
        if (!_enabled)
            return;
        const std::size_t done = ++_done;
        std::lock_guard lock(_mx);
        const double elapsed = secondsSince(_start);
        const double eta =
            done ? elapsed / done * (_total - done) : 0.0;
        std::fprintf(stderr,
                     "\r%s[%zu/%zu] elapsed %.1fs eta %.1fs   ",
                     _prefix.c_str(), done, _total, elapsed, eta);
        if (done == _total)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    }

  private:
    bool _enabled;
    std::string _prefix;
    std::size_t _total;
    Clock::time_point _start;
    std::atomic<std::size_t> _done{0};
    std::mutex _mx;
};

ExperimentResult
timedPoint(const ExperimentPoint &point)
{
    const auto start = Clock::now();
    ExperimentResult res = runExperimentPoint(point);
    res.hostSeconds = secondsSince(start);
    return res;
}

} // namespace

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<ExperimentPoint> &points) const
{
    std::vector<ExperimentResult> results(points.size());
    ProgressMeter meter(_opts, points.size());

    if (_opts.jobs <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            results[i] = timedPoint(points[i]);
            meter.completed();
        }
        return results;
    }

    // One process-wide worker budget: sweep points and the shard workers
    // they may spawn (multi-core points under --shards) all draw from
    // ThreadPool::global(), so `--jobs N` never multiplies into N x M
    // oversubscription. parallelFor caps concurrent points at jobs and
    // rethrows the first point failure after every point ran.
    ThreadPool::global().parallelFor(
        points.size(),
        [&](std::size_t i) {
            results[i] = timedPoint(points[i]);
            meter.completed();
        },
        _opts.jobs);
    return results;
}

} // namespace secpb
