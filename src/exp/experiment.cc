#include "exp/experiment.hh"

#include "core/system.hh"
#include "sim/logging.hh"
#include "workload/synthetic.hh"

namespace secpb
{

const char *
bmfModeName(BmfMode mode)
{
    switch (mode) {
      case BmfMode::None: return "none";
      case BmfMode::Dbmf: return "dbmf";
      case BmfMode::Sbmf: return "sbmf";
    }
    return "?";
}

ExperimentResult
runExperimentPoint(const ExperimentPoint &point)
{
    if (point.custom)
        return point.custom(point);

    fatal_if(point.profile.empty(),
             "experiment point '%s' has no profile and no custom runner",
             point.label.c_str());

    const BenchmarkProfile &profile = profileByName(point.profile);
    SystemConfig cfg = SecPbSystem::configFor(point.scheme, profile);
    cfg.secpb.numEntries = point.secpbEntries;
    cfg.walker.bmfMode = point.bmf;
    if (point.configure)
        point.configure(cfg);

    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profile, point.instructions, point.seed);
    ExperimentResult res;
    res.sim = sys.run(gen);
    return res;
}

} // namespace secpb
