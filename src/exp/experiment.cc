#include "exp/experiment.hh"

#include <memory>
#include <sstream>
#include <utility>

#include "core/system.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "workload/registry.hh"
#include "workload/synthetic.hh"
#include "workload/trace_file.hh"

namespace secpb
{

const char *
bmfModeName(BmfMode mode)
{
    switch (mode) {
      case BmfMode::None: return "none";
      case BmfMode::Dbmf: return "dbmf";
      case BmfMode::Sbmf: return "sbmf";
    }
    return "?";
}

ExperimentResult
runExperimentPoint(const ExperimentPoint &point)
{
    // The trace session wraps the custom runner too: anything it
    // simulates on this thread lands in the point's tracer.
    obs::TraceSession session(point.tracer);

    if (point.custom)
        return point.custom(point);

    fatal_if(point.profile.empty() && point.workload.empty(),
             "experiment point '%s' has no profile, no workload, and no "
             "custom runner",
             point.label.c_str());

    // Workload points default to the server machine model; a profile
    // name next to a workload only picks the core-side parameters.
    const BenchmarkProfile &profile = point.profile.empty()
                                          ? serverWorkloadProfile()
                                          : profileByName(point.profile);
    SystemConfig cfg = SecPbSystem::configFor(point.scheme, profile);
    cfg.secpb.numEntries = point.secpbEntries;
    cfg.secpb.params = point.schemeParams;
    cfg.walker.bmfMode = point.bmf;
    cfg.obs.samplePeriod = point.samplePeriod;
    cfg.obs.sampleCapacity = point.sampleCapacity;
    if (point.configure)
        point.configure(cfg);

    SecPbSystem sys(cfg);
    std::unique_ptr<WorkloadGenerator> gen;
    if (!point.workload.empty()) {
        gen = makeWorkload(point.workload, point.instructions, point.seed);
    } else {
        gen = std::make_unique<SyntheticGenerator>(
            profile, point.instructions, point.seed);
    }
    if (!point.traceRecord.empty()) {
        gen = std::make_unique<RecordingGenerator>(
            std::move(gen), point.traceRecord, TraceEncoding::Binary,
            std::vector<std::pair<std::string, std::string>>{
                {"workload", point.workload.empty() ? point.profile
                                                    : point.workload},
                {"seed", std::to_string(point.seed)},
                {"instructions", std::to_string(point.instructions)},
            });
    }
    ExperimentResult res;
    res.sim = sys.run(*gen);
    if (sys.sampler())
        res.samples = sys.sampler()->series();
    if (point.captureStats) {
        std::ostringstream ss;
        JsonWriter w(ss, /*pretty=*/false);
        sys.stats().toJson(w);
        res.statsJson = ss.str();
    }
    return res;
}

} // namespace secpb
