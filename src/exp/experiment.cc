#include "exp/experiment.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/simulation.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "workload/registry.hh"
#include "workload/synthetic.hh"
#include "workload/trace_file.hh"

namespace secpb
{

const char *
bmfModeName(BmfMode mode)
{
    switch (mode) {
      case BmfMode::None: return "none";
      case BmfMode::Dbmf: return "dbmf";
      case BmfMode::Sbmf: return "sbmf";
    }
    return "?";
}

namespace
{

/**
 * Fold a multi-core run into one SimulationResult: counters sum, the
 * throughput ratios are recomputed from the sums, and the per-core mean
 * rates average arithmetically. Purely a function of the (deterministic)
 * per-core results, so the aggregate inherits the determinism contract.
 */
SimulationResult
aggregateResult(const MultiCoreResult &mr)
{
    SimulationResult agg;
    agg.execTicks = mr.execTicks;
    for (const SimulationResult &r : mr.perCore) {
        agg.instructions += r.instructions;
        agg.persists += r.persists;
        agg.allocations += r.allocations;
        agg.bmtRootUpdates += r.bmtRootUpdates;
        agg.pageReencryptions += r.pageReencryptions;
        agg.drainedEntries += r.drainedEntries;
        agg.sbFullStalls += r.sbFullStalls;
        agg.pbFullRejects += r.pbFullRejects;
        agg.pcmReads += r.pcmReads;
        agg.pcmWrites += r.pcmWrites;
        agg.nwpe += r.nwpe;
        agg.ctrCacheHitRate += r.ctrCacheHitRate;
        agg.bmtCacheHitRate += r.bmtCacheHitRate;
        agg.meanUnblockLatency += r.meanUnblockLatency;
    }
    const double cores = static_cast<double>(mr.perCore.size());
    if (cores > 0) {
        agg.nwpe /= cores;
        agg.ctrCacheHitRate /= cores;
        agg.bmtCacheHitRate /= cores;
        agg.meanUnblockLatency /= cores;
    }
    if (agg.execTicks > 0)
        agg.ipc = static_cast<double>(agg.instructions) /
                  static_cast<double>(agg.execTicks);
    if (agg.instructions > 0)
        agg.ppti = 1000.0 * static_cast<double>(agg.persists) /
                   static_cast<double>(agg.instructions);
    return agg;
}

} // namespace

ExperimentResult
runExperimentPoint(const ExperimentPoint &point)
{
    // The trace session wraps the custom runner too: anything it
    // simulates on this thread lands in the point's tracer.
    obs::TraceSession session(point.tracer);

    if (point.custom)
        return point.custom(point);

    fatal_if(point.profile.empty() && point.workload.empty(),
             "experiment point '%s' has no profile, no workload, and no "
             "custom runner",
             point.label.c_str());

    // Workload points default to the server machine model; a profile
    // name next to a workload only picks the core-side parameters.
    const BenchmarkProfile &profile = point.profile.empty()
                                          ? serverWorkloadProfile()
                                          : profileByName(point.profile);
    SimulationSpec spec;
    spec.base = SecPbSystem::configFor(point.scheme, profile);
    spec.base.secpb.numEntries = point.secpbEntries;
    spec.base.secpb.params = point.schemeParams;
    spec.base.walker.bmfMode = point.bmf;
    spec.base.obs.samplePeriod = point.samplePeriod;
    spec.base.obs.sampleCapacity = point.sampleCapacity;
    if (point.configure)
        point.configure(spec.base);
    spec.cores = std::max(1u, point.cores);
    spec.shards = std::max(1u, point.shards);
    spec.instructions = point.instructions;
    spec.seed = point.seed;
    spec.workload = point.workload;
    spec.traceRecord = point.traceRecord;

    // One generator per core, seeded seed+core so cores diverge but the
    // point stays deterministic.
    std::vector<std::unique_ptr<WorkloadGenerator>> gens;
    for (unsigned c = 0; c < spec.cores; ++c) {
        const std::uint64_t seed = point.seed + c;
        std::unique_ptr<WorkloadGenerator> gen;
        if (!point.workload.empty()) {
            gen = makeWorkload(point.workload, point.instructions, seed);
        } else {
            gen = std::make_unique<SyntheticGenerator>(
                profile, point.instructions, seed);
        }
        if (!point.traceRecord.empty() && c == 0) {
            gen = std::make_unique<RecordingGenerator>(
                std::move(gen), point.traceRecord, TraceEncoding::Binary,
                std::vector<std::pair<std::string, std::string>>{
                    {"workload", point.workload.empty() ? point.profile
                                                        : point.workload},
                    {"seed", std::to_string(seed)},
                    {"instructions", std::to_string(point.instructions)},
                });
        }
        gens.push_back(std::move(gen));
    }

    Simulation sim(spec);
    ExperimentResult res;
    if (!sim.multiCore()) {
        res.sim = sim.run(*gens.front());
    } else {
        std::vector<WorkloadGenerator *> raw;
        raw.reserve(gens.size());
        for (auto &g : gens)
            raw.push_back(g.get());
        res.sim = aggregateResult(sim.run(std::move(raw)));
    }
    if (sim.sampler())
        res.samples = sim.sampler()->series();
    if (point.captureStats) {
        std::ostringstream ss;
        JsonWriter w(ss, /*pretty=*/false);
        sim.stats().toJson(w);
        res.statsJson = ss.str();
    }
    return res;
}

} // namespace secpb
