#include "exp/experiment.hh"

#include <sstream>

#include "core/system.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "workload/synthetic.hh"

namespace secpb
{

const char *
bmfModeName(BmfMode mode)
{
    switch (mode) {
      case BmfMode::None: return "none";
      case BmfMode::Dbmf: return "dbmf";
      case BmfMode::Sbmf: return "sbmf";
    }
    return "?";
}

ExperimentResult
runExperimentPoint(const ExperimentPoint &point)
{
    // The trace session wraps the custom runner too: anything it
    // simulates on this thread lands in the point's tracer.
    obs::TraceSession session(point.tracer);

    if (point.custom)
        return point.custom(point);

    fatal_if(point.profile.empty(),
             "experiment point '%s' has no profile and no custom runner",
             point.label.c_str());

    const BenchmarkProfile &profile = profileByName(point.profile);
    SystemConfig cfg = SecPbSystem::configFor(point.scheme, profile);
    cfg.secpb.numEntries = point.secpbEntries;
    cfg.walker.bmfMode = point.bmf;
    cfg.obs.samplePeriod = point.samplePeriod;
    cfg.obs.sampleCapacity = point.sampleCapacity;
    if (point.configure)
        point.configure(cfg);

    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profile, point.instructions, point.seed);
    ExperimentResult res;
    res.sim = sys.run(gen);
    if (sys.sampler())
        res.samples = sys.sampler()->series();
    if (point.captureStats) {
        std::ostringstream ss;
        JsonWriter w(ss, /*pretty=*/false);
        sys.stats().toJson(w);
        res.statsJson = ss.str();
    }
    return res;
}

} // namespace secpb
