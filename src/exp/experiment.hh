/**
 * @file
 * ExperimentPoint: one cell of the evaluation cross-product.
 *
 * The paper's evaluation space is (persistency scheme x benchmark profile
 * x SecPB size x BMF mode x battery budget x ...); a point pins one
 * coordinate of it. Points are self-contained and deterministic: the seed
 * lives in the point, every simulation object is constructed fresh by the
 * runner, and no state is shared between points -- which is what lets the
 * SweepRunner execute them on any number of threads with bit-identical
 * results.
 *
 * Two escape hatches keep the descriptor generic:
 *  - `configure` applies free-form SystemConfig overrides (ablation knobs
 *    like drain width or watermarks) after the scheme/profile defaults;
 *    `tags` records what the override did, so the JSON stays
 *    self-describing even though a closure is not serializable.
 *  - `custom` replaces the default run-to-completion runner entirely, for
 *    points that crash mid-run, drive a MultiCoreSystem, or only evaluate
 *    the energy model.
 */

#ifndef SECPB_EXP_EXPERIMENT_HH
#define SECPB_EXP_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/results.hh"
#include "metadata/walker.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "secpb/scheme.hh"

namespace secpb
{

struct SystemConfig;

/** What one executed point reports back. */
struct ExperimentResult
{
    /** Timing/coalescing summary (default-constructed for points whose
     *  custom runner measures something else entirely). */
    SimulationResult sim;

    /** Bench-specific named metrics (crash windows, battery volumes,
     *  migration counts, ...), serialized under "extra". */
    std::vector<std::pair<std::string, double>> extra;

    /** Epoch time-series (empty unless the point set samplePeriod).
     *  Deterministic: sampling probes never perturb the simulation. */
    obs::SampleSeries samples;

    /** Full stats dump as a compact JSON object (empty unless the point
     *  set captureStats), spliced into the sweep document verbatim. */
    std::string statsJson;

    /** Host wall-clock seconds this point took. Excluded from the
     *  determinism contract (the only non-deterministic field). */
    double hostSeconds = 0.0;

    double
    extraValue(const std::string &name, double fallback = 0.0) const
    {
        for (const auto &[k, v] : extra)
            if (k == name)
                return v;
        return fallback;
    }
};

/** One cell of the sweep cross-product. */
struct ExperimentPoint
{
    /** Row/column label in the bench's printed table ("gamess/CM"). */
    std::string label;

    Scheme scheme = Scheme::Bbb;

    /** Scheme knobs (triad:levels=N); inert for unparameterized
     *  schemes. Applied to SystemConfig::secpb.params by the default
     *  runner before `configure` runs. */
    SchemeParams schemeParams;

    /** Synthetic profile name; "" for points that don't run one. */
    std::string profile;

    /**
     * Registry workload selector ("kv_wal:puts=0.8", "replay:file=x");
     * "" runs the synthetic profile instead. When set, `profile` only
     * picks the machine model (default: serverWorkloadProfile()).
     */
    std::string workload;

    /** Record the executed op stream to this trace file (workload or
     *  profile runs alike); "" disables recording. */
    std::string traceRecord;

    std::uint64_t instructions = 0;
    unsigned secpbEntries = 32;
    BmfMode bmf = BmfMode::None;

    /**
     * Simulated cores (1 = the classic single-core machine). Multi-core
     * points run one generator per core, seeded seed+core, and report
     * the aggregate in `sim` (per-core counters summed, rates from the
     * aggregate).
     */
    unsigned cores = 1;

    /** Host worker threads for multi-core points. Never affects
     *  results -- `--shards 1` and `--shards N` are bit-identical. */
    unsigned shards = 1;

    /** Workload seed. Determinism is per-point: same seed, same result,
     *  regardless of which thread runs it or in what order. */
    std::uint64_t seed = 7;

    /** Epoch-sample the built-in channels every this many ticks
     *  (0 = off). Honored by the default runner; custom runners that
     *  build their own system must apply it themselves. */
    Tick samplePeriod = 0;

    /** Ring capacity for the epoch sampler. */
    std::size_t sampleCapacity = 4096;

    /** Embed the full stats dump in this point's JSON. */
    bool captureStats = false;

    /**
     * Tracer to record this point's timeline into (not owned; may be
     * nullptr). The runner installs it as the thread's trace session
     * for the duration of the run, so exactly this point is traced
     * even when the sweep fans out across threads.
     */
    obs::Tracer *tracer = nullptr;

    /** Human-readable record of config overrides, serialized to JSON. */
    std::vector<std::pair<std::string, std::string>> tags;

    /** Free-form SystemConfig override, applied after scheme/profile
     *  defaults and the secpbEntries/bmf fields. */
    std::function<void(SystemConfig &)> configure;

    /** Replaces the default runner when set. */
    std::function<ExperimentResult(const ExperimentPoint &)> custom;

    ExperimentPoint &
    tag(std::string k, std::string v)
    {
        tags.emplace_back(std::move(k), std::move(v));
        return *this;
    }
};

/** Name for serialization ("none" / "dbmf" / "sbmf"). */
const char *bmfModeName(BmfMode mode);

/**
 * Execute one point: the custom runner if set, otherwise a fresh
 * SecPbSystem over a fresh SyntheticGenerator, run to completion.
 * hostSeconds is left 0 -- the SweepRunner stamps it.
 */
ExperimentResult runExperimentPoint(const ExperimentPoint &point);

} // namespace secpb

#endif // SECPB_EXP_EXPERIMENT_HH
