#include "exp/report.hh"

#include <sstream>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace secpb
{

namespace
{

void
writePoint(JsonWriter &w, const ExperimentPoint &p,
           const ExperimentResult &r)
{
    w.beginObject();
    w.field("label", p.label);
    w.field("scheme", schemeName(p.scheme));
    w.field("profile", p.profile);
    if (!p.workload.empty())
        w.field("workload", p.workload);
    w.field("instructions", p.instructions);
    w.field("secpb_entries", p.secpbEntries);
    w.field("bmf", bmfModeName(p.bmf));
    w.field("seed", p.seed);
    if (!p.tags.empty()) {
        w.key("tags");
        w.beginObject();
        for (const auto &[k, v] : p.tags)
            w.field(k, v);
        w.endObject();
    }
    w.key("result");
    r.sim.toJson(w);
    if (!r.extra.empty()) {
        w.key("extra");
        w.beginObject();
        for (const auto &[k, v] : r.extra)
            w.field(k, v);
        w.endObject();
    }
    if (!r.samples.empty()) {
        w.key("samples");
        r.samples.toJson(w);
    }
    if (!r.statsJson.empty()) {
        w.key("stats");
        w.rawValue(r.statsJson);
    }
    w.field("host_seconds", r.hostSeconds);
    w.endObject();
}

} // namespace

void
writeSweepJson(std::ostream &os, const SweepReport &report)
{
    panic_if(report.points.size() != report.results.size(),
             "sweep report has %zu points but %zu results",
             report.points.size(), report.results.size());

    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("schema", "secpb.sweep");
    w.field("schema_version", std::uint64_t{2});
    w.field("bench", report.bench);
    w.field("jobs", report.jobs);
    w.field("host_seconds", report.hostSeconds);

    w.key("points");
    w.beginArray();
    for (std::size_t i = 0; i < report.points.size(); ++i)
        writePoint(w, report.points[i], report.results[i]);
    w.endArray();

    w.key("derived");
    w.beginArray();
    for (const DerivedRow &d : report.derived) {
        w.beginObject();
        w.field("name", d.name);
        w.field("group", d.group);
        w.field("value", d.value);
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

std::string
sweepJsonDeterministic(const SweepReport &report)
{
    std::ostringstream ss;
    writeSweepJson(ss, report);
    // Blank the value of every host_seconds line, keeping line structure
    // so diffs of two projections still align with the raw documents.
    std::istringstream in(ss.str());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("\"host_seconds\":");
        if (pos != std::string::npos) {
            const bool comma = !line.empty() && line.back() == ',';
            line.erase(pos + std::string("\"host_seconds\":").size());
            line += " 0";
            if (comma)
                line += ',';
        }
        out << line << '\n';
    }
    return out.str();
}

} // namespace secpb
