#include "exp/thread_pool.hh"

namespace secpb
{

ThreadPool::ThreadPool(unsigned workers, std::size_t queue_bound)
    : _deques(workers ? workers : 1),
      _bound(queue_bound ? queue_bound : 4 * _deques.size())
{
    _threads.reserve(_deques.size());
    for (unsigned i = 0; i < _deques.size(); ++i)
        _threads.emplace_back(
            [this, i](std::stop_token st) { workerLoop(st, i); });
}

ThreadPool::~ThreadPool()
{
    for (auto &t : _threads)
        t.request_stop();
    _cvTask.notify_all();
    _cvSpace.notify_all();
    // std::jthread joins on destruction; workers drain their queues first.
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    Task task(std::move(fn));
    std::future<void> fut = task.get_future();
    {
        std::unique_lock lock(_mx);
        _cvSpace.wait(lock, [this] { return _queued < _bound; });
        _deques[_nextDeque].push_back(std::move(task));
        _nextDeque = (_nextDeque + 1) % _deques.size();
        ++_queued;
    }
    _cvTask.notify_one();
    return fut;
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    if (!_deques[self].empty()) {
        out = std::move(_deques[self].front());
        _deques[self].pop_front();
        --_queued;
        return true;
    }
    // Steal from the back of the most loaded sibling, oldest task first.
    unsigned victim = self;
    std::size_t best = 0;
    for (unsigned i = 0; i < _deques.size(); ++i) {
        if (i != self && _deques[i].size() > best) {
            best = _deques[i].size();
            victim = i;
        }
    }
    if (best == 0)
        return false;
    out = std::move(_deques[victim].back());
    _deques[victim].pop_back();
    --_queued;
    return true;
}

void
ThreadPool::workerLoop(std::stop_token st, unsigned index)
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(_mx);
            _cvTask.wait(lock, [&] {
                return st.stop_requested() || _queued > 0;
            });
            if (!takeTask(index, task)) {
                if (st.stop_requested())
                    return;
                continue;
            }
        }
        _cvSpace.notify_one();
        // packaged_task captures any exception into the future.
        task();
    }
}

} // namespace secpb
