#include "exp/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

namespace secpb
{

ThreadPool::ThreadPool(unsigned workers, std::size_t queue_bound)
    : _deques(workers ? workers : 1),
      _bound(queue_bound ? queue_bound : 4 * _deques.size())
{
    _threads.reserve(_deques.size());
    for (unsigned i = 0; i < _deques.size(); ++i)
        _threads.emplace_back(
            [this, i](std::stop_token st) { workerLoop(st, i); });
}

ThreadPool::~ThreadPool()
{
    for (auto &t : _threads)
        t.request_stop();
    _cvTask.notify_all();
    _cvSpace.notify_all();
    // std::jthread joins on destruction; workers drain their queues first.
}

std::future<void>
ThreadPool::submit(std::function<void()> fn)
{
    Task task(std::move(fn));
    std::future<void> fut = task.get_future();
    {
        std::unique_lock lock(_mx);
        _cvSpace.wait(lock, [this] { return _queued < _bound; });
        _deques[_nextDeque].push_back(std::move(task));
        _nextDeque = (_nextDeque + 1) % _deques.size();
        ++_queued;
    }
    _cvTask.notify_one();
    return fut;
}

std::optional<std::future<void>>
ThreadPool::trySubmit(std::function<void()> fn)
{
    Task task(std::move(fn));
    std::future<void> fut = task.get_future();
    {
        std::unique_lock lock(_mx);
        if (_queued >= _bound)
            return std::nullopt;
        _deques[_nextDeque].push_back(std::move(task));
        _nextDeque = (_nextDeque + 1) % _deques.size();
        ++_queued;
    }
    _cvTask.notify_one();
    return fut;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t max_concurrency)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t n = 0;
        const std::function<void(std::size_t)> *fn = nullptr;
        std::mutex mx;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();
    shared->n = n;
    shared->fn = &fn;

    // Stray helpers that only start after the caller exhausted the index
    // space see next >= n immediately and never dereference fn -- which
    // is what makes borrowing the caller's function object safe.
    auto work = [shared] {
        for (;;) {
            const std::size_t i = shared->next.fetch_add(1);
            if (i >= shared->n)
                return;
            try {
                (*shared->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(shared->mx);
                if (!shared->error)
                    shared->error = std::current_exception();
            }
            if (shared->done.fetch_add(1) + 1 == shared->n) {
                std::lock_guard<std::mutex> g(shared->mx);
                shared->cv.notify_all();
            }
        }
    };

    std::size_t helpers = std::min<std::size_t>(n - 1, workers());
    if (max_concurrency > 0)
        helpers = std::min(helpers, max_concurrency - 1);
    std::vector<std::future<void>> futs;
    futs.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
        if (auto f = trySubmit(work))
            futs.push_back(std::move(*f));
    }

    work();  // The caller claims indices alongside the helpers.

    {
        std::unique_lock lock(shared->mx);
        shared->cv.wait(lock,
                        [&] { return shared->done.load() >= shared->n; });
    }
    // done == n means every index ran and every error is in shared->error,
    // so the helper futures are deliberately abandoned: a helper that is
    // still queued behind workers blocked in THIS function would never
    // run, and waiting on it here would deadlock nested calls. Stray
    // helpers own `shared` and exit via the next >= n check whenever the
    // pool eventually runs them.
    futs.clear();
    if (shared->error)
        std::rethrow_exception(shared->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(
        std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

bool
ThreadPool::takeTask(unsigned self, Task &out)
{
    if (!_deques[self].empty()) {
        out = std::move(_deques[self].front());
        _deques[self].pop_front();
        --_queued;
        return true;
    }
    // Steal from the back of the most loaded sibling, oldest task first.
    unsigned victim = self;
    std::size_t best = 0;
    for (unsigned i = 0; i < _deques.size(); ++i) {
        if (i != self && _deques[i].size() > best) {
            best = _deques[i].size();
            victim = i;
        }
    }
    if (best == 0)
        return false;
    out = std::move(_deques[victim].back());
    _deques[victim].pop_back();
    --_queued;
    return true;
}

void
ThreadPool::workerLoop(std::stop_token st, unsigned index)
{
    for (;;) {
        Task task;
        {
            std::unique_lock lock(_mx);
            _cvTask.wait(lock, [&] {
                return st.stop_requested() || _queued > 0;
            });
            if (!takeTask(index, task)) {
                if (st.stop_requested())
                    return;
                continue;
            }
        }
        _cvSpace.notify_one();
        // packaged_task captures any exception into the future.
        task();
    }
}

} // namespace secpb
