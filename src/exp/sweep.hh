/**
 * @file
 * SweepRunner: execute a vector of ExperimentPoints, possibly in
 * parallel, with results aggregated in submission order.
 *
 * The determinism contract: each point is self-contained (fresh system,
 * seed in the point), results land in the slot matching the point's
 * index, and nothing about the measured values depends on thread count or
 * completion order. `--jobs 1` runs inline on the calling thread with no
 * pool at all, so a serial reference run involves zero threading; any
 * `--jobs N` run must produce bit-identical JSON modulo the host
 * wall-clock fields (enforced by tests/test_sweep_determinism.cc).
 *
 * Progress goes to stderr: a refreshing "[done/total] elapsed .. eta .."
 * line (ETA from mean completed-point cost), never stdout, so piping a
 * bench's table output stays clean.
 */

#ifndef SECPB_EXP_SWEEP_HH
#define SECPB_EXP_SWEEP_HH

#include <vector>

#include "exp/experiment.hh"

namespace secpb
{

/** How a sweep executes. */
struct SweepOptions
{
    /** Concurrent points; 1 = inline on the caller, no threads. */
    unsigned jobs = 1;

    /** Emit the refreshing progress/ETA line on stderr. */
    bool progress = true;

    /** Label prefixed to the progress line ("fig6"). */
    std::string name;
};

/** Executes point vectors under SweepOptions. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : _opts(opts) {}

    /**
     * Run every point; return results indexed like @p points. The first
     * exception thrown by any point is rethrown after all queued points
     * finish (no result slot is ever silently skipped before the throw).
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentPoint> &points) const;

  private:
    SweepOptions _opts;
};

} // namespace secpb

#endif // SECPB_EXP_SWEEP_HH
