#include "core/system.hh"

#include <algorithm>
#include <unordered_map>

#include "recovery/drain_latency.hh"

namespace secpb
{

SecPbSystem::SecPbSystem(const SystemConfig &cfg)
    : _cfg(cfg),
      _rootStats(cfg.statsName),
      _layout(cfg.pmDataBytes),
      _counters(_layout),
      _energy(EnergyCosts{}, 0 /* placeholder, fixed below */)
{
    // Pre-size the sparse PM image and counter store to the expected
    // touched footprint so warm-up growth of the open-addressing tables
    // stops skewing short runs.
    _pm.reserve(cfg.pmReserveDataBlocks, cfg.pmReserveCounterPages);
    _counters.reserve(cfg.pmReserveCounterPages);

    _pcm = std::make_unique<PcmModel>(_eq, cfg.pcm, _rootStats);
    _dcache = std::make_unique<DataHierarchy>(cfg.dataCache, *_pcm,
                                              _rootStats);
    _wpq = std::make_unique<WritePendingQueue>(_eq, *_pcm, cfg.wpqEntries,
                                               _rootStats);
    _ctrCache = std::make_unique<MetadataCache>(
        "ctr_cache", cfg.ctrCacheGeom, cfg.metadataCacheHitLatency, *_pcm,
        _rootStats);
    _bmtCache = std::make_unique<MetadataCache>(
        "bmt_cache", cfg.bmtCacheGeom, cfg.metadataCacheHitLatency, *_pcm,
        _rootStats, /*writeback_dirty=*/false);
    _macCache = std::make_unique<MetadataCache>(
        "mac_cache", cfg.macCacheGeom, cfg.metadataCacheHitLatency, *_pcm,
        _rootStats);
    _crypto = std::make_unique<CryptoEngine>(_eq, cfg.crypto, _rootStats);
    _tree = std::make_unique<BonsaiMerkleTree>(_layout.numPages(),
                                               cfg.keys.macKey ^ 0xb037);
    _walker = std::make_unique<BmtWalker>(_eq, cfg.walker, _layout, *_tree,
                                          *_bmtCache, *_pcm, cfg.crypto,
                                          _rootStats);
    _secpb = std::make_unique<SecPb>(
        _eq, cfg.scheme, cfg.secpb, _layout, cfg.keys, _counters, _oracle,
        _pm, *_crypto, *_walker, *_ctrCache, *_macCache, *_wpq, _rootStats);
    _sb = std::make_unique<StoreBuffer>(_eq, *_secpb,
                                        cfg.storeBufferEntries, _rootStats);
    _cpu = std::make_unique<TraceCpu>(_eq, *_sb, cfg.cpu, _rootStats,
                                      _dcache.get());

    _energy = EnergyModel(EnergyCosts{}, _tree->numLevels() + 1);

    if (cfg.battery.enabled) {
        fatal_if(cfg.battery.provisionFraction <= 0.0,
                 "battery.provisionFraction must be positive");
        _battery = std::make_unique<Capacitor>(Capacitor::sizedFor(
            cfg.battery.provisionFraction * provisionedCrashEnergy(),
            cfg.battery.cap));
        if (cfg.battery.adaptive.enabled)
            _secpb->attachBatteryMonitor(_battery.get(), &_energy,
                                         cfg.battery.adaptive);
    }

    if (cfg.obs.samplePeriod > 0) {
        _sampler = std::make_unique<obs::Sampler>(
            _eq, cfg.obs.samplePeriod, cfg.obs.sampleCapacity);
        _sampler->addChannel("secpb_occupancy", [this] {
            return static_cast<double>(_secpb->occupancy());
        });
        _sampler->addChannel("sb_occupancy", [this] {
            return static_cast<double>(_sb->occupancy());
        });
        _sampler->addChannel("wpq_depth", [this] {
            return static_cast<double>(_wpq->occupancy());
        });
        _sampler->addChannel("battery_headroom_j", [this] {
            return provisionedCrashEnergy() -
                   _energy.actualCrashEnergy(
                       _secpb->predictCrashDrainWork());
        });
        _sampler->addChannel("ctr_cache_dirty", [this] {
            return static_cast<double>(_ctrCache->dirtyBlocks().size());
        });
        _sampler->addChannel("mac_cache_dirty", [this] {
            return static_cast<double>(_macCache->dirtyBlocks().size());
        });
        _sampler->addChannel("bmt_inflight_walks", [this] {
            return static_cast<double>(_walker->inFlightWalks());
        });
        if (_battery) {
            _sampler->addChannel("battery_stored_j", [this] {
                return _battery->storedEnergyJ();
            });
            _sampler->addChannel("battery_voltage_v", [this] {
                return _battery->voltage();
            });
            _sampler->addChannel("battery_deliverable_j", [this] {
                return _battery->deliverableEnergyJ();
            });
        }
    }
}

SystemConfig
SecPbSystem::configFor(Scheme scheme, const BenchmarkProfile &profile,
                       const SystemConfig &base)
{
    SystemConfig cfg = base;
    cfg.scheme = scheme;
    cfg.cpu.loadPenalties.mem = profile.memPenalty(
        static_cast<double>(cfg.pcm.readLatency));
    if (!cfg.speculativeVerification && schemeTraits(scheme).secure) {
        // Non-speculative: a PM load waits for its counter fetch (mostly
        // a metadata-cache hit) and MAC check before use.
        cfg.cpu.loadPenalties.mem += cfg.metadataCacheHitLatency +
                                     static_cast<double>(cfg.crypto.macHash);
    }
    return cfg;
}

void
SecPbSystem::start(WorkloadGenerator &gen)
{
    panic_if(_started, "SecPbSystem::start called twice");
    _started = true;
    if (_sampler) {
        // Per-workload progress channels, only for sources that keep
        // counters (the server-scale generators and trace replay) --
        // profile-driven runs see the exact same channel set as before.
        if (const WorkloadCounters *ctr = gen.counters()) {
            _sampler->addChannel("wl_instructions", [ctr] {
                return static_cast<double>(ctr->instructions);
            });
            _sampler->addChannel("wl_stores", [ctr] {
                return static_cast<double>(ctr->stores);
            });
            _sampler->addChannel("wl_barriers", [ctr] {
                return static_cast<double>(ctr->barriers);
            });
        }
        _sampler->start();
    }
    _cpu->run(gen, [this] {
        _cpuDone = true;
        _sb->notifyWhenEmpty([this] {
            _finished = true;
            _endTick = _eq.curTick();
        });
    });
}

void
SecPbSystem::adoptPersistentState(const PmImage &pm,
                                  const BonsaiMerkleTree &tree,
                                  const PersistOracle &oracle)
{
    panic_if(_started,
             "adoptPersistentState must precede SecPbSystem::start");
    _pm = pm;
    *_tree = tree;
    _oracle = oracle;
}

void
SecPbSystem::applyBrownout(double retain)
{
    fatal_if(!_battery, "applyBrownout needs a system battery "
                        "(BatteryConfig::enabled)");
    const double reserve = _cfg.battery.adaptive.enabled
                               ? _secpb->crashReserveEnergyJ()
                               : 0.0;
    _battery->applyBrownout(retain, reserve);
}

void
SecPbSystem::runUntil(Tick limit)
{
    _eq.run(limit);
}

SimulationResult
SecPbSystem::run(WorkloadGenerator &gen)
{
    start(gen);
    while (!_finished) {
        if (_eq.empty()) {
            panic("simulation deadlock: no events pending but the run has "
                  "not finished (SB occupancy %zu, SecPB occupancy %zu)",
                  _sb->occupancy(), _secpb->occupancy());
        }
        _eq.step();
    }
    return result();
}

SimulationResult
SecPbSystem::result() const
{
    SimulationResult r;
    r.execTicks = _finished ? _endTick : _eq.curTick();
    r.instructions = _cpu->instructions();
    r.ipc = r.execTicks
        ? static_cast<double>(r.instructions) / r.execTicks : 0.0;
    r.persists = static_cast<std::uint64_t>(_secpb->statPersists.value());
    r.allocations = static_cast<std::uint64_t>(_secpb->statAllocs.value());
    r.ppti = r.instructions
        ? 1000.0 * r.persists / r.instructions : 0.0;
    r.nwpe = _secpb->statNwpe.count() ? _secpb->statNwpe.mean()
        : (r.allocations ? static_cast<double>(r.persists) / r.allocations
                         : 0.0);
    r.bmtRootUpdates = _walker->rootUpdates();
    r.pageReencryptions =
        static_cast<std::uint64_t>(_secpb->statPageReencrypts.value());
    r.drainedEntries =
        static_cast<std::uint64_t>(_secpb->statDrainedEntries.value());
    r.sbFullStalls =
        static_cast<std::uint64_t>(_cpu->statSbStalls.value());
    r.pbFullRejects =
        static_cast<std::uint64_t>(_secpb->statFullRejects.value());
    r.pcmReads = _pcm->numReads();
    r.pcmWrites = _pcm->numWrites();
    r.ctrCacheHitRate = _ctrCache->hitRate();
    r.bmtCacheHitRate = _bmtCache->hitRate();
    r.meanUnblockLatency = _secpb->statUnblockLatency.mean();
    return r;
}

CrashReport
SecPbSystem::crashNow(const CrashOptions &opts)
{
    // Capture the pre-crash state as one last epoch: the time-series
    // then ends exactly where the battery takes over.
    if (_sampler)
        _sampler->sampleNow();

    CrashReport cr;
    DrainLatencyModel latency(_cfg.crypto, _cfg.pcm);
    CrashDrainBudget budget;
    if (opts.bounded()) {
        budget.energyJ = *opts.batteryEnergyJ;
        budget.pricing = &_energy;
    } else if (_battery) {
        // No explicit budget: the physical battery is what we have.
        budget.energyJ = _battery->deliverableEnergyJ();
        budget.pricing = &_energy;
    }
    cr.batteryBudgetJ = budget.energyJ;
    cr.work = _secpb->crashDrainAll(
        _cfg.batteryBackedStoreBuffer
            ? _sb->pendingStores()
            : std::vector<std::pair<Addr, std::uint64_t>>{},
        budget);
    cr.actualEnergyJ = _energy.actualCrashEnergy(cr.work);
    if (_battery) {
        // The drain physically discharged the cell.
        _battery->deliver(cr.work.energySpentJ);
        cr.batteryAfterJ = _battery->storedEnergyJ();
    }
    cr.drainLatency = latency.estimate(cr.work);
    cr.drainLatencyNs = latency.estimateNs(cr.work, _cfg.clock);
    cr.provisionedEnergyJ = provisionedCrashEnergy();

    const bool partial =
        cr.work.batteryExhausted || !cr.work.abandoned.empty();
    if (schemeTraits(_cfg.scheme).secure) {
        RecoveryVerifier verifier(_layout, _cfg.keys);
        cr.recovery = partial
            ? verifier.verifyPartial(_pm, *_tree, _oracle,
                                     cr.work.abandoned)
            : verifier.verifyAll(_pm, *_tree, _oracle);
        cr.recovered = cr.recovery.ok();
    } else {
        // BBB stores plaintext; recovery is a plain comparison. An
        // abandoned block may legitimately sit at its pre-residency
        // version (or its final one, if the drain raced completion);
        // anything else is a prefix violation.
        std::unordered_map<Addr, std::uint64_t> pending;
        for (const AbandonedResidency &a : cr.work.abandoned)
            pending[blockAlign(a.addr)] = a.pendingWrites;
        cr.recovery.blocksChecked = 0;
        for (Addr addr : _oracle.touchedBlocks()) {
            ++cr.recovery.blocksChecked;
            auto it = pending.find(addr);
            if (it == pending.end()) {
                if (_pm.readData(addr) != _oracle.blockContent(addr)) {
                    ++cr.recovery.plaintextMismatches;
                    cr.recovery.faults.push_back(
                        {addr, BlockFaultKind::PlaintextMismatch});
                }
                continue;
            }
            const std::uint64_t total = _oracle.storeCount(addr);
            const std::uint64_t pre =
                total - std::min(total, it->second);
            const BlockData got = _pm.readData(addr);
            if (got == _oracle.blockVersion(addr, pre) ||
                got == _oracle.blockContent(addr)) {
                ++cr.recovery.staleConsistent;
            } else {
                ++cr.recovery.prefixViolations;
                cr.recovery.faults.push_back(
                    {addr, BlockFaultKind::PrefixViolation});
            }
        }
        cr.recovered = cr.recovery.ok();
    }
    return cr;
}

} // namespace secpb
