/**
 * @file
 * Simulation: the one front door to the simulated machine.
 *
 * Every driver -- bench binaries, the sweep engine's default runner, the
 * fault soak, the intermittent-power injector, examples -- builds its
 * machine from a SimulationSpec and talks to the Simulation facade. The
 * spec pins everything a run needs: the per-core SystemConfig, the core
 * count, the shard count (host parallelism for the multi-core epoch
 * engine), and the workload-level knobs the shared CLI owns
 * (instructions, seed, workload selector, battery physics, power
 * schedule). One lifecycle -- start / runUntil / run / crashNow /
 * result -- covers the single-core machine and the sharded multi-core
 * machine; callers stop special-casing which one they drive.
 *
 * cores == 1 instantiates SecPbSystem directly (bit-identical to the
 * pre-facade behavior: no gate, no directory, "system" stat root);
 * cores > 1 instantiates the epoch-barrier MultiCoreSystem, where
 * `shards` caps the worker threads and never changes results.
 *
 * SimulationSpec::fromCli is the single parse point for the spec-level
 * command line: it consumes the flags it owns from argv (leaving
 * sweep-level flags like --jobs for the caller), applies the deprecated
 * SECPB_BENCH_* environment fallbacks with a one-time note, validates
 * everything eagerly with diagnostics that list the valid values, and
 * is where `--shards N` exists exactly once.
 */

#ifndef SECPB_CORE_SIMULATION_HH
#define SECPB_CORE_SIMULATION_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/multicore.hh"
#include "core/system.hh"
#include "energy/capacitor.hh"

namespace secpb
{

/** Everything one simulated machine + run needs; see the file comment. */
struct SimulationSpec
{
    /** Per-core machine configuration (every core gets a copy). */
    SystemConfig base;

    /** Simulated cores; 1 = the classic single-core machine. */
    unsigned cores = 1;

    /**
     * Host worker threads for the multi-core epoch engine (capped at
     * cores; ignored when cores == 1). Results are bit-identical for
     * every value -- this is wall-clock parallelism only.
     */
    unsigned shards = 1;

    /** Cycles to migrate a page between SecPBs (multi-core). */
    Cycles migrationLatency = 24;

    /** Epoch length in ticks; 0 derives it from migrationLatency. */
    Tick epochTicks = 0;

    /** @name Workload-level knobs owned by the shared CLI. */
    /** @{ */
    std::uint64_t instructions = 300'000;
    std::uint64_t seed = 7;
    std::string workload;        ///< Registry selector; "" = profiles.
    std::string traceRecord;     ///< Record first point's ops; "" = off.
    std::string batteryTech = "ideal";  ///< Capacitor physics preset.
    double batteryDerate = 1.0;  ///< End-of-life capacity derate.
    std::string powerSchedule;   ///< Intermittent power; "" = none.
    /** @} */

    /** The multi-core config this spec describes. */
    MultiCoreConfig
    multiCoreConfig() const
    {
        MultiCoreConfig mc;
        mc.base = base;
        mc.numCores = cores;
        mc.migrationLatency = migrationLatency;
        mc.shards = shards;
        mc.epochTicks = epochTicks;
        return mc;
    }

    /** The parsed battery physics preset with the derate applied. */
    CapacitorParams batteryParams() const;

    /**
     * Parse and REMOVE the spec-level flags from @p argv (compacting in
     * place, updating @p argc), so the caller's parser only sees what
     * it owns. Flags: --instr, --seed, --workload, --trace-in,
     * --trace-record, --battery-tech, --battery-derate,
     * --power-schedule, --cores, --shards. Deprecated SECPB_BENCH_*
     * environment fallbacks still apply (one-time stderr note). All
     * values are validated eagerly; a bad one dies listing the valid
     * choices.
     */
    static SimulationSpec fromCli(int &argc, char **argv, const char *prog);

    /** Usage text for the flags fromCli owns (callers splice it into
     *  their --help output). */
    static const char *cliHelp();
};

/**
 * The facade: one machine (single- or multi-core per the spec), one
 * lifecycle. See the file comment.
 */
class Simulation
{
  public:
    explicit Simulation(const SimulationSpec &spec);

    bool multiCore() const { return _multi != nullptr; }
    unsigned numCores() const
    {
        return _multi ? _multi->numCores() : 1;
    }

    /** The single-core machine (panics on a multi-core simulation). */
    SecPbSystem &system();
    /** The multi-core machine (panics on a single-core simulation). */
    MultiCoreSystem &multi();

    /** @name Unified lifecycle. */
    /** @{ */
    /** Begin executing; one generator (single-core). */
    void start(WorkloadGenerator &gen);
    /** Begin executing; one generator per core. */
    void start(std::vector<WorkloadGenerator *> gens);

    /** Advance simulated time to @p limit. */
    void runUntil(Tick limit);

    /** Run one generator to completion (single-core). */
    SimulationResult run(WorkloadGenerator &gen);
    /** Run one generator per core to completion. */
    MultiCoreResult run(std::vector<WorkloadGenerator *> gens);

    bool finished() const;

    /** Crash the machine now (every core, for multi-core specs). */
    CrashReport crashNow(const CrashOptions &opts = {});

    /** Single-core result snapshot (core 0's for multi-core specs). */
    SimulationResult result() const;
    /** @} */

    /** The core-0 epoch sampler (nullptr when sampling is off). */
    obs::Sampler *sampler();

    /** Stat root: the system's (single-core) or core 0's (multi). */
    const StatGroup &stats() const;

    /** Dump every stat tree this machine owns. */
    void dumpStats(std::ostream &os) const;

  private:
    std::unique_ptr<SecPbSystem> _single;
    std::unique_ptr<MultiCoreSystem> _multi;
};

} // namespace secpb

#endif // SECPB_CORE_SIMULATION_HH
