#include "core/results.hh"

#include "stats/json.hh"

namespace secpb
{

void
SimulationResult::toJson(JsonWriter &w) const
{
    w.beginObject();
    visitFields([&w](const char *name, auto v) { w.field(name, v); });
    w.endObject();
}

} // namespace secpb
