/**
 * @file
 * Multi-core SecPB machine: one fully private SecPbSystem slice per
 * core, coupled only at epoch barriers.
 *
 * Each core owns a complete machine slice -- TraceCpu, StoreBuffer,
 * SecPB, crypto engine, metadata caches, BMT, WPQ, PCM channel, PM
 * image, persist oracle -- with its own EventQueue. Slices share no
 * mutable state while an epoch runs, so the engine may advance them on
 * separate OS threads (`--shards N`) and the simulation stays
 * bit-identical to the serial schedule: all cross-core interaction is
 * deferred to the barrier, which runs serially in a canonical order.
 *
 * Conservative epoch-barrier protocol (see DESIGN.md):
 *
 *   1. Pick the next barrier tick T on the absolute epoch grid
 *      (multiples of epochTicks, independent of shard count and of
 *      runUntil() slicing).
 *   2. Advance every slice to T (in parallel across at most `shards`
 *      pool workers; each slice is deterministic on its own, so the
 *      thread assignment is irrelevant).
 *   3. Process the coherence mailbox serially: every CoherenceGate
 *      rejection filed during the epoch is a PageRequest stamped
 *      (tick, core, seq); requests are granted in that total order.
 *      A page ownership transfer extracts the owner's persist-buffer
 *      entries -- carrying their data-value-independent metadata, per
 *      paper Section IV-C(c) -- and moves the page's durable state
 *      (PM blocks, MACs, counter block, oracle records, BMT leaf) to
 *      the requester's slice. Non-quiescent pages get a stop mark plus
 *      a forced drain, and the request retries at a later barrier.
 *
 * The epoch length (lookahead) is a pure timing knob: any value is
 * *correct* because slices cannot observe each other mid-epoch; it
 * only quantizes when ownership transfers happen. It defaults to the
 * migration latency (floored for efficiency), the natural scale of
 * cross-core events.
 */

#ifndef SECPB_CORE_MULTICORE_HH
#define SECPB_CORE_MULTICORE_HH

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "obs/trace.hh"
#include "secpb/coherence.hh"

namespace secpb
{

/** Configuration of the multi-core machine. */
struct MultiCoreConfig
{
    /** Per-core slice configuration (every core gets a copy). */
    SystemConfig base;

    unsigned numCores = 4;

    /** Cycles to hand a PB entry and its page to another core. */
    Cycles migrationLatency = 24;

    /**
     * Worker threads advancing slices concurrently. 1 = serial (the
     * reference schedule); N <= numCores shards the epoch across the
     * global pool. Results are identical for every value -- shards is
     * host parallelism, not simulated behavior.
     */
    unsigned shards = 1;

    /**
     * Epoch (barrier period) in ticks; 0 derives it from
     * migrationLatency. Affects simulated transfer timing (coarser
     * epochs delay ownership grants), never correctness.
     */
    Tick epochTicks = 0;
};

/** Aggregate outcome of a multi-core run. */
struct MultiCoreResult
{
    std::vector<SimulationResult> perCore;
    Tick execTicks = 0;                    ///< Last core's finish tick.
    std::uint64_t totalInstructions = 0;
    std::uint64_t migrations = 0;          ///< Page ownership transfers.
    std::uint64_t remoteReadFlushes = 0;
    std::uint64_t firstTouches = 0;        ///< Cold ownership claims.
};

/**
 * N private machine slices + page directory + epoch-barrier engine.
 */
class MultiCoreSystem
{
  public:
    explicit MultiCoreSystem(const MultiCoreConfig &cfg = {});

    /** Begin executing one generator per core (size must match). */
    void start(std::vector<WorkloadGenerator *> gens);

    /**
     * Advance simulated time to @p limit. Epochs end on the absolute
     * grid, so splitting a run into arbitrary runUntil() calls (e.g.
     * to crash mid-epoch) cannot change behavior.
     */
    void runUntil(Tick limit);

    /** Run all cores to completion and aggregate the results. */
    MultiCoreResult run(std::vector<WorkloadGenerator *> gens);

    /** True once every core retired and drained its store buffer. */
    bool finished() const;

    /**
     * A core loads @p addr that another core may own: the owner's
     * page entries are flushed to PM (timed) and ownership is dropped
     * so the reader observes persisted data. Quiescent-time API (call
     * between run segments, not mid-epoch).
     * @return true if a remote owner was found and flushed.
     */
    bool coreRead(CoreId core, Addr addr);

    /** Crash with the classic unbounded per-core batteries. */
    CrashReport crashNow() { return crashNow(CrashOptions{}); }

    /**
     * Crash every core now. A bounded CrashOptions budget is one
     * shared energy pool: cores drain in core order, each spending
     * from what the previous cores left. Recovery verification runs
     * per slice (each core recovers its resident pages) and the report
     * aggregates work, energy, and verification across cores.
     */
    CrashReport crashNow(const CrashOptions &opts);

    unsigned numCores() const { return static_cast<unsigned>(_slices.size()); }
    Tick now() const { return _now; }
    Tick epochTicks() const { return _epochTicks; }

    /** @name Component access (tests, examples). */
    /** @{ */
    SecPbSystem &slice(unsigned core) { return *_slices.at(core); }
    const SecPbSystem &slice(unsigned core) const { return *_slices.at(core); }
    SecPb &secpb(unsigned core) { return _slices.at(core)->secpb(); }
    StoreBuffer &storeBuffer(unsigned core)
    {
        return _slices.at(core)->storeBuffer();
    }
    TraceCpu &cpu(unsigned core) { return _slices.at(core)->cpu(); }
    PageDirectory &directory() { return _dir; }
    const PageDirectory &directory() const { return _dir; }
    const MultiCoreConfig &config() const { return _cfg; }

    /** The slice holding @p addr's durable state (slice 0 if untouched). */
    SecPbSystem &residentSystem(Addr addr);
    /** @} */

    /** Sum of per-core persist counts (the oracle's view). */
    std::uint64_t totalPersists() const;

    /**
     * No block is resident in two persist buffers, and every resident
     * block's page is owned by the slice holding it.
     */
    bool invariantNoReplication() const;

    /** Dump directory stats plus every slice's stat tree. */
    void dumpStats(std::ostream &os) const;

  private:
    /** Next barrier strictly after @p t on the absolute epoch grid. */
    Tick nextBarrier(Tick t) const
    {
        return (t / _epochTicks + 1) * _epochTicks;
    }

    /** Advance every slice to @p target (parallel across shards). */
    void advanceSlices(Tick target);

    /** Serially grant/defer the epoch's page requests at tick @p T. */
    void processBarrier(Tick T);

    /** Move page @p page's durable state between slices. */
    void movePageState(CoreId from, CoreId to, std::uint64_t page);

    /** Schedule a space-waiter kick in @p core's queue at @p when. */
    void kickCore(CoreId core, Tick when);

    /** True if any slice has pending events or any gate has requests. */
    bool anyWorkPending() const;

    /** Merge per-slice trace buffers into the ambient tracer. */
    void flushTraces();

    MultiCoreConfig _cfg;
    Tick _epochTicks;
    Tick _now = 0;

    StatGroup _rootStats;
    PageDirectory _dir;
    std::vector<std::string> _sliceNames;
    std::vector<std::unique_ptr<SecPbSystem>> _slices;
    std::vector<std::unique_ptr<CoherenceGate>> _gates;

    /** Per-slice trace buffers (only when an ambient tracer exists):
     *  shard threads must not share the caller's tracer. */
    obs::Tracer *_parentTracer = nullptr;
    std::vector<std::unique_ptr<obs::Tracer>> _sliceTracers;

    bool _started = false;
};

} // namespace secpb

#endif // SECPB_CORE_MULTICORE_HH
