/**
 * @file
 * MultiCoreSystem: N cores, each with its own SecPB, sharing the memory
 * controller (crypto engine, metadata caches, BMT walker, WPQ, PCM) and
 * coordinated by the SecPB directory of paper Section IV-C(c).
 *
 * The paper's timing evaluation is single-core (Table I); the multi-core
 * protocol is described but not measured. This system realizes it: a
 * remote write migrates the owning SecPB's entry -- moving the data-value-
 * independent metadata with it so the receiving core skips counter/OTP/
 * BMT work -- and a remote read forces the owner to flush the entry to PM
 * while the datum is forwarded. The no-replication invariant is enforced
 * by the directory and property-tested.
 *
 * Crash semantics extend naturally: the battery drains every core's
 * SecPB; ownership is per-block, so per-buffer drain order preserves the
 * persist-order invariant globally.
 */

#ifndef SECPB_CORE_MULTICORE_HH
#define SECPB_CORE_MULTICORE_HH

#include <memory>
#include <vector>

#include "core/config.hh"
#include "core/results.hh"
#include "cpu/store_buffer.hh"
#include "cpu/trace_cpu.hh"
#include "energy/energy_model.hh"
#include "mem/pcm.hh"
#include "mem/pm_image.hh"
#include "mem/wpq.hh"
#include "metadata/bmt.hh"
#include "metadata/counter_store.hh"
#include "metadata/layout.hh"
#include "metadata/metadata_cache.hh"
#include "metadata/walker.hh"
#include "recovery/oracle.hh"
#include "recovery/verifier.hh"
#include "secpb/coherence.hh"
#include "secpb/secpb.hh"

namespace secpb
{

/** Configuration of the multi-core machine. */
struct MultiCoreConfig
{
    SystemConfig base;            ///< Per-core + shared-MC parameters.
    unsigned numCores = 4;
    Cycles migrationLatency = 24; ///< SecPB-to-SecPB entry transfer.
};

/** Per-core and aggregate results of a multi-core run. */
struct MultiCoreResult
{
    std::vector<SimulationResult> perCore;
    std::uint64_t execTicks = 0;        ///< Last core's finish time.
    std::uint64_t totalInstructions = 0;
    std::uint64_t migrations = 0;       ///< Entries moved between SecPBs.
    std::uint64_t remoteReadFlushes = 0;
};

/** The assembled N-core machine. */
class MultiCoreSystem
{
  public:
    explicit MultiCoreSystem(const MultiCoreConfig &cfg);

    /**
     * Run one workload per core to completion (every generator
     * exhausted, every store buffer empty).
     */
    MultiCoreResult run(const std::vector<WorkloadGenerator *> &gens);

    /** Begin execution without advancing time. */
    void start(const std::vector<WorkloadGenerator *> &gens);

    /** Advance simulated time up to @p limit. */
    void runUntil(Tick limit);

    bool finished() const;

    /**
     * A load on @p core to a block possibly owned by a remote SecPB:
     * the directory decides; a remote owner's entry is flushed (datum
     * forwarded). Exposed for workloads with read sharing.
     * @return true if a remote flush was triggered.
     */
    bool coreRead(CoreId core, Addr addr);

    /** Crash: battery-drain every core's SecPB, then verify recovery. */
    CrashReport crashNow();

    /** @name Component access. */
    /** @{ */
    unsigned numCores() const { return static_cast<unsigned>(_cores.size()); }
    SecPb &secpb(CoreId core) { return *_cores.at(core).pb; }
    StoreBuffer &storeBuffer(CoreId core) { return *_cores.at(core).sb; }
    TraceCpu &cpu(CoreId core) { return *_cores.at(core).cpu; }
    SecPbDirectory &directory() { return *_dir; }
    PersistOracle &oracle() { return _oracle; }
    PmImage &pm() { return _pm; }
    BonsaiMerkleTree &tree() { return *_tree; }
    EventQueue &eventQueue() { return _eq; }
    const MetadataLayout &layout() const { return _layout; }
    /** @} */

  private:
    struct Core
    {
        std::unique_ptr<StatGroup> stats;
        std::unique_ptr<SecPb> pb;
        std::unique_ptr<StoreBuffer> sb;
        std::unique_ptr<TraceCpu> cpu;
        bool done = false;
        bool sbEmpty = false;
    };

    SimulationResult coreResult(const Core &core) const;

    MultiCoreConfig _cfg;
    EventQueue _eq;
    StatGroup _rootStats;

    MetadataLayout _layout;
    PmImage _pm;
    CounterStore _counters;
    PersistOracle _oracle;
    EnergyModel _energy;

    std::unique_ptr<PcmModel> _pcm;
    std::unique_ptr<WritePendingQueue> _wpq;
    std::unique_ptr<MetadataCache> _ctrCache;
    std::unique_ptr<MetadataCache> _bmtCache;
    std::unique_ptr<MetadataCache> _macCache;
    std::unique_ptr<CryptoEngine> _crypto;
    std::unique_ptr<BonsaiMerkleTree> _tree;
    std::unique_ptr<BmtWalker> _walker;
    std::unique_ptr<SecPbDirectory> _dir;

    std::vector<Core> _cores;
    bool _started = false;
    Tick _endTick = 0;
};

} // namespace secpb

#endif // SECPB_CORE_MULTICORE_HH
