#include "core/multicore.hh"

namespace secpb
{

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &cfg)
    : _cfg(cfg),
      _rootStats("mc_system"),
      _layout(cfg.base.pmDataBytes),
      _counters(_layout),
      _energy(EnergyCosts{}, 8)
{
    fatal_if(cfg.numCores == 0, "need at least one core");

    const SystemConfig &base = cfg.base;
    _pcm = std::make_unique<PcmModel>(_eq, base.pcm, _rootStats);
    _wpq = std::make_unique<WritePendingQueue>(_eq, *_pcm,
                                               base.wpqEntries, _rootStats);
    _ctrCache = std::make_unique<MetadataCache>(
        "ctr_cache", base.ctrCacheGeom, base.metadataCacheHitLatency,
        *_pcm, _rootStats);
    _bmtCache = std::make_unique<MetadataCache>(
        "bmt_cache", base.bmtCacheGeom, base.metadataCacheHitLatency,
        *_pcm, _rootStats, /*writeback_dirty=*/false);
    _macCache = std::make_unique<MetadataCache>(
        "mac_cache", base.macCacheGeom, base.metadataCacheHitLatency,
        *_pcm, _rootStats);
    _crypto = std::make_unique<CryptoEngine>(_eq, base.crypto, _rootStats);
    _tree = std::make_unique<BonsaiMerkleTree>(_layout.numPages(),
                                               base.keys.macKey ^ 0xb037);
    _walker = std::make_unique<BmtWalker>(_eq, base.walker, _layout,
                                          *_tree, *_bmtCache, *_pcm,
                                          base.crypto, _rootStats);
    _dir = std::make_unique<SecPbDirectory>(cfg.numCores, _rootStats);

    _energy = EnergyModel(EnergyCosts{}, _tree->numLevels() + 1);

    _cores.resize(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        Core &core = _cores[i];
        core.stats = std::make_unique<StatGroup>(
            "core" + std::to_string(i), &_rootStats);
        core.pb = std::make_unique<SecPb>(
            _eq, base.scheme, base.secpb, _layout, base.keys, _counters,
            _oracle, _pm, *_crypto, *_walker, *_ctrCache, *_macCache,
            *_wpq, *core.stats);
        core.pb->attachCoherence(
            _dir.get(), i,
            [this](CoreId id) { return _cores.at(id).pb.get(); },
            cfg.migrationLatency);
        core.sb = std::make_unique<StoreBuffer>(
            _eq, *core.pb, base.storeBufferEntries, *core.stats);
        core.cpu = std::make_unique<TraceCpu>(_eq, *core.sb, base.cpu,
                                              *core.stats);
    }
}

void
MultiCoreSystem::start(const std::vector<WorkloadGenerator *> &gens)
{
    panic_if(_started, "MultiCoreSystem::start called twice");
    fatal_if(gens.size() != _cores.size(),
             "need exactly one workload per core (%zu != %zu)",
             gens.size(), _cores.size());
    _started = true;
    for (unsigned i = 0; i < _cores.size(); ++i) {
        Core *core = &_cores[i];
        core->cpu->run(*gens[i], [this, core] {
            core->done = true;
            core->sb->notifyWhenEmpty([this, core] {
                core->sbEmpty = true;
                if (finished())
                    _endTick = _eq.curTick();
            });
        });
    }
}

bool
MultiCoreSystem::finished() const
{
    for (const Core &core : _cores)
        if (!core.done || !core.sbEmpty)
            return false;
    return true;
}

void
MultiCoreSystem::runUntil(Tick limit)
{
    _eq.run(limit);
}

MultiCoreResult
MultiCoreSystem::run(const std::vector<WorkloadGenerator *> &gens)
{
    start(gens);
    while (!finished()) {
        if (_eq.empty()) {
            panic("multi-core deadlock: no events pending but %u cores "
                  "have not finished", numCores());
        }
        _eq.step();
    }

    MultiCoreResult result;
    result.execTicks = _endTick;
    for (const Core &core : _cores) {
        result.perCore.push_back(coreResult(core));
        result.totalInstructions += result.perCore.back().instructions;
    }
    result.migrations =
        static_cast<std::uint64_t>(_dir->statMigrations.value());
    result.remoteReadFlushes =
        static_cast<std::uint64_t>(_dir->statRemoteReadFlushes.value());
    return result;
}

SimulationResult
MultiCoreSystem::coreResult(const Core &core) const
{
    SimulationResult r;
    r.execTicks = _endTick ? _endTick : _eq.curTick();
    r.instructions = core.cpu->instructions();
    r.ipc = r.execTicks
        ? static_cast<double>(r.instructions) / r.execTicks : 0.0;
    r.persists =
        static_cast<std::uint64_t>(core.pb->statPersists.value());
    r.allocations =
        static_cast<std::uint64_t>(core.pb->statAllocs.value());
    r.nwpe = core.pb->statNwpe.count() ? core.pb->statNwpe.mean() : 0.0;
    r.drainedEntries =
        static_cast<std::uint64_t>(core.pb->statDrainedEntries.value());
    return r;
}

bool
MultiCoreSystem::coreRead(CoreId core, Addr addr)
{
    const CoreId owner_before = _dir->owner(addr);
    const bool flushed = _dir->read(core, addr);
    if (flushed)
        _cores.at(owner_before).pb->flushForRemoteRead(addr);
    return flushed;
}

CrashReport
MultiCoreSystem::crashNow()
{
    CrashReport cr;
    for (Core &core : _cores) {
        const CrashWork w = core.pb->crashDrainAll(
            _cfg.base.batteryBackedStoreBuffer
                ? core.sb->pendingStores()
                : std::vector<std::pair<Addr, std::uint64_t>>{});
        cr.work.entriesDrained += w.entriesDrained;
        cr.work.countersIncremented += w.countersIncremented;
        cr.work.counterFetches += w.counterFetches;
        cr.work.otpsGenerated += w.otpsGenerated;
        cr.work.bmtRootUpdates += w.bmtRootUpdates;
        cr.work.bmtLevelsWalked += w.bmtLevelsWalked;
        cr.work.macsComputed += w.macsComputed;
        cr.work.ciphertexts += w.ciphertexts;
        cr.work.pmBlockWrites += w.pmBlockWrites;
        cr.work.mdcBlockFlushes += w.mdcBlockFlushes;
    }
    cr.actualEnergyJ = _energy.actualCrashEnergy(cr.work);
    cr.provisionedEnergyJ =
        numCores() * (schemeTraits(_cfg.base.scheme).secure
                          ? _energy.secPbBatteryEnergy(
                                _cfg.base.scheme,
                                _cfg.base.secpb.numEntries)
                          : _energy.bbbBatteryEnergy(
                                _cfg.base.secpb.numEntries));

    if (schemeTraits(_cfg.base.scheme).secure) {
        RecoveryVerifier verifier(_layout, _cfg.base.keys);
        cr.recovery = verifier.verifyAll(_pm, *_tree, _oracle);
        cr.recovered = cr.recovery.ok();
    } else {
        cr.recovered = true;
        for (Addr addr : _oracle.touchedBlocks()) {
            ++cr.recovery.blocksChecked;
            if (_pm.readData(addr) != _oracle.blockContent(addr)) {
                ++cr.recovery.plaintextMismatches;
                cr.recovered = false;
            }
        }
    }
    return cr;
}

} // namespace secpb
