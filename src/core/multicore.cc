#include "core/multicore.hh"

#include <algorithm>
#include <unordered_set>

#include "exp/thread_pool.hh"
#include "sim/logging.hh"

namespace secpb
{

namespace
{

void
accumulate(CrashWork &into, const CrashWork &w)
{
    into.entriesDrained += w.entriesDrained;
    into.countersIncremented += w.countersIncremented;
    into.counterFetches += w.counterFetches;
    into.otpsGenerated += w.otpsGenerated;
    into.bmtRootUpdates += w.bmtRootUpdates;
    into.bmtLevelsWalked += w.bmtLevelsWalked;
    into.macsComputed += w.macsComputed;
    into.ciphertexts += w.ciphertexts;
    into.pmBlockWrites += w.pmBlockWrites;
    into.mdcBlockFlushes += w.mdcBlockFlushes;
    into.cacheLinesFlushed += w.cacheLinesFlushed;
    into.bmtNodesRebuilt += w.bmtNodesRebuilt;
    into.batteryExhausted = into.batteryExhausted || w.batteryExhausted;
    into.energySpentJ += w.energySpentJ;
    into.drainedBlocks.insert(into.drainedBlocks.end(),
                              w.drainedBlocks.begin(),
                              w.drainedBlocks.end());
    into.abandoned.insert(into.abandoned.end(), w.abandoned.begin(),
                          w.abandoned.end());
    into.absorbedApplied += w.absorbedApplied;
    into.absorbedLost += w.absorbedLost;
}

void
accumulate(RecoveryReport &into, const RecoveryReport &r)
{
    into.blocksChecked += r.blocksChecked;
    into.macFailures += r.macFailures;
    into.bmtFailures += r.bmtFailures;
    into.plaintextMismatches += r.plaintextMismatches;
    into.spuriousBlocks += r.spuriousBlocks;
    into.missingBlocks += r.missingBlocks;
    into.prefixViolations += r.prefixViolations;
    into.tornDetected += r.tornDetected;
    into.staleConsistent += r.staleConsistent;
    into.faults.insert(into.faults.end(), r.faults.begin(), r.faults.end());
}

} // namespace

MultiCoreSystem::MultiCoreSystem(const MultiCoreConfig &cfg)
    : _cfg(cfg),
      _epochTicks(cfg.epochTicks
                      ? cfg.epochTicks
                      : std::max<Tick>(cfg.migrationLatency, 64)),
      _rootStats("mc_system"),
      _dir(cfg.numCores, _rootStats)
{
    fatal_if(cfg.numCores == 0, "need at least one core");
    // Slice stat roots borrow their names (SystemConfig::statsName is a
    // raw pointer), so fill the name vector up front and never touch it
    // again.
    _sliceNames.reserve(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; ++i)
        _sliceNames.push_back("core" + std::to_string(i));
    _slices.reserve(cfg.numCores);
    _gates.reserve(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        SystemConfig sc = cfg.base;
        sc.statsName = _sliceNames[i].c_str();
        _slices.push_back(std::make_unique<SecPbSystem>(sc));
        _gates.push_back(std::make_unique<CoherenceGate>(_dir, i));
        _slices.back()->secpb().attachGate(_gates.back().get());
    }
}

void
MultiCoreSystem::start(std::vector<WorkloadGenerator *> gens)
{
    panic_if(_started, "MultiCoreSystem::start called twice");
    panic_if(gens.size() != _slices.size(),
             "%zu generators for %zu cores", gens.size(), _slices.size());
    _started = true;

    // When the caller traces, record into per-slice buffers: shard
    // threads may not share one Tracer, and merging in core order keeps
    // the output independent of the shard count.
    _parentTracer = obs::current();
    if (_parentTracer) {
        _sliceTracers.reserve(_slices.size());
        for (std::size_t i = 0; i < _slices.size(); ++i)
            _sliceTracers.push_back(
                std::make_unique<obs::Tracer>(_parentTracer->capacity()));
    }

    for (std::size_t i = 0; i < _slices.size(); ++i) {
        obs::TraceSession session(
            _sliceTracers.empty() ? nullptr : _sliceTracers[i].get());
        _slices[i]->start(*gens[i]);
    }
}

bool
MultiCoreSystem::finished() const
{
    for (const auto &slice : _slices)
        if (!slice->finished())
            return false;
    return true;
}

bool
MultiCoreSystem::anyWorkPending() const
{
    for (std::size_t i = 0; i < _slices.size(); ++i) {
        if (!_slices[i]->eventQueue().empty())
            return true;
        if (!_gates[i]->pending().empty())
            return true;
    }
    return false;
}

void
MultiCoreSystem::advanceSlices(Tick target)
{
    const auto advanceOne = [&](std::size_t i) {
        obs::TraceSession session(
            _sliceTracers.empty() ? nullptr : _sliceTracers[i].get());
        _slices[i]->runUntil(target);
    };
    if (_cfg.shards <= 1 || _slices.size() <= 1) {
        for (std::size_t i = 0; i < _slices.size(); ++i)
            advanceOne(i);
        return;
    }
    // Shard workers draw from the one global pool (shared with sweep
    // --jobs); the cap keeps one simulation from claiming every worker.
    ThreadPool::global().parallelFor(_slices.size(), advanceOne,
                                     _cfg.shards);
}

void
MultiCoreSystem::kickCore(CoreId core, Tick when)
{
    SecPbSystem &s = *_slices[core];
    SecPb *pb = &s.secpb();
    s.eventQueue().schedule(std::max(when, s.eventQueue().curTick()),
                            [pb] { pb->kickSpaceWaiters(); });
}

void
MultiCoreSystem::processBarrier(Tick T)
{
    struct Req
    {
        Tick tick;
        CoreId core;
        std::uint64_t seq;
        std::uint64_t page;
    };
    std::vector<Req> reqs;
    for (CoreId c = 0; c < numCores(); ++c)
        for (const PageRequest &r : _gates[c]->pending())
            reqs.push_back(Req{r.tick, c, r.seq, r.page});
    if (reqs.empty())
        return;
    // The canonical total order: request time, then core, then per-gate
    // filing order. A pure function of the simulated run -- never of
    // shard scheduling.
    std::sort(reqs.begin(), reqs.end(), [](const Req &a, const Req &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.core != b.core)
            return a.core < b.core;
        return a.seq < b.seq;
    });

    // One action per page per barrier: later requests for a page this
    // barrier already served retry next barrier, against the new owner.
    std::unordered_set<std::uint64_t> handled;
    for (const Req &r : reqs) {
        if (handled.count(r.page))
            continue;
        const CoreId owner = _dir.ownerOfPage(r.page);

        if (owner == r.core) {
            // We own it but a stop mark (from a quiesce whose requester
            // was served or lost) blocked the store. Lift it.
            _gates[r.core]->clearStop(r.page);
            _gates[r.core]->retireRequest(r.page);
            kickCore(r.core, T);
            handled.insert(r.page);
            continue;
        }

        if (owner == NoOwner) {
            const CoreId res = _dir.residenceOfPage(r.page);
            if (res == NoOwner) {
                // Cold page: claim it, nothing moves.
                _dir.setOwner(r.page, r.core);
                _dir.setResidence(r.page, r.core);
                ++_dir.statFirstTouches;
                _gates[r.core]->retireRequest(r.page);
                kickCore(r.core, T);
                handled.insert(r.page);
            } else if (res == r.core) {
                // Reclaim after a remote read dropped our ownership;
                // the durable state never left.
                _dir.setOwner(r.page, r.core);
                _gates[r.core]->retireRequest(r.page);
                kickCore(r.core, T);
                handled.insert(r.page);
            } else {
                // Unowned but resident elsewhere (a remote read flushed
                // it). Wait for the forced drains to settle, then move
                // the durable state over.
                SecPb &pb = _slices[res]->secpb();
                if (pb.entriesForPage(r.page).empty() &&
                    pb.pageQuiescent(r.page)) {
                    movePageState(res, r.core, r.page);
                    _dir.setOwner(r.page, r.core);
                    _dir.setResidence(r.page, r.core);
                    ++_dir.statMigrations;
                    _gates[r.core]->retireRequest(r.page);
                    kickCore(r.core, T + _cfg.migrationLatency);
                    handled.insert(r.page);
                }
            }
            continue;
        }

        // Remote write miss: migrate the owner's entries -- with their
        // data-value-independent metadata, per Section IV-C(c) -- plus
        // the page's durable state, if the page is quiescent and the
        // requester has room for every entry.
        SecPb &src = _slices[owner]->secpb();
        SecPb &dst = _slices[r.core]->secpb();
        const std::vector<Addr> entries = src.entriesForPage(r.page);
        if (src.pageQuiescent(r.page) &&
            entries.size() <= dst.freeEntries()) {
            for (Addr a : entries) {
                auto e = src.extractForMigration(a);
                panic_if(!e, "quiescent page %llu lost entry mid-barrier",
                         static_cast<unsigned long long>(r.page));
                dst.injectMigrated(*e);
            }
            movePageState(owner, r.core, r.page);
            _dir.setOwner(r.page, r.core);
            _dir.setResidence(r.page, r.core);
            ++_dir.statMigrations;
            _gates[owner]->clearStop(r.page);
            _gates[r.core]->retireRequest(r.page);
            kickCore(r.core, T + _cfg.migrationLatency);
        } else {
            // Quiesce the page: no new stores at the owner, and every
            // extractable entry starts draining so a later barrier can
            // move the page. The request stays pending.
            _gates[owner]->markStop(r.page);
            for (Addr a : entries)
                src.flushForRemoteRead(a);
        }
        handled.insert(r.page);
    }
}

void
MultiCoreSystem::movePageState(CoreId from, CoreId to, std::uint64_t page)
{
    SecPbSystem &a = *_slices[from];
    SecPbSystem &b = *_slices[to];
    const Addr base = static_cast<Addr>(page) * PageSize;

    for (Addr addr = base; addr < base + PageSize; addr += BlockSize) {
        if (!a.pm().hasData(addr))
            continue;
        b.pm().writeData(addr, a.pm().readData(addr));
        b.pm().writeMac(addr, a.pm().readMac(addr));
        a.pm().eraseDataBlock(addr);
    }
    if (a.pm().hasCounterBlock(page)) {
        b.pm().writeCounterBlock(page, a.pm().readCounterBlock(page));
        a.pm().eraseCounterBlock(page);
    }
    if (a.counters().hasBlock(page)) {
        b.counters().setBlock(page, a.counters().block(page));
        a.counters().erase(page);
    }
    a.oracle().movePageTo(b.oracle(), base, PageSize);

    // The destination's BMT leaf must cover the page's *working* counter
    // block: eager schemes already hashed in-buffer increments into the
    // source tree, and the migrated entries carry those counters. (The
    // source leaf is left stale; the source no longer holds any state
    // its verifier would check against it.)
    b.tree().updateLeaf(page, b.tree().leafDigest(b.counters().block(page)));
}

void
MultiCoreSystem::runUntil(Tick limit)
{
    panic_if(!_started, "runUntil before start");
    while (_now < limit) {
        const Tick barrier = nextBarrier(_now);
        const Tick target = std::min(limit, barrier);
        advanceSlices(target);
        _now = target;
        // Barriers live on the absolute epoch grid, so a runUntil that
        // stops mid-epoch never shifts when coherence is processed --
        // crash-at-tick experiments see the same schedule as full runs.
        if (target == barrier)
            processBarrier(target);
    }
}

MultiCoreResult
MultiCoreSystem::run(std::vector<WorkloadGenerator *> gens)
{
    if (!_started)
        start(std::move(gens));
    while (!finished()) {
        panic_if(!anyWorkPending(),
                 "multi-core deadlock: no events and no page requests "
                 "pending, but not all %u cores have finished",
                 numCores());
        const Tick barrier = nextBarrier(_now);
        advanceSlices(barrier);
        _now = barrier;
        processBarrier(barrier);
    }
    flushTraces();

    MultiCoreResult res;
    res.perCore.reserve(_slices.size());
    for (const auto &slice : _slices) {
        res.perCore.push_back(slice->result());
        res.execTicks = std::max(res.execTicks, res.perCore.back().execTicks);
        res.totalInstructions += res.perCore.back().instructions;
    }
    res.migrations =
        static_cast<std::uint64_t>(_dir.statMigrations.value());
    res.remoteReadFlushes =
        static_cast<std::uint64_t>(_dir.statRemoteReadFlushes.value());
    res.firstTouches =
        static_cast<std::uint64_t>(_dir.statFirstTouches.value());
    return res;
}

bool
MultiCoreSystem::coreRead(CoreId core, Addr addr)
{
    panic_if(core >= numCores(), "core id %u out of range", core);
    const std::uint64_t page = coherencePage(addr);
    const CoreId owner = _dir.ownerOfPage(page);
    if (owner == NoOwner || owner == core)
        return false;
    // The datum is forwarded from the owner's buffer; durably, the
    // owner's entries for the page flush to its PM and write permission
    // drops (residence stays put until someone writes the page again).
    SecPb &pb = _slices[owner]->secpb();
    for (Addr a : pb.entriesForPage(page))
        pb.flushForRemoteRead(a);
    _dir.clearOwner(page);
    _gates[owner]->clearStop(page);
    ++_dir.statRemoteReadFlushes;
    return true;
}

CrashReport
MultiCoreSystem::crashNow(const CrashOptions &opts)
{
    flushTraces();

    CrashReport agg;
    agg.batteryBudgetJ = opts.batteryEnergyJ;
    std::optional<double> remaining = opts.batteryEnergyJ;
    bool recovered = true;

    // Serial core order: with one shared pool each core drains from what
    // the previous cores left, so the persist-order prefix guarantee
    // holds per core and the pool exhausts deterministically.
    for (const auto &slice : _slices) {
        CrashOptions per;
        per.batteryEnergyJ = remaining;
        const CrashReport cr = slice->crashNow(per);
        if (remaining)
            remaining = std::max(0.0, *remaining - cr.work.energySpentJ);
        accumulate(agg.work, cr.work);
        accumulate(agg.recovery, cr.recovery);
        agg.actualEnergyJ += cr.actualEnergyJ;
        // Per-core batteries drain in parallel; the observer-blocked
        // window is the slowest core's.
        agg.drainLatency = std::max(agg.drainLatency, cr.drainLatency);
        agg.drainLatencyNs = std::max(agg.drainLatencyNs, cr.drainLatencyNs);
        recovered = recovered && cr.recovered;
    }

    const EnergyModel &em = _slices[0]->energyModel();
    const SystemConfig &base = _cfg.base;
    agg.provisionedEnergyJ =
        numCores() *
        (schemeTraits(base.scheme).secure
             ? em.secPbBatteryEnergy(base.scheme, base.secpb.numEntries)
             : em.bbbBatteryEnergy(base.secpb.numEntries));
    agg.recovered = recovered;
    return agg;
}

SecPbSystem &
MultiCoreSystem::residentSystem(Addr addr)
{
    const CoreId res = _dir.residence(addr);
    return *_slices[res == NoOwner ? 0 : res];
}

std::uint64_t
MultiCoreSystem::totalPersists() const
{
    std::uint64_t total = 0;
    for (const auto &slice : _slices)
        total += slice->oracle().numPersists();
    return total;
}

bool
MultiCoreSystem::invariantNoReplication() const
{
    std::unordered_set<Addr> seen;
    for (CoreId c = 0; c < numCores(); ++c) {
        for (Addr a : _slices[c]->secpb().residentAddrs()) {
            if (!seen.insert(a).second)
                return false;
            if (_dir.owner(a) != c)
                return false;
        }
    }
    return _dir.invariantSingleOwner();
}

void
MultiCoreSystem::dumpStats(std::ostream &os) const
{
    _rootStats.dump(os);
    for (const auto &slice : _slices)
        slice->dumpStats(os);
}

void
MultiCoreSystem::flushTraces()
{
    if (!_parentTracer || _sliceTracers.empty())
        return;
    std::vector<const obs::Tracer *> sources;
    sources.reserve(_sliceTracers.size());
    for (const auto &t : _sliceTracers)
        sources.push_back(t.get());
    _parentTracer->mergeFrom(sources);
    for (const auto &t : _sliceTracers)
        t->clear();
}

} // namespace secpb
