/**
 * @file
 * Result records returned by SecPbSystem runs and crash experiments.
 */

#ifndef SECPB_CORE_RESULTS_HH
#define SECPB_CORE_RESULTS_HH

#include <cstdint>
#include <optional>

#include "recovery/verifier.hh"
#include "secpb/secpb.hh"

namespace secpb
{

class JsonWriter;

/** Summary of one timed execution. */
struct SimulationResult
{
    std::uint64_t execTicks = 0;      ///< Retire-to-SB-empty time.
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    std::uint64_t persists = 0;       ///< Stores accepted by the SecPB.
    std::uint64_t allocations = 0;    ///< SecPB entry allocations.
    double ppti = 0.0;                ///< Persists per kilo-instruction.
    double nwpe = 0.0;                ///< Mean writes per entry residency.
    std::uint64_t bmtRootUpdates = 0;
    std::uint64_t pageReencryptions = 0;
    std::uint64_t drainedEntries = 0;
    std::uint64_t sbFullStalls = 0;
    std::uint64_t pbFullRejects = 0;
    std::uint64_t pcmReads = 0;
    std::uint64_t pcmWrites = 0;
    double ctrCacheHitRate = 0.0;
    double bmtCacheHitRate = 0.0;
    double meanUnblockLatency = 0.0;

    /**
     * Visit every field as (name, value). The single source of truth for
     * serializing a result: toJson() and any tabular dumper iterate this
     * list, so adding a field here is the whole change.
     */
    template <typename F>
    void
    visitFields(F &&f) const
    {
        f("exec_ticks", execTicks);
        f("instructions", instructions);
        f("ipc", ipc);
        f("persists", persists);
        f("allocations", allocations);
        f("ppti", ppti);
        f("nwpe", nwpe);
        f("bmt_root_updates", bmtRootUpdates);
        f("page_reencryptions", pageReencryptions);
        f("drained_entries", drainedEntries);
        f("sb_full_stalls", sbFullStalls);
        f("pb_full_rejects", pbFullRejects);
        f("pcm_reads", pcmReads);
        f("pcm_writes", pcmWrites);
        f("ctr_cache_hit_rate", ctrCacheHitRate);
        f("bmt_cache_hit_rate", bmtCacheHitRate);
        f("mean_unblock_latency", meanUnblockLatency);
    }

    /** Serialize as one JSON object via the field visitor. */
    void toJson(JsonWriter &w) const;
};

/** Outcome of a crash + battery-drain + recovery experiment. */
struct CrashReport
{
    CrashWork work;               ///< What the battery actually did.
    RecoveryReport recovery;      ///< Integrity/plaintext verification.
    double provisionedEnergyJ = 0.0;  ///< Worst-case battery sizing.
    double actualEnergyJ = 0.0;       ///< Energy this drain consumed.
    Cycles drainLatency = 0;          ///< Observer-blocked window (cycles).
    double drainLatencyNs = 0.0;      ///< The same window in nanoseconds.
    bool recovered = false;           ///< True when recovery verified.

    /** Energy budget the drain ran under (unset = unbounded). */
    std::optional<double> batteryBudgetJ;

    /** Capacitor charge remaining after the drain (system battery only). */
    std::optional<double> batteryAfterJ;
};

} // namespace secpb

#endif // SECPB_CORE_RESULTS_HH
