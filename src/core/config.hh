/**
 * @file
 * Top-level system configuration (defaults reproduce paper Table I).
 */

#ifndef SECPB_CORE_CONFIG_HH
#define SECPB_CORE_CONFIG_HH

#include <cstdint>

#include "cpu/trace_cpu.hh"
#include "energy/capacitor.hh"
#include "pb/adaptive.hh"
#include "crypto/cipher.hh"
#include "crypto/engine.hh"
#include "mem/data_hierarchy.hh"
#include "mem/pcm.hh"
#include "mem/set_assoc.hh"
#include "metadata/walker.hh"
#include "secpb/scheme.hh"
#include "secpb/secpb.hh"

namespace secpb
{

/**
 * Observability knobs: epoch time-series sampling of simulator state.
 * Sampling is read-only instrumentation -- a sampled run computes
 * bit-identical results to an unsampled one.
 */
struct ObsConfig
{
    /** Sample the built-in channels every this many ticks (0 = off). */
    Tick samplePeriod = 0;

    /** Ring capacity: the most recent epochs retained. */
    std::size_t sampleCapacity = 4096;
};

/**
 * A system-owned physical battery (energy/capacitor.hh). When enabled,
 * the system builds a Capacitor sized to provisionFraction times the
 * worst-case crash energy and crashNow() budgets the drain from its
 * live deliverable energy instead of an explicit CrashOptions value.
 * With ideal capacitor params and provisionFraction f this is
 * bit-identical to the flat FaultPlan.batteryFraction = f budget.
 */
struct BatteryConfig
{
    /** Build a Capacitor and use it as the crash-drain budget source. */
    bool enabled = false;

    /** Physics of the cell (voltage window, ESR, leakage, derate). */
    CapacitorParams cap;

    /**
     * Usable capacity as a fraction of provisionedCrashEnergy(); 1.0 is
     * the paper's worst-case sizing, < 1 an under-provisioned part.
     */
    double provisionFraction = 1.0;

    /** Battery-aware watermark modulation (pb/adaptive.hh). */
    AdaptiveDrainConfig adaptive;
};

/** Everything needed to build a SecPbSystem. */
struct SystemConfig
{
    /** Which secure-persistency scheme to run (Table II). */
    Scheme scheme = Scheme::Cobcm;

    /**
     * Root name of the system's stat tree. Single-core systems keep the
     * historical "system" root (stat dumps are byte-stable); the sharded
     * multi-core engine names each per-core slice "core<N>".
     */
    const char *statsName = "system";

    SecPbConfig secpb;
    PcmConfig pcm;
    DataHierarchyConfig dataCache;
    CryptoLatencies crypto;
    WalkerConfig walker;

    /** Metadata caches: 128 KB, 8-way, 2-cycle (Table I). */
    CacheGeometry ctrCacheGeom{128 * 1024, 8, 64};
    CacheGeometry bmtCacheGeom{128 * 1024, 8, 64};
    CacheGeometry macCacheGeom{128 * 1024, 8, 64};
    Cycles metadataCacheHitLatency = 2;

    unsigned wpqEntries = 32;

    /** Protected PM capacity (8 GB). */
    std::uint64_t pmDataBytes = 8ULL << 30;

    /**
     * @name Hot-table pre-reservation hints
     * Expected touched footprint of the sparse PM image and counter
     * store. These size the open-addressing tables up front so warm-up
     * rehash churn stops skewing short perf_baseline reps; the tables
     * still grow past the hint if a workload outruns it.
     * @{
     */
    std::size_t pmReserveDataBlocks = 4096;
    std::size_t pmReserveCounterPages = 512;
    /** @} */

    SecurityKeys keys;

    CpuConfig cpu;
    unsigned storeBufferEntries = 56;

    /**
     * Battery-back the core store buffer (paper Section IV-C(b)): stores
     * that retired but have not reached the SecPB are absorbed by the
     * battery on a crash. Needed when strict persistency is layered on a
     * relaxed consistency model; off by default (TSO-style operation).
     */
    bool batteryBackedStoreBuffer = false;

    /**
     * Speculative integrity verification (PoisonIvy-style), assumed by
     * the paper for all models (Section V-A): data returned from PM is
     * used while its MAC/BMT checks complete in the background. Turning
     * it off adds the verification latency to every PM load -- an
     * ablation of how load-bearing that assumption is.
     */
    bool speculativeVerification = true;

    ObsConfig obs;

    BatteryConfig battery;

    ClockInfo clock;
};

} // namespace secpb

#endif // SECPB_CORE_CONFIG_HH
