#include "core/simulation.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/power.hh"
#include "sim/logging.hh"
#include "workload/registry.hh"

namespace secpb
{

namespace
{

/** One-time stderr note when a deprecated SECPB_BENCH_* fallback fires. */
void
noteDeprecatedEnv(const char *name)
{
    static bool noted = false;
    if (!noted) {
        std::fprintf(stderr,
                     "note: %s is deprecated; pass the matching command-line "
                     "flag instead (env fallbacks will be removed)\n",
                     name);
        noted = true;
    }
}

/**
 * Strict env-var parse: the whole value must be one non-negative decimal
 * integer that fits in 64 bits; anything else (trailing garbage, sign,
 * overflow) is a fatal misconfiguration, never a silent truncation.
 */
std::uint64_t
specEnvU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    noteDeprecatedEnv(name);
    fatal_if(v[0] == '-' || v[0] == '+',
             "%s='%s': must be a plain non-negative decimal integer",
             name, v);
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    fatal_if(end == v || *end != '\0',
             "%s='%s': not a decimal integer (trailing garbage at '%s')",
             name, v, end);
    fatal_if(errno == ERANGE, "%s='%s': out of range for a 64-bit value",
             name, v);
    return parsed;
}

/** Strict env-var parse for a floating-point knob (same contract). */
double
specEnvDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    noteDeprecatedEnv(name);
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    fatal_if(end == v || *end != '\0',
             "%s='%s': not a decimal number (trailing garbage at '%s')",
             name, v, end);
    fatal_if(errno == ERANGE || !std::isfinite(parsed),
             "%s='%s': out of range for a finite double", name, v);
    return parsed;
}

std::string
specEnvStr(const char *name)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return {};
    noteDeprecatedEnv(name);
    return v;
}

std::string
joinNames(const std::vector<std::string> &v)
{
    std::string out;
    for (const std::string &s : v) {
        if (!out.empty())
            out += ",";
        out += s;
    }
    return out;
}

} // namespace

CapacitorParams
SimulationSpec::batteryParams() const
{
    CapacitorParams p = capacitorPresetFor(batteryTech);
    p.capacitanceDerate = batteryDerate;
    return p;
}

SimulationSpec
SimulationSpec::fromCli(int &argc, char **argv, const char *prog)
{
    SimulationSpec spec;

    // Deprecated environment fallbacks (flags below override them).
    spec.instructions = specEnvU64("SECPB_BENCH_INSTR", spec.instructions);
    spec.seed = specEnvU64("SECPB_BENCH_SEED", spec.seed);
    spec.workload = specEnvStr("SECPB_BENCH_WORKLOAD");
    std::string traceIn = specEnvStr("SECPB_BENCH_TRACE_IN");
    spec.traceRecord = specEnvStr("SECPB_BENCH_TRACE_RECORD");
    if (std::string t = specEnvStr("SECPB_BENCH_BATTERY_TECH"); !t.empty())
        spec.batteryTech = std::move(t);
    spec.batteryDerate =
        specEnvDouble("SECPB_BENCH_BATTERY_DERATE", spec.batteryDerate);
    spec.powerSchedule = specEnvStr("SECPB_BENCH_POWER_SCHEDULE");

    // Parse our flags out of argv, compacting the survivors in place so
    // the caller's parser never sees what we consumed.
    auto parseU64 = [&](const char *flag, const char *v) -> std::uint64_t {
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(v, &end, 10);
        fatal_if(v[0] == '-' || end == v || *end != '\0' || errno == ERANGE,
                 "%s: %s '%s' is not a non-negative integer", prog, flag, v);
        return parsed;
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s: flag %s needs a value", prog,
                     a.c_str());
            return argv[++i];
        };
        if (a == "--instr") {
            spec.instructions = parseU64("--instr", need());
        } else if (a == "--seed") {
            spec.seed = parseU64("--seed", need());
        } else if (a == "--workload") {
            spec.workload = need();
        } else if (a == "--trace-in") {
            traceIn = need();
        } else if (a == "--trace-record") {
            spec.traceRecord = need();
        } else if (a == "--battery-tech") {
            spec.batteryTech = need();
        } else if (a == "--battery-derate") {
            const char *v = need();
            char *end = nullptr;
            spec.batteryDerate = std::strtod(v, &end);
            fatal_if(end == v || *end != '\0',
                     "%s: --battery-derate '%s' is not a number", prog, v);
        } else if (a == "--power-schedule") {
            spec.powerSchedule = need();
        } else if (a == "--cores") {
            spec.cores =
                static_cast<unsigned>(parseU64("--cores", need()));
        } else if (a == "--shards") {
            spec.shards =
                static_cast<unsigned>(parseU64("--shards", need()));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;

    // Validate eagerly: a bad value dies here, before any run starts,
    // with a diagnostic that lists the valid choices.
    fatal_if(spec.cores < 1, "%s: --cores must be >= 1", prog);
    fatal_if(spec.shards < 1,
             "%s: --shards must be >= 1 (1 = serial; N caps the worker "
             "threads and never changes results)",
             prog);
    capacitorPresetFor(spec.batteryTech);
    fatal_if(spec.batteryDerate <= 0.0 || spec.batteryDerate > 1.0,
             "%s: --battery-derate %.3f out of (0, 1]", prog,
             spec.batteryDerate);
    if (!spec.powerSchedule.empty())
        PowerScheduleSpec::parse(spec.powerSchedule);
    // --trace-in is sugar for the replay workload; combining them would
    // silently drop one, so refuse instead.
    if (!traceIn.empty()) {
        fatal_if(!spec.workload.empty(),
                 "%s: --trace-in and --workload are mutually exclusive "
                 "(replay IS a workload)",
                 prog);
        spec.workload = "replay:file=" + traceIn;
    }
    if (!spec.workload.empty()) {
        const WorkloadSpec ws = WorkloadSpec::parse(spec.workload);
        fatal_if(!isRegisteredWorkload(ws.name),
                 "%s: unknown workload '%s' (registered: %s)", prog,
                 ws.name.c_str(),
                 joinNames(registeredWorkloadNames()).c_str());
    }
    return spec;
}

const char *
SimulationSpec::cliHelp()
{
    return
        "  --instr N           instructions per point/core\n"
        "  --seed N            base workload seed\n"
        "  --workload SPEC     registry workload \"name:k=v,...\"\n"
        "  --trace-in PATH     replay a recorded trace (= --workload\n"
        "                      replay:file=PATH)\n"
        "  --trace-record PATH record the first point's op stream\n"
        "  --battery-tech T    capacitor physics preset\n"
        "                      (ideal|supercap|li-thin)\n"
        "  --battery-derate F  end-of-life capacity derate in (0,1]\n"
        "  --power-schedule S  seeded intermittent-power schedule"
        " \"k=v,...\"\n"
        "  --cores N           simulated cores (default 1)\n"
        "  --shards N          host worker threads for multi-core runs;\n"
        "                      results are identical for every value\n";
}

Simulation::Simulation(const SimulationSpec &spec)
{
    if (spec.cores <= 1) {
        // The classic machine, byte-identical to pre-facade drivers: no
        // gate, no directory, the "system" stat root.
        _single = std::make_unique<SecPbSystem>(spec.base);
    } else {
        _multi = std::make_unique<MultiCoreSystem>(spec.multiCoreConfig());
    }
}

SecPbSystem &
Simulation::system()
{
    panic_if(!_single,
             "Simulation::system(): this is a %u-core simulation; use "
             "multi() / slice access",
             numCores());
    return *_single;
}

MultiCoreSystem &
Simulation::multi()
{
    panic_if(!_multi,
             "Simulation::multi(): this is a single-core simulation; use "
             "system()");
    return *_multi;
}

void
Simulation::start(WorkloadGenerator &gen)
{
    if (_single) {
        _single->start(gen);
        return;
    }
    panic_if(_multi->numCores() != 1,
             "Simulation::start(gen): %u cores need one generator each "
             "(use the vector overload)",
             _multi->numCores());
    _multi->start({&gen});
}

void
Simulation::start(std::vector<WorkloadGenerator *> gens)
{
    if (_multi) {
        _multi->start(std::move(gens));
        return;
    }
    panic_if(gens.size() != 1,
             "Simulation::start: single-core simulation got %zu generators",
             gens.size());
    _single->start(*gens.front());
}

void
Simulation::runUntil(Tick limit)
{
    if (_single)
        _single->runUntil(limit);
    else
        _multi->runUntil(limit);
}

SimulationResult
Simulation::run(WorkloadGenerator &gen)
{
    if (_single)
        return _single->run(gen);
    panic_if(_multi->numCores() != 1,
             "Simulation::run(gen): %u cores need one generator each "
             "(use the vector overload)",
             _multi->numCores());
    return _multi->run({&gen}).perCore.front();
}

MultiCoreResult
Simulation::run(std::vector<WorkloadGenerator *> gens)
{
    if (_multi)
        return _multi->run(std::move(gens));
    panic_if(gens.size() != 1,
             "Simulation::run: single-core simulation got %zu generators",
             gens.size());
    MultiCoreResult mr;
    mr.perCore.push_back(_single->run(*gens.front()));
    mr.execTicks = mr.perCore.front().execTicks;
    mr.totalInstructions = mr.perCore.front().instructions;
    return mr;
}

bool
Simulation::finished() const
{
    return _single ? _single->finished() : _multi->finished();
}

CrashReport
Simulation::crashNow(const CrashOptions &opts)
{
    return _single ? _single->crashNow(opts) : _multi->crashNow(opts);
}

SimulationResult
Simulation::result() const
{
    return _single ? _single->result() : _multi->slice(0).result();
}

obs::Sampler *
Simulation::sampler()
{
    return _single ? _single->sampler() : _multi->slice(0).sampler();
}

const StatGroup &
Simulation::stats() const
{
    return _single ? _single->stats() : _multi->slice(0).stats();
}

void
Simulation::dumpStats(std::ostream &os) const
{
    if (_single)
        _single->dumpStats(os);
    else
        _multi->dumpStats(os);
}

} // namespace secpb
