/**
 * @file
 * SecPbSystem: the assembled simulated machine and the library's main
 * entry point.
 *
 * Wires together the core, store buffer, SecPB, crypto engine, metadata
 * caches, BMT walker, WPQ, and PCM, per a SystemConfig. One instance
 * models one run; build a fresh instance per (benchmark, scheme) point.
 *
 * Typical use:
 * @code
 *   SystemConfig cfg;
 *   cfg.scheme = Scheme::Cobcm;
 *   SecPbSystem sys(cfg);
 *   SyntheticGenerator gen(profileByName("gamess"), 1'000'000);
 *   SimulationResult r = sys.run(gen);
 * @endcode
 *
 * Crash experiments interrupt a run:
 * @code
 *   sys.start(gen);
 *   sys.runUntil(500'000);
 *   CrashReport cr = sys.crashNow();   // battery drain + recovery verify
 * @endcode
 */

#ifndef SECPB_CORE_SYSTEM_HH
#define SECPB_CORE_SYSTEM_HH

#include <memory>
#include <optional>
#include <ostream>

#include "core/config.hh"
#include "core/results.hh"
#include "cpu/store_buffer.hh"
#include "cpu/trace_cpu.hh"
#include "energy/energy_model.hh"
#include "mem/data_hierarchy.hh"
#include "mem/pcm.hh"
#include "mem/pm_image.hh"
#include "mem/wpq.hh"
#include "metadata/bmt.hh"
#include "metadata/counter_store.hh"
#include "metadata/layout.hh"
#include "metadata/metadata_cache.hh"
#include "metadata/walker.hh"
#include "obs/sampler.hh"
#include "recovery/oracle.hh"
#include "recovery/verifier.hh"
#include "secpb/secpb.hh"
#include "workload/profile.hh"

namespace secpb
{

/** Knobs for a crash experiment (see SecPbSystem::crashNow). */
struct CrashOptions
{
    /**
     * Battery energy available for the crash drain, in joules. Unset
     * (the default) means: use the system-owned Capacitor's live
     * deliverable energy if one is configured, else the classic
     * unbounded correctly-provisioned battery. Fault experiments scale
     * this down from provisionedCrashEnergy() to model an
     * under-provisioned or partially-discharged battery. (Formerly an
     * infinity sentinel; see FaultPlan::batteryFraction.)
     */
    std::optional<double> batteryEnergyJ;

    /** Shim kept from the infinity-sentinel era: is a bound set? */
    bool
    bounded() const
    {
        return batteryEnergyJ.has_value();
    }
};

/** The assembled simulated machine. */
class SecPbSystem
{
  public:
    explicit SecPbSystem(const SystemConfig &cfg = {});

    /**
     * Convenience: configure the CPU's load penalties from a benchmark
     * profile (PCM read latency and MLP overlap) before building.
     */
    static SystemConfig configFor(Scheme scheme,
                                  const BenchmarkProfile &profile,
                                  const SystemConfig &base = {});

    /** Run @p gen to completion (generator exhausted, store buffer empty). */
    SimulationResult run(WorkloadGenerator &gen);

    /** Begin executing @p gen without advancing time. */
    void start(WorkloadGenerator &gen);

    /** Advance simulated time up to @p limit (or until idle). */
    void runUntil(Tick limit);

    /** True once the workload retired and the store buffer drained. */
    bool finished() const { return _finished; }

    /**
     * Crash now: battery-drain the SecPB, then run recovery verification
     * against the persist oracle. Simulated time does not advance.
     */
    CrashReport crashNow() { return crashNow(CrashOptions{}); }

    /**
     * Crash with explicit options. A bounded battery budget makes the
     * drain stop once the energy runs out; recovery then verifies that
     * the drained entries form an in-order prefix of the persist order
     * and classifies every abandoned block.
     */
    CrashReport crashNow(const CrashOptions &opts);

    /**
     * The worst-case battery energy this configuration provisions
     * (the ceiling that CrashOptions::batteryEnergyJ scales down from).
     */
    double
    provisionedCrashEnergy() const
    {
        return _energy.provisionedEnergy(_cfg.scheme, _cfg.secpb.numEntries,
                                         _cfg.wpqEntries);
    }

    /**
     * Transplant durable state from a previous power cycle into this
     * (not-yet-started) incarnation: the PM image, the BMT, and the
     * persist oracle. Volatile state (counter registers, caches, persist
     * buffers) starts cold -- RestoreManager rebuilds what recovery
     * needs. The physical battery does NOT transfer here; copy the
     * Capacitor state explicitly (it lives outside the machine).
     */
    void adoptPersistentState(const PmImage &pm,
                              const BonsaiMerkleTree &tree,
                              const PersistOracle &oracle);

    /** Result snapshot of the current/finished run. */
    SimulationResult result() const;

    /** Dump the full statistics tree. */
    void dumpStats(std::ostream &os) const { _rootStats.dump(os); }

    /** Root of the hierarchical stat registry (dotted paths from
     *  "system"). */
    const StatGroup &stats() const { return _rootStats; }

    /** The epoch sampler, or nullptr when ObsConfig::samplePeriod is 0.
     *  Channels: secpb_occupancy, sb_occupancy, wpq_depth,
     *  battery_headroom_j, ctr_cache_dirty, mac_cache_dirty,
     *  bmt_inflight_walks; plus battery_stored_j, battery_voltage_v and
     *  battery_deliverable_j when a system Capacitor is configured. */
    obs::Sampler *sampler() { return _sampler.get(); }
    const obs::Sampler *sampler() const { return _sampler.get(); }

    /** @name Component access (tests, examples). */
    /** @{ */
    EventQueue &eventQueue() { return _eq; }
    SecPb &secpb() { return *_secpb; }
    StoreBuffer &storeBuffer() { return *_sb; }
    TraceCpu &cpu() { return *_cpu; }
    PmImage &pm() { return _pm; }
    BonsaiMerkleTree &tree() { return *_tree; }
    BmtWalker &walker() { return *_walker; }
    PersistOracle &oracle() { return _oracle; }
    CounterStore &counters() { return _counters; }
    const MetadataLayout &layout() const { return _layout; }
    PcmModel &pcm() { return *_pcm; }
    WritePendingQueue &wpq() { return *_wpq; }
    MetadataCache &ctrCache() { return *_ctrCache; }
    MetadataCache &bmtCache() { return *_bmtCache; }
    MetadataCache &macCache() { return *_macCache; }
    DataHierarchy &dataCache() { return *_dcache; }
    const SystemConfig &config() const { return _cfg; }
    const EnergyModel &energyModel() const { return _energy; }

    /** The system-owned Capacitor, or nullptr when battery.enabled is
     *  false. Mutable: fault schedules brown it out or recharge it. */
    Capacitor *battery() { return _battery.get(); }
    const Capacitor *battery() const { return _battery.get(); }

    /**
     * Brownout the system battery: the supply sags and the cell keeps
     * only @p retain of its stored charge. When the adaptive drain
     * policy is attached, the BBU's isolation diode protects the
     * committed crash-drain reserve (SecPb::crashReserveEnergyJ) -- the
     * sag bleeds uncommitted headroom only, which is what makes the
     * "drain never needs more than the cell holds" invariant survive
     * arbitrary brownout schedules. Without the policy the sag is
     * unprotected, as the flat-budget model always was.
     */
    void applyBrownout(double retain);
    /** @} */

  private:
    SystemConfig _cfg;
    EventQueue _eq;
    StatGroup _rootStats;

    MetadataLayout _layout;
    PmImage _pm;
    CounterStore _counters;
    PersistOracle _oracle;
    EnergyModel _energy;

    std::unique_ptr<PcmModel> _pcm;
    std::unique_ptr<DataHierarchy> _dcache;
    std::unique_ptr<WritePendingQueue> _wpq;
    std::unique_ptr<MetadataCache> _ctrCache;
    std::unique_ptr<MetadataCache> _bmtCache;
    std::unique_ptr<MetadataCache> _macCache;
    std::unique_ptr<CryptoEngine> _crypto;
    std::unique_ptr<BonsaiMerkleTree> _tree;
    std::unique_ptr<BmtWalker> _walker;
    std::unique_ptr<SecPb> _secpb;
    std::unique_ptr<StoreBuffer> _sb;
    std::unique_ptr<TraceCpu> _cpu;
    std::unique_ptr<obs::Sampler> _sampler;
    std::unique_ptr<Capacitor> _battery;

    bool _started = false;
    bool _cpuDone = false;
    bool _finished = false;
    Tick _endTick = 0;
};

} // namespace secpb

#endif // SECPB_CORE_SYSTEM_HH
