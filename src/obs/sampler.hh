/**
 * @file
 * Epoch time-series sampling of simulator state.
 *
 * A Sampler schedules itself on the EventQueue every `period` ticks and
 * snapshots a set of named scalar channels (SecPB occupancy, battery
 * energy headroom, WPQ depth, ...) into a bounded ring buffer. Probes
 * must be side-effect-free reads of model state: sampling adds events
 * to the queue but never perturbs what the simulation computes, so a
 * sampled run reports bit-identical results to an unsampled one.
 *
 * The sampler stops itself when its tick finds no other event pending
 * -- at that point the simulation has nothing left to do, so an
 * unconditional reschedule would keep the queue alive forever (and
 * deadlock harnesses that run the queue to exhaustion).
 *
 * When a tracer session is active, each epoch also emits Perfetto
 * counter events, so the time-series appears as counter tracks on the
 * same timeline as the span/instant events.
 */

#ifndef SECPB_OBS_SAMPLER_HH
#define SECPB_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace secpb
{

class JsonWriter;

namespace obs
{

/**
 * The unrolled result of a sampling run: epochs in time order, one
 * value per channel per epoch. Plain data so results can outlive the
 * system that produced them (the sweep engine copies it into each
 * point's ExperimentResult).
 */
struct SampleSeries
{
    Tick period = 0;
    std::vector<std::string> channels;
    std::vector<Tick> ticks;  ///< Epoch timestamps, ascending.
    /** values[c][i] = channel c at ticks[i] (columnar). */
    std::vector<std::vector<double>> values;
    /** Epochs overwritten by the ring before being read. */
    std::uint64_t epochsDropped = 0;

    bool empty() const { return ticks.empty(); }
    std::size_t numEpochs() const { return ticks.size(); }

    /** Serialize as one JSON object (the sweep schema's "samples"). */
    void toJson(JsonWriter &w) const;
};

/** Periodic sampler of scalar probes; see the file comment. */
class Sampler
{
  public:
    /** Probe returning one channel's current value. */
    using Probe = std::function<double()>;

    Sampler(EventQueue &eq, Tick period, std::size_t capacity = 4096);

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Register a channel; call before start(). */
    void addChannel(std::string name, Probe probe);

    /**
     * Take the epoch-0 snapshot now and begin periodic sampling. The
     * sampler retires itself when an epoch finds the queue otherwise
     * empty.
     */
    void start();

    /** Stop sampling after the current epoch (idempotent). */
    void stop() { _running = false; }

    /** Take one snapshot immediately (crash instants, tests). */
    void sampleNow();

    Tick period() const { return _period; }
    std::size_t numChannels() const { return _probes.size(); }
    std::uint64_t epochsTaken() const { return _epochsTaken; }
    bool running() const { return _running; }

    /** Unroll the ring into a time-ordered series. */
    SampleSeries series() const;

  private:
    struct Epoch
    {
        Tick tick = 0;
        std::vector<double> values;
    };

    void fire();

    EventQueue &_eq;
    Tick _period;
    std::size_t _capacity;
    bool _running = false;

    std::vector<std::string> _channels;
    std::vector<Probe> _probes;

    /** Ring of the most recent `_capacity` epochs. */
    std::vector<Epoch> _ring;
    std::size_t _head = 0;          ///< Next slot to write.
    std::uint64_t _epochsTaken = 0;
};

} // namespace obs
} // namespace secpb

#endif // SECPB_OBS_SAMPLER_HH
