#include "obs/trace.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace secpb::obs
{

thread_local Tracer *tlCurrentTracer = nullptr;

Tracer::Tracer(std::size_t capacity)
    : _capacity(capacity)
{
    fatal_if(capacity == 0, "Tracer needs a non-zero capacity");
    // A system registers on the order of a dozen components; one up-front
    // reservation keeps tid() interning from rehashing mid-run.
    _tids.reserve(32);
    _components.reserve(32);
}

std::uint32_t
Tracer::tid(const std::string &component)
{
    auto it = _tids.find(component);
    if (it != _tids.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(_components.size());
    _components.push_back(component);
    _tids.emplace(component, id);
    return id;
}

TraceEvent *
Tracer::append()
{
    if (_events.size() >= _capacity) {
        ++_dropped;
        return nullptr;
    }
    _events.emplace_back();
    TraceEvent &ev = _events.back();
    ev.seq = _nextSeq++;
    return &ev;
}

void
Tracer::span(const std::string &component, const std::string &name,
             Tick start, Tick end, std::uint32_t pid)
{
    panic_if(end < start, "trace span '%s' ends before it starts",
             name.c_str());
    TraceEvent *ev = append();
    if (!ev)
        return;
    ev->phase = TraceEvent::Phase::Span;
    ev->ts = start;
    ev->dur = end - start;
    ev->tid = tid(component);
    ev->pid = pid;
    ev->name = name;
}

void
Tracer::instant(const std::string &component, const std::string &name,
                Tick ts, std::uint32_t pid)
{
    TraceEvent *ev = append();
    if (!ev)
        return;
    ev->phase = TraceEvent::Phase::Instant;
    ev->ts = ts;
    ev->tid = tid(component);
    ev->pid = pid;
    ev->name = name;
}

void
Tracer::counter(const std::string &component, const std::string &name,
                Tick ts, double value, std::uint32_t pid)
{
    TraceEvent *ev = append();
    if (!ev)
        return;
    ev->phase = TraceEvent::Phase::Counter;
    ev->ts = ts;
    ev->tid = tid(component);
    ev->pid = pid;
    ev->name = name;
    ev->counterValue = value;
}

std::vector<TraceEvent>
Tracer::sortedEvents() const
{
    std::vector<TraceEvent> sorted = _events;
    std::sort(sorted.begin(), sorted.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  return a.seq < b.seq;
              });
    return sorted;
}

void
Tracer::clear()
{
    _events.clear();
    _dropped = 0;
    _nextSeq = 0;
}

void
Tracer::mergeFrom(const std::vector<const Tracer *> &sources)
{
    struct Tagged
    {
        const TraceEvent *ev;
        const Tracer *src;
        std::size_t srcIdx;
    };
    std::vector<Tagged> all;
    std::size_t total = 0;
    for (const Tracer *src : sources)
        total += src->_events.size();
    all.reserve(total);
    for (std::size_t i = 0; i < sources.size(); ++i)
        for (const TraceEvent &ev : sources[i]->_events)
            all.push_back(Tagged{&ev, sources[i], i});

    std::sort(all.begin(), all.end(), [](const Tagged &a, const Tagged &b) {
        if (a.ev->ts != b.ev->ts)
            return a.ev->ts < b.ev->ts;
        if (a.srcIdx != b.srcIdx)
            return a.srcIdx < b.srcIdx;
        return a.ev->seq < b.ev->seq;
    });

    for (const Tagged &t : all) {
        TraceEvent *ev = append();
        if (!ev)
            break;
        const std::uint64_t seq = ev->seq;
        *ev = *t.ev;
        ev->seq = seq;
        ev->tid = tid(t.src->_components.at(t.ev->tid));
    }
    for (const Tracer *src : sources)
        _dropped += src->_dropped;
}

void
Tracer::writeJson(std::ostream &os) const
{
    // Compact mode: a big trace pretty-printed triples its size for no
    // benefit (Perfetto is the reader, not a human).
    JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata: name every (pid, tid) pair that appears so Perfetto's
    // track labels read "asid N / component" instead of raw integers.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks;
    for (const TraceEvent &ev : _events)
        tracks.emplace_back(ev.pid, ev.tid);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());

    std::uint32_t last_pid = 0;
    bool named_pid = false;
    for (const auto &[pid, tid] : tracks) {
        if (!named_pid || pid != last_pid) {
            w.beginObject();
            w.field("name", "process_name");
            w.field("ph", "M");
            w.field("pid", pid);
            w.field("tid", std::uint32_t{0});
            w.key("args");
            w.beginObject();
            w.field("name", "asid " + std::to_string(pid));
            w.endObject();
            w.endObject();
            last_pid = pid;
            named_pid = true;
        }
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", pid);
        w.field("tid", tid);
        w.key("args");
        w.beginObject();
        w.field("name", _components.at(tid));
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &ev : sortedEvents()) {
        w.beginObject();
        w.field("name", ev.name);
        w.field("cat", _components.at(ev.tid));
        w.field("ph", std::string(1, static_cast<char>(ev.phase)));
        w.field("ts", ev.ts);
        if (ev.phase == TraceEvent::Phase::Span)
            w.field("dur", ev.dur);
        w.field("pid", ev.pid);
        w.field("tid", ev.tid);
        if (ev.phase == TraceEvent::Phase::Instant)
            w.field("s", "t");  // thread-scoped instant marker
        if (ev.phase == TraceEvent::Phase::Counter) {
            w.key("args");
            w.beginObject();
            w.field("value", ev.counterValue);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    if (_dropped > 0)
        w.field("droppedEvents", _dropped);
    w.endObject();
    os << '\n';
}

} // namespace secpb::obs
