/**
 * @file
 * Span/instant event tracer emitting Chrome/Perfetto `trace_event` JSON.
 *
 * One Tracer records the timeline of one simulation: spans (complete
 * events, ph "X") for operations whose start and end ticks are known,
 * instants (ph "i") for point occurrences, and counters (ph "C") for
 * sampled values. Timestamps are simulated ticks (core cycles) written
 * as the trace's microsecond field, so one timeline microsecond is one
 * core cycle -- deterministic across runs and hosts. `pid` carries the
 * ASID of the process the event belongs to (0 for machine-level
 * events); `tid` is an interned component name ("secpb", "bmt",
 * "pcm", ...), so Perfetto renders one track per hardware component
 * per address space, exactly the layout of the paper's figures.
 *
 * Components do not hold a Tracer; they emit through the TRACE_SPAN /
 * TRACE_INSTANT macros, which consult a thread-local current tracer
 * installed by a TraceSession. With no session installed the macros
 * cost a single thread-local load and branch -- cheap enough to leave
 * compiled into every hot path (the micro_ops acceptance bound).
 * Simulations are single-threaded per system, and the sweep engine
 * runs each point on one thread, so a thread-local session cleanly
 * scopes tracing to exactly one point even under `--jobs N`.
 */

#ifndef SECPB_OBS_TRACE_HH
#define SECPB_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace secpb::obs
{

/** One recorded trace event (a row of the Perfetto JSON array). */
struct TraceEvent
{
    enum class Phase : char
    {
        Span = 'X',     ///< Complete event with a duration.
        Instant = 'i',  ///< Point event.
        Counter = 'C',  ///< Sampled counter value.
    };

    Tick ts = 0;            ///< Start tick.
    Tick dur = 0;           ///< Duration (spans only).
    std::uint64_t seq = 0;  ///< Recording order; stable sort tiebreak.
    std::uint32_t tid = 0;  ///< Interned component id.
    std::uint32_t pid = 0;  ///< ASID (0 = machine-level).
    Phase phase = Phase::Instant;
    std::string name;
    double counterValue = 0.0;  ///< Counter events only.
};

/** Records one simulation's timeline; see the file comment. */
class Tracer
{
  public:
    /** @p capacity bounds the event buffer; further events are dropped
     *  (and counted) rather than growing without bound. */
    explicit Tracer(std::size_t capacity = 1u << 20);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record a complete event spanning [@p start, @p end]. */
    void span(const std::string &component, const std::string &name,
              Tick start, Tick end, std::uint32_t pid = 0);

    /** Record a point event at @p ts. */
    void instant(const std::string &component, const std::string &name,
                 Tick ts, std::uint32_t pid = 0);

    /** Record a sampled counter value at @p ts. */
    void counter(const std::string &component, const std::string &name,
                 Tick ts, double value, std::uint32_t pid = 0);

    /** Intern @p component, returning its tid. */
    std::uint32_t tid(const std::string &component);

    std::size_t numEvents() const { return _events.size(); }
    std::uint64_t numDropped() const { return _dropped; }
    std::size_t capacity() const { return _capacity; }

    /** Events in recording order (unsorted). */
    const std::vector<TraceEvent> &events() const { return _events; }

    /** Events sorted by (ts, seq) -- the order writeJson emits. */
    std::vector<TraceEvent> sortedEvents() const;

    /** Interned component names indexed by tid. */
    const std::vector<std::string> &components() const
    {
        return _components;
    }

    /**
     * Write the Chrome/Perfetto trace_event JSON document: metadata
     * records naming every pid/tid, then every event sorted by
     * (ts, seq) so timestamps are monotonic per tid. Loadable directly
     * in https://ui.perfetto.dev or chrome://tracing.
     */
    void writeJson(std::ostream &os) const;

    /** Drop all recorded events (the tid registry is kept). */
    void clear();

    /**
     * Deterministic cross-shard merge: append every event of @p sources
     * interleaved in (ts, sourceIndex, seq) order -- source index is the
     * canonical core order, so the merged timeline is a pure function of
     * the simulated run, never of shard scheduling. Component names are
     * re-interned here and events receive fresh seqs in merge order, so
     * writeJson() emits the canonical order directly.
     */
    void mergeFrom(const std::vector<const Tracer *> &sources);

  private:
    TraceEvent *append();

    std::size_t _capacity;
    std::uint64_t _dropped = 0;
    std::uint64_t _nextSeq = 0;
    std::vector<TraceEvent> _events;
    std::vector<std::string> _components;        ///< tid -> name.
    std::unordered_map<std::string, std::uint32_t> _tids;
};

/** The thread's current tracer (nullptr = tracing disabled). */
extern thread_local Tracer *tlCurrentTracer;

/** Accessor the macros use; a TLS load, no function call at -O2. */
inline Tracer *
current()
{
    return tlCurrentTracer;
}

/**
 * RAII scope installing @p tracer as the thread's current tracer.
 * Install nullptr (or default-construct) to trace nothing; sessions
 * nest, restoring the previous tracer on destruction.
 */
class TraceSession
{
  public:
    explicit TraceSession(Tracer *tracer)
        : _previous(tlCurrentTracer)
    {
        tlCurrentTracer = tracer;
    }

    ~TraceSession() { tlCurrentTracer = _previous; }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    Tracer *_previous;
};

} // namespace secpb::obs

/** Record a span on @p comp's track; evaluated only when tracing. */
#define TRACE_SPAN(comp, name, start, end)                                \
    do {                                                                  \
        if (::secpb::obs::Tracer *t_ = ::secpb::obs::current())           \
            t_->span((comp), (name), (start), (end));                     \
    } while (0)

/** TRACE_SPAN with an explicit ASID (Perfetto pid). */
#define TRACE_SPAN_P(comp, name, start, end, pid)                         \
    do {                                                                  \
        if (::secpb::obs::Tracer *t_ = ::secpb::obs::current())           \
            t_->span((comp), (name), (start), (end), (pid));              \
    } while (0)

/** Record an instant on @p comp's track; evaluated only when tracing. */
#define TRACE_INSTANT(comp, name, tick)                                   \
    do {                                                                  \
        if (::secpb::obs::Tracer *t_ = ::secpb::obs::current())           \
            t_->instant((comp), (name), (tick));                          \
    } while (0)

/** TRACE_INSTANT with an explicit ASID (Perfetto pid). */
#define TRACE_INSTANT_P(comp, name, tick, pid)                            \
    do {                                                                  \
        if (::secpb::obs::Tracer *t_ = ::secpb::obs::current())           \
            t_->instant((comp), (name), (tick), (pid));                   \
    } while (0)

/** Record a counter sample on @p comp's track. */
#define TRACE_COUNTER(comp, name, tick, value)                            \
    do {                                                                  \
        if (::secpb::obs::Tracer *t_ = ::secpb::obs::current())           \
            t_->counter((comp), (name), (tick), (value));                 \
    } while (0)

#endif // SECPB_OBS_TRACE_HH
