#include "obs/sampler.hh"

#include "obs/trace.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace secpb::obs
{

void
SampleSeries::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("period", period);
    w.field("epochs_dropped", epochsDropped);
    w.key("channels");
    w.beginArray();
    for (const std::string &c : channels)
        w.value(c);
    w.endArray();
    w.key("ticks");
    w.beginArray();
    for (Tick t : ticks)
        w.value(t);
    w.endArray();
    w.key("values");
    w.beginArray();
    for (const std::vector<double> &col : values) {
        w.beginArray();
        for (double v : col)
            w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

Sampler::Sampler(EventQueue &eq, Tick period, std::size_t capacity)
    : _eq(eq), _period(period), _capacity(capacity)
{
    fatal_if(period == 0, "Sampler needs a non-zero period");
    fatal_if(capacity == 0, "Sampler needs a non-zero ring capacity");
}

void
Sampler::addChannel(std::string name, Probe probe)
{
    panic_if(_epochsTaken != 0,
             "Sampler channels must be registered before sampling");
    _channels.push_back(std::move(name));
    _probes.push_back(std::move(probe));
}

void
Sampler::sampleNow()
{
    Epoch *slot;
    if (_ring.size() < _capacity) {
        _ring.emplace_back();
        slot = &_ring.back();
    } else {
        slot = &_ring[_head];
    }
    _head = (_head + 1) % _capacity;
    ++_epochsTaken;

    const Tick now = _eq.curTick();
    slot->tick = now;
    slot->values.resize(_probes.size());
    for (std::size_t c = 0; c < _probes.size(); ++c) {
        slot->values[c] = _probes[c]();
        TRACE_COUNTER("sampler", _channels[c], now, slot->values[c]);
    }
}

void
Sampler::start()
{
    panic_if(_running, "Sampler::start called twice");
    _running = true;
    DPRINTF("Sampler", "sampling %zu channels every %llu ticks",
            _probes.size(), static_cast<unsigned long long>(_period));
    sampleNow();
    _eq.schedule(_eq.curTick() + _period, [this] { fire(); });
}

void
Sampler::fire()
{
    if (!_running)
        return;
    sampleNow();
    // Retire when nothing else is pending: the simulation is over, and
    // rescheduling would keep the queue alive forever.
    if (_eq.empty()) {
        _running = false;
        return;
    }
    _eq.schedule(_eq.curTick() + _period, [this] { fire(); });
}

SampleSeries
Sampler::series() const
{
    SampleSeries s;
    s.period = _period;
    s.channels = _channels;
    s.epochsDropped =
        _epochsTaken > _ring.size() ? _epochsTaken - _ring.size() : 0;

    const std::size_t n = _ring.size();
    s.ticks.reserve(n);
    s.values.assign(_channels.size(), {});
    for (auto &col : s.values)
        col.reserve(n);

    // Oldest epoch: _head when the ring has wrapped, 0 otherwise.
    const std::size_t start = n == _capacity ? _head : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Epoch &e = _ring[(start + i) % n];
        s.ticks.push_back(e.tick);
        for (std::size_t c = 0; c < _channels.size(); ++c)
            s.values[c].push_back(e.values[c]);
    }
    return s;
}

} // namespace secpb::obs
