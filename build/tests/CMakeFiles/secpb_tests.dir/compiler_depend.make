# Empty compiler generated dependencies file for secpb_tests.
# This may be replaced when dependencies are built.
