
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ablations.cc" "tests/CMakeFiles/secpb_tests.dir/test_ablations.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_ablations.cc.o.d"
  "/root/repo/tests/test_app_crash.cc" "tests/CMakeFiles/secpb_tests.dir/test_app_crash.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_app_crash.cc.o.d"
  "/root/repo/tests/test_base.cc" "tests/CMakeFiles/secpb_tests.dir/test_base.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_base.cc.o.d"
  "/root/repo/tests/test_battery_backed_sb.cc" "tests/CMakeFiles/secpb_tests.dir/test_battery_backed_sb.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_battery_backed_sb.cc.o.d"
  "/root/repo/tests/test_bmt.cc" "tests/CMakeFiles/secpb_tests.dir/test_bmt.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_bmt.cc.o.d"
  "/root/repo/tests/test_cipher.cc" "tests/CMakeFiles/secpb_tests.dir/test_cipher.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_cipher.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/secpb_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_counters.cc" "tests/CMakeFiles/secpb_tests.dir/test_counters.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_counters.cc.o.d"
  "/root/repo/tests/test_data_hierarchy.cc" "tests/CMakeFiles/secpb_tests.dir/test_data_hierarchy.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_data_hierarchy.cc.o.d"
  "/root/repo/tests/test_debug.cc" "tests/CMakeFiles/secpb_tests.dir/test_debug.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_debug.cc.o.d"
  "/root/repo/tests/test_drain_integration.cc" "tests/CMakeFiles/secpb_tests.dir/test_drain_integration.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_drain_integration.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/secpb_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/secpb_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_layout.cc" "tests/CMakeFiles/secpb_tests.dir/test_layout.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_layout.cc.o.d"
  "/root/repo/tests/test_metadata_cache.cc" "tests/CMakeFiles/secpb_tests.dir/test_metadata_cache.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_metadata_cache.cc.o.d"
  "/root/repo/tests/test_multicore.cc" "tests/CMakeFiles/secpb_tests.dir/test_multicore.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_multicore.cc.o.d"
  "/root/repo/tests/test_pcm_wpq.cc" "tests/CMakeFiles/secpb_tests.dir/test_pcm_wpq.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_pcm_wpq.cc.o.d"
  "/root/repo/tests/test_pm_state.cc" "tests/CMakeFiles/secpb_tests.dir/test_pm_state.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_pm_state.cc.o.d"
  "/root/repo/tests/test_recovery.cc" "tests/CMakeFiles/secpb_tests.dir/test_recovery.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_recovery.cc.o.d"
  "/root/repo/tests/test_resource.cc" "tests/CMakeFiles/secpb_tests.dir/test_resource.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_resource.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/secpb_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_scheme.cc" "tests/CMakeFiles/secpb_tests.dir/test_scheme.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_scheme.cc.o.d"
  "/root/repo/tests/test_secpb.cc" "tests/CMakeFiles/secpb_tests.dir/test_secpb.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_secpb.cc.o.d"
  "/root/repo/tests/test_secpb_schemes.cc" "tests/CMakeFiles/secpb_tests.dir/test_secpb_schemes.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_secpb_schemes.cc.o.d"
  "/root/repo/tests/test_set_assoc.cc" "tests/CMakeFiles/secpb_tests.dir/test_set_assoc.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_set_assoc.cc.o.d"
  "/root/repo/tests/test_sp_baseline.cc" "tests/CMakeFiles/secpb_tests.dir/test_sp_baseline.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_sp_baseline.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/secpb_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_store_buffer.cc" "tests/CMakeFiles/secpb_tests.dir/test_store_buffer.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_store_buffer.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/secpb_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_trace_cpu.cc" "tests/CMakeFiles/secpb_tests.dir/test_trace_cpu.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_trace_cpu.cc.o.d"
  "/root/repo/tests/test_walker.cc" "tests/CMakeFiles/secpb_tests.dir/test_walker.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_walker.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/secpb_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/secpb_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/secpb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
