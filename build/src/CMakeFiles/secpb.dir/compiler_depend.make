# Empty compiler generated dependencies file for secpb.
# This may be replaced when dependencies are built.
