
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/multicore.cc" "src/CMakeFiles/secpb.dir/core/multicore.cc.o" "gcc" "src/CMakeFiles/secpb.dir/core/multicore.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/secpb.dir/core/system.cc.o" "gcc" "src/CMakeFiles/secpb.dir/core/system.cc.o.d"
  "/root/repo/src/crypto/counters.cc" "src/CMakeFiles/secpb.dir/crypto/counters.cc.o" "gcc" "src/CMakeFiles/secpb.dir/crypto/counters.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/secpb.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/secpb.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/metadata/bmt.cc" "src/CMakeFiles/secpb.dir/metadata/bmt.cc.o" "gcc" "src/CMakeFiles/secpb.dir/metadata/bmt.cc.o.d"
  "/root/repo/src/secpb/secpb.cc" "src/CMakeFiles/secpb.dir/secpb/secpb.cc.o" "gcc" "src/CMakeFiles/secpb.dir/secpb/secpb.cc.o.d"
  "/root/repo/src/sim/debug.cc" "src/CMakeFiles/secpb.dir/sim/debug.cc.o" "gcc" "src/CMakeFiles/secpb.dir/sim/debug.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/secpb.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/secpb.dir/sim/logging.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/secpb.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/secpb.dir/stats/stats.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/secpb.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/secpb.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/secpb.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/secpb.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
