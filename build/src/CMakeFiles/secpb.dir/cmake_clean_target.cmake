file(REMOVE_RECURSE
  "libsecpb.a"
)
