file(REMOVE_RECURSE
  "CMakeFiles/secpb.dir/core/multicore.cc.o"
  "CMakeFiles/secpb.dir/core/multicore.cc.o.d"
  "CMakeFiles/secpb.dir/core/system.cc.o"
  "CMakeFiles/secpb.dir/core/system.cc.o.d"
  "CMakeFiles/secpb.dir/crypto/counters.cc.o"
  "CMakeFiles/secpb.dir/crypto/counters.cc.o.d"
  "CMakeFiles/secpb.dir/energy/energy_model.cc.o"
  "CMakeFiles/secpb.dir/energy/energy_model.cc.o.d"
  "CMakeFiles/secpb.dir/metadata/bmt.cc.o"
  "CMakeFiles/secpb.dir/metadata/bmt.cc.o.d"
  "CMakeFiles/secpb.dir/secpb/secpb.cc.o"
  "CMakeFiles/secpb.dir/secpb/secpb.cc.o.d"
  "CMakeFiles/secpb.dir/sim/debug.cc.o"
  "CMakeFiles/secpb.dir/sim/debug.cc.o.d"
  "CMakeFiles/secpb.dir/sim/logging.cc.o"
  "CMakeFiles/secpb.dir/sim/logging.cc.o.d"
  "CMakeFiles/secpb.dir/stats/stats.cc.o"
  "CMakeFiles/secpb.dir/stats/stats.cc.o.d"
  "CMakeFiles/secpb.dir/workload/profile.cc.o"
  "CMakeFiles/secpb.dir/workload/profile.cc.o.d"
  "CMakeFiles/secpb.dir/workload/synthetic.cc.o"
  "CMakeFiles/secpb.dir/workload/synthetic.cc.o.d"
  "libsecpb.a"
  "libsecpb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
