# Empty dependencies file for fig8_bmt_updates.
# This may be replaced when dependencies are built.
