file(REMOVE_RECURSE
  "CMakeFiles/fig8_bmt_updates.dir/fig8_bmt_updates.cc.o"
  "CMakeFiles/fig8_bmt_updates.dir/fig8_bmt_updates.cc.o.d"
  "fig8_bmt_updates"
  "fig8_bmt_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bmt_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
