# Empty dependencies file for multicore_sharing.
# This may be replaced when dependencies are built.
