file(REMOVE_RECURSE
  "CMakeFiles/multicore_sharing.dir/multicore_sharing.cc.o"
  "CMakeFiles/multicore_sharing.dir/multicore_sharing.cc.o.d"
  "multicore_sharing"
  "multicore_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
