# Empty compiler generated dependencies file for fig9_bmf.
# This may be replaced when dependencies are built.
