file(REMOVE_RECURSE
  "CMakeFiles/fig9_bmf.dir/fig9_bmf.cc.o"
  "CMakeFiles/fig9_bmf.dir/fig9_bmf.cc.o.d"
  "fig9_bmf"
  "fig9_bmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
