file(REMOVE_RECURSE
  "CMakeFiles/table6_battery_sweep.dir/table6_battery_sweep.cc.o"
  "CMakeFiles/table6_battery_sweep.dir/table6_battery_sweep.cc.o.d"
  "table6_battery_sweep"
  "table6_battery_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_battery_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
