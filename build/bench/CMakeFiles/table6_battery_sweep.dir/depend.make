# Empty dependencies file for table6_battery_sweep.
# This may be replaced when dependencies are built.
