# Empty compiler generated dependencies file for recovery_window.
# This may be replaced when dependencies are built.
