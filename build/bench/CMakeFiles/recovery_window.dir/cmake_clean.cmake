file(REMOVE_RECURSE
  "CMakeFiles/recovery_window.dir/recovery_window.cc.o"
  "CMakeFiles/recovery_window.dir/recovery_window.cc.o.d"
  "recovery_window"
  "recovery_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
