# Empty compiler generated dependencies file for table4_overheads.
# This may be replaced when dependencies are built.
