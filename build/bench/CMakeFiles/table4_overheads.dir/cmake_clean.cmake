file(REMOVE_RECURSE
  "CMakeFiles/table4_overheads.dir/table4_overheads.cc.o"
  "CMakeFiles/table4_overheads.dir/table4_overheads.cc.o.d"
  "table4_overheads"
  "table4_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
