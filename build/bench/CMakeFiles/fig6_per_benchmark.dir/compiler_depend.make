# Empty compiler generated dependencies file for fig6_per_benchmark.
# This may be replaced when dependencies are built.
