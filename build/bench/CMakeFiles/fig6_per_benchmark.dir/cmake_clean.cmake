file(REMOVE_RECURSE
  "CMakeFiles/fig6_per_benchmark.dir/fig6_per_benchmark.cc.o"
  "CMakeFiles/fig6_per_benchmark.dir/fig6_per_benchmark.cc.o.d"
  "fig6_per_benchmark"
  "fig6_per_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_per_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
