# Empty dependencies file for table5_battery.
# This may be replaced when dependencies are built.
