file(REMOVE_RECURSE
  "CMakeFiles/table5_battery.dir/table5_battery.cc.o"
  "CMakeFiles/table5_battery.dir/table5_battery.cc.o.d"
  "table5_battery"
  "table5_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
