file(REMOVE_RECURSE
  "CMakeFiles/fig7_size_sweep.dir/fig7_size_sweep.cc.o"
  "CMakeFiles/fig7_size_sweep.dir/fig7_size_sweep.cc.o.d"
  "fig7_size_sweep"
  "fig7_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
