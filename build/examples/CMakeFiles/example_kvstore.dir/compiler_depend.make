# Empty compiler generated dependencies file for example_kvstore.
# This may be replaced when dependencies are built.
