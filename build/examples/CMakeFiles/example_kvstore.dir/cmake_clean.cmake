file(REMOVE_RECURSE
  "CMakeFiles/example_kvstore.dir/kvstore.cpp.o"
  "CMakeFiles/example_kvstore.dir/kvstore.cpp.o.d"
  "example_kvstore"
  "example_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
