# Empty compiler generated dependencies file for example_battery_planner.
# This may be replaced when dependencies are built.
