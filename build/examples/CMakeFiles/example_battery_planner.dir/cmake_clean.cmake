file(REMOVE_RECURSE
  "CMakeFiles/example_battery_planner.dir/battery_planner.cpp.o"
  "CMakeFiles/example_battery_planner.dir/battery_planner.cpp.o.d"
  "example_battery_planner"
  "example_battery_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_battery_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
