# Empty compiler generated dependencies file for example_secpb_sim.
# This may be replaced when dependencies are built.
