file(REMOVE_RECURSE
  "CMakeFiles/example_secpb_sim.dir/secpb_sim.cpp.o"
  "CMakeFiles/example_secpb_sim.dir/secpb_sim.cpp.o.d"
  "example_secpb_sim"
  "example_secpb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secpb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
