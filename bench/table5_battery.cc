/**
 * @file
 * Reproduces Table V: the size of the energy source (supercapacitor or
 * Li-thin-film battery) required to support each SecPB scheme with a
 * 32-entry SecPB, compared with BBB, eADR, and secure eADR, and the
 * footprint ratio of that energy source to a 5.37 mm^2 client-class core.
 */

#include <cstdio>

#include "energy/energy_model.hh"

using namespace secpb;

namespace
{

void
printRow(const char *name, const EnergyModel &em, double energy_j,
         double paper_sc, double paper_li)
{
    const BatteryEstimate sc = em.size(energy_j, superCapTech());
    const BatteryEstimate li = em.size(energy_j, liThinTech());
    std::printf("%-8s %12.3f %12.4f %10.1f%% %9.2f%% | paper: %9.2f %9.3f\n",
                name, sc.volumeMm3, li.volumeMm3,
                sc.areaRatioToCore * 100.0, li.areaRatioToCore * 100.0,
                paper_sc, paper_li);
}

} // namespace

int
main()
{
    const EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);
    constexpr unsigned entries = 32;

    std::printf("Table V: energy-source size for a %u-entry SecPB "
                "(volume mm^3 and footprint ratio to a 5.37 mm^2 core)\n\n",
                entries);
    std::printf("%-8s %12s %12s %11s %10s | %s\n", "System",
                "SuperCap mm3", "Li-Thin mm3", "SC/core", "Li/core",
                "paper volumes (SC, Li)");

    struct Row
    {
        const char *name;
        Scheme scheme;
        double paperSc;
        double paperLi;
    };
    const Row rows[] = {
        {"COBCM", Scheme::Cobcm, 4.89, 0.049},
        {"OBCM", Scheme::Obcm, 4.82, 0.048},
        {"BCM", Scheme::Bcm, 4.72, 0.047},
        {"CM", Scheme::Cm, 0.73, 0.007},
        {"M", Scheme::M, 0.67, 0.006},
        {"NoGap", Scheme::NoGap, 0.28, 0.003},
    };
    for (const Row &r : rows)
        printRow(r.name, em, em.secPbBatteryEnergy(r.scheme, entries),
                 r.paperSc, r.paperLi);

    printRow("s_eADR", em, em.sEadrBatteryEnergy(), 3706.00, 37.060);
    printRow("BBB", em, em.bbbBatteryEnergy(entries), 0.07, 0.001);
    printRow("eADR", em, em.eadrBatteryEnergy(), 149.32, 1.490);

    const double ratio = em.sEadrBatteryEnergy() /
                         em.secPbBatteryEnergy(Scheme::Cobcm, entries);
    std::printf("\ns_eADR / COBCM battery ratio: %.0fx "
                "(paper reports 753x)\n", ratio);
    const double eadr_bbb =
        em.eadrBatteryEnergy() / em.bbbBatteryEnergy(entries);
    std::printf("eADR / BBB battery ratio:     %.0fx "
                "(paper reports ~2500x)\n", eadr_bbb);
    return 0;
}
