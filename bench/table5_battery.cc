/**
 * @file
 * Reproduces Table V: the size of the energy source (supercapacitor or
 * Li-thin-film battery) required to support each SecPB scheme with a
 * 32-entry SecPB, compared with BBB, eADR, and secure eADR, and the
 * footprint ratio of that energy source to a 5.37 mm^2 client-class core.
 *
 * No simulation runs here -- each point evaluates the energy model -- but
 * the rows still go through the experiment engine so --json captures them
 * in the same sweep schema as every other bench.
 */

#include "bench_common.hh"
#include "energy/energy_model.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

/** Battery-sizing point: pure energy-model evaluation. */
ExperimentResult
sizePoint(double energy_j, double derate)
{
    const EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);
    const BatteryEstimate sc = em.size(energy_j, superCapTech());
    const BatteryEstimate li = em.size(energy_j, liThinTech());

    // The paper's flat sizing assumes every stored joule is usable. A
    // real part only delivers the energy above the regulator cutoff, and
    // a worn part less still, so the realistic columns inflate each
    // tech's volume by its own voltage window and the CLI's derate.
    CapacitorParams scp = capacitorPresetFor("supercap");
    CapacitorParams lip = capacitorPresetFor("li-thin");
    scp.capacitanceDerate = derate;
    lip.capacitanceDerate = derate;
    const BatteryEstimate scr =
        em.sizeWithPhysics(energy_j, superCapTech(), scp);
    const BatteryEstimate lir =
        em.sizeWithPhysics(energy_j, liThinTech(), lip);

    ExperimentResult r;
    r.extra = {
        {"energy_j", energy_j},
        {"supercap_mm3", sc.volumeMm3},
        {"lithin_mm3", li.volumeMm3},
        {"supercap_core_ratio", sc.areaRatioToCore},
        {"lithin_core_ratio", li.areaRatioToCore},
        {"supercap_real_mm3", scr.volumeMm3},
        {"lithin_real_mm3", lir.volumeMm3},
        {"supercap_real_core_ratio", scr.areaRatioToCore},
        {"lithin_real_core_ratio", lir.areaRatioToCore},
    };
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "table5");
    const EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);
    constexpr unsigned entries = 32;

    struct Row
    {
        const char *name;
        double energyJ;
        double paperSc;
        double paperLi;
    };
    const Row rows[] = {
        {"COBCM", em.secPbBatteryEnergy(Scheme::Cobcm, entries), 4.89, 0.049},
        {"OBCM", em.secPbBatteryEnergy(Scheme::Obcm, entries), 4.82, 0.048},
        {"BCM", em.secPbBatteryEnergy(Scheme::Bcm, entries), 4.72, 0.047},
        {"CM", em.secPbBatteryEnergy(Scheme::Cm, entries), 0.73, 0.007},
        {"M", em.secPbBatteryEnergy(Scheme::M, entries), 0.67, 0.006},
        {"NoGap", em.secPbBatteryEnergy(Scheme::NoGap, entries), 0.28, 0.003},
        {"s_eADR", em.sEadrBatteryEnergy(), 3706.00, 37.060},
        {"BBB", em.bbbBatteryEnergy(entries), 0.07, 0.001},
        {"eADR", em.eadrBatteryEnergy(), 149.32, 1.490},
    };

    Sweep sweep(cli);
    std::vector<std::size_t> idx;
    for (const Row &r : rows) {
        ExperimentPoint p;
        p.label = r.name;
        p.instructions = 0;
        p.secpbEntries = entries;
        p.tag("kind", "battery_sizing");
        const double energy = r.energyJ;
        const double derate = cli.batteryDerate;
        p.custom = [energy, derate](const ExperimentPoint &) {
            return sizePoint(energy, derate);
        };
        idx.push_back(sweep.add(std::move(p)));
    }

    sweep.run();

    std::printf("Table V: energy-source size for a %u-entry SecPB "
                "(volume mm^3 and footprint ratio to a 5.37 mm^2 core)\n\n",
                entries);
    std::printf("%-8s %12s %12s %11s %10s | %s\n", "System",
                "SuperCap mm3", "Li-Thin mm3", "SC/core", "Li/core",
                "paper volumes (SC, Li)");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const ExperimentResult &r = sweep.at(idx[i]);
        std::printf("%-8s %12.3f %12.4f %10.1f%% %9.2f%% | "
                    "paper: %9.2f %9.3f\n",
                    rows[i].name, r.extraValue("supercap_mm3"),
                    r.extraValue("lithin_mm3"),
                    r.extraValue("supercap_core_ratio") * 100.0,
                    r.extraValue("lithin_core_ratio") * 100.0,
                    rows[i].paperSc, rows[i].paperLi);
    }

    std::printf("\nRealistic physics (voltage window + derate %.2f): "
                "each tech's own usable window inflates the volume\n\n",
                cli.batteryDerate);
    std::printf("%-8s %12s %12s %11s %10s\n", "System",
                "SuperCap mm3", "Li-Thin mm3", "SC/core", "Li/core");
    for (std::size_t i = 0; i < std::size(rows); ++i) {
        const ExperimentResult &r = sweep.at(idx[i]);
        std::printf("%-8s %12.3f %12.4f %10.1f%% %9.2f%%\n",
                    rows[i].name, r.extraValue("supercap_real_mm3"),
                    r.extraValue("lithin_real_mm3"),
                    r.extraValue("supercap_real_core_ratio") * 100.0,
                    r.extraValue("lithin_real_core_ratio") * 100.0);
    }

    const double ratio = em.sEadrBatteryEnergy() /
                         em.secPbBatteryEnergy(Scheme::Cobcm, entries);
    std::printf("\ns_eADR / COBCM battery ratio: %.0fx "
                "(paper reports 753x)\n", ratio);
    sweep.derive("battery_ratio", "s_eADR/COBCM", ratio);
    const double eadr_bbb =
        em.eadrBatteryEnergy() / em.bbbBatteryEnergy(entries);
    std::printf("eADR / BBB battery ratio:     %.0fx "
                "(paper reports ~2500x)\n", eadr_bbb);
    sweep.derive("battery_ratio", "eADR/BBB", eadr_bbb);

    sweep.writeJson();
    return 0;
}
