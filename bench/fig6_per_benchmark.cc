/**
 * @file
 * Reproduces Figure 6: per-benchmark execution time of every SecPB scheme
 * with a 32-entry SecPB, normalized to the insecure BBB baseline.
 *
 * Also prints the PPTI / NWPE characterization of Section VI-B (including
 * the gamess IPC sanity estimate the paper derives) so the workload
 * calibration is visible next to the results.
 *
 * Declares one point per (profile, scheme) cell plus the BBB baseline per
 * profile, runs them through the experiment engine (see --jobs), and
 * prints the table from the aggregated results.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "fig6");
    const std::uint64_t instr = cli.instructions;

    const Scheme all_schemes[] = {Scheme::Cobcm, Scheme::Obcm,
                                  Scheme::Bcm,   Scheme::Cm,
                                  Scheme::M,     Scheme::NoGap,
                                  Scheme::Secpm, Scheme::Triad,
                                  Scheme::Eadr,  Scheme::Stream};
    std::vector<Scheme> schemes;
    for (Scheme s : all_schemes)
        if (cli.wantScheme(s))
            schemes.push_back(s);
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s);
        p.scheme = s;
        p.schemeParams = cli.schemeParams;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    // Per profile: the BBB baseline plus every scheme column.
    std::vector<std::size_t> base_idx;
    std::vector<std::vector<std::size_t>> cell_idx;
    for (const BenchmarkProfile &p : profiles) {
        base_idx.push_back(point(Scheme::Bbb, p.name));
        cell_idx.emplace_back();
        for (Scheme s : schemes)
            cell_idx.back().push_back(point(s, p.name));
    }

    // Section VI-B sanity point: gamess under NoGap.
    std::size_t gamess_idx = 0;
    const bool want_gamess =
        cli.wantProfile("gamess") && cli.wantScheme(Scheme::NoGap);
    if (want_gamess)
        gamess_idx = point(Scheme::NoGap, "gamess");

    sweep.run();

    std::printf("Figure 6: execution time of 32-entry SecPB normalized "
                "to BBB (%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s %6s %6s |", "benchmark", "PPTI", "NWPE");
    for (Scheme s : schemes)
        std::printf(" %7s", schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> ratios(schemes.size());
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        const SimulationResult &base = sweep.at(base_idx[pi]).sim;
        std::printf("%-12s %6.1f %6.2f |", profiles[pi].name.c_str(),
                    base.ppti, base.nwpe);
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const SimulationResult &r = sweep.at(cell_idx[pi][si]).sim;
            const double ratio =
                static_cast<double>(r.execTicks) / base.execTicks;
            ratios[si].push_back(ratio);
            std::printf(" %7.3f", ratio);
        }
        std::printf("\n");
    }

    std::printf("\n%-26s |", "geomean");
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        const double g = geomean(ratios[si]);
        sweep.derive("geomean_exec_ratio", schemeName(schemes[si]), g);
        std::printf(" %7.3f", g);
    }
    std::printf("\n%-26s |", "arithmetic mean");
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        const double m = mean(ratios[si]);
        sweep.derive("mean_exec_ratio", schemeName(schemes[si]), m);
        std::printf(" %7.3f", m);
    }
    std::printf("\n");

    // The paper estimates gamess IPC under NoGap as
    // 1000 / (320*(PPTI/NWPE) + 40*PPTI) ~= 0.11 (actual 0.13).
    if (want_gamess) {
        const SimulationResult &g = sweep.at(gamess_idx).sim;
        const double est =
            1000.0 / (320.0 * (g.ppti / g.nwpe) + 40.0 * g.ppti);
        std::printf("\ngamess NoGap IPC: measured %.3f, paper-style "
                    "estimate %.3f (paper: actual 0.13, estimate 0.11)\n",
                    g.ipc, est);
        sweep.derive("gamess_nogap_ipc", "measured", g.ipc);
        sweep.derive("gamess_nogap_ipc", "estimate", est);
    }

    sweep.writeJson();
    return 0;
}
