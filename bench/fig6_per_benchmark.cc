/**
 * @file
 * Reproduces Figure 6: per-benchmark execution time of every SecPB scheme
 * with a 32-entry SecPB, normalized to the insecure BBB baseline.
 *
 * Also prints the PPTI / NWPE characterization of Section VI-B (including
 * the gamess IPC sanity estimate the paper derives) so the workload
 * calibration is visible next to the results.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();

    const Scheme schemes[] = {Scheme::Bbb,   Scheme::Cobcm, Scheme::Obcm,
                              Scheme::Bcm,   Scheme::Cm,    Scheme::M,
                              Scheme::NoGap};

    std::printf("Figure 6: execution time of 32-entry SecPB normalized "
                "to BBB (%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s %6s %6s |", "benchmark", "PPTI", "NWPE");
    for (Scheme s : schemes)
        if (s != Scheme::Bbb)
            std::printf(" %7s", schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> ratios(std::size(schemes));

    for (const BenchmarkProfile &p : spec2006Profiles()) {
        SimulationResult base = runOne(Scheme::Bbb, p, instr);
        std::printf("%-12s %6.1f %6.2f |", p.name.c_str(), base.ppti,
                    base.nwpe);
        unsigned si = 0;
        for (Scheme s : schemes) {
            if (s == Scheme::Bbb) {
                ++si;
                continue;
            }
            SimulationResult r = runOne(s, p, instr);
            const double ratio =
                static_cast<double>(r.execTicks) / base.execTicks;
            ratios[si].push_back(ratio);
            std::printf(" %7.3f", ratio);
            ++si;
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n%-26s |", "geomean");
    for (unsigned si = 0; si < std::size(schemes); ++si)
        if (schemes[si] != Scheme::Bbb)
            std::printf(" %7.3f", geomean(ratios[si]));
    std::printf("\n%-26s |", "arithmetic mean");
    for (unsigned si = 0; si < std::size(schemes); ++si)
        if (schemes[si] != Scheme::Bbb)
            std::printf(" %7.3f", mean(ratios[si]));
    std::printf("\n");

    // Section VI-B sanity check: the paper estimates gamess IPC under
    // NoGap as 1000 / (320*(PPTI/NWPE) + 40*PPTI) ~= 0.11 (actual 0.13).
    const BenchmarkProfile &gamess = profileByName("gamess");
    SimulationResult g = runOne(Scheme::NoGap, gamess, instr);
    const double est =
        1000.0 / (320.0 * (g.ppti / g.nwpe) + 40.0 * g.ppti);
    std::printf("\ngamess NoGap IPC: measured %.3f, paper-style estimate "
                "%.3f (paper: actual 0.13, estimate 0.11)\n",
                g.ipc, est);
    return 0;
}
