/**
 * @file
 * Reproduces Figure 8: total BMT root updates performed by each SecPB
 * scheme, normalized to sec_wt (write-through security, which performs
 * one leaf-to-root update per store). Also prints the SecPB-size sweep of
 * root updates for the CM model referenced in Section VI-D ("a 8-entry
 * SecPB reduces BMT updates to 12.7% ... 512-entry to 1.8%").
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "fig8");
    const std::uint64_t instr = cli.instructions;

    const Scheme all_schemes[] = {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                                  Scheme::Cm, Scheme::M, Scheme::NoGap};
    std::vector<Scheme> schemes;
    for (Scheme s : all_schemes)
        if (cli.wantScheme(s))
            schemes.push_back(s);
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();
    const unsigned sizes[] = {8, 16, 32, 64, 128, 512};

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile,
                     unsigned size = 32) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s) + "/entries=" +
                  std::to_string(size);
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.secpbEntries = size;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    std::vector<std::size_t> wt_idx;
    std::vector<std::vector<std::size_t>> cell_idx;
    for (const BenchmarkProfile &p : profiles) {
        wt_idx.push_back(point(Scheme::SecWt, p.name));
        cell_idx.emplace_back();
        for (Scheme s : schemes)
            cell_idx.back().push_back(point(s, p.name));
    }

    // Size sweep (CM), Section VI-D.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> size_idx;
    for (unsigned s : sizes) {
        size_idx.emplace_back();
        for (const BenchmarkProfile &p : profiles)
            size_idx.back().emplace_back(point(Scheme::SecWt, p.name, s),
                                         point(Scheme::Cm, p.name, s));
    }

    sweep.run();

    std::printf("Figure 8: BMT root updates normalized to sec_wt "
                "(%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (Scheme s : schemes)
        std::printf(" %7s", schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> fracs(schemes.size());
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        const SimulationResult &wt = sweep.at(wt_idx[pi]).sim;
        const double wt_updates =
            std::max<std::uint64_t>(1, wt.bmtRootUpdates);
        std::printf("%-12s |", profiles[pi].name.c_str());
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const SimulationResult &r = sweep.at(cell_idx[pi][si]).sim;
            const double frac = r.bmtRootUpdates / wt_updates;
            fracs[si].push_back(frac);
            std::printf(" %6.1f%%", frac * 100.0);
        }
        std::printf("\n");
    }
    std::printf("\n%-12s |", "mean");
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        const double m = mean(fracs[si]);
        sweep.derive("mean_bmt_update_frac", schemeName(schemes[si]), m);
        std::printf(" %6.1f%%", m * 100.0);
    }
    std::printf("\n");

    std::printf("\nCM BMT root updates vs SecPB size "
                "(normalized to sec_wt; paper: 8 -> 12.7%%, "
                "512 -> 1.8%%)\n\n%-12s |", "size");
    for (unsigned s : sizes)
        std::printf(" %7u", s);
    std::printf("\n%-12s |", "mean frac");
    for (std::size_t si = 0; si < std::size(sizes); ++si) {
        std::vector<double> f;
        for (const auto &[wt_i, cm_i] : size_idx[si]) {
            const SimulationResult &wt = sweep.at(wt_i).sim;
            const SimulationResult &r = sweep.at(cm_i).sim;
            f.push_back(r.bmtRootUpdates /
                        std::max<double>(1.0, wt.bmtRootUpdates));
        }
        const double m = mean(f);
        sweep.derive("mean_bmt_update_frac_cm",
                     "entries=" + std::to_string(sizes[si]), m);
        std::printf(" %6.1f%%", m * 100.0);
    }
    std::printf("\n");

    sweep.writeJson();
    return 0;
}
