/**
 * @file
 * Reproduces Figure 8: total BMT root updates performed by each SecPB
 * scheme, normalized to sec_wt (write-through security, which performs
 * one leaf-to-root update per store). Also prints the SecPB-size sweep of
 * root updates for the CM model referenced in Section VI-D ("a 8-entry
 * SecPB reduces BMT updates to 12.7% ... 512-entry to 1.8%").
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();

    const Scheme schemes[] = {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                              Scheme::Cm, Scheme::M, Scheme::NoGap};

    std::printf("Figure 8: BMT root updates normalized to sec_wt "
                "(%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (Scheme s : schemes)
        std::printf(" %7s", schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> fracs(std::size(schemes));
    for (const BenchmarkProfile &p : spec2006Profiles()) {
        const SimulationResult wt = runOne(Scheme::SecWt, p, instr);
        const double wt_updates =
            std::max<std::uint64_t>(1, wt.bmtRootUpdates);
        std::printf("%-12s |", p.name.c_str());
        unsigned si = 0;
        for (Scheme s : schemes) {
            SimulationResult r = runOne(s, p, instr);
            const double frac = r.bmtRootUpdates / wt_updates;
            fracs[si].push_back(frac);
            std::printf(" %6.1f%%", frac * 100.0);
            ++si;
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("\n%-12s |", "mean");
    for (unsigned si = 0; si < std::size(schemes); ++si)
        std::printf(" %6.1f%%", mean(fracs[si]) * 100.0);
    std::printf("\n");

    // Size sweep (CM), Section VI-D.
    std::printf("\nCM BMT root updates vs SecPB size "
                "(normalized to sec_wt; paper: 8 -> 12.7%%, "
                "512 -> 1.8%%)\n\n%-12s |", "size");
    const unsigned sizes[] = {8, 16, 32, 64, 128, 512};
    for (unsigned s : sizes)
        std::printf(" %7u", s);
    std::printf("\n%-12s |", "mean frac");
    for (unsigned s : sizes) {
        std::vector<double> f;
        for (const BenchmarkProfile &p : spec2006Profiles()) {
            const SimulationResult wt = runOne(Scheme::SecWt, p, instr, s);
            const SimulationResult r = runOne(Scheme::Cm, p, instr, s);
            f.push_back(r.bmtRootUpdates /
                        std::max<double>(1.0, wt.bmtRootUpdates));
        }
        std::printf(" %6.1f%%", mean(f) * 100.0);
        std::fflush(stdout);
    }
    std::printf("\n");
    return 0;
}
