/**
 * @file
 * Host-performance baseline harness: the regression gate that keeps the
 * simulator "as fast as the hardware allows".
 *
 * Measures wall-clock performance of the simulator's inner loop from two
 * angles and emits a BENCH_<label>.json document (JsonWriter, schema
 * "secpb.perf_baseline" v1) that tools/compare_bench.py diffs against a
 * previous baseline:
 *
 *  - fig6_smoke: the CI smoke slice of the Figure 6 sweep (CM + COBCM
 *    across every SPEC profile), timed end to end. This exercises the
 *    whole stack -- kernel, walker, SecPB, caches, PCM -- exactly the way
 *    every experiment in src/exp/ does.
 *  - event_burst / event_chain: the event-kernel microbenchmarks. Burst
 *    schedules waves of events and drains them (deep heap, stresses
 *    sift + pool recycling); chain keeps one self-rescheduling event in
 *    flight (stresses the schedule/pop round trip). Reported in millions
 *    of dispatched events per second.
 *  - walker_update: pipelined BMT root updates against a warm metadata
 *    cache, in millions of walks per second (walk-path caching shows up
 *    here).
 *
 * Every component runs --reps times and reports the best rep (minimum
 * wall time), the standard noise filter for host-side timing.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "metadata/walker.hh"
#include "stats/json.hh"
#include "workload/synthetic.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-reps wall time of @p body (seconds). */
template <typename Body>
double
best_of(unsigned reps, Body &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const double t0 = now_s();
        body();
        const double dt = now_s() - t0;
        if (r == 0 || dt < best)
            best = dt;
    }
    return best;
}

/** The CI smoke slice of fig6: CM + COBCM across every profile. */
double
bench_fig6_smoke(std::uint64_t instr, std::uint64_t seed, unsigned reps)
{
    const Scheme schemes[] = {Scheme::Cm, Scheme::Cobcm};
    return best_of(reps, [&] {
        for (const BenchmarkProfile &p : spec2006Profiles())
            for (Scheme s : schemes)
                runOne(s, p, instr, 32, BmfMode::None, seed);
    });
}

/**
 * The full-scale fig6 point: one COBCM run at the paper's 250M-instruction
 * horizon (gamess, the heaviest-drain profile). Unlike the smoke slice
 * this runs long enough for every hot table to reach steady-state
 * occupancy, so allocator and hash-table pathologies that a 20k-instr rep
 * amortizes away dominate the wall clock. One rep only -- at this horizon
 * a single run is past timing noise and CI budgets are finite.
 */
double
bench_fig6_full(std::uint64_t instr, std::uint64_t seed)
{
    return best_of(1, [&] {
        runOne(Scheme::Cobcm, profileByName("gamess"), instr, 32,
               BmfMode::None, seed);
    });
}

/**
 * The server-workload smoke slice: the heavy-traffic generators through
 * the full stack on the server machine model, BBB vs COBCM. This is the
 * path the workload front end adds -- registry dispatch, the queue
 * generators, the multi-ASID plumbing -- none of which fig6 exercises.
 */
double
bench_workload_smoke(std::uint64_t instr, std::uint64_t seed,
                     unsigned reps)
{
    const char *specs[] = {"kv_wal", "fs_journal", "zipf_mix:tenants=256"};
    const Scheme schemes[] = {Scheme::Bbb, Scheme::Cobcm};
    return best_of(reps, [&] {
        for (const char *wl : specs) {
            for (Scheme s : schemes) {
                SimulationSpec spec;
                spec.base =
                    SecPbSystem::configFor(s, serverWorkloadProfile());
                spec.instructions = instr;
                spec.seed = seed;
                Simulation sim(spec);
                auto gen = makeWorkload(wl, instr, seed);
                sim.run(*gen);
            }
        }
    });
}

/**
 * The recovery-window smoke slice: crash four zoo endpoints (lazy SecPB,
 * counter write-through, whole-hierarchy flush, and the triad rebuild
 * path) at quarter-run and time drain + recovery end to end. This is the
 * crash path none of the run-to-end slices touch.
 */
double
bench_recovery_window_smoke(std::uint64_t instr, std::uint64_t seed,
                            unsigned reps)
{
    const Scheme schemes[] = {Scheme::Cobcm, Scheme::Secpm, Scheme::Triad,
                              Scheme::Eadr};
    const BenchmarkProfile &prof = profileByName("gamess");
    return best_of(reps, [&] {
        for (Scheme s : schemes) {
            SimulationSpec spec;
            spec.base = SecPbSystem::configFor(s, prof);
            spec.instructions = instr;
            spec.seed = seed;
            Simulation sim(spec);
            SyntheticGenerator gen(prof, instr, seed);
            sim.start(gen);
            sim.runUntil(instr / 4);
            sim.crashNow();
        }
    });
}

/** Per-core private-region writer for the shard-scaling probe: cores
 *  never share a page, so the epoch engine's parallel section dominates
 *  and the measured ratio isolates host-thread scaling. */
class PrivateWriter : public WorkloadGenerator
{
  public:
    PrivateWriter(std::uint64_t instructions, Addr base, std::uint64_t seed)
        : _budget(instructions), _base(base), _rng(seed)
    {}

    bool
    next(TraceOp &op) override
    {
        if (_emitted >= _budget)
            return false;
        if (_rng.chance(0.08)) {
            ++_emitted;
            op.kind = TraceOp::Kind::Store;
            op.addr = _base +
                      blockAlign(_rng.below(512) * BlockSize) +
                      8 * _rng.below(8);
            op.value = _rng.next();
            return true;
        }
        std::uint32_t count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(16, _budget - _emitted));
        _emitted += count;
        op.kind = TraceOp::Kind::Instr;
        op.count = count;
        return true;
    }

  private:
    std::uint64_t _budget;
    std::uint64_t _emitted = 0;
    Addr _base;
    Rng _rng;
};

/**
 * One 4-core COBCM run through the epoch-barrier engine at @p shards
 * host threads. Identical simulated behavior at every shard count (that
 * is the engine's contract, gated elsewhere); what this measures is the
 * wall-clock ratio, reported as shard_speedup = serial / sharded.
 */
double
bench_shard_run(std::uint64_t instr_per_core, std::uint64_t seed,
                unsigned shards, unsigned reps)
{
    return best_of(reps, [&] {
        SimulationSpec spec;
        spec.base.scheme = Scheme::Cobcm;
        spec.cores = 4;
        spec.shards = shards;
        // Coarse epochs amortize the barrier; private pages mean the
        // grant queue is empty past the first-touch epoch.
        spec.epochTicks = 4096;
        Simulation sim(spec);
        std::vector<std::unique_ptr<PrivateWriter>> gens;
        std::vector<WorkloadGenerator *> raw;
        for (unsigned c = 0; c < spec.cores; ++c) {
            gens.push_back(std::make_unique<PrivateWriter>(
                instr_per_core, 0x4000000ULL * (c + 1), seed + c));
            raw.push_back(gens.back().get());
        }
        sim.run(raw);
    });
}

/** Pure generator throughput: drain KV/WAL, no simulator attached. */
double
bench_workload_gen(std::uint64_t instructions, unsigned reps)
{
    std::uint64_t ops = 0;
    const double secs = best_of(reps, [&] {
        auto gen = makeWorkload("kv_wal", instructions, 1);
        TraceOp op;
        std::uint64_t n = 0;
        while (gen->next(op))
            ++n;
        ops = n;
    });
    return static_cast<double>(ops) / secs / 1e6;
}

/** Waves of events: schedule a burst, drain it, repeat. */
double
bench_event_burst(std::uint64_t waves, std::uint64_t per_wave,
                  unsigned reps)
{
    const double secs = best_of(reps, [&] {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (std::uint64_t w = 0; w < waves; ++w) {
            const Tick base = eq.curTick();
            for (std::uint64_t i = 0; i < per_wave; ++i)
                eq.schedule(base + 1 + i % 97, [&sink] { ++sink; });
            eq.run();
        }
        if (sink != waves * per_wave)
            fatal("event_burst dropped events (%llu != %llu)",
                  static_cast<unsigned long long>(sink),
                  static_cast<unsigned long long>(waves * per_wave));
    });
    return static_cast<double>(waves * per_wave) / secs / 1e6;
}

/** One self-rescheduling event: the schedule/pop round trip. */
double
bench_event_chain(std::uint64_t length, unsigned reps)
{
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *left;
        void
        operator()()
        {
            if (--*left > 0)
                eq->scheduleIn(3, *this);
        }
    };
    const double secs = best_of(reps, [&] {
        EventQueue eq;
        std::uint64_t left = length;
        eq.schedule(0, Chain{&eq, &left});
        eq.run();
        if (left != 0)
            fatal("event_chain terminated early");
    });
    return static_cast<double>(length) / secs / 1e6;
}

/** Pipelined BMT root updates with a warm node cache. */
double
bench_walker_update(std::uint64_t updates, unsigned reps)
{
    const double secs = best_of(reps, [&] {
        EventQueue eq;
        StatGroup g("perf");
        MetadataLayout layout{8ULL << 30};
        BonsaiMerkleTree tree(layout.numPages());
        PcmConfig pcm_cfg{220, 600, 32, 64, 128};
        PcmModel pcm(eq, pcm_cfg, g);
        MetadataCache bmt_cache("bmt$", CacheGeometry{128 * 1024, 8, 64},
                                2, pcm, g, false);
        CryptoLatencies lat;
        WalkerConfig wcfg;
        BmtWalker walker(eq, wcfg, layout, tree, bmt_cache, pcm, lat, g);
        // 64 pages cycle through the pipe: in-flight walks merge rarely,
        // the node cache stays warm after the first lap.
        for (std::uint64_t i = 0; i < updates; ++i) {
            walker.update((i % 64) * PageSize,
                          static_cast<Digest>(i * 0x9e3779b97f4a7c15ULL));
            if ((i & 1023) == 1023)
                eq.run();
        }
        eq.run();
    });
    return static_cast<double>(updates) / secs / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    std::string json_path;
    std::string label = "local";
    unsigned reps = 3;
    std::uint64_t instr = 20'000;
    std::uint64_t seed = benchSeed();
    bool fig6_full = false;
    std::uint64_t fig6_full_instr = 250'000'000;
    std::uint64_t shard_instr = 250'000;  ///< Per core, 4 cores.
    unsigned shard_count = 4;

    auto need = [&](int i) -> const char * {
        fatal_if(i + 1 >= argc, "perf_baseline: flag %s needs a value",
                 argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json") {
            json_path = need(i);
            ++i;
        } else if (a == "--label") {
            label = need(i);
            ++i;
        } else if (a == "--reps") {
            reps = static_cast<unsigned>(
                std::max(1ULL, std::strtoull(need(i), nullptr, 10)));
            ++i;
        } else if (a == "--instr") {
            instr = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (a == "--seed") {
            seed = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (a == "--fig6-full") {
            fig6_full = true;
        } else if (a == "--fig6-full-instr") {
            fig6_full_instr = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (a == "--shard-instr") {
            shard_instr = std::strtoull(need(i), nullptr, 10);
            ++i;
        } else if (a == "--shards") {
            shard_count = static_cast<unsigned>(
                std::max(1ULL, std::strtoull(need(i), nullptr, 10)));
            ++i;
        } else if (a == "--jobs") {
            // Accepted for CLI uniformity with the sweep binaries, but
            // wall-clock timing is inherently single-threaded here.
            need(i);
            ++i;
        } else if (a == "--help" || a == "-h") {
            std::printf(
                "usage: perf_baseline [--json PATH] [--label NAME]\n"
                "                     [--reps N] [--instr N] [--seed N]\n"
                "                     [--fig6-full] [--fig6-full-instr N]\n"
                "                     [--shard-instr N] [--shards N]\n"
                "Times the fig6 smoke sweep, the event-kernel\n"
                "microbenches, the BMT walker, and the multi-core shard\n"
                "engine (4 cores at --shards 1 vs N host threads,\n"
                "reported as shard_speedup); writes a\n"
                "secpb.perf_baseline JSON for tools/compare_bench.py.\n"
                "--fig6-full adds one paper-scale (250M instr) COBCM\n"
                "point, reported as fig6_full_wall_s / fig6_full_mips.\n");
            return 0;
        } else {
            fatal("perf_baseline: unknown flag '%s' (try --help)",
                  a.c_str());
        }
    }

    constexpr std::uint64_t kWaves = 500;
    constexpr std::uint64_t kPerWave = 2'000;
    constexpr std::uint64_t kChain = 1'000'000;
    constexpr std::uint64_t kWalks = 300'000;

    std::fprintf(stderr, "perf_baseline [%s]: reps=%u instr=%llu\n",
                 label.c_str(), reps,
                 static_cast<unsigned long long>(instr));

    const double fig6_s = bench_fig6_smoke(instr, seed, reps);
    std::fprintf(stderr, "  fig6_smoke_wall_s   %.3f\n", fig6_s);
    const double wl_s = bench_workload_smoke(instr, seed, reps);
    std::fprintf(stderr, "  workload_smoke_wall_s %.3f\n", wl_s);
    const double rw_s = bench_recovery_window_smoke(instr, seed, reps);
    std::fprintf(stderr, "  recovery_window_wall_s %.3f\n", rw_s);
    const double gen_mops = bench_workload_gen(2'000'000, reps);
    std::fprintf(stderr, "  workload_gen_mops   %.2f\n", gen_mops);
    const double burst = bench_event_burst(kWaves, kPerWave, reps);
    std::fprintf(stderr, "  event_burst_mops    %.2f\n", burst);
    const double chain = bench_event_chain(kChain, reps);
    std::fprintf(stderr, "  event_chain_mops    %.2f\n", chain);
    const double walks = bench_walker_update(kWalks, reps);
    std::fprintf(stderr, "  walker_update_mops  %.2f\n", walks);
    const double shard1_s = bench_shard_run(shard_instr, seed, 1, reps);
    const double shardN_s =
        bench_shard_run(shard_instr, seed, shard_count, reps);
    const double shard_speedup = shardN_s > 0.0 ? shard1_s / shardN_s : 0.0;
    std::fprintf(stderr,
                 "  shard_serial_wall_s %.3f\n"
                 "  shard_wall_s        %.3f (%ux, speedup %.2f)\n",
                 shard1_s, shardN_s, shard_count, shard_speedup);
    double fig6_full_s = 0.0;
    double fig6_full_mips = 0.0;
    if (fig6_full) {
        fig6_full_s = bench_fig6_full(fig6_full_instr, seed);
        fig6_full_mips = static_cast<double>(fig6_full_instr) /
                         fig6_full_s / 1e6;
        std::fprintf(stderr, "  fig6_full_wall_s    %.3f (%.2f Minstr/s)\n",
                     fig6_full_s, fig6_full_mips);
    }

    if (json_path.empty())
        return 0;

    std::ofstream out(json_path);
    fatal_if(!out, "perf_baseline: cannot open --json path '%s'",
             json_path.c_str());
    JsonWriter w(out);
    w.beginObject();
    w.field("schema", "secpb.perf_baseline");
    w.field("version", 1);
    w.field("label", label);
    w.key("config");
    w.beginObject();
    w.field("reps", reps);
    w.field("instr", instr);
    w.field("seed", seed);
    w.field("event_burst_events", kWaves * kPerWave);
    w.field("event_chain_length", kChain);
    w.field("walker_updates", kWalks);
    w.field("shard_instr", shard_instr);
    w.field("shards", shard_count);
    if (fig6_full)
        w.field("fig6_full_instr", fig6_full_instr);
    w.endObject();
    w.key("metrics");
    w.beginObject();
    w.field("fig6_smoke_wall_s", fig6_s);
    w.field("workload_smoke_wall_s", wl_s);
    w.field("recovery_window_wall_s", rw_s);
    w.field("workload_gen_mops", gen_mops);
    w.field("event_burst_mops", burst);
    w.field("event_chain_mops", chain);
    w.field("walker_update_mops", walks);
    w.field("shard_serial_wall_s", shard1_s);
    w.field("shard_wall_s", shardN_s);
    w.field("shard_speedup", shard_speedup);
    if (fig6_full) {
        w.field("fig6_full_wall_s", fig6_full_s);
        w.field("fig6_full_mips", fig6_full_mips);
    }
    w.endObject();
    w.endObject();
    out << "\n";
    std::fprintf(stderr, "perf_baseline: wrote %s\n", json_path.c_str());
    return 0;
}
