/**
 * @file
 * Shared harness for the table/figure reproduction benches.
 *
 * Every evaluation binary declares its slice of the paper's evaluation
 * cross-product as a vector of ExperimentPoints, hands it to the
 * experiment engine (src/exp/), and prints paper-style rows from the
 * aggregated results. The engine runs points concurrently under `--jobs`
 * with per-point deterministic seeding, so `--jobs 1` and `--jobs N`
 * produce bit-identical results, and `--json` serializes every point plus
 * derived rows to the schema-versioned sweep document.
 *
 * Common CLI (BenchCli::parse; env fallbacks in parentheses):
 *   --jobs N            concurrent points        (SECPB_BENCH_JOBS, 1)
 *   --json PATH         write sweep JSON         (SECPB_BENCH_JSON)
 *   --scheme A[,B...]   keep matching schemes    (repeatable; canonical
 *                       lowercase names, legacy spellings accepted
 *                       case-insensitively, triad takes "triad:levels=N")
 *   --profile A[,B...]  keep matching profiles   (repeatable)
 *   --instr N           instructions per point   (SECPB_BENCH_INSTR, 300k;
 *                       the paper simulates 250M on gem5 -- the synthetic
 *                       workloads reach steady state within tens of
 *                       thousands)
 *   --seed N            base workload seed       (SECPB_BENCH_SEED, 7)
 *   --no-progress       suppress the stderr progress/ETA line
 *   --trace-out PATH    write a Perfetto trace of the first point
 *   --sample-every N    epoch-sample every point every N ticks
 *   --stats             embed the full stats dump in each JSON point
 *   --debug FLAG[,..]   enable DPRINTF debug flags (see --help)
 *   --battery-tech T    capacitor physics preset   (SECPB_BENCH_BATTERY_TECH,
 *                       ideal; ideal|supercap|li-thin)
 *   --battery-derate F  end-of-life capacity derate in (0,1]
 *                       (SECPB_BENCH_BATTERY_DERATE, 1.0)
 *   --power-schedule S  intermittent-power schedule "k=v,k=v" (see
 *                       PowerScheduleSpec::parse; SECPB_BENCH_POWER_SCHEDULE)
 *   --workload SPEC     registry workload "name:k=v,..." for every
 *                       default-runner point     (SECPB_BENCH_WORKLOAD)
 *   --trace-in PATH     replay a recorded trace (sugar for
 *                       --workload replay:file=PATH; SECPB_BENCH_TRACE_IN)
 *   --trace-record PATH record the first point's op stream to a trace
 *                       file                (SECPB_BENCH_TRACE_RECORD)
 *   --cores N           simulated cores for spec-driven runs (default 1)
 *   --shards N          host worker threads for multi-core runs; results
 *                       are bit-identical for every value
 *
 * The simulation-level flags (everything except --jobs/--json/--scheme/
 * --profile/--no-progress/--trace-out/--sample-every/--stats/--debug)
 * are parsed by SimulationSpec::fromCli -- the single parse point shared
 * with every non-bench driver; the SECPB_BENCH_* env fallbacks still
 * work there but are deprecated (one-time stderr note).
 *
 * bench/micro_ops.cc is the one exception: google-benchmark owns its
 * argv, so these flags do not apply there (its tracing macros stay
 * compiled in but disabled -- that is what it measures).
 */

#ifndef SECPB_BENCH_BENCH_COMMON_HH
#define SECPB_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "core/system.hh"
#include "energy/capacitor.hh"
#include "exp/report.hh"
#include "fault/power.hh"
#include "exp/sweep.hh"
#include "obs/trace.hh"
#include "sim/debug.hh"
#include "workload/registry.hh"
#include "workload/synthetic.hh"

namespace secpb::bench
{

/**
 * Strict env-var parse: the whole value must be one non-negative decimal
 * integer that fits in 64 bits; anything else (trailing garbage, sign,
 * overflow) is a fatal misconfiguration, never a silent truncation.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    fatal_if(v[0] == '-' || v[0] == '+',
             "%s='%s': must be a plain non-negative decimal integer",
             name, v);
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    fatal_if(end == v || *end != '\0',
             "%s='%s': not a decimal integer (trailing garbage at '%s')",
             name, v, end);
    fatal_if(errno == ERANGE, "%s='%s': out of range for a 64-bit value",
             name, v);
    return parsed;
}

/**
 * Strict env-var parse for a floating-point knob: the whole value must be
 * one finite decimal number; anything else is a fatal misconfiguration.
 */
inline double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    fatal_if(end == v || *end != '\0',
             "%s='%s': not a decimal number (trailing garbage at '%s')",
             name, v, end);
    fatal_if(errno == ERANGE || !std::isfinite(parsed),
             "%s='%s': out of range for a finite double", name, v);
    return parsed;
}

inline std::uint64_t
benchInstructions()
{
    return envU64("SECPB_BENCH_INSTR", 300'000);
}

inline std::uint64_t
benchSeed()
{
    return envU64("SECPB_BENCH_SEED", 7);
}

/** Parsed shared command line of one bench binary. */
struct BenchCli
{
    std::string bench;               ///< Binary name ("fig6").
    unsigned jobs = 1;
    std::string jsonPath;            ///< Empty = no JSON output.
    std::vector<Scheme> schemes;     ///< Empty = no scheme filter.
    /** Scheme knobs from parameterized --scheme specs (triad:levels=N);
     *  defaults elsewhere. Benches thread this into their points. */
    SchemeParams schemeParams;
    std::vector<std::string> profiles;  ///< Empty = no profile filter.
    bool progress = true;
    std::string traceOut;            ///< Empty = no trace capture.
    Tick sampleEvery = 0;            ///< 0 = no epoch sampling.
    bool captureStats = false;       ///< Embed stats dump per point.

    /**
     * The simulation-level knobs, parsed by SimulationSpec::fromCli
     * (the single parse point for --instr/--seed/--workload/--trace-in/
     * --trace-record/--battery-tech/--battery-derate/--power-schedule/
     * --cores/--shards and their deprecated SECPB_BENCH_* fallbacks).
     */
    SimulationSpec spec;

    /** @name Mirrors of `spec` fields (kept for bench-code brevity). */
    /** @{ */
    std::uint64_t instructions = 300'000;
    std::uint64_t seed = 7;
    std::string batteryTech = "ideal";  ///< Capacitor physics preset.
    double batteryDerate = 1.0;      ///< End-of-life capacity derate.
    std::string powerSchedule;       ///< Empty = no intermittent power.
    std::string workload;            ///< Registry selector; "" = profiles.
    std::string traceRecord;         ///< Record first point; "" = off.
    /** @} */

    /** The parsed physics preset with the derate applied. */
    CapacitorParams batteryParams() const { return spec.batteryParams(); }

    /** Parse argv; prints usage and exits on unknown flags. */
    static BenchCli
    parse(int argc, char **argv, const char *bench_name)
    {
        BenchCli cli;
        cli.bench = bench_name;
        // The spec flags (and their env fallbacks) are owned by the
        // facade's parser; it consumes them from argv, leaving only the
        // sweep-level flags below for this loop.
        cli.spec = SimulationSpec::fromCli(argc, argv, bench_name);
        cli.instructions = cli.spec.instructions;
        cli.seed = cli.spec.seed;
        cli.batteryTech = cli.spec.batteryTech;
        cli.batteryDerate = cli.spec.batteryDerate;
        cli.powerSchedule = cli.spec.powerSchedule;
        cli.workload = cli.spec.workload;
        cli.traceRecord = cli.spec.traceRecord;

        cli.jobs = static_cast<unsigned>(
            std::max<std::uint64_t>(1, envU64("SECPB_BENCH_JOBS", 1)));
        if (const char *p = std::getenv("SECPB_BENCH_JSON"))
            cli.jsonPath = p;

        auto need = [&](int i) -> const char * {
            fatal_if(i + 1 >= argc, "%s: flag %s needs a value",
                     bench_name, argv[i]);
            return argv[i + 1];
        };
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--jobs") {
                cli.jobs = static_cast<unsigned>(
                    std::max(1L, std::atol(need(i))));
                ++i;
            } else if (a == "--json") {
                cli.jsonPath = need(i);
                ++i;
            } else if (a == "--scheme") {
                // Canonical names are lowercase; legacy spellings parse
                // case-insensitively, and an unknown name dies listing
                // every valid one. "triad:levels=N" sets the depth knob.
                for (const std::string &name : splitCommas(need(i)))
                    cli.schemes.push_back(
                        parseSchemeSpec(name, &cli.schemeParams));
                ++i;
            } else if (a == "--profile") {
                for (const std::string &name : splitCommas(need(i)))
                    cli.profiles.push_back(name);
                ++i;
            } else if (a == "--no-progress") {
                cli.progress = false;
            } else if (a == "--trace-out") {
                cli.traceOut = need(i);
                ++i;
            } else if (a == "--sample-every") {
                cli.sampleEvery = std::strtoull(need(i), nullptr, 10);
                ++i;
            } else if (a == "--stats") {
                cli.captureStats = true;
            } else if (a == "--debug") {
                for (const std::string &flag : splitCommas(need(i))) {
                    const auto &known = debug::knownFlags();
                    fatal_if(std::find(known.begin(), known.end(), flag) ==
                                 known.end(),
                             "%s: unknown --debug flag '%s' (known: %s)",
                             bench_name, flag.c_str(),
                             joinCommas(known).c_str());
                    debug::enable(flag);
                }
                ++i;
            } else if (a == "--help" || a == "-h") {
                std::printf(
                    "usage: %s [--jobs N] [--json PATH] [--scheme A[,B]]\n"
                    "          [--profile A[,B]] [--instr N] [--seed N]\n"
                    "          [--no-progress] [--trace-out PATH]\n"
                    "          [--sample-every N] [--stats]\n"
                    "          [--battery-tech ideal|supercap|li-thin]\n"
                    "          [--battery-derate F] [--power-schedule S]\n"
                    "          [--workload SPEC] [--trace-in PATH]\n"
                    "          [--trace-record PATH] [--cores N]\n"
                    "          [--shards N] [--debug FLAG[,FLAG]]\n"
                    "  --trace-out PATH    Perfetto trace_event JSON of the"
                    " sweep's\n"
                    "                      first point (load in"
                    " ui.perfetto.dev)\n"
                    "  --sample-every N    epoch-sample built-in channels"
                    " every N\n"
                    "                      ticks into each point's JSON\n"
                    "  --stats             embed the full stats dump per"
                    " point\n"
                    "%s"
                    "                      (workload names: %s)\n"
                    "  --debug FLAGS       enable DPRINTF flags: %s\n",
                    bench_name, SimulationSpec::cliHelp(),
                    joinCommas(registeredWorkloadNames()).c_str(),
                    joinCommas(debug::knownFlags()).c_str());
                std::exit(0);
            } else {
                fatal("%s: unknown flag '%s' (try --help)", bench_name,
                      a.c_str());
            }
        }
        // Validate profile filters eagerly: typos fail before a sweep.
        // (The spec-level knobs were already validated by fromCli.)
        for (const std::string &p : cli.profiles)
            profileByName(p);
        return cli;
    }

    /** True if @p s passes the scheme filter (empty filter = all). */
    bool
    wantScheme(Scheme s) const
    {
        return schemes.empty() ||
               std::find(schemes.begin(), schemes.end(), s) !=
                   schemes.end();
    }

    /** True if @p name passes the profile filter. */
    bool
    wantProfile(const std::string &name) const
    {
        return profiles.empty() ||
               std::find(profiles.begin(), profiles.end(), name) !=
                   profiles.end();
    }

    /** spec2006Profiles() restricted to the profile filter. */
    std::vector<BenchmarkProfile>
    profilesToRun() const
    {
        std::vector<BenchmarkProfile> out;
        for (const BenchmarkProfile &p : spec2006Profiles())
            if (wantProfile(p.name))
                out.push_back(p);
        return out;
    }

    static std::string
    joinCommas(const std::vector<std::string> &v)
    {
        std::string out;
        for (const std::string &s : v) {
            if (!out.empty())
                out += ",";
            out += s;
        }
        return out;
    }

    static std::vector<std::string>
    splitCommas(const std::string &s)
    {
        std::vector<std::string> out;
        std::size_t start = 0;
        while (start <= s.size()) {
            const std::size_t comma = s.find(',', start);
            const std::size_t end =
                comma == std::string::npos ? s.size() : comma;
            if (end > start)
                out.push_back(s.substr(start, end - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        return out;
    }
};

/**
 * One bench's sweep: collect points, run them through the engine, look
 * results up by index, record derived rows, write the JSON document.
 */
class Sweep
{
  public:
    explicit Sweep(const BenchCli &cli) : _cli(cli)
    {
        if (!_cli.traceOut.empty())
            _tracer = std::make_unique<obs::Tracer>();
    }

    /** Queue @p point; returns its index for post-run lookup. */
    std::size_t
    add(ExperimentPoint point)
    {
        _points.push_back(std::move(point));
        return _points.size() - 1;
    }

    /** Execute every queued point (respecting --jobs). */
    void
    run()
    {
        // Apply the shared observability knobs here, so no bench binary
        // needs per-flag plumbing: --sample-every / --stats reach every
        // point; --trace-out records the first point (one timeline per
        // trace file keeps the Perfetto track layout readable).
        for (ExperimentPoint &p : _points) {
            if (_cli.sampleEvery > 0 && p.samplePeriod == 0)
                p.samplePeriod = _cli.sampleEvery;
            if (_cli.captureStats)
                p.captureStats = true;
            // --workload redirects every default-runner point to the
            // registry generator; custom runners opt in themselves
            // (fault_soak does), and points that pinned their own
            // workload keep it.
            if (!_cli.workload.empty() && !p.custom && p.workload.empty())
                p.workload = _cli.workload;
        }
        if (_tracer && !_points.empty())
            _points.front().tracer = _tracer.get();
        if (!_cli.traceRecord.empty()) {
            // Like --trace-out: record exactly the first point (one
            // trace file holds one op stream).
            for (ExperimentPoint &p : _points) {
                if (p.custom)
                    continue;
                p.traceRecord = _cli.traceRecord;
                break;
            }
        }

        SweepOptions opts;
        opts.jobs = _cli.jobs;
        opts.progress = _cli.progress;
        opts.name = _cli.bench;
        const auto start = std::chrono::steady_clock::now();
        _results = SweepRunner(opts).run(_points);
        _hostSeconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
    }

    const ExperimentResult &
    at(std::size_t index) const
    {
        return _results.at(index);
    }

    const std::vector<ExperimentPoint> &points() const { return _points; }
    double hostSeconds() const { return _hostSeconds; }

    /** Record a derived aggregate row (also serialized to JSON). */
    void
    derive(std::string name, std::string group, double value)
    {
        _derived.push_back({std::move(name), std::move(group), value});
    }

    /** Build the full report document (JSON serialization input). */
    SweepReport
    report() const
    {
        SweepReport r;
        r.bench = _cli.bench;
        r.jobs = _cli.jobs;
        r.hostSeconds = _hostSeconds;
        r.points = _points;
        r.results = _results;
        r.derived = _derived;
        return r;
    }

    /** Write the Perfetto trace if --trace-out was given. */
    void
    writeTrace() const
    {
        if (!_tracer)
            return;
        std::ofstream out(_cli.traceOut);
        fatal_if(!out, "%s: cannot open --trace-out path '%s'",
                 _cli.bench.c_str(), _cli.traceOut.c_str());
        _tracer->writeJson(out);
        std::fprintf(stderr, "%s: wrote %s (%zu events, %llu dropped)\n",
                     _cli.bench.c_str(), _cli.traceOut.c_str(),
                     _tracer->numEvents(),
                     static_cast<unsigned long long>(_tracer->numDropped()));
    }

    /** Write the JSON document if --json was given (and the trace if
     *  --trace-out was; benches call writeJson() unconditionally). */
    void
    writeJson() const
    {
        writeTrace();
        if (_cli.jsonPath.empty())
            return;
        std::ofstream out(_cli.jsonPath);
        fatal_if(!out, "%s: cannot open --json path '%s'",
                 _cli.bench.c_str(), _cli.jsonPath.c_str());
        writeSweepJson(out, report());
        std::fprintf(stderr, "%s: wrote %s\n", _cli.bench.c_str(),
                     _cli.jsonPath.c_str());
    }

  private:
    BenchCli _cli;
    std::unique_ptr<obs::Tracer> _tracer;
    std::vector<ExperimentPoint> _points;
    std::vector<ExperimentResult> _results;
    std::vector<DerivedRow> _derived;
    double _hostSeconds = 0.0;
};

/** Run one (scheme, profile) point on a fresh system (direct API; the
 *  sweeps go through ExperimentPoint instead). */
inline SimulationResult
runOne(Scheme scheme, const BenchmarkProfile &profile,
       std::uint64_t instructions, unsigned secpb_entries = 32,
       BmfMode bmf = BmfMode::None, std::uint64_t seed = benchSeed())
{
    SimulationSpec spec;
    spec.base = SecPbSystem::configFor(scheme, profile);
    spec.base.secpb.numEntries = secpb_entries;
    spec.base.walker.bmfMode = bmf;
    spec.instructions = instructions;
    spec.seed = seed;
    Simulation sim(spec);
    SyntheticGenerator gen(profile, instructions, seed);
    return sim.run(gen);
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

} // namespace secpb::bench

#endif // SECPB_BENCH_BENCH_COMMON_HH
