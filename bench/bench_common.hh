/**
 * @file
 * Shared harness code for the table/figure reproduction benches.
 *
 * Every evaluation binary runs (scheme x benchmark) points through a fresh
 * SecPbSystem and prints paper-style rows. Trace length is controlled by
 * SECPB_BENCH_INSTR (default 300k instructions -- the paper simulates 250M
 * on gem5; the synthetic workloads reach steady state within tens of
 * thousands), and the seed by SECPB_BENCH_SEED.
 */

#ifndef SECPB_BENCH_BENCH_COMMON_HH
#define SECPB_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/system.hh"
#include "workload/synthetic.hh"

namespace secpb::bench
{

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

inline std::uint64_t
benchInstructions()
{
    return envU64("SECPB_BENCH_INSTR", 300'000);
}

inline std::uint64_t
benchSeed()
{
    return envU64("SECPB_BENCH_SEED", 7);
}

/** Run one (scheme, profile) point on a fresh system. */
inline SimulationResult
runOne(Scheme scheme, const BenchmarkProfile &profile,
       std::uint64_t instructions, unsigned secpb_entries = 32,
       BmfMode bmf = BmfMode::None, std::uint64_t seed = benchSeed())
{
    SystemConfig cfg = SecPbSystem::configFor(scheme, profile);
    cfg.secpb.numEntries = secpb_entries;
    cfg.walker.bmfMode = bmf;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profile, instructions, seed);
    return sys.run(gen);
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

} // namespace secpb::bench

#endif // SECPB_BENCH_BENCH_COMMON_HH
