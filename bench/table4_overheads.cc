/**
 * @file
 * Reproduces Table IV: average performance overhead of each SecPB scheme
 * with a 32-entry SecPB, relative to the insecure BBB baseline, across the
 * 18 SPEC2006-like workloads.
 *
 * The paper reports a single average slowdown percentage per scheme; we
 * print both the geometric and arithmetic means of the per-benchmark
 * normalized execution times (the geometric mean is the standard summary
 * for normalized times and is the one that reproduces the paper's bands)
 * next to the paper's reported numbers.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "table4");
    const std::uint64_t instr = cli.instructions;

    struct Row
    {
        Scheme scheme;
        double paperPct;  ///< Table IV "Slowdown(%)".
    };
    const Row all_rows[] = {
        {Scheme::Cobcm, 1.3},  {Scheme::Obcm, 1.5}, {Scheme::Bcm, 14.8},
        {Scheme::Cm, 71.3},    {Scheme::M, 73.8},   {Scheme::NoGap, 118.4},
    };
    std::vector<Row> rows;
    for (const Row &r : all_rows)
        if (cli.wantScheme(r.scheme))
            rows.push_back(r);
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s);
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    std::vector<std::size_t> base_idx;
    std::vector<std::vector<std::size_t>> cell_idx(rows.size());
    for (const BenchmarkProfile &p : profiles)
        base_idx.push_back(point(Scheme::Bbb, p.name));
    for (std::size_t ri = 0; ri < rows.size(); ++ri)
        for (const BenchmarkProfile &p : profiles)
            cell_idx[ri].push_back(point(rows[ri].scheme, p.name));

    sweep.run();

    std::printf("Table IV: performance overheads, 32-entry SecPB "
                "(%llu instructions/run, %zu benchmarks)\n\n",
                static_cast<unsigned long long>(instr), profiles.size());
    std::printf("%-8s %18s %18s %14s\n", "Model", "geomean slowdown",
                "arith slowdown", "paper");
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
        std::vector<double> ratios;
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            const double base =
                static_cast<double>(sweep.at(base_idx[pi]).sim.execTicks);
            ratios.push_back(sweep.at(cell_idx[ri][pi]).sim.execTicks /
                             base);
        }
        const double geo_pct = (geomean(ratios) - 1.0) * 100.0;
        const double arith_pct = (mean(ratios) - 1.0) * 100.0;
        sweep.derive("geomean_slowdown_pct", schemeName(rows[ri].scheme),
                     geo_pct);
        sweep.derive("arith_slowdown_pct", schemeName(rows[ri].scheme),
                     arith_pct);
        std::printf("%-8s %17.1f%% %17.1f%% %13.1f%%\n",
                    schemeName(rows[ri].scheme), geo_pct, arith_pct,
                    rows[ri].paperPct);
    }

    sweep.writeJson();
    return 0;
}
