/**
 * @file
 * Reproduces Table IV: average performance overhead of each SecPB scheme
 * with a 32-entry SecPB, relative to the insecure BBB baseline, across the
 * 18 SPEC2006-like workloads.
 *
 * The paper reports a single average slowdown percentage per scheme; we
 * print both the geometric and arithmetic means of the per-benchmark
 * normalized execution times (the geometric mean is the standard summary
 * for normalized times and is the one that reproduces the paper's bands)
 * next to the paper's reported numbers.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();

    struct Row
    {
        Scheme scheme;
        double paperPct;  ///< Table IV "Slowdown(%)".
    };
    const Row rows[] = {
        {Scheme::Cobcm, 1.3},  {Scheme::Obcm, 1.5}, {Scheme::Bcm, 14.8},
        {Scheme::Cm, 71.3},    {Scheme::M, 73.8},   {Scheme::NoGap, 118.4},
    };

    std::printf("Table IV: performance overheads, 32-entry SecPB "
                "(%llu instructions/run, %zu benchmarks)\n\n",
                static_cast<unsigned long long>(instr),
                spec2006Profiles().size());

    // Baselines first.
    std::vector<double> base_ticks;
    for (const BenchmarkProfile &p : spec2006Profiles())
        base_ticks.push_back(static_cast<double>(
            runOne(Scheme::Bbb, p, instr).execTicks));

    std::printf("%-8s %18s %18s %14s\n", "Model", "geomean slowdown",
                "arith slowdown", "paper");
    for (const Row &row : rows) {
        std::vector<double> ratios;
        unsigned i = 0;
        for (const BenchmarkProfile &p : spec2006Profiles()) {
            SimulationResult r = runOne(row.scheme, p, instr);
            ratios.push_back(r.execTicks / base_ticks[i]);
            ++i;
        }
        std::printf("%-8s %17.1f%% %17.1f%% %13.1f%%\n",
                    schemeName(row.scheme), (geomean(ratios) - 1.0) * 100.0,
                    (mean(ratios) - 1.0) * 100.0, row.paperPct);
        std::fflush(stdout);
    }
    return 0;
}
