/**
 * @file
 * Reproduces Table IV: average performance overhead of each SecPB scheme
 * with a 32-entry SecPB, relative to the insecure BBB baseline, across the
 * 18 SPEC2006-like workloads.
 *
 * The paper reports a single average slowdown percentage per scheme; we
 * print both the geometric and arithmetic means of the per-benchmark
 * normalized execution times (the geometric mean is the standard summary
 * for normalized times and is the one that reproduces the paper's bands)
 * next to the paper's reported numbers.
 *
 * A second point set re-runs every cell on an undersized battery with
 * the adaptive drain policy on, and reports the degraded-mode cost the
 * paper's table leaves implicit: mdc_shed_writes -- metadata-cache
 * writebacks forced early to keep the crash obligation affordable --
 * as a per-kilo-instruction overhead column (plus the allocations the
 * battery gate stalled). The shedding is extra PCM write traffic, i.e.
 * a write-through-shaped endurance/bandwidth overhead that only shows
 * up when the cell is smaller than the worst case.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "table4");
    const std::uint64_t instr = cli.instructions;

    struct Row
    {
        Scheme scheme;
        double paperPct;  ///< Table IV "Slowdown(%)".
    };
    const Row all_rows[] = {
        {Scheme::Cobcm, 1.3},  {Scheme::Obcm, 1.5}, {Scheme::Bcm, 14.8},
        {Scheme::Cm, 71.3},    {Scheme::M, 73.8},   {Scheme::NoGap, 118.4},
    };
    std::vector<Row> rows;
    for (const Row &r : all_rows)
        if (cli.wantScheme(r.scheme))
            rows.push_back(r);
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s);
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    std::vector<std::size_t> base_idx;
    std::vector<std::vector<std::size_t>> cell_idx(rows.size());
    for (const BenchmarkProfile &p : profiles)
        base_idx.push_back(point(Scheme::Bbb, p.name));
    for (std::size_t ri = 0; ri < rows.size(); ++ri)
        for (const BenchmarkProfile &p : profiles)
            cell_idx[ri].push_back(point(rows[ri].scheme, p.name));

    // Degraded-mode cells: same (scheme, profile) grid on a battery
    // provisioned for only a fraction of the worst case, adaptive drain
    // policy on. The policy sheds dirty metadata early to keep the
    // crash prediction affordable -- that extra PCM write traffic is
    // the overhead this table surfaces.
    const CapacitorParams cap = cli.batteryParams();
    auto shed_point = [&](Scheme s, const std::string &profile) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s) + "/shed";
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        p.tag("battery", "provision=0.6,adaptive=on");
        p.custom = [cap](const ExperimentPoint &pt) {
            const BenchmarkProfile &prof = profileByName(pt.profile);
            SimulationSpec spec;
            spec.base = SecPbSystem::configFor(pt.scheme, prof);
            spec.base.secpb.numEntries = pt.secpbEntries;
            spec.base.battery.enabled = true;
            spec.base.battery.cap = cap;
            spec.base.battery.provisionFraction = 0.6;
            spec.base.battery.adaptive.enabled = true;
            spec.instructions = pt.instructions;
            spec.seed = pt.seed;
            Simulation sim(spec);
            SecPbSystem &sys = sim.system();
            SyntheticGenerator gen(prof, pt.instructions, pt.seed);
            ExperimentResult res;
            res.sim = sim.run(gen);
            res.extra = {
                {"mdc_shed_writes",
                 sys.secpb().statMdcShedWrites.value()},
                {"battery_stalls",
                 sys.secpb().statBatteryStalls.value()},
            };
            return res;
        };
        return sweep.add(std::move(p));
    };
    std::vector<std::vector<std::size_t>> shed_idx(rows.size());
    for (std::size_t ri = 0; ri < rows.size(); ++ri)
        for (const BenchmarkProfile &p : profiles)
            shed_idx[ri].push_back(shed_point(rows[ri].scheme, p.name));

    sweep.run();

    std::printf("Table IV: performance overheads, 32-entry SecPB "
                "(%llu instructions/run, %zu benchmarks)\n\n",
                static_cast<unsigned long long>(instr), profiles.size());
    std::printf("%-8s %18s %18s %14s %12s %12s\n", "Model",
                "geomean slowdown", "arith slowdown", "paper",
                "shed wr/Ki", "gate stalls");
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
        std::vector<double> ratios;
        double shed = 0.0, stalls = 0.0;
        for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
            const double base =
                static_cast<double>(sweep.at(base_idx[pi]).sim.execTicks);
            ratios.push_back(sweep.at(cell_idx[ri][pi]).sim.execTicks /
                             base);
            shed += sweep.at(shed_idx[ri][pi])
                        .extraValue("mdc_shed_writes");
            stalls += sweep.at(shed_idx[ri][pi])
                          .extraValue("battery_stalls");
        }
        const double geo_pct = (geomean(ratios) - 1.0) * 100.0;
        const double arith_pct = (mean(ratios) - 1.0) * 100.0;
        // Shed writebacks per kilo-instruction, averaged over profiles:
        // directly comparable to PPTI (each shed is one extra PCM-bound
        // block write the eager schemes would have paid up front).
        const double shed_per_ki =
            shed / (static_cast<double>(instr) / 1000.0 *
                    static_cast<double>(profiles.size()));
        sweep.derive("geomean_slowdown_pct", schemeName(rows[ri].scheme),
                     geo_pct);
        sweep.derive("arith_slowdown_pct", schemeName(rows[ri].scheme),
                     arith_pct);
        sweep.derive("mdc_shed_writes_per_ki",
                     schemeName(rows[ri].scheme), shed_per_ki);
        sweep.derive("battery_gate_stalls", schemeName(rows[ri].scheme),
                     stalls);
        std::printf("%-8s %17.1f%% %17.1f%% %13.1f%% %12.2f %12.0f\n",
                    schemeName(rows[ri].scheme), geo_pct, arith_pct,
                    rows[ri].paperPct, shed_per_ki, stalls);
    }

    sweep.writeJson();
    return 0;
}
