/**
 * @file
 * Recovery-window study (supports Section III-B's blocking/warning
 * observer policies; not a paper figure).
 *
 * After a crash the observer must wait for the battery to close the
 * draining + sec-sync gaps. This bench crashes each scheme mid-run on a
 * write-heavy workload and prints the estimated observer-blocked window
 * and the battery energy actually spent -- the "cost of laziness" at
 * recovery time, complementing Table V's provisioning cost. Each scheme
 * is a custom experiment point (crash mid-run instead of run-to-end).
 *
 * The crash table covers the full scheme zoo (the paper's six plus
 * secpm/triad/eadr/stream). A second section sweeps Triad-NVM's
 * `triad:levels=N` knob for N=1..4 against the cobcm/secpm/eadr
 * endpoints, pairing each candidate's crash window with its run-to-end
 * execution overhead over the insecure bbb baseline: the
 * recovery-time-vs-runtime-overhead frontier. Derived rows
 * (frontier_window_ns, frontier_overhead_pct, frontier_rebuild_nodes)
 * serialize the frontier into the JSON document.
 */

#include "bench_common.hh"
#include "workload/synthetic.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

/** One frontier candidate: a scheme plus its knobs. */
struct FrontierSpec
{
    Scheme scheme;
    SchemeParams params;

    std::string label() const { return schemeSpecName(scheme, params); }
};

/** The crash@quarter custom runner shared by both sections. */
ExperimentPoint
crashPoint(Scheme s, const SchemeParams &params, const std::string &profile,
           std::uint64_t instr, std::uint64_t seed, const char *suffix)
{
    ExperimentPoint p;
    p.label = schemeSpecName(s, params) + suffix;
    p.scheme = s;
    p.schemeParams = params;
    p.profile = profile;
    p.instructions = instr;
    p.seed = seed;
    p.tag("crash_at", "instr/4");
    p.custom = [instr](const ExperimentPoint &pt) {
        const BenchmarkProfile &prof = profileByName(pt.profile);
        SimulationSpec spec;
        spec.base = SecPbSystem::configFor(pt.scheme, prof);
        spec.base.secpb.numEntries = pt.secpbEntries;
        spec.base.secpb.params = pt.schemeParams;
        spec.instructions = pt.instructions;
        spec.seed = pt.seed;
        Simulation sim(spec);
        SyntheticGenerator gen(prof, pt.instructions, pt.seed);
        sim.start(gen);
        sim.runUntil(instr / 4);
        const CrashReport cr = sim.crashNow();
        ExperimentResult r;
        r.sim = sim.result();
        r.extra = {
            {"entries_drained",
             static_cast<double>(cr.work.entriesDrained)},
            {"late_bmt_updates",
             static_cast<double>(cr.work.bmtRootUpdates)},
            {"bmt_nodes_rebuilt",
             static_cast<double>(cr.work.bmtNodesRebuilt)},
            {"cache_lines_flushed",
             static_cast<double>(cr.work.cacheLinesFlushed)},
            {"window_cycles", static_cast<double>(cr.drainLatency)},
            {"window_ns", cr.drainLatencyNs},
            {"energy_uj", cr.actualEnergyJ * 1e6},
            {"recovered", cr.recovered ? 1.0 : 0.0},
        };
        return r;
    };
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "recovery_window");
    const std::uint64_t instr = cli.instructions;
    const std::string profile = "gamess";

    // Crash table: the insecure baseline plus the whole secure zoo.
    std::vector<FrontierSpec> schemes;
    if (cli.wantScheme(Scheme::Bbb))
        schemes.push_back({Scheme::Bbb, cli.schemeParams});
    for (Scheme s : SchemeZoo)
        if (cli.wantScheme(s))
            schemes.push_back({s, cli.schemeParams});

    // Frontier candidates: the triad depth sweep between the endpoints.
    std::vector<FrontierSpec> frontier;
    for (Scheme s : {Scheme::Cobcm, Scheme::Secpm, Scheme::Eadr})
        if (cli.wantScheme(s))
            frontier.push_back({s, SchemeParams{}});
    if (cli.wantScheme(Scheme::Triad)) {
        for (unsigned lvl : {1u, 2u, 3u, 4u}) {
            SchemeParams params;
            params.triadLevels = lvl;
            frontier.push_back({Scheme::Triad, params});
        }
    }

    Sweep sweep(cli);
    std::vector<std::size_t> idx;
    for (const FrontierSpec &fs : schemes)
        idx.push_back(sweep.add(crashPoint(fs.scheme, fs.params, profile,
                                           instr, cli.seed,
                                           "/crash@quarter")));

    // Frontier: each candidate contributes a run-to-end point (runtime
    // overhead vs the insecure baseline) and a crash point (window).
    std::size_t baseline_idx = 0;
    std::vector<std::size_t> frontier_run, frontier_crash;
    if (!frontier.empty()) {
        ExperimentPoint base;
        base.label = "bbb/run-to-end";
        base.scheme = Scheme::Bbb;
        base.profile = profile;
        base.instructions = instr;
        base.seed = cli.seed;
        baseline_idx = sweep.add(std::move(base));
        for (const FrontierSpec &fs : frontier) {
            ExperimentPoint run;
            run.label = fs.label() + "/run-to-end";
            run.scheme = fs.scheme;
            run.schemeParams = fs.params;
            run.profile = profile;
            run.instructions = instr;
            run.seed = cli.seed;
            frontier_run.push_back(sweep.add(std::move(run)));
            frontier_crash.push_back(
                sweep.add(crashPoint(fs.scheme, fs.params, profile, instr,
                                     cli.seed, "/frontier-crash")));
        }
    }

    sweep.run();

    std::printf("Recovery window after a crash at mid-run (gamess, "
                "32-entry SecPB)\n\n");
    std::printf("%-14s %8s %9s %9s %8s %12s %12s %10s\n", "scheme",
                "entries", "late BMT", "rebuilt", "flushed", "window (cyc)",
                "window (ns)", "energy uJ");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const ExperimentResult &r = sweep.at(idx[i]);
        const std::string name = schemes[i].label();
        std::printf("%-14s %8.0f %9.0f %9.0f %8.0f %12.0f %12.1f %10.2f"
                    "   %s\n",
                    name.c_str(), r.extraValue("entries_drained"),
                    r.extraValue("late_bmt_updates"),
                    r.extraValue("bmt_nodes_rebuilt"),
                    r.extraValue("cache_lines_flushed"),
                    r.extraValue("window_cycles"), r.extraValue("window_ns"),
                    r.extraValue("energy_uj"),
                    r.extraValue("recovered") != 0.0 ? "recovered"
                                                     : "RECOVERY FAILED");
        sweep.derive("window_ns", name, r.extraValue("window_ns"));
    }
    std::printf("\nlazier schemes block the crash observer longer: the "
                "other face of the\nperformance/battery trade-off "
                "(Fig. 3's sec-sync gap).\n");

    if (!frontier.empty()) {
        const double base_ticks = static_cast<double>(
            sweep.at(baseline_idx).sim.execTicks);
        std::printf("\nRecovery-time vs runtime-overhead frontier "
                    "(overhead vs bbb run-to-end)\n\n");
        std::printf("%-14s %14s %14s %12s %10s\n", "scheme",
                    "overhead (%)", "window (ns)", "rebuilt", "energy uJ");
        for (std::size_t i = 0; i < frontier.size(); ++i) {
            const ExperimentResult &run = sweep.at(frontier_run[i]);
            const ExperimentResult &cr = sweep.at(frontier_crash[i]);
            const std::string name = frontier[i].label();
            const double overhead_pct =
                base_ticks > 0.0
                    ? (static_cast<double>(run.sim.execTicks) / base_ticks -
                       1.0) * 100.0
                    : 0.0;
            std::printf("%-14s %14.2f %14.1f %12.0f %10.2f   %s\n",
                        name.c_str(), overhead_pct,
                        cr.extraValue("window_ns"),
                        cr.extraValue("bmt_nodes_rebuilt"),
                        cr.extraValue("energy_uj"),
                        cr.extraValue("recovered") != 0.0
                            ? "recovered"
                            : "RECOVERY FAILED");
            sweep.derive("frontier_overhead_pct", name, overhead_pct);
            sweep.derive("frontier_window_ns", name,
                         cr.extraValue("window_ns"));
            sweep.derive("frontier_rebuild_nodes", name,
                         cr.extraValue("bmt_nodes_rebuilt"));
        }
        std::printf("\ntriad:levels trades the two axes: shallow "
                    "persistence (levels=1) is cheap at\nruntime but "
                    "rebuilds more of the tree at recovery; deeper "
                    "persistence converges\non the always-persisted "
                    "endpoints.\n");
    }

    sweep.writeJson();
    return 0;
}
