/**
 * @file
 * Recovery-window study (supports Section III-B's blocking/warning
 * observer policies; not a paper figure).
 *
 * After a crash the observer must wait for the battery to close the
 * draining + sec-sync gaps. This bench crashes each scheme mid-run on a
 * write-heavy workload and prints the estimated observer-blocked window
 * and the battery energy actually spent -- the "cost of laziness" at
 * recovery time, complementing Table V's provisioning cost.
 */

#include "bench_common.hh"
#include "workload/synthetic.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();
    const BenchmarkProfile &p = profileByName("gamess");

    std::printf("Recovery window after a crash at mid-run (gamess, "
                "32-entry SecPB)\n\n");
    std::printf("%-8s %10s %12s %14s %14s %12s\n", "scheme", "entries",
                "late BMT", "window (cyc)", "window (ns)", "energy uJ");

    const Scheme schemes[] = {Scheme::Bbb,  Scheme::Cobcm, Scheme::Obcm,
                              Scheme::Bcm,  Scheme::Cm,    Scheme::M,
                              Scheme::NoGap};
    for (Scheme s : schemes) {
        SystemConfig cfg = SecPbSystem::configFor(s, p);
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(p, instr, benchSeed());
        sys.start(gen);
        sys.runUntil(instr / 4);
        CrashReport cr = sys.crashNow();
        std::printf("%-8s %10llu %12llu %14llu %14.1f %12.2f   %s\n",
                    schemeName(s),
                    static_cast<unsigned long long>(cr.work.entriesDrained),
                    static_cast<unsigned long long>(cr.work.bmtRootUpdates),
                    static_cast<unsigned long long>(cr.drainLatency),
                    cr.drainLatencyNs, cr.actualEnergyJ * 1e6,
                    cr.recovered ? "recovered" : "RECOVERY FAILED");
    }
    std::printf("\nlazier schemes block the crash observer longer: the "
                "other face of the\nperformance/battery trade-off "
                "(Fig. 3's sec-sync gap).\n");
    return 0;
}
