/**
 * @file
 * Recovery-window study (supports Section III-B's blocking/warning
 * observer policies; not a paper figure).
 *
 * After a crash the observer must wait for the battery to close the
 * draining + sec-sync gaps. This bench crashes each scheme mid-run on a
 * write-heavy workload and prints the estimated observer-blocked window
 * and the battery energy actually spent -- the "cost of laziness" at
 * recovery time, complementing Table V's provisioning cost. Each scheme
 * is a custom experiment point (crash mid-run instead of run-to-end).
 */

#include "bench_common.hh"
#include "workload/synthetic.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "recovery_window");
    const std::uint64_t instr = cli.instructions;
    const std::string profile = "gamess";

    const Scheme all_schemes[] = {Scheme::Bbb,  Scheme::Cobcm, Scheme::Obcm,
                                  Scheme::Bcm,  Scheme::Cm,    Scheme::M,
                                  Scheme::NoGap};
    std::vector<Scheme> schemes;
    for (Scheme s : all_schemes)
        if (cli.wantScheme(s))
            schemes.push_back(s);

    Sweep sweep(cli);
    std::vector<std::size_t> idx;
    for (Scheme s : schemes) {
        ExperimentPoint p;
        p.label = std::string(schemeName(s)) + "/crash@quarter";
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        p.tag("crash_at", "instr/4");
        p.custom = [instr](const ExperimentPoint &pt) {
            const BenchmarkProfile &prof = profileByName(pt.profile);
            SystemConfig cfg = SecPbSystem::configFor(pt.scheme, prof);
            cfg.secpb.numEntries = pt.secpbEntries;
            SecPbSystem sys(cfg);
            SyntheticGenerator gen(prof, pt.instructions, pt.seed);
            sys.start(gen);
            sys.runUntil(instr / 4);
            const CrashReport cr = sys.crashNow();
            ExperimentResult r;
            r.sim = sys.result();
            r.extra = {
                {"entries_drained",
                 static_cast<double>(cr.work.entriesDrained)},
                {"late_bmt_updates",
                 static_cast<double>(cr.work.bmtRootUpdates)},
                {"window_cycles", static_cast<double>(cr.drainLatency)},
                {"window_ns", cr.drainLatencyNs},
                {"energy_uj", cr.actualEnergyJ * 1e6},
                {"recovered", cr.recovered ? 1.0 : 0.0},
            };
            return r;
        };
        idx.push_back(sweep.add(std::move(p)));
    }

    sweep.run();

    std::printf("Recovery window after a crash at mid-run (gamess, "
                "32-entry SecPB)\n\n");
    std::printf("%-8s %10s %12s %14s %14s %12s\n", "scheme", "entries",
                "late BMT", "window (cyc)", "window (ns)", "energy uJ");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        const ExperimentResult &r = sweep.at(idx[i]);
        std::printf("%-8s %10.0f %12.0f %14.0f %14.1f %12.2f   %s\n",
                    schemeName(schemes[i]), r.extraValue("entries_drained"),
                    r.extraValue("late_bmt_updates"),
                    r.extraValue("window_cycles"), r.extraValue("window_ns"),
                    r.extraValue("energy_uj"),
                    r.extraValue("recovered") != 0.0 ? "recovered"
                                                     : "RECOVERY FAILED");
        sweep.derive("window_ns", schemeName(schemes[i]),
                     r.extraValue("window_ns"));
    }
    std::printf("\nlazier schemes block the crash observer longer: the "
                "other face of the\nperformance/battery trade-off "
                "(Fig. 3's sec-sync gap).\n");

    sweep.writeJson();
    return 0;
}
