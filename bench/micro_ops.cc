/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot primitives:
 * hashing, pad generation, counter pack/unpack, BMT updates and
 * verification, tag-array operations, and the event queue. These bound
 * the simulator's own throughput (host-side), which is what determines
 * how many simulated instructions per second the table/figure harnesses
 * can sustain.
 *
 * This binary stays on google-benchmark (its timing loop is the right
 * tool for host-side microbenchmarks), but it honors the shared bench
 * CLI's `--json PATH` (and SECPB_BENCH_JSON) by mapping it to
 * --benchmark_out=PATH --benchmark_out_format=json, so every binary in
 * bench/ takes the same flag for machine-readable results.
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "crypto/cipher.hh"
#include "mem/set_assoc.hh"
#include "metadata/bmt.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace secpb;

namespace
{

void
BM_HashBlock(benchmark::State &state)
{
    BlockData b{};
    std::uint64_t i = 0;
    for (auto _ : state) {
        setBlockWord(b, 0, ++i);
        benchmark::DoNotOptimize(hashBlock(b, 0x1234));
    }
}
BENCHMARK(BM_HashBlock);

void
BM_GeneratePad(benchmark::State &state)
{
    SecurityKeys keys;
    BlockCounter ctr{1, 2};
    Addr addr = 0;
    for (auto _ : state) {
        addr += BlockSize;
        benchmark::DoNotOptimize(generatePad(keys, addr, ctr));
    }
}
BENCHMARK(BM_GeneratePad);

void
BM_CounterPackUnpack(benchmark::State &state)
{
    CounterBlock cb;
    for (unsigned i = 0; i < BlocksPerPage; ++i)
        cb.minors[i] = static_cast<std::uint8_t>(i * 2 + 1);
    cb.major = 0x123456789abcULL;
    for (auto _ : state) {
        BlockData raw = cb.pack();
        benchmark::DoNotOptimize(CounterBlock::unpack(raw));
    }
}
BENCHMARK(BM_CounterPackUnpack);

void
BM_BmtUpdateLeaf(benchmark::State &state)
{
    BonsaiMerkleTree tree(1u << 21);
    Rng rng(99);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.updateLeaf(rng.below(1u << 21), rng.next()));
    }
}
BENCHMARK(BM_BmtUpdateLeaf);

void
BM_BmtVerifyLeaf(benchmark::State &state)
{
    BonsaiMerkleTree tree(1u << 21);
    Rng rng(99);
    Digest d = rng.next();
    tree.updateLeaf(1234, d);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.verifyLeaf(1234, d));
}
BENCHMARK(BM_BmtVerifyLeaf);

void
BM_SetAssocAccess(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{128 * 1024, 8, 64});
    Rng rng(7);
    for (Addr a = 0; a < 128 * 1024; a += 64)
        cache.insert(a);
    for (auto _ : state) {
        const Addr a = (rng.below(4096)) * 64;
        benchmark::DoNotOptimize(cache.access(a));
    }
}
BENCHMARK(BM_SetAssocAccess);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i * 3 % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

} // namespace

int
main(int argc, char **argv)
{
    // Translate the shared bench CLI's --json into google-benchmark's
    // output flags; pass everything else through untouched.
    std::string json_path;
    if (const char *env = std::getenv("SECPB_BENCH_JSON"))
        json_path = env;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else
            args.push_back(argv[i]);
    }
    std::string out_flag, fmt_flag;
    if (!json_path.empty()) {
        out_flag = "--benchmark_out=" + json_path;
        fmt_flag = "--benchmark_out_format=json";
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }

    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
