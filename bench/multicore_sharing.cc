/**
 * @file
 * Multi-core SecPB sharing study (Section IV-C(c); not a paper figure --
 * the paper describes the migration protocol but evaluates single-core).
 *
 * Four cores run a write workload whose stores hit a shared block pool
 * with probability `share` and a private region otherwise. As sharing
 * grows, entries ping-pong between SecPBs; migration keeps the
 * no-replication invariant while forwarding value-independent metadata,
 * and the cost shows up as extra acceptance latency.
 */

#include <memory>

#include "bench_common.hh"
#include "core/multicore.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

/** Private-region writer with probabilistic shared-pool stores. */
class SharingGenerator : public WorkloadGenerator
{
  public:
    SharingGenerator(std::uint64_t instructions, double share,
                     Addr private_base, std::uint64_t seed)
        : _budget(instructions), _share(share), _privateBase(private_base),
          _rng(seed)
    {}

    bool
    next(TraceOp &op) override
    {
        if (_emitted >= _budget)
            return false;
        // ~80 stores per kilo-instruction, rest plain instructions.
        if (_rng.chance(0.08)) {
            ++_emitted;
            op.kind = TraceOp::Kind::Store;
            const bool shared = _rng.chance(_share);
            const Addr base = shared ? 0x0 : _privateBase;
            // Same-size pools so locality is held constant and only
            // cross-core sharing varies.
            const std::uint64_t pool_blocks = 16;
            op.addr = base + blockAlign(_rng.below(pool_blocks) * BlockSize)
                      + 8 * _rng.below(8);
            op.value = _rng.next();
            return true;
        }
        std::uint32_t count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(16, _budget - _emitted));
        _emitted += count;
        op.kind = TraceOp::Kind::Instr;
        op.count = count;
        return true;
    }

  private:
    std::uint64_t _budget;
    std::uint64_t _emitted = 0;
    double _share;
    Addr _privateBase;
    Rng _rng;
};

} // namespace

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions() / 4;

    std::printf("Multi-core SecPB sharing sweep (4 cores, "
                "%llu instructions/core)\n",
                static_cast<unsigned long long>(instr));

    for (Scheme scheme : {Scheme::Cobcm, Scheme::NoGap}) {
    std::printf("\n[%s]\n%8s %14s %14s %16s %10s\n", schemeName(scheme),
                "share", "exec cycles", "migrations", "migr/1k stores",
                "recovery");

    for (double share : {0.0, 0.05, 0.10, 0.25, 0.50, 1.0}) {
        MultiCoreConfig cfg;
        cfg.numCores = 4;
        cfg.base.scheme = scheme;
        MultiCoreSystem sys(cfg);
        std::vector<std::unique_ptr<SharingGenerator>> gens;
        std::vector<WorkloadGenerator *> raw;
        for (unsigned c = 0; c < 4; ++c) {
            gens.push_back(std::make_unique<SharingGenerator>(
                instr, share, 0x1000000ULL * (c + 1), benchSeed() + c));
            raw.push_back(gens.back().get());
        }
        MultiCoreResult r = sys.run(raw);
        std::uint64_t stores = 0;
        for (const auto &pc : r.perCore)
            stores += pc.persists;
        CrashReport cr = sys.crashNow();
        std::printf("%7.0f%% %14llu %14llu %16.2f %10s\n", share * 100.0,
                    static_cast<unsigned long long>(r.execTicks),
                    static_cast<unsigned long long>(r.migrations),
                    1000.0 * r.migrations / std::max<std::uint64_t>(1,
                                                                    stores),
                    cr.recovered ? "OK" : "FAILED");
        std::fflush(stdout);
    }
    }

    std::printf("\nmigrations scale with sharing and recovery verifies at "
                "every point (no-replication\ninvariant). For lazy schemes "
                "the store buffer absorbs the migration latency; eager\n"
                "schemes expose it on the acceptance path.\n");
    return 0;
}
