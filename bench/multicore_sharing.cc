/**
 * @file
 * Multi-core SecPB sharing study (Section IV-C(c); not a paper figure --
 * the paper describes the migration protocol but evaluates single-core).
 *
 * Four cores run a write workload whose stores hit a shared block pool
 * with probability `share` and a private region otherwise. As sharing
 * grows, entries ping-pong between SecPBs; migration keeps the
 * no-replication invariant while forwarding value-independent metadata,
 * and the cost shows up as extra acceptance latency. Each (scheme, share)
 * cell is one custom experiment point building a 4-core machine through
 * the Simulation facade; `--shards N` fans the epoch engine out across
 * host threads without changing a byte of the output.
 */

#include <memory>

#include "bench_common.hh"
#include "core/multicore.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

/** Private-region writer with probabilistic shared-pool stores. */
class SharingGenerator : public WorkloadGenerator
{
  public:
    SharingGenerator(std::uint64_t instructions, double share,
                     Addr private_base, std::uint64_t seed)
        : _budget(instructions), _share(share), _privateBase(private_base),
          _rng(seed)
    {}

    bool
    next(TraceOp &op) override
    {
        if (_emitted >= _budget)
            return false;
        // ~80 stores per kilo-instruction, rest plain instructions.
        if (_rng.chance(0.08)) {
            ++_emitted;
            op.kind = TraceOp::Kind::Store;
            const bool shared = _rng.chance(_share);
            const Addr base = shared ? 0x0 : _privateBase;
            // Same-size pools so locality is held constant and only
            // cross-core sharing varies.
            const std::uint64_t pool_blocks = 16;
            op.addr = base + blockAlign(_rng.below(pool_blocks) * BlockSize)
                      + 8 * _rng.below(8);
            op.value = _rng.next();
            return true;
        }
        std::uint32_t count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(16, _budget - _emitted));
        _emitted += count;
        op.kind = TraceOp::Kind::Instr;
        op.count = count;
        return true;
    }

  private:
    std::uint64_t _budget;
    std::uint64_t _emitted = 0;
    double _share;
    Addr _privateBase;
    Rng _rng;
};

/** One (scheme, share) cell: build, run, crash, account. */
ExperimentResult
runSharingPoint(const ExperimentPoint &pt, double share)
{
    SimulationSpec spec;
    spec.base.scheme = pt.scheme;
    spec.cores = pt.cores;
    spec.shards = pt.shards;  // Host parallelism only; never the results.
    Simulation sim(spec);
    std::vector<std::unique_ptr<SharingGenerator>> gens;
    std::vector<WorkloadGenerator *> raw;
    for (unsigned c = 0; c < spec.cores; ++c) {
        gens.push_back(std::make_unique<SharingGenerator>(
            pt.instructions, share, 0x1000000ULL * (c + 1), pt.seed + c));
        raw.push_back(gens.back().get());
    }
    const MultiCoreResult mr = sim.run(raw);
    std::uint64_t stores = 0;
    for (const auto &pc : mr.perCore)
        stores += pc.persists;
    const CrashReport cr = sim.crashNow();

    ExperimentResult r;
    r.extra = {
        {"share", share},
        {"exec_ticks", static_cast<double>(mr.execTicks)},
        {"migrations", static_cast<double>(mr.migrations)},
        {"remote_read_flushes",
         static_cast<double>(mr.remoteReadFlushes)},
        {"migr_per_kstore",
         1000.0 * mr.migrations /
             std::max<std::uint64_t>(1, stores)},
        {"recovered", cr.recovered ? 1.0 : 0.0},
    };
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "multicore_sharing");
    const std::uint64_t instr = cli.instructions / 4;
    const double shares[] = {0.0, 0.05, 0.10, 0.25, 0.50, 1.0};

    std::vector<Scheme> schemes;
    for (Scheme s : {Scheme::Cobcm, Scheme::NoGap})
        if (cli.wantScheme(s))
            schemes.push_back(s);

    Sweep sweep(cli);
    std::vector<std::vector<std::size_t>> idx(schemes.size());
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        for (double share : shares) {
            ExperimentPoint p;
            p.label = std::string(schemeName(schemes[si])) + "/share=" +
                      std::to_string(share);
            p.scheme = schemes[si];
            p.instructions = instr;
            p.seed = cli.seed;
            p.cores = 4;
            // --shards only changes which host threads advance the
            // slices; the sweep JSON stays byte-identical for every
            // value (the CI determinism gate diffs it).
            p.shards = cli.spec.shards;
            p.tag("cores", "4");
            p.custom = [share](const ExperimentPoint &pt) {
                return runSharingPoint(pt, share);
            };
            idx[si].push_back(sweep.add(std::move(p)));
        }
    }

    sweep.run();

    std::printf("Multi-core SecPB sharing sweep (4 cores, "
                "%llu instructions/core)\n",
                static_cast<unsigned long long>(instr));
    for (std::size_t si = 0; si < schemes.size(); ++si) {
        std::printf("\n[%s]\n%8s %14s %14s %16s %10s\n",
                    schemeName(schemes[si]), "share", "exec cycles",
                    "migrations", "migr/1k stores", "recovery");
        for (std::size_t ci = 0; ci < std::size(shares); ++ci) {
            const ExperimentResult &r = sweep.at(idx[si][ci]);
            std::printf("%7.0f%% %14.0f %14.0f %16.2f %10s\n",
                        shares[ci] * 100.0, r.extraValue("exec_ticks"),
                        r.extraValue("migrations"),
                        r.extraValue("migr_per_kstore"),
                        r.extraValue("recovered") != 0.0 ? "OK" : "FAILED");
        }
    }

    std::printf("\nmigrations scale with sharing and recovery verifies at "
                "every point (no-replication\ninvariant). For lazy schemes "
                "the store buffer absorbs the migration latency; eager\n"
                "schemes expose it on the acceptance path.\n");

    sweep.writeJson();
    return 0;
}
