/**
 * @file
 * Reproduces Table VI: estimated supercapacitor / battery capacity for
 * varying SecPB sizes (8..512 entries) under the COBCM (largest) and
 * NoGap (smallest) models. Energy-model-only points run through the
 * experiment engine so --json captures the sweep.
 */

#include "bench_common.hh"
#include "energy/energy_model.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "table6");
    const unsigned sizes[] = {8, 16, 32, 64, 128, 256, 512};
    const Scheme schemes[] = {Scheme::Cobcm, Scheme::NoGap};

    Sweep sweep(cli);
    std::vector<std::vector<std::size_t>> idx(std::size(schemes));
    for (std::size_t si = 0; si < std::size(schemes); ++si) {
        for (unsigned entries : sizes) {
            const Scheme scheme = schemes[si];
            ExperimentPoint p;
            p.label = std::string(schemeName(scheme)) + "/entries=" +
                      std::to_string(entries);
            p.scheme = scheme;
            p.instructions = 0;
            p.secpbEntries = entries;
            p.tag("kind", "battery_sizing");
            const double derate = cli.batteryDerate;
            p.custom = [scheme, entries, derate](const ExperimentPoint &) {
                const EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);
                const double e = em.secPbBatteryEnergy(scheme, entries);
                CapacitorParams scp = capacitorPresetFor("supercap");
                CapacitorParams lip = capacitorPresetFor("li-thin");
                scp.capacitanceDerate = derate;
                lip.capacitanceDerate = derate;
                ExperimentResult r;
                r.extra = {
                    {"energy_j", e},
                    {"supercap_mm3", em.size(e, superCapTech()).volumeMm3},
                    {"lithin_mm3", em.size(e, liThinTech()).volumeMm3},
                    {"supercap_real_mm3",
                     em.sizeWithPhysics(e, superCapTech(), scp).volumeMm3},
                    {"lithin_real_mm3",
                     em.sizeWithPhysics(e, liThinTech(), lip).volumeMm3},
                };
                return r;
            };
            idx[si].push_back(sweep.add(std::move(p)));
        }
    }

    sweep.run();

    std::printf("Table VI: battery capacity (mm^3) vs SecPB size\n\n");
    std::printf("%8s | %12s %12s | %12s %12s\n", "entries",
                "COBCM SC", "COBCM Li", "NoGap SC", "NoGap Li");

    // Paper values for reference (SuperCap / Li-Thin):
    //   COBCM: 8->1.33/0.013 ... 512->76.10/0.761
    //   NoGap: 8->0.08/0.001 ... 512->4.35/0.044
    const double paper_cobcm_sc[] = {1.33, 2.52, 4.89, 9.63,
                                     19.12, 38.11, 76.10};
    const double paper_nogap_sc[] = {0.08, 0.14, 0.28, 0.55,
                                     1.10, 2.18, 4.35};

    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const ExperimentResult &cobcm = sweep.at(idx[0][i]);
        const ExperimentResult &nogap = sweep.at(idx[1][i]);
        std::printf("%8u | %12.2f %12.4f | %12.3f %12.5f   "
                    "(paper SC: %5.2f / %4.2f)\n",
                    sizes[i], cobcm.extraValue("supercap_mm3"),
                    cobcm.extraValue("lithin_mm3"),
                    nogap.extraValue("supercap_mm3"),
                    nogap.extraValue("lithin_mm3"),
                    paper_cobcm_sc[i], paper_nogap_sc[i]);
    }

    std::printf("\nRealistic physics (voltage window + derate %.2f):\n\n",
                cli.batteryDerate);
    std::printf("%8s | %12s %12s | %12s %12s\n", "entries",
                "COBCM SC", "COBCM Li", "NoGap SC", "NoGap Li");
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const ExperimentResult &cobcm = sweep.at(idx[0][i]);
        const ExperimentResult &nogap = sweep.at(idx[1][i]);
        std::printf("%8u | %12.2f %12.4f | %12.3f %12.5f\n",
                    sizes[i], cobcm.extraValue("supercap_real_mm3"),
                    cobcm.extraValue("lithin_real_mm3"),
                    nogap.extraValue("supercap_real_mm3"),
                    nogap.extraValue("lithin_real_mm3"));
    }

    sweep.writeJson();
    return 0;
}
