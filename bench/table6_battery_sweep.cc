/**
 * @file
 * Reproduces Table VI: estimated supercapacitor / battery capacity for
 * varying SecPB sizes (8..512 entries) under the COBCM (largest) and
 * NoGap (smallest) models.
 */

#include <cstdio>

#include "energy/energy_model.hh"

using namespace secpb;

int
main()
{
    const EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);

    std::printf("Table VI: battery capacity (mm^3) vs SecPB size\n\n");
    std::printf("%8s | %12s %12s | %12s %12s\n", "entries",
                "COBCM SC", "COBCM Li", "NoGap SC", "NoGap Li");

    // Paper values for reference (SuperCap / Li-Thin):
    //   COBCM: 8->1.33/0.013 ... 512->76.10/0.761
    //   NoGap: 8->0.08/0.001 ... 512->4.35/0.044
    const double paper_cobcm_sc[] = {1.33, 2.52, 4.89, 9.63,
                                     19.12, 38.11, 76.10};
    const double paper_nogap_sc[] = {0.08, 0.14, 0.28, 0.55,
                                     1.10, 2.18, 4.35};

    unsigned i = 0;
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
        const double e_cobcm = em.secPbBatteryEnergy(Scheme::Cobcm, entries);
        const double e_nogap = em.secPbBatteryEnergy(Scheme::NoGap, entries);
        std::printf("%8u | %12.2f %12.4f | %12.3f %12.5f   "
                    "(paper SC: %5.2f / %4.2f)\n",
                    entries,
                    em.size(e_cobcm, superCapTech()).volumeMm3,
                    em.size(e_cobcm, liThinTech()).volumeMm3,
                    em.size(e_nogap, superCapTech()).volumeMm3,
                    em.size(e_nogap, liThinTech()).volumeMm3,
                    paper_cobcm_sc[i], paper_nogap_sc[i]);
        ++i;
    }
    return 0;
}
