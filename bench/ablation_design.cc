/**
 * @file
 * Ablations of the design choices DESIGN.md calls out. Not a paper
 * figure: these isolate the mechanisms behind the headline results.
 *
 *  1. Drain width     -- concurrent drains hide late-tuple latency; with
 *                        width 1 the lazy schemes back up.
 *  2. Walker merging  -- merging same-leaf BMT updates into in-flight
 *                        walks is what keeps COBCM's drain path (and
 *                        write-heavy CM) off the walker bottleneck.
 *  3. Watermarks      -- the high watermark must leave headroom: draining
 *                        too late stalls accepts, too early wastes
 *                        coalescing.
 *  4. Store buffer    -- depth absorbs NoGap's per-store MAC latency
 *                        bursts.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

double
slowdown(const BenchmarkProfile &p, std::uint64_t instr,
         const SystemConfig &cfg, const SystemConfig &base_cfg)
{
    SecPbSystem base(base_cfg);
    SyntheticGenerator bg(p, instr, benchSeed());
    const double base_ticks =
        static_cast<double>(base.run(bg).execTicks);
    SecPbSystem sys(cfg);
    SyntheticGenerator g(p, instr, benchSeed());
    return sys.run(g).execTicks / base_ticks;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();
    const BenchmarkProfile &gamess = profileByName("gamess");
    const BenchmarkProfile &gcc = profileByName("gcc");

    std::printf("Design ablations (%llu instructions/run)\n",
                static_cast<unsigned long long>(instr));

    // --- 1. Drain width --------------------------------------------------
    std::printf("\n[1] COBCM slowdown vs BBB on gamess, by drain width\n");
    for (unsigned width : {1u, 2u, 4u, 8u, 16u}) {
        SystemConfig cfg = SecPbSystem::configFor(Scheme::Cobcm, gamess);
        cfg.secpb.drainWidth = width;
        SystemConfig base = SecPbSystem::configFor(Scheme::Bbb, gamess);
        base.secpb.drainWidth = width;
        std::printf("    width %2u: %.3fx\n", width,
                    slowdown(gamess, instr, cfg, base));
    }

    // --- 2. Walker merging -----------------------------------------------
    std::printf("\n[2] BMT-update merging on gamess (merge on vs off)\n");
    for (Scheme s : {Scheme::Cobcm, Scheme::Cm}) {
        for (bool merge : {true, false}) {
            SystemConfig cfg = SecPbSystem::configFor(s, gamess);
            cfg.walker.enableMerging = merge;
            SystemConfig base = SecPbSystem::configFor(Scheme::Bbb, gamess);
            std::printf("    %-6s merging %-3s: %.3fx\n", schemeName(s),
                        merge ? "on" : "off",
                        slowdown(gamess, instr, cfg, base));
        }
    }

    // --- 3. Watermarks ---------------------------------------------------
    std::printf("\n[3] COBCM slowdown on gamess, by high watermark "
                "(low = high - 0.25)\n");
    for (double high : {0.50, 0.625, 0.75, 0.875, 0.96875}) {
        SystemConfig cfg = SecPbSystem::configFor(Scheme::Cobcm, gamess);
        cfg.secpb.highWatermark = high;
        cfg.secpb.lowWatermark = high - 0.25;
        SystemConfig base = SecPbSystem::configFor(Scheme::Bbb, gamess);
        base.secpb.highWatermark = high;
        base.secpb.lowWatermark = high - 0.25;
        std::printf("    high %.3f: %.3fx\n", high,
                    slowdown(gamess, instr, cfg, base));
    }

    // --- 4. Store buffer depth --------------------------------------------
    std::printf("\n[4] NoGap slowdown on gcc, by store buffer entries\n");
    for (unsigned sb : {8u, 16u, 32u, 56u, 112u}) {
        SystemConfig cfg = SecPbSystem::configFor(Scheme::NoGap, gcc);
        cfg.storeBufferEntries = sb;
        SystemConfig base = SecPbSystem::configFor(Scheme::Bbb, gcc);
        base.storeBufferEntries = sb;
        std::printf("    entries %3u: %.3fx\n", sb,
                    slowdown(gcc, instr, cfg, base));
    }

    return 0;
}
