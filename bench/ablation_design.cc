/**
 * @file
 * Ablations of the design choices DESIGN.md calls out. Not a paper
 * figure: these isolate the mechanisms behind the headline results.
 *
 *  1. Drain width     -- concurrent drains hide late-tuple latency; with
 *                        width 1 the lazy schemes back up.
 *  2. Walker merging  -- merging same-leaf BMT updates into in-flight
 *                        walks is what keeps COBCM's drain path (and
 *                        write-heavy CM) off the walker bottleneck.
 *  3. Watermarks      -- the high watermark must leave headroom: draining
 *                        too late stalls accepts, too early wastes
 *                        coalescing.
 *  4. Store buffer    -- depth absorbs NoGap's per-store MAC latency
 *                        bursts.
 *
 * Every (variant, baseline) pair is two experiment points whose free-form
 * `configure` override applies the ablated knob (recorded in tags).
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

struct Pair
{
    std::size_t variant;
    std::size_t base;
};

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "ablation_design");
    const std::uint64_t instr = cli.instructions;

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile,
                     const std::string &knob, const std::string &value,
                     std::function<void(SystemConfig &)> configure) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s) + "/" + knob + "=" + value;
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.seed = cli.seed;
        p.tag(knob, value);
        p.configure = std::move(configure);
        return sweep.add(std::move(p));
    };

    // --- 1. Drain width --------------------------------------------------
    const unsigned widths[] = {1, 2, 4, 8, 16};
    std::vector<Pair> width_pairs;
    for (unsigned width : widths) {
        auto knob = [width](SystemConfig &cfg) {
            cfg.secpb.drainWidth = width;
        };
        width_pairs.push_back(
            {point(Scheme::Cobcm, "gamess", "drain_width",
                   std::to_string(width), knob),
             point(Scheme::Bbb, "gamess", "drain_width",
                   std::to_string(width), knob)});
    }

    // --- 2. Walker merging -----------------------------------------------
    const Scheme merge_schemes[] = {Scheme::Cobcm, Scheme::Cm};
    std::vector<Pair> merge_pairs;
    for (Scheme s : merge_schemes) {
        for (bool merge : {true, false}) {
            merge_pairs.push_back(
                {point(s, "gamess", "merging", merge ? "on" : "off",
                       [merge](SystemConfig &cfg) {
                           cfg.walker.enableMerging = merge;
                       }),
                 point(Scheme::Bbb, "gamess", "merging", "baseline", {})});
        }
    }

    // --- 3. Watermarks ---------------------------------------------------
    const double highs[] = {0.50, 0.625, 0.75, 0.875, 0.96875};
    std::vector<Pair> mark_pairs;
    for (double high : highs) {
        auto knob = [high](SystemConfig &cfg) {
            cfg.secpb.highWatermark = high;
            cfg.secpb.lowWatermark = high - 0.25;
        };
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", high);
        mark_pairs.push_back(
            {point(Scheme::Cobcm, "gamess", "high_watermark", buf, knob),
             point(Scheme::Bbb, "gamess", "high_watermark", buf, knob)});
    }

    // --- 4. Store buffer depth -------------------------------------------
    const unsigned sbs[] = {8, 16, 32, 56, 112};
    std::vector<Pair> sb_pairs;
    for (unsigned sb : sbs) {
        auto knob = [sb](SystemConfig &cfg) {
            cfg.storeBufferEntries = sb;
        };
        sb_pairs.push_back(
            {point(Scheme::NoGap, "gcc", "sb_entries", std::to_string(sb),
                   knob),
             point(Scheme::Bbb, "gcc", "sb_entries", std::to_string(sb),
                   knob)});
    }

    sweep.run();

    auto ratio = [&](const Pair &pr) {
        return static_cast<double>(sweep.at(pr.variant).sim.execTicks) /
               sweep.at(pr.base).sim.execTicks;
    };

    std::printf("Design ablations (%llu instructions/run)\n",
                static_cast<unsigned long long>(instr));

    std::printf("\n[1] COBCM slowdown vs BBB on gamess, by drain width\n");
    for (std::size_t i = 0; i < std::size(widths); ++i) {
        const double r = ratio(width_pairs[i]);
        sweep.derive("drain_width_slowdown",
                     "width=" + std::to_string(widths[i]), r);
        std::printf("    width %2u: %.3fx\n", widths[i], r);
    }

    std::printf("\n[2] BMT-update merging on gamess (merge on vs off)\n");
    std::size_t mi = 0;
    for (Scheme s : merge_schemes) {
        for (bool merge : {true, false}) {
            const double r = ratio(merge_pairs[mi++]);
            sweep.derive("merging_slowdown",
                         std::string(schemeName(s)) + "/" +
                             (merge ? "on" : "off"),
                         r);
            std::printf("    %-6s merging %-3s: %.3fx\n", schemeName(s),
                        merge ? "on" : "off", r);
        }
    }

    std::printf("\n[3] COBCM slowdown on gamess, by high watermark "
                "(low = high - 0.25)\n");
    for (std::size_t i = 0; i < std::size(highs); ++i) {
        const double r = ratio(mark_pairs[i]);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", highs[i]);
        sweep.derive("watermark_slowdown", std::string("high=") + buf, r);
        std::printf("    high %.3f: %.3fx\n", highs[i], r);
    }

    std::printf("\n[4] NoGap slowdown on gcc, by store buffer entries\n");
    for (std::size_t i = 0; i < std::size(sbs); ++i) {
        const double r = ratio(sb_pairs[i]);
        sweep.derive("sb_depth_slowdown",
                     "entries=" + std::to_string(sbs[i]), r);
        std::printf("    entries %3u: %.3fx\n", sbs[i], r);
    }

    sweep.writeJson();
    return 0;
}
