/**
 * @file
 * Standalone randomized crash-consistency soak driver.
 *
 * A larger, reportier sibling of tests/test_fault_soak.cc: sweeps all six
 * SecPB schemes through randomized crash points, bounded battery budgets,
 * and post-crash tamper attacks, fully deterministic from one seed, and
 * prints a per-scheme summary of what the sweep exercised. Exits nonzero
 * on the first-ever inconsistent recovery or silently accepted tamper,
 * printing a one-line reproducer.
 *
 * Each trial's parameter draw is seeded by (seed, trial index) alone, so
 * trials are independent experiment points: the engine runs them on
 * --jobs threads and the tallies are identical at any job count, and a
 * reproducer's trial can be replayed without its predecessors.
 *
 * Knobs: SECPB_SOAK_TRIALS (default 300), SECPB_SOAK_SEED (default 2026),
 * SECPB_SOAK_TRIAL (replay exactly one trial index from a reproducer),
 * plus the shared bench CLI (--jobs, --json, ...).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hh"
#include "fault/injector.hh"

using namespace secpb;
using bench::envU64;

namespace
{

constexpr const char *SoakProfiles[] = {
    "gamess", "omnetpp", "lbm", "mcf", "libquantum",
};

struct SchemeTally
{
    std::uint64_t trials = 0;
    std::uint64_t midRunCrashes = 0;
    std::uint64_t boundedDrains = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t abandonedEntries = 0;
    std::uint64_t tornDetected = 0;
    std::uint64_t staleConsistent = 0;
    std::uint64_t tampers = 0;
    std::uint64_t failures = 0;
};

/** Deterministic per-trial parameter draw, from (seed, trial) only. */
struct TrialParams
{
    std::uint64_t schemeIdx;
    const char *profile;
    std::uint64_t instructions;
    std::uint64_t wseed;
    FaultPlan plan;
};

TrialParams
drawTrial(std::uint64_t seed, std::uint64_t trial)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + trial);
    TrialParams t;
    t.schemeIdx = rng.below(std::size(SecPbSchemes));
    t.profile = SoakProfiles[rng.below(std::size(SoakProfiles))];
    t.instructions = 8'000 + rng.below(8'000);
    t.wseed = rng.next();
    if (rng.chance(0.5))
        t.plan.crashAtPersist = 1 + rng.below(220);
    else
        t.plan.crashAtTick = 100 + rng.below(40'000);
    if (!rng.chance(1.0 / 3.0))
        t.plan.batteryFraction = rng.uniform();
    t.plan.tamperCount = static_cast<unsigned>(rng.below(4));
    t.plan.tamperSeed = rng.next();
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bench::BenchCli cli =
        bench::BenchCli::parse(argc, argv, "fault_soak");
    const std::uint64_t seed = envU64("SECPB_SOAK_SEED", 2026);
    // Trial streams are independent (seeded by trial index), so one
    // reproducer's trial can be replayed without its predecessors.
    const std::uint64_t first = envU64("SECPB_SOAK_TRIAL", 0);
    const std::uint64_t trials =
        std::getenv("SECPB_SOAK_TRIAL")
            ? first + 1
            : envU64("SECPB_SOAK_TRIALS", 300);

    std::printf("fault soak: trials [%llu, %llu), seed %llu, jobs %u\n\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(seed), cli.jobs);

    bench::Sweep sweep(cli);
    std::vector<std::size_t> idx;
    std::vector<TrialParams> params;
    for (std::uint64_t trial = first; trial < trials; ++trial) {
        const TrialParams t = drawTrial(seed, trial);
        params.push_back(t);

        ExperimentPoint p;
        p.label = "trial=" + std::to_string(trial);
        p.scheme = SecPbSchemes[t.schemeIdx];
        p.profile = t.profile;
        p.instructions = t.instructions;
        p.seed = t.wseed;
        p.tag("plan", t.plan.describe());
        p.custom = [t](const ExperimentPoint &pt) {
            SystemConfig cfg;
            cfg.scheme = pt.scheme;
            cfg.pmDataBytes = 1ULL << 30;
            SecPbSystem sys(cfg);
            SyntheticGenerator gen(profileByName(pt.profile),
                                   pt.instructions, pt.seed);
            const FaultReport r = FaultInjector(sys, t.plan).run(gen);
            ExperimentResult res;
            res.extra = {
                {"ok", r.ok() ? 1.0 : 0.0},
                {"recovered", r.crash.recovered ? 1.0 : 0.0},
                {"mid_run_crash", r.crashedMidRun ? 1.0 : 0.0},
                {"battery_exhausted",
                 r.crash.work.batteryExhausted ? 1.0 : 0.0},
                {"abandoned_entries",
                 static_cast<double>(r.crash.work.abandoned.size())},
                {"torn_detected",
                 static_cast<double>(r.crash.recovery.tornDetected)},
                {"stale_consistent",
                 static_cast<double>(r.crash.recovery.staleConsistent)},
                {"tampers", static_cast<double>(r.tampers.size())},
            };
            return res;
        };
        idx.push_back(sweep.add(std::move(p)));
    }

    sweep.run();

    SchemeTally tally[std::size(SecPbSchemes)];
    int exit_code = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const TrialParams &t = params[i];
        const ExperimentResult &r = sweep.at(idx[i]);
        SchemeTally &st = tally[t.schemeIdx];
        ++st.trials;
        st.midRunCrashes +=
            static_cast<std::uint64_t>(r.extraValue("mid_run_crash"));
        st.boundedDrains += t.plan.boundedBattery();
        st.exhausted +=
            static_cast<std::uint64_t>(r.extraValue("battery_exhausted"));
        st.abandonedEntries +=
            static_cast<std::uint64_t>(r.extraValue("abandoned_entries"));
        st.tornDetected +=
            static_cast<std::uint64_t>(r.extraValue("torn_detected"));
        st.staleConsistent +=
            static_cast<std::uint64_t>(r.extraValue("stale_consistent"));
        st.tampers += static_cast<std::uint64_t>(r.extraValue("tampers"));

        if (r.extraValue("ok") == 0.0) {
            ++st.failures;
            exit_code = 1;
            std::printf("FAIL: SECPB_SOAK_SEED=%llu trial=%llu scheme=%s "
                        "profile=%s instrs=%llu wseed=%llu %s (%s)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(first + i),
                        schemeName(SecPbSchemes[t.schemeIdx]), t.profile,
                        static_cast<unsigned long long>(t.instructions),
                        static_cast<unsigned long long>(t.wseed),
                        t.plan.describe().c_str(),
                        r.extraValue("recovered") == 0.0
                            ? "inconsistent recovery"
                            : "undetected tamper");
        }
    }

    std::printf("%-8s %7s %8s %8s %10s %10s %6s %7s %8s %9s\n", "scheme",
                "trials", "mid-run", "bounded", "exhausted", "abandoned",
                "torn", "stale", "tampers", "failures");
    for (std::size_t i = 0; i < std::size(SecPbSchemes); ++i) {
        const SchemeTally &t = tally[i];
        std::printf("%-8s %7llu %8llu %8llu %10llu %10llu %6llu %7llu "
                    "%8llu %9llu\n",
                    schemeName(SecPbSchemes[i]),
                    static_cast<unsigned long long>(t.trials),
                    static_cast<unsigned long long>(t.midRunCrashes),
                    static_cast<unsigned long long>(t.boundedDrains),
                    static_cast<unsigned long long>(t.exhausted),
                    static_cast<unsigned long long>(t.abandonedEntries),
                    static_cast<unsigned long long>(t.tornDetected),
                    static_cast<unsigned long long>(t.staleConsistent),
                    static_cast<unsigned long long>(t.tampers),
                    static_cast<unsigned long long>(t.failures));
        sweep.derive("failures", schemeName(SecPbSchemes[i]),
                     static_cast<double>(t.failures));
    }
    std::printf("\n%s\n", exit_code ? "SOAK FAILED" : "soak clean");

    sweep.writeJson();
    return exit_code;
}
