/**
 * @file
 * Standalone randomized crash-consistency soak driver.
 *
 * A larger, reportier sibling of tests/test_fault_soak.cc: sweeps the full
 * secure scheme zoo -- the paper's six SecPB schemes plus
 * secpm/triad/eadr/stream, trial t running SchemeZoo[t % 10] -- through
 * randomized crash points, bounded battery budgets, and post-crash tamper
 * attacks, fully deterministic from one seed, and prints a per-scheme
 * summary of what the sweep exercised. Exits nonzero
 * on the first-ever inconsistent recovery or silently accepted tamper,
 * printing a one-line reproducer.
 *
 * Each trial's parameter draw is seeded by (seed, trial index) alone, so
 * trials are independent experiment points: the engine runs them on
 * --jobs threads and the tallies are identical at any job count, and a
 * reproducer's trial can be replayed without its predecessors.
 *
 * Knobs: SECPB_SOAK_TRIALS (default 300), SECPB_SOAK_SEED (default 2026),
 * SECPB_SOAK_TRIAL (replay exactly one trial index from a reproducer),
 * plus the shared bench CLI (--jobs, --json, ...). With --workload SPEC
 * the classic soak crashes a registry workload (e.g. kv_wal mid-commit)
 * instead of the synthetic profiles.
 *
 * With --power-schedule (or SECPB_BENCH_POWER_SCHEDULE) the soak runs in
 * intermittent-power mode instead: each trial is a multi-cycle
 * crash-recover-crash sequence on a physical Capacitor (brownouts,
 * partial recharges, aging, power loss mid-recovery), scheme picked by
 * trial index mod 10 and the adaptive drain policy alternating on/off by
 * trial parity. Adaptive trials additionally assert the never-overspend
 * invariant (drain energy <= deliverable at crash). --battery-tech and
 * --battery-derate select the cell.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hh"
#include "fault/injector.hh"
#include "fault/power.hh"

using namespace secpb;
using bench::envU64;

namespace
{

constexpr const char *SoakProfiles[] = {
    "gamess", "omnetpp", "lbm", "mcf", "libquantum",
};

struct SchemeTally
{
    std::uint64_t trials = 0;
    std::uint64_t midRunCrashes = 0;
    std::uint64_t boundedDrains = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t abandonedEntries = 0;
    std::uint64_t tornDetected = 0;
    std::uint64_t staleConsistent = 0;
    std::uint64_t tampers = 0;
    std::uint64_t failures = 0;
};

/** Deterministic per-trial parameter draw, from (seed, trial) only. */
struct TrialParams
{
    std::uint64_t schemeIdx;
    SchemeParams schemeParams;
    const char *profile;
    std::uint64_t instructions;
    std::uint64_t wseed;
    FaultPlan plan;
};

TrialParams
drawTrial(std::uint64_t seed, std::uint64_t trial)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + trial);
    TrialParams t;
    // Round-robin over the zoo so every scheme soaks evenly; the triad
    // depth cycles through its useful range.
    t.schemeIdx = trial % std::size(SchemeZoo);
    if (SchemeZoo[t.schemeIdx] == Scheme::Triad)
        t.schemeParams.triadLevels = 1 + static_cast<unsigned>(trial % 4);
    t.profile = SoakProfiles[rng.below(std::size(SoakProfiles))];
    t.instructions = 8'000 + rng.below(8'000);
    t.wseed = rng.next();
    if (rng.chance(0.5))
        t.plan.crashAtPersist = 1 + rng.below(220);
    else
        t.plan.crashAtTick = 100 + rng.below(40'000);
    if (!rng.chance(1.0 / 3.0))
        t.plan.batteryFraction = rng.uniform();
    t.plan.tamperCount = static_cast<unsigned>(rng.below(4));
    t.plan.tamperSeed = rng.next();
    return t;
}

/**
 * Intermittent-power soak (--power-schedule): each trial runs one full
 * multi-cycle power schedule -- brownouts, crash-recover-crash, power
 * loss during recovery -- on the system Capacitor with the adaptive
 * drain policy enabled. Trial t runs scheme SchemeZoo[t % 10], so any
 * run of >= 10 trials covers the whole zoo. Fails on the first
 * unverified restore, inconsistent recovery, undetected tamper, or
 * drain that spent more than the capacitor held at crash time.
 */
int
runIntermittentSoak(const bench::BenchCli &cli, std::uint64_t seed,
                    std::uint64_t first, std::uint64_t trials)
{
    const PowerScheduleSpec base =
        PowerScheduleSpec::parse(cli.powerSchedule);
    std::printf("intermittent soak: trials [%llu, %llu), seed %llu, "
                "schedule [%s], tech %s derate %.2f\n\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(seed),
                base.describe().c_str(), cli.batteryTech.c_str(),
                cli.batteryDerate);

    bench::Sweep sweep(cli);
    std::vector<std::size_t> idx;
    std::vector<std::uint64_t> schemeOf;
    const CapacitorParams params = cli.batteryParams();
    for (std::uint64_t trial = first; trial < trials; ++trial) {
        const std::uint64_t si = trial % std::size(SchemeZoo);
        schemeOf.push_back(si);
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + trial);
        const char *profile =
            SoakProfiles[rng.below(std::size(SoakProfiles))];
        PowerScheduleSpec spec = base;
        spec.seed = seed * 1'000'003 + trial;
        // Alternate the adaptive drain policy: even trials run with it
        // (and must hold the never-overspend invariant), odd trials run
        // the unprotected flat capacitor so brownouts actually abandon
        // entries and exercise the restore triage paths.
        const bool adaptive = trial % 2 == 0;

        ExperimentPoint p;
        p.label = "trial=" + std::to_string(trial);
        p.scheme = SchemeZoo[si];
        if (p.scheme == Scheme::Triad)
            p.schemeParams.triadLevels =
                1 + static_cast<unsigned>(trial % 4);
        p.profile = profile;
        p.instructions = 0;
        p.seed = spec.seed;
        p.tag("schedule", spec.describe());
        p.tag("adaptive", adaptive ? "on" : "off");
        p.custom = [spec, params, adaptive](const ExperimentPoint &pt) {
            SystemConfig cfg;
            cfg.scheme = pt.scheme;
            cfg.secpb.params = pt.schemeParams;
            cfg.pmDataBytes = 1ULL << 30;
            cfg.battery.enabled = true;
            cfg.battery.cap = params;
            cfg.battery.adaptive.enabled = adaptive;
            IntermittentPowerInjector inj(cfg, spec, pt.profile);
            const IntermittentReport r = inj.run();

            double abandoned = 0, quarantined = 0, rolled = 0;
            double brownouts = 0, interrupts = 0, overspent = 0;
            for (const PowerCycleOutcome &c : r.cycles) {
                abandoned += static_cast<double>(
                    c.fault.crash.work.abandoned.size());
                quarantined += static_cast<double>(
                    c.restoreFinal.blocksQuarantined);
                rolled += static_cast<double>(
                    c.restoreFinal.blocksRolledBack);
                brownouts += c.brownoutApplied ? 1.0 : 0.0;
                interrupts += c.restoreInterrupted ? 1.0 : 0.0;
                // The adaptive-policy invariant: the drain never needs
                // more than the cell held when power failed. Without
                // the policy a deep brownout can sag below the
                // committed obligation -- that is the failure mode the
                // policy (plus the BBU reserve) exists to prevent.
                if (adaptive &&
                    c.energySpentJ > c.deliverableAtCrashJ + 1e-12)
                    overspent += 1.0;
            }
            ExperimentResult res;
            res.extra = {
                {"ok", (r.ok() && overspent == 0.0) ? 1.0 : 0.0},
                {"cycles", static_cast<double>(r.cycles.size())},
                {"abandoned_entries", abandoned},
                {"quarantined", quarantined},
                {"rolled_back", rolled},
                {"brownouts", brownouts},
                {"interrupted_restores", interrupts},
                {"overspent_drains", overspent},
            };
            return res;
        };
        idx.push_back(sweep.add(std::move(p)));
    }

    sweep.run();

    int exit_code = 0;
    std::uint64_t perScheme[std::size(SchemeZoo)] = {};
    double tot[7] = {};
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const ExperimentResult &r = sweep.at(idx[i]);
        ++perScheme[schemeOf[i]];
        tot[0] += r.extraValue("cycles");
        tot[1] += r.extraValue("abandoned_entries");
        tot[2] += r.extraValue("quarantined");
        tot[3] += r.extraValue("rolled_back");
        tot[4] += r.extraValue("brownouts");
        tot[5] += r.extraValue("interrupted_restores");
        tot[6] += r.extraValue("overspent_drains");
        if (r.extraValue("ok") == 0.0) {
            exit_code = 1;
            std::printf("FAIL: SECPB_SOAK_SEED=%llu trial=%llu scheme=%s "
                        "--power-schedule '%s'%s\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(first + i),
                        schemeName(SchemeZoo[schemeOf[i]]),
                        cli.powerSchedule.c_str(),
                        r.extraValue("overspent_drains") > 0.0
                            ? " (drain exceeded capacitor energy)"
                            : "");
        }
    }

    std::printf("power cycles %.0f, abandoned %.0f, quarantined %.0f, "
                "rolled back %.0f, brownouts %.0f, interrupted restores "
                "%.0f, overspent drains %.0f\n",
                tot[0], tot[1], tot[2], tot[3], tot[4], tot[5], tot[6]);
    std::printf("scheme coverage:");
    for (std::size_t i = 0; i < std::size(SchemeZoo); ++i)
        std::printf(" %s=%llu", schemeName(SchemeZoo[i]),
                    static_cast<unsigned long long>(perScheme[i]));
    std::printf("\n\n%s\n",
                exit_code ? "SOAK FAILED" : "intermittent soak clean");
    sweep.derive("overspent_drains", "all", tot[6]);
    sweep.writeJson();
    return exit_code;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bench::BenchCli cli =
        bench::BenchCli::parse(argc, argv, "fault_soak");
    const std::uint64_t seed = envU64("SECPB_SOAK_SEED", 2026);
    // Trial streams are independent (seeded by trial index), so one
    // reproducer's trial can be replayed without its predecessors.
    const std::uint64_t first = envU64("SECPB_SOAK_TRIAL", 0);
    const std::uint64_t trials =
        std::getenv("SECPB_SOAK_TRIAL")
            ? first + 1
            : envU64("SECPB_SOAK_TRIALS", 300);

    if (!cli.powerSchedule.empty())
        return runIntermittentSoak(cli, seed, first, trials);

    std::printf("fault soak: trials [%llu, %llu), seed %llu, jobs %u\n\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(seed), cli.jobs);

    bench::Sweep sweep(cli);
    std::vector<std::size_t> idx;
    std::vector<TrialParams> params;
    for (std::uint64_t trial = first; trial < trials; ++trial) {
        const TrialParams t = drawTrial(seed, trial);
        params.push_back(t);

        ExperimentPoint p;
        p.label = "trial=" + std::to_string(trial);
        p.scheme = SchemeZoo[t.schemeIdx];
        p.schemeParams = t.schemeParams;
        p.profile = t.profile;
        // --workload crash-soaks a registry workload (WAL commits and
        // journal trains crashing mid-burst) instead of the profiles.
        p.workload = cli.workload;
        p.instructions = t.instructions;
        p.seed = t.wseed;
        p.tag("plan", t.plan.describe());
        p.custom = [t](const ExperimentPoint &pt) {
            SimulationSpec spec;
            spec.base.scheme = pt.scheme;
            spec.base.secpb.params = pt.schemeParams;
            spec.base.pmDataBytes = 1ULL << 30;
            spec.instructions = pt.instructions;
            spec.seed = pt.seed;
            Simulation sim(spec);
            SecPbSystem &sys = sim.system();
            std::unique_ptr<WorkloadGenerator> gen;
            if (!pt.workload.empty()) {
                gen = makeWorkload(pt.workload, pt.instructions, pt.seed);
            } else {
                gen = std::make_unique<SyntheticGenerator>(
                    profileByName(pt.profile), pt.instructions, pt.seed);
            }
            const FaultReport r = FaultInjector(sys, t.plan).run(*gen);
            ExperimentResult res;
            res.extra = {
                {"ok", r.ok() ? 1.0 : 0.0},
                {"recovered", r.crash.recovered ? 1.0 : 0.0},
                {"mid_run_crash", r.crashedMidRun ? 1.0 : 0.0},
                {"battery_exhausted",
                 r.crash.work.batteryExhausted ? 1.0 : 0.0},
                {"abandoned_entries",
                 static_cast<double>(r.crash.work.abandoned.size())},
                {"torn_detected",
                 static_cast<double>(r.crash.recovery.tornDetected)},
                {"stale_consistent",
                 static_cast<double>(r.crash.recovery.staleConsistent)},
                {"tampers", static_cast<double>(r.tampers.size())},
            };
            return res;
        };
        idx.push_back(sweep.add(std::move(p)));
    }

    sweep.run();

    SchemeTally tally[std::size(SchemeZoo)];
    int exit_code = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const TrialParams &t = params[i];
        const ExperimentResult &r = sweep.at(idx[i]);
        SchemeTally &st = tally[t.schemeIdx];
        ++st.trials;
        st.midRunCrashes +=
            static_cast<std::uint64_t>(r.extraValue("mid_run_crash"));
        st.boundedDrains += t.plan.boundedBattery();
        st.exhausted +=
            static_cast<std::uint64_t>(r.extraValue("battery_exhausted"));
        st.abandonedEntries +=
            static_cast<std::uint64_t>(r.extraValue("abandoned_entries"));
        st.tornDetected +=
            static_cast<std::uint64_t>(r.extraValue("torn_detected"));
        st.staleConsistent +=
            static_cast<std::uint64_t>(r.extraValue("stale_consistent"));
        st.tampers += static_cast<std::uint64_t>(r.extraValue("tampers"));

        if (r.extraValue("ok") == 0.0) {
            ++st.failures;
            exit_code = 1;
            std::printf("FAIL: SECPB_SOAK_SEED=%llu trial=%llu scheme=%s "
                        "profile=%s instrs=%llu wseed=%llu %s (%s)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(first + i),
                        schemeName(SchemeZoo[t.schemeIdx]), t.profile,
                        static_cast<unsigned long long>(t.instructions),
                        static_cast<unsigned long long>(t.wseed),
                        t.plan.describe().c_str(),
                        r.extraValue("recovered") == 0.0
                            ? "inconsistent recovery"
                            : "undetected tamper");
        }
    }

    std::printf("%-8s %7s %8s %8s %10s %10s %6s %7s %8s %9s\n", "scheme",
                "trials", "mid-run", "bounded", "exhausted", "abandoned",
                "torn", "stale", "tampers", "failures");
    for (std::size_t i = 0; i < std::size(SchemeZoo); ++i) {
        const SchemeTally &t = tally[i];
        std::printf("%-8s %7llu %8llu %8llu %10llu %10llu %6llu %7llu "
                    "%8llu %9llu\n",
                    schemeName(SchemeZoo[i]),
                    static_cast<unsigned long long>(t.trials),
                    static_cast<unsigned long long>(t.midRunCrashes),
                    static_cast<unsigned long long>(t.boundedDrains),
                    static_cast<unsigned long long>(t.exhausted),
                    static_cast<unsigned long long>(t.abandonedEntries),
                    static_cast<unsigned long long>(t.tornDetected),
                    static_cast<unsigned long long>(t.staleConsistent),
                    static_cast<unsigned long long>(t.tampers),
                    static_cast<unsigned long long>(t.failures));
        sweep.derive("failures", schemeName(SchemeZoo[i]),
                     static_cast<double>(t.failures));
    }
    std::printf("\n%s\n", exit_code ? "SOAK FAILED" : "soak clean");

    sweep.writeJson();
    return exit_code;
}
