/**
 * @file
 * Standalone randomized crash-consistency soak driver.
 *
 * A larger, reportier sibling of tests/test_fault_soak.cc: sweeps all six
 * SecPB schemes through randomized crash points, bounded battery budgets,
 * and post-crash tamper attacks, fully deterministic from one seed, and
 * prints a per-scheme summary of what the sweep exercised. Exits nonzero
 * on the first-ever inconsistent recovery or silently accepted tamper,
 * printing a one-line reproducer.
 *
 * Knobs: SECPB_SOAK_TRIALS (default 300), SECPB_SOAK_SEED (default 2026),
 * SECPB_SOAK_TRIAL (replay exactly one trial index from a reproducer).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hh"
#include "fault/injector.hh"

using namespace secpb;
using bench::envU64;

namespace
{

constexpr const char *SoakProfiles[] = {
    "gamess", "omnetpp", "lbm", "mcf", "libquantum",
};

struct SchemeTally
{
    std::uint64_t trials = 0;
    std::uint64_t midRunCrashes = 0;
    std::uint64_t boundedDrains = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t abandonedEntries = 0;
    std::uint64_t tornDetected = 0;
    std::uint64_t staleConsistent = 0;
    std::uint64_t tampers = 0;
    std::uint64_t failures = 0;
};

} // namespace

int
main()
{
    const std::uint64_t seed = envU64("SECPB_SOAK_SEED", 2026);
    // Trial streams are independent (seeded by trial index), so one
    // reproducer's trial can be replayed without its predecessors.
    const std::uint64_t first = envU64("SECPB_SOAK_TRIAL", 0);
    const std::uint64_t trials =
        std::getenv("SECPB_SOAK_TRIAL")
            ? first + 1
            : envU64("SECPB_SOAK_TRIALS", 300);
    SchemeTally tally[std::size(SecPbSchemes)];
    int exit_code = 0;

    std::printf("fault soak: trials [%llu, %llu), seed %llu\n\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(trials),
                static_cast<unsigned long long>(seed));

    for (std::uint64_t trial = first; trial < trials; ++trial) {
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + trial);
        const std::uint64_t scheme_idx =
            rng.below(std::size(SecPbSchemes));
        const Scheme scheme = SecPbSchemes[scheme_idx];
        const char *profile =
            SoakProfiles[rng.below(std::size(SoakProfiles))];
        const std::uint64_t instructions = 8'000 + rng.below(8'000);
        const std::uint64_t wseed = rng.next();

        FaultPlan plan;
        if (rng.chance(0.5))
            plan.crashAtPersist = 1 + rng.below(220);
        else
            plan.crashAtTick = 100 + rng.below(40'000);
        if (!rng.chance(1.0 / 3.0))
            plan.batteryFraction = rng.uniform();
        plan.tamperCount = static_cast<unsigned>(rng.below(4));
        plan.tamperSeed = rng.next();

        SystemConfig cfg;
        cfg.scheme = scheme;
        cfg.pmDataBytes = 1ULL << 30;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName(profile), instructions,
                               wseed);
        const FaultReport r = FaultInjector(sys, plan).run(gen);

        SchemeTally &t = tally[scheme_idx];
        ++t.trials;
        t.midRunCrashes += r.crashedMidRun;
        t.boundedDrains += plan.boundedBattery();
        t.exhausted += r.crash.work.batteryExhausted;
        t.abandonedEntries += r.crash.work.abandoned.size();
        t.tornDetected += r.crash.recovery.tornDetected;
        t.staleConsistent += r.crash.recovery.staleConsistent;
        t.tampers += r.tampers.size();

        if (!r.ok()) {
            ++t.failures;
            exit_code = 1;
            std::printf("FAIL: SECPB_SOAK_SEED=%llu trial=%llu scheme=%s "
                        "profile=%s instrs=%llu wseed=%llu %s (%s)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(trial),
                        schemeName(scheme), profile,
                        static_cast<unsigned long long>(instructions),
                        static_cast<unsigned long long>(wseed),
                        plan.describe().c_str(),
                        !r.crash.recovered ? "inconsistent recovery"
                                           : "undetected tamper");
        }
    }

    std::printf("%-8s %7s %8s %8s %10s %10s %6s %7s %8s %9s\n", "scheme",
                "trials", "mid-run", "bounded", "exhausted", "abandoned",
                "torn", "stale", "tampers", "failures");
    for (std::size_t i = 0; i < std::size(SecPbSchemes); ++i) {
        const SchemeTally &t = tally[i];
        std::printf("%-8s %7llu %8llu %8llu %10llu %10llu %6llu %7llu "
                    "%8llu %9llu\n",
                    schemeName(SecPbSchemes[i]),
                    static_cast<unsigned long long>(t.trials),
                    static_cast<unsigned long long>(t.midRunCrashes),
                    static_cast<unsigned long long>(t.boundedDrains),
                    static_cast<unsigned long long>(t.exhausted),
                    static_cast<unsigned long long>(t.abandonedEntries),
                    static_cast<unsigned long long>(t.tornDetected),
                    static_cast<unsigned long long>(t.staleConsistent),
                    static_cast<unsigned long long>(t.tampers),
                    static_cast<unsigned long long>(t.failures));
    }
    std::printf("\n%s\n", exit_code ? "SOAK FAILED" : "soak clean");
    return exit_code;
}
