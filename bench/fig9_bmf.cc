/**
 * @file
 * Reproduces Figure 9: combining SecPB's CM scheme with Bonsai Merkle
 * Forest height reduction (DBMF: 2 levels, SBMF: 5 levels), compared with
 * applying DBMF/SBMF to the strict-persistency (SP) baseline with a 4 KB
 * root cache. All normalized to insecure BBB.
 *
 * Expected shape (paper Section VI-E): cm_dbmf < sp_dbmf, cm_sbmf <
 * sp_sbmf, and cm_sbmf even beats sp_dbmf -- coalescing in the SecPB
 * compounds with height reduction. Paper numbers: sp_dbmf 88.9%,
 * cm_dbmf 33.3%, sp_sbmf 3.43x, cm_sbmf 56.6%.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();

    struct Variant
    {
        const char *name;
        Scheme scheme;
        BmfMode bmf;
    };
    const Variant variants[] = {
        {"cm", Scheme::Cm, BmfMode::None},
        {"sp_dbmf", Scheme::Sp, BmfMode::Dbmf},
        {"cm_dbmf", Scheme::Cm, BmfMode::Dbmf},
        {"sp_sbmf", Scheme::Sp, BmfMode::Sbmf},
        {"cm_sbmf", Scheme::Cm, BmfMode::Sbmf},
    };

    std::printf("Figure 9: CM with BMT height reduction (DBMF/SBMF) vs "
                "SP with the same, normalized to BBB "
                "(%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (const Variant &v : variants)
        std::printf(" %8s", v.name);
    std::printf("\n");

    std::vector<std::vector<double>> ratios(std::size(variants));
    for (const BenchmarkProfile &p : spec2006Profiles()) {
        const double base = static_cast<double>(
            runOne(Scheme::Bbb, p, instr).execTicks);
        std::printf("%-12s |", p.name.c_str());
        unsigned vi = 0;
        for (const Variant &v : variants) {
            SimulationResult r = runOne(v.scheme, p, instr, 32, v.bmf);
            const double ratio = r.execTicks / base;
            ratios[vi].push_back(ratio);
            std::printf(" %8.3f", ratio);
            ++vi;
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n%-12s |", "geomean");
    for (unsigned vi = 0; vi < std::size(variants); ++vi)
        std::printf(" %8.3f", geomean(ratios[vi]));
    std::printf("\n\npaper: sp_dbmf 1.889, cm_dbmf 1.333, sp_sbmf 3.43x "
                "total, cm_sbmf 1.566\n");
    return 0;
}
