/**
 * @file
 * Reproduces Figure 9: combining SecPB's CM scheme with Bonsai Merkle
 * Forest height reduction (DBMF: 2 levels, SBMF: 5 levels), compared with
 * applying DBMF/SBMF to the strict-persistency (SP) baseline with a 4 KB
 * root cache. All normalized to insecure BBB.
 *
 * Expected shape (paper Section VI-E): cm_dbmf < sp_dbmf, cm_sbmf <
 * sp_sbmf, and cm_sbmf even beats sp_dbmf -- coalescing in the SecPB
 * compounds with height reduction. Paper numbers: sp_dbmf 88.9%,
 * cm_dbmf 33.3%, sp_sbmf 3.43x, cm_sbmf 56.6%.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "fig9");
    const std::uint64_t instr = cli.instructions;

    struct Variant
    {
        const char *name;
        Scheme scheme;
        BmfMode bmf;
    };
    const Variant all_variants[] = {
        {"cm", Scheme::Cm, BmfMode::None},
        {"sp_dbmf", Scheme::Sp, BmfMode::Dbmf},
        {"cm_dbmf", Scheme::Cm, BmfMode::Dbmf},
        {"sp_sbmf", Scheme::Sp, BmfMode::Sbmf},
        {"cm_sbmf", Scheme::Cm, BmfMode::Sbmf},
    };
    std::vector<Variant> variants;
    for (const Variant &v : all_variants)
        if (cli.wantScheme(v.scheme))
            variants.push_back(v);
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();

    Sweep sweep(cli);
    std::vector<std::size_t> base_idx;
    std::vector<std::vector<std::size_t>> cell_idx;
    for (const BenchmarkProfile &p : profiles) {
        ExperimentPoint base;
        base.label = p.name + "/bbb";
        base.scheme = Scheme::Bbb;
        base.profile = p.name;
        base.instructions = instr;
        base.seed = cli.seed;
        base_idx.push_back(sweep.add(std::move(base)));

        cell_idx.emplace_back();
        for (const Variant &v : variants) {
            ExperimentPoint pt;
            pt.label = p.name + "/" + v.name;
            pt.scheme = v.scheme;
            pt.profile = p.name;
            pt.instructions = instr;
            pt.bmf = v.bmf;
            pt.seed = cli.seed;
            pt.tag("variant", v.name);
            cell_idx.back().push_back(sweep.add(std::move(pt)));
        }
    }

    sweep.run();

    std::printf("Figure 9: CM with BMT height reduction (DBMF/SBMF) vs "
                "SP with the same, normalized to BBB "
                "(%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (const Variant &v : variants)
        std::printf(" %8s", v.name);
    std::printf("\n");

    std::vector<std::vector<double>> ratios(variants.size());
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        const double base =
            static_cast<double>(sweep.at(base_idx[pi]).sim.execTicks);
        std::printf("%-12s |", profiles[pi].name.c_str());
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            const SimulationResult &r = sweep.at(cell_idx[pi][vi]).sim;
            const double ratio = r.execTicks / base;
            ratios[vi].push_back(ratio);
            std::printf(" %8.3f", ratio);
        }
        std::printf("\n");
    }

    std::printf("\n%-12s |", "geomean");
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
        const double g = geomean(ratios[vi]);
        sweep.derive("geomean_exec_ratio", variants[vi].name, g);
        std::printf(" %8.3f", g);
    }
    std::printf("\n\npaper: sp_dbmf 1.889, cm_dbmf 1.333, sp_sbmf 3.43x "
                "total, cm_sbmf 1.566\n");

    sweep.writeJson();
    return 0;
}
