/**
 * @file
 * Reproduces Figure 7: execution time of the CM model for SecPB sizes
 * 8..512 entries, normalized to the BBB baseline at the same size.
 *
 * Expected shape (paper Section VI-D): overhead falls as the SecPB grows
 * (more coalescing of BMT root updates), with diminishing returns at
 * 32-64 entries; streaming workloads like bwaves are insensitive because
 * their NWPE does not change with capacity, while gobmk keeps improving
 * because its reuse distances straddle the buffer capacity.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main()
{
    setQuietLogging(true);
    const std::uint64_t instr = benchInstructions();
    const unsigned sizes[] = {8, 16, 32, 64, 128, 512};

    std::printf("Figure 7: CM execution time vs SecPB size, normalized "
                "to same-size BBB (%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (unsigned s : sizes)
        std::printf(" %7u", s);
    std::printf("\n");

    std::vector<std::vector<double>> ratios(std::size(sizes));
    std::vector<std::vector<double>> nwpes(std::size(sizes));

    for (const BenchmarkProfile &p : spec2006Profiles()) {
        std::printf("%-12s |", p.name.c_str());
        unsigned si = 0;
        for (unsigned s : sizes) {
            SimulationResult base = runOne(Scheme::Bbb, p, instr, s);
            SimulationResult r = runOne(Scheme::Cm, p, instr, s);
            const double ratio =
                static_cast<double>(r.execTicks) / base.execTicks;
            ratios[si].push_back(ratio);
            nwpes[si].push_back(r.nwpe);
            std::printf(" %7.3f", ratio);
            ++si;
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n%-12s |", "geomean");
    for (unsigned si = 0; si < std::size(sizes); ++si)
        std::printf(" %7.3f", geomean(ratios[si]));
    std::printf("\n%-12s |", "mean NWPE");
    for (unsigned si = 0; si < std::size(sizes); ++si)
        std::printf(" %7.2f", mean(nwpes[si]));
    std::printf("\n\npaper: 8-entry overhead 112.3%%, 512-entry 24%%; "
                "diminishing returns at 32-64 entries\n");
    return 0;
}
