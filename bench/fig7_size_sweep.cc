/**
 * @file
 * Reproduces Figure 7: execution time of the CM model for SecPB sizes
 * 8..512 entries, normalized to the BBB baseline at the same size.
 *
 * Expected shape (paper Section VI-D): overhead falls as the SecPB grows
 * (more coalescing of BMT root updates), with diminishing returns at
 * 32-64 entries; streaming workloads like bwaves are insensitive because
 * their NWPE does not change with capacity, while gobmk keeps improving
 * because its reuse distances straddle the buffer capacity.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "fig7");
    const std::uint64_t instr = cli.instructions;
    const unsigned sizes[] = {8, 16, 32, 64, 128, 512};
    const std::vector<BenchmarkProfile> profiles = cli.profilesToRun();

    Sweep sweep(cli);
    auto point = [&](Scheme s, const std::string &profile, unsigned size) {
        ExperimentPoint p;
        p.label = profile + "/" + schemeName(s) + "/entries=" +
                  std::to_string(size);
        p.scheme = s;
        p.profile = profile;
        p.instructions = instr;
        p.secpbEntries = size;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    // Per (profile, size): a same-size BBB baseline and the CM point.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> idx;
    for (const BenchmarkProfile &p : profiles) {
        idx.emplace_back();
        for (unsigned s : sizes)
            idx.back().emplace_back(point(Scheme::Bbb, p.name, s),
                                    point(Scheme::Cm, p.name, s));
    }

    sweep.run();

    std::printf("Figure 7: CM execution time vs SecPB size, normalized "
                "to same-size BBB (%llu instructions/run)\n\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-12s |", "benchmark");
    for (unsigned s : sizes)
        std::printf(" %7u", s);
    std::printf("\n");

    std::vector<std::vector<double>> ratios(std::size(sizes));
    std::vector<std::vector<double>> nwpes(std::size(sizes));
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        std::printf("%-12s |", profiles[pi].name.c_str());
        for (std::size_t si = 0; si < std::size(sizes); ++si) {
            const SimulationResult &base = sweep.at(idx[pi][si].first).sim;
            const SimulationResult &r = sweep.at(idx[pi][si].second).sim;
            const double ratio =
                static_cast<double>(r.execTicks) / base.execTicks;
            ratios[si].push_back(ratio);
            nwpes[si].push_back(r.nwpe);
            std::printf(" %7.3f", ratio);
        }
        std::printf("\n");
    }

    std::printf("\n%-12s |", "geomean");
    for (std::size_t si = 0; si < std::size(sizes); ++si) {
        const double g = geomean(ratios[si]);
        sweep.derive("geomean_exec_ratio",
                     "entries=" + std::to_string(sizes[si]), g);
        std::printf(" %7.3f", g);
    }
    std::printf("\n%-12s |", "mean NWPE");
    for (std::size_t si = 0; si < std::size(sizes); ++si) {
        const double m = mean(nwpes[si]);
        sweep.derive("mean_nwpe", "entries=" + std::to_string(sizes[si]),
                     m);
        std::printf(" %7.2f", m);
    }
    std::printf("\n\npaper: 8-entry overhead 112.3%%, 512-entry 24%%; "
                "diminishing returns at 32-64 entries\n");

    sweep.writeJson();
    return 0;
}
