/**
 * @file
 * Server-workload suite: every registry workload against every scheme.
 *
 * The SPEC-style benches answer "does the model reproduce the paper";
 * this one answers "what do the schemes cost under server write
 * patterns the paper never ran" -- WAL commits, journal trains, panic
 * dumps, multi-tenant Zipfian churn, and open-loop bursts. Per workload
 * it prints each scheme's slowdown against the insecure BBB baseline
 * plus the stall/overhead columns that explain it (store-buffer full
 * stalls, SecPB full rejects, persists per kilo-instruction).
 *
 * `--workload SPEC` narrows the suite to one selector (e.g. a replayed
 * trace via --trace-in); the default suite covers each registered
 * generator once plus a duty-cycled burst variant.
 */

#include "bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const BenchCli cli = BenchCli::parse(argc, argv, "workload_suite");
    const std::uint64_t instr = cli.instructions;

    struct Entry
    {
        std::string label;
        std::string spec;
    };
    std::vector<Entry> workloads;
    if (!cli.workload.empty()) {
        workloads.push_back(
            {WorkloadSpec::parse(cli.workload).name, cli.workload});
    } else {
        workloads = {
            {"kv_wal", "kv_wal"},
            {"fs_journal", "fs_journal"},
            {"pstore", "pstore"},
            {"zipf_mix", "zipf_mix"},
            {"kv_wal_burst",
             "kv_wal:burst_period=2000,burst_duty=0.25"},
        };
    }

    std::vector<Scheme> schemes;
    for (Scheme s : {Scheme::Sp, Scheme::NoGap, Scheme::M, Scheme::Cm,
                     Scheme::Bcm, Scheme::Obcm, Scheme::Cobcm,
                     Scheme::Secpm, Scheme::Triad, Scheme::Eadr,
                     Scheme::Stream})
        if (cli.wantScheme(s))
            schemes.push_back(s);

    Sweep sweep(cli);
    auto point = [&](Scheme s, const Entry &wl) {
        ExperimentPoint p;
        p.label = wl.label + "/" + schemeName(s);
        p.scheme = s;
        p.schemeParams = cli.schemeParams;
        p.workload = wl.spec;
        p.instructions = instr;
        p.seed = cli.seed;
        return sweep.add(std::move(p));
    };

    std::vector<std::size_t> base_idx;
    std::vector<std::vector<std::size_t>> cell_idx(workloads.size());
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        base_idx.push_back(point(Scheme::Bbb, workloads[wi]));
        for (Scheme s : schemes)
            cell_idx[wi].push_back(point(s, workloads[wi]));
    }

    sweep.run();

    std::printf("Server workload suite (%llu instructions/point, "
                "machine model: %s)\n\n",
                static_cast<unsigned long long>(instr),
                serverWorkloadProfile().name.c_str());
    std::printf("%-14s %-8s %10s %7s %7s %10s %10s\n", "workload",
                "scheme", "slowdown", "ipc", "ppti", "sb_stalls",
                "pb_rejects");
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const SimulationResult &base = sweep.at(base_idx[wi]).sim;
        std::printf("%-14s %-8s %9s%% %7.3f %7.1f %10llu %10llu\n",
                    workloads[wi].label.c_str(), schemeName(Scheme::Bbb),
                    "-", base.ipc, base.ppti,
                    static_cast<unsigned long long>(base.sbFullStalls),
                    static_cast<unsigned long long>(base.pbFullRejects));
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const SimulationResult &sim =
                sweep.at(cell_idx[wi][si]).sim;
            const double slow =
                (static_cast<double>(sim.execTicks) /
                     static_cast<double>(base.execTicks) -
                 1.0) *
                100.0;
            sweep.derive("slowdown_pct",
                         workloads[wi].label + "/" +
                             schemeName(schemes[si]),
                         slow);
            std::printf("%-14s %-8s %9.1f%% %7.3f %7.1f %10llu %10llu\n",
                        workloads[wi].label.c_str(),
                        schemeName(schemes[si]), slow, sim.ipc, sim.ppti,
                        static_cast<unsigned long long>(sim.sbFullStalls),
                        static_cast<unsigned long long>(
                            sim.pbFullRejects));
        }
    }

    sweep.writeJson();
    return 0;
}
