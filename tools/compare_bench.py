#!/usr/bin/env python3
"""Compare two perf-baseline JSON documents (bench/perf_baseline output).

Usage:
    tools/compare_bench.py BASELINE.json CANDIDATE.json
                           [--threshold PCT] [--warn-only]

Loads two ``secpb.perf_baseline`` documents and prints a per-metric table
of baseline vs. candidate with the relative change. Metric direction is
inferred from the name suffix:

  * ``*_s`` / ``*_seconds`` / ``*_wall_s``  -- wall time, lower is better
  * ``*_mops`` / ``*_mips`` / ``*_per_sec`` / ``*_ops`` / ``*_speedup``
    -- throughput,
    higher is better

A metric that moved in the bad direction by more than ``--threshold``
percent (default 10) is a regression: the script exits 1 unless
``--warn-only`` is given (CI uses warn-only while the checked-in baseline
comes from a different machine class than the runners; flip to hard-fail
once a runner-recorded baseline is committed).
"""

import argparse
import json
import sys

LOWER_BETTER = ("_s", "_seconds", "_wall_s")
HIGHER_BETTER = ("_mops", "_mips", "_per_sec", "_ops", "_speedup")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "secpb.perf_baseline":
        sys.exit(f"{path}: unexpected schema {schema!r} "
                 "(want 'secpb.perf_baseline')")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"{path}: no metrics object")
    return doc


def lower_is_better(name):
    if name.endswith(HIGHER_BETTER):
        return False
    if name.endswith(LOWER_BETTER):
        return True
    sys.exit(f"metric {name!r}: cannot infer direction from suffix "
             f"(expected one of {LOWER_BETTER + HIGHER_BETTER})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    bm, cm = base["metrics"], cand["metrics"]

    print(f"baseline:  {args.baseline} (label={base.get('label')})")
    print(f"candidate: {args.candidate} (label={cand.get('label')})")
    print(f"{'metric':<24} {'baseline':>12} {'candidate':>12} "
          f"{'change':>9}  verdict")

    regressions = []
    for name in sorted(set(bm) | set(cm)):
        if name not in bm or name not in cm:
            where = "candidate" if name not in bm else "baseline"
            print(f"{name:<24} {'-':>12} {'-':>12} {'-':>9}  "
                  f"only in {where} (skipped)")
            continue
        b, c = float(bm[name]), float(cm[name])
        if b == 0.0:
            print(f"{name:<24} {b:>12.4g} {c:>12.4g} {'-':>9}  "
                  "baseline is zero (skipped)")
            continue
        change = (c - b) / b * 100.0
        lower = lower_is_better(name)
        # Positive "improvement" percent always means "got better".
        improvement = -change if lower else change
        if improvement < -args.threshold:
            verdict = f"REGRESSION (>{args.threshold:g}% worse)"
            regressions.append(name)
        elif improvement > args.threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<24} {b:>12.4g} {c:>12.4g} {change:>+8.1f}%  "
              f"{verdict}")

    if regressions:
        kind = "warning" if args.warn_only else "error"
        print(f"{kind}: {len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:g}%: {', '.join(regressions)}",
              file=sys.stderr)
        if not args.warn_only:
            return 1
    else:
        print("all metrics within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
