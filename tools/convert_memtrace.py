#!/usr/bin/env python3
"""Convert an external memory trace to the secpb-trace v1 text format.

Bridges third-party trace sources (pin/gem5-style access logs) into
the replay front end: the output loads with --trace-in / the replay
workload. The input grammar is the least common denominator of such
logs, one access per line, '#' comments ignored:

    R <addr> [asid]        load (address hex with 0x or decimal)
    W <addr> [asid]        store
    F [asid]               fence / persist barrier
    I <count>              explicit non-memory instruction bundle

Reads beyond the last-level cache are emitted as mem-level loads (the
conservative choice for a PM study: every read misses); store values
are synthesized deterministically from the op index since access logs
rarely carry data. Store addresses are aligned down to 8 bytes. Use
--think N to insert an N-instruction bundle between accesses when the
source log has no timing at all.

Usage: tools/convert_memtrace.py IN.log OUT.trc [--think N]
"""

import argparse
import sys


def fail(msg: str) -> None:
    print(f"convert_memtrace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_int(word: str, where: str) -> int:
    try:
        return int(word, 0)
    except ValueError:
        fail(f"{where}: '{word}' is not a number")
    return 0  # unreachable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("infile", help="external access log")
    parser.add_argument("outfile", help="secpb-trace text file to write")
    parser.add_argument("--think", type=int, default=0, metavar="N",
                        help="instruction bundle inserted between "
                             "accesses (default 0: none)")
    args = parser.parse_args()

    try:
        with open(args.infile, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{args.infile}: {e}")

    ops = []
    for n, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        where = f"{args.infile}:{n}"
        kind = words[0].upper()
        if args.think > 0 and kind in ("R", "W", "F") and ops:
            ops.append(f"I {args.think}")
        if kind == "R" and len(words) in (2, 3):
            addr = parse_int(words[1], where)
            asid = parse_int(words[2], where) if len(words) == 3 else 0
            ops.append(f"L mem {addr} {asid}")
        elif kind == "W" and len(words) in (2, 3):
            addr = parse_int(words[1], where) & ~0x7
            asid = parse_int(words[2], where) if len(words) == 3 else 0
            # Deterministic synthetic payload: logs carry no data.
            value = (len(ops) * 0x9E3779B97F4A7C15) % (1 << 64)
            ops.append(f"S {addr} {value} {asid}")
        elif kind == "F" and len(words) in (1, 2):
            asid = parse_int(words[1], where) if len(words) == 2 else 0
            ops.append(f"B {asid}")
        elif kind == "I" and len(words) == 2:
            ops.append(f"I {parse_int(words[1], where)}")
        else:
            fail(f"{where}: unrecognized record '{line}'")

    if not ops:
        fail(f"{args.infile}: no accesses found")

    try:
        with open(args.outfile, "w", encoding="utf-8") as out:
            out.write("secpb-trace v1 text\n")
            out.write(f"meta source {args.infile}\n")
            out.write("meta converter convert_memtrace.py\n")
            out.write(f"ops {len(ops):020d}\n")
            out.write("\n".join(ops))
            out.write("\nend\n")
    except OSError as e:
        fail(f"{args.outfile}: {e}")

    print(f"convert_memtrace: OK: {len(ops)} ops -> {args.outfile}")


if __name__ == "__main__":
    main()
