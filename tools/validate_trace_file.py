#!/usr/bin/env python3
"""Validate a secpb-trace workload file written by --trace-record.

An independent re-implementation of the v1 format (text and binary
encodings), so a bug in the C++ writer/reader pair cannot self-certify.
Checks, in order:

  1. the header is well-formed: magic, version 1, encoding tag, meta
     entries, and the op count;
  2. every op record decodes, with a known kind, a known cache level,
     and 8-byte-aligned store addresses;
  3. the payload holds exactly the promised number of ops -- no early
     'end'/EOF, no trailing garbage after it.

Exit status 0 on success; 1 with a diagnostic on the first violation.
Usage: tools/validate_trace_file.py TRACE.trc [--min-ops N]
       [--expect-meta key=value]...
"""

import argparse
import sys

BINARY_MAGIC = b"SECPBTRC"
TEXT_MAGIC = "secpb-trace"
VERSION = 1
LEVELS = ("l1", "l2", "l3", "mem")


def fail(msg: str) -> None:
    print(f"validate_trace_file: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Counts:
    def __init__(self) -> None:
        self.instr = self.load = self.store = self.barrier = 0

    def total(self) -> int:
        return self.instr + self.load + self.store + self.barrier


def read_varint(data: bytes, pos: int, what: str) -> tuple[int, int]:
    value = 0
    for shift in range(0, 64, 7):
        if pos >= len(data):
            fail(f"truncated varint in {what}")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
    fail(f"varint overruns 64 bits in {what}")
    return 0, pos  # unreachable


def read_string(data: bytes, pos: int, what: str) -> tuple[str, int]:
    n, pos = read_varint(data, pos, what)
    if pos + n > len(data):
        fail(f"truncated meta string in {what}")
    return data[pos:pos + n].decode("utf-8", "replace"), pos + n


def check_store_alignment(addr: int, where: str) -> None:
    if addr % 8 != 0:
        fail(f"{where}: store address {addr:#x} is not 8-byte aligned")


def validate_binary(data: bytes) -> tuple[dict, Counts]:
    pos = len(BINARY_MAGIC)
    if len(data) < pos + 2 + 1 + 1 + 8:
        fail("binary header shorter than its fixed fields")
    version = int.from_bytes(data[pos:pos + 2], "little")
    if version != VERSION:
        fail(f"unsupported trace version {version} (want {VERSION})")
    pos += 2
    if data[pos] != 1:
        fail(f"binary header carries encoding tag {data[pos]}")
    n_meta = data[pos + 1]
    pos += 2
    num_ops = int.from_bytes(data[pos:pos + 8], "little")
    pos += 8

    meta = {}
    for _ in range(n_meta):
        key, pos = read_string(data, pos, "meta key")
        value, pos = read_string(data, pos, "meta value")
        meta[key] = value

    counts = Counts()
    for i in range(num_ops):
        where = f"op[{i}]"
        if pos >= len(data):
            fail(f"truncated after {i} of {num_ops} ops")
        tag = data[pos]
        pos += 1
        kind, level = tag & 0x0F, (tag >> 4) & 0x0F
        if kind > 3 or level > 3:
            fail(f"{where}: corrupt op tag {tag:#04x}")
        if kind == 0:  # instr bundle
            _, pos = read_varint(data, pos, where)
            counts.instr += 1
        elif kind == 1:  # load
            _, pos = read_varint(data, pos, where)
            _, pos = read_varint(data, pos, where)
            counts.load += 1
        elif kind == 2:  # store
            addr, pos = read_varint(data, pos, where)
            check_store_alignment(addr, where)
            if pos + 8 > len(data):
                fail(f"{where}: truncated store value")
            pos += 8
            _, pos = read_varint(data, pos, where)
            counts.store += 1
        else:  # barrier
            _, pos = read_varint(data, pos, where)
            counts.barrier += 1

    if pos != len(data):
        fail(f"{len(data) - pos} trailing bytes after the last op")
    return meta, counts


def validate_text(lines: list[str]) -> tuple[dict, Counts]:
    if not lines:
        fail("empty file, not a secpb-trace")
    header = lines[0].split()
    if len(header) != 3 or header[0] != TEXT_MAGIC:
        fail(f"bad magic line '{lines[0]}'")
    if header[1] != f"v{VERSION}":
        fail(f"unsupported trace version '{header[1]}' (want v{VERSION})")
    if header[2] != "text":
        fail(f"bad encoding tag '{header[2]}' in text header")

    meta = {}
    num_ops = None
    body = 1
    for body, line in enumerate(lines[1:], start=1):
        words = line.split(None, 2)
        if words and words[0] == "meta":
            if len(words) < 2:
                fail(f"line {body + 1}: meta line without a key")
            meta[words[1]] = words[2] if len(words) > 2 else ""
            continue
        if not words or words[0] != "ops":
            fail(f"line {body + 1}: expected 'ops <count>', got '{line}'")
        if len(words) < 2 or not words[1].isdigit():
            fail(f"line {body + 1}: malformed op count")
        num_ops = int(words[1])
        break
    if num_ops is None:
        fail("header ends without an 'ops' line")

    counts = Counts()
    saw_end = False
    for n, line in enumerate(lines[body + 1:], start=body + 2):
        if saw_end:
            fail(f"line {n}: content after 'end'")
        if not line:
            continue
        words = line.split()
        where = f"line {n}"
        if words[0] == "end":
            saw_end = True
        elif words[0] == "I" and len(words) == 2 and words[1].isdigit():
            counts.instr += 1
        elif (words[0] == "L" and len(words) == 4 and
              words[1] in LEVELS and words[2].isdigit() and
              words[3].isdigit()):
            counts.load += 1
        elif (words[0] == "S" and len(words) == 4 and
              all(w.isdigit() for w in words[1:])):
            check_store_alignment(int(words[1]), where)
            counts.store += 1
        elif words[0] == "B" and len(words) == 2 and words[1].isdigit():
            counts.barrier += 1
        else:
            fail(f"{where}: malformed op record '{line}'")
    if not saw_end:
        fail(f"no 'end' line after {counts.total()} ops")
    if counts.total() != num_ops:
        fail(f"payload holds {counts.total()} ops but header promised "
             f"{num_ops}")
    return meta, counts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="secpb-trace file (text or binary)")
    parser.add_argument("--min-ops", type=int, default=1,
                        help="require at least N ops")
    parser.add_argument("--expect-meta", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="require this meta entry (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace, "rb") as f:
            data = f.read()
    except OSError as e:
        fail(f"{args.trace}: {e}")

    if data[:len(BINARY_MAGIC)] == BINARY_MAGIC:
        encoding = "binary"
        meta, counts = validate_binary(data)
    else:
        encoding = "text"
        text = data.decode("utf-8", "replace")
        meta, counts = validate_text(text.splitlines())

    for want in args.expect_meta:
        key, _, value = want.partition("=")
        if meta.get(key) != value:
            fail(f"meta {key}={meta.get(key)!r}, expected {value!r}")

    if counts.total() < args.min_ops:
        fail(f"only {counts.total()} ops (need >= {args.min_ops})")

    print(f"validate_trace_file: OK: {encoding} v{VERSION}, "
          f"{counts.total()} ops ({counts.instr} instr, {counts.load} "
          f"load, {counts.store} store, {counts.barrier} barrier), "
          f"{len(meta)} meta entries")


if __name__ == "__main__":
    main()
