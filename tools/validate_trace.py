#!/usr/bin/env python3
"""Validate a Perfetto trace_event JSON file emitted by --trace-out.

Checks, in order:
  1. the file parses as JSON and has a "traceEvents" array;
  2. every event record carries the required keys for its phase
     ("X" needs dur, "C" needs args.value, "i" needs the scope marker);
  3. metadata (ph "M") names every (pid, tid) pair that events use;
  4. non-metadata timestamps are monotonically non-decreasing per
     (pid, tid) track -- the writer sorts by (ts, seq), so a violation
     means the emitter is broken, not the simulation.

Exit status 0 on success; 1 with a diagnostic on the first violation.
Usage: tools/validate_trace.py TRACE.json [--min-events N]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="require at least N non-metadata events")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("document has no traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")

    named_tracks = set()   # (pid, tid) pairs named by thread_name records
    named_pids = set()
    last_ts = {}           # (pid, tid) -> last seen ts
    n_real = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        for k in ("ph", "pid", "tid"):
            if k not in ev:
                fail(f"{where}: missing '{k}'")
        ph = ev["ph"]
        track = (ev["pid"], ev["tid"])

        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev["pid"])
            elif ev.get("name") == "thread_name":
                named_tracks.add(track)
            continue

        if "ts" not in ev or "name" not in ev:
            fail(f"{where}: event missing ts or name")
        if ph == "X" and "dur" not in ev:
            fail(f"{where}: span without dur")
        if ph == "C" and "value" not in ev.get("args", {}):
            fail(f"{where}: counter without args.value")
        if ph == "i" and ev.get("s") != "t":
            fail(f"{where}: instant without thread scope marker")
        if ph not in ("X", "i", "C"):
            fail(f"{where}: unknown phase '{ph}'")

        if ev["pid"] not in named_pids:
            fail(f"{where}: pid {ev['pid']} has no process_name metadata")
        if track not in named_tracks:
            fail(f"{where}: track {track} has no thread_name metadata")

        if track in last_ts and ev["ts"] < last_ts[track]:
            fail(f"{where}: ts {ev['ts']} < previous {last_ts[track]} "
                 f"on track {track}")
        last_ts[track] = ev["ts"]
        n_real += 1

    if n_real < args.min_events:
        fail(f"only {n_real} events (need >= {args.min_events})")

    dropped = doc.get("droppedEvents", 0)
    print(f"validate_trace: OK: {n_real} events on {len(last_ts)} tracks, "
          f"{dropped} dropped")


if __name__ == "__main__":
    main()
