/**
 * @file
 * Unit tests for the experiment engine's work-stealing thread pool:
 * exception propagation through futures, completion of every submitted
 * task, the zero-task and oversubscribed cases, the bounded queue, and
 * nested parallelFor arbitration (sweep jobs vs shard workers on one
 * worker budget).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "exp/thread_pool.hh"

using namespace secpb;

TEST(ThreadPool, ZeroTasksConstructsAndJoins)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    // Destructor must join idle workers without a single submit().
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExecutesEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 200; ++i)
        futs.push_back(pool.submit([&] { ++count; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit([] { throw std::runtime_error("point failed"); });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "point failed");
                throw;
            }
        },
        std::runtime_error);

    // The pool survives a throwing task and keeps executing.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OversubscribedCompletesAll)
{
    // Far more workers than cores, far more tasks than the queue bound:
    // submission must block rather than drop, and every task must run
    // exactly once.
    ThreadPool pool(16, /*queue_bound=*/8);
    EXPECT_EQ(pool.queueBound(), 8u);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 500; ++i)
        futs.push_back(pool.submit([&] {
            ++count;
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, PendingTasksDrainOnDestruction)
{
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            futs.push_back(pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                ++count;
            }));
        // Destroy with most tasks still queued.
    }
    // Destruction drains the queue: every future is ready, none broken.
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, TasksRunOnPoolThreads)
{
    ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::mutex mx;
    std::set<std::thread::id> ids;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&] {
            std::lock_guard lock(mx);
            ids.insert(std::this_thread::get_id());
        }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(ids.count(caller), 0u);
    EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, TrySubmitRefusesAtBoundInsteadOfBlocking)
{
    ThreadPool pool(1, /*queue_bound=*/2);
    std::atomic<bool> release{false};
    // Occupy the lone worker, then fill the queue to the bound.
    auto blocker = pool.submit([&] {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
    auto q1 = pool.submit([] {});
    auto q2 = pool.submit([] {});
    // Backlog is at the bound: trySubmit must decline, not wait.
    EXPECT_FALSE(pool.trySubmit([] {}).has_value());
    release = true;
    blocker.get();
    q1.get();
    q2.get();
    // With the backlog drained it accepts again.
    auto late = pool.trySubmit([] {});
    ASSERT_TRUE(late.has_value());
    late->get();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; },
                     /*max_concurrency=*/3);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // n == 0 is a no-op, not a hang.
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // The sweep/shard arbitration case: every worker is occupied by an
    // outer pool task, and each of those tasks issues its own
    // parallelFor against the same pool. Helper enlistment uses
    // trySubmit, so the inner loops degrade to their calling workers
    // instead of waiting on a queue only they could drain.
    ThreadPool pool(2, /*queue_bound=*/2);
    constexpr int kOuter = 6;
    constexpr std::size_t kInner = 64;
    std::atomic<int> inner{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < kOuter; ++i)
        futs.push_back(pool.submit([&] {
            pool.parallelFor(kInner, [&](std::size_t) { ++inner; });
        }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(inner.load(), kOuter * static_cast<int>(kInner));
}

TEST(ThreadPool, NestedParallelForOnGlobalPool)
{
    // SweepRunner jobs and shard workers both draw from the global
    // pool; two nesting levels deep must still complete and cover
    // every index exactly once.
    ThreadPool &g = ThreadPool::global();
    std::vector<std::atomic<int>> hits(96);
    g.parallelFor(4, [&](std::size_t outer) {
        g.parallelFor(hits.size() / 4, [&](std::size_t i) {
            ++hits[outer * (hits.size() / 4) + i];
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForPropagatesException)
{
    // An index failing inside a nested loop must surface at the outer
    // call site, after the remaining indices finish, with the pool
    // still usable.
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(8,
                         [&](std::size_t i) {
                             ++ran;
                             if (i == 3)
                                 throw std::runtime_error("index 3");
                         }),
        std::runtime_error);
    EXPECT_EQ(ran.load(), 8);
    pool.submit([] {}).get();
}
