/**
 * @file
 * Unit tests for the experiment engine's work-stealing thread pool:
 * exception propagation through futures, completion of every submitted
 * task, the zero-task and oversubscribed cases, and the bounded queue.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "exp/thread_pool.hh"

using namespace secpb;

TEST(ThreadPool, ZeroTasksConstructsAndJoins)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    // Destructor must join idle workers without a single submit().
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExecutesEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 200; ++i)
        futs.push_back(pool.submit([&] { ++count; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit([] { throw std::runtime_error("point failed"); });
    EXPECT_THROW(
        {
            try {
                bad.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "point failed");
                throw;
            }
        },
        std::runtime_error);

    // The pool survives a throwing task and keeps executing.
    std::atomic<int> ran{0};
    pool.submit([&] { ++ran; }).get();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OversubscribedCompletesAll)
{
    // Far more workers than cores, far more tasks than the queue bound:
    // submission must block rather than drop, and every task must run
    // exactly once.
    ThreadPool pool(16, /*queue_bound=*/8);
    EXPECT_EQ(pool.queueBound(), 8u);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 500; ++i)
        futs.push_back(pool.submit([&] {
            ++count;
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, PendingTasksDrainOnDestruction)
{
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            futs.push_back(pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                ++count;
            }));
        // Destroy with most tasks still queued.
    }
    // Destruction drains the queue: every future is ready, none broken.
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, TasksRunOnPoolThreads)
{
    ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::mutex mx;
    std::set<std::thread::id> ids;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 32; ++i)
        futs.push_back(pool.submit([&] {
            std::lock_guard lock(mx);
            ids.insert(std::this_thread::get_id());
        }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(ids.count(caller), 0u);
    EXPECT_GE(ids.size(), 1u);
}
