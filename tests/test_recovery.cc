/**
 * @file
 * Crash-recovery property tests: the heart of the correctness argument.
 *
 * Property (paper Section III-A, the two PLP invariants): for ANY scheme
 * and ANY crash point, after the battery-powered drain the recovery
 * observer sees exactly the persist oracle's state, with every MAC and
 * the BMT root verifying. The early/late strategies must be
 * *observationally equivalent* (Figure 3's claim).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
cfgFor(Scheme scheme, unsigned entries = 16)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = entries;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

struct CrashCase
{
    Scheme scheme;
    std::uint64_t seed;
};

class RandomCrash : public ::testing::TestWithParam<CrashCase>
{};

std::string
crashCaseName(const ::testing::TestParamInfo<CrashCase> &info)
{
    return std::string(schemeName(info.param.scheme)) + "_seed" +
           std::to_string(info.param.seed);
}

std::vector<CrashCase>
allCrashCases()
{
    std::vector<CrashCase> cases;
    for (Scheme s : {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm, Scheme::Cm,
                     Scheme::M, Scheme::NoGap, Scheme::Sp, Scheme::SecWt})
        for (std::uint64_t seed : {11ull, 22ull, 33ull})
            cases.push_back({s, seed});
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Property, RandomCrash,
                         ::testing::ValuesIn(allCrashCases()),
                         crashCaseName);

TEST_P(RandomCrash, RecoveryMatchesOracleAtRandomCrashPoints)
{
    const CrashCase &c = GetParam();
    Rng rng(c.seed * 977);
    // Several crash points per case, drawn over the run's duration.
    for (int trial = 0; trial < 4; ++trial) {
        SecPbSystem sys(cfgFor(c.scheme));
        const BenchmarkProfile &p = profileByName(
            trial % 2 ? "gamess" : "omnetpp");
        SyntheticGenerator gen(p, 15'000, c.seed);
        sys.start(gen);
        const Tick crash_at = 200 + rng.below(40'000);
        sys.runUntil(crash_at);
        CrashReport cr = sys.crashNow();
        ASSERT_TRUE(cr.recovered)
            << schemeName(c.scheme) << " seed " << c.seed << " @ "
            << crash_at;
        ASSERT_EQ(cr.recovery.plaintextMismatches, 0u);
        ASSERT_EQ(cr.recovery.macFailures, 0u);
        ASSERT_EQ(cr.recovery.bmtFailures, 0u);
    }
}

TEST(Recovery, EarlyAndLateStrategiesObservationallyEquivalent)
{
    // Figure 3's claim: after crash + battery drain, the observable
    // plaintext state is identical regardless of strategy. Run the same
    // trace under NoGap (early) and COBCM (late), crash both at the same
    // persist count, and compare recovered plaintext block by block.
    auto recovered_state = [](Scheme s) {
        SecPbSystem sys(cfgFor(s));
        ScriptedGenerator gen;
        Rng rng(5);
        for (int i = 0; i < 60; ++i)
            gen.store(blockAlign(rng.below(1 << 20)) + 8 * rng.below(8),
                      rng.next());
        sys.run(gen);
        CrashReport cr = sys.crashNow();
        EXPECT_TRUE(cr.recovered);
        std::map<Addr, BlockData> state;
        for (Addr a : sys.oracle().touchedBlocks())
            state[a] = sys.oracle().blockContent(a);
        return state;
    };
    EXPECT_EQ(recovered_state(Scheme::NoGap),
              recovered_state(Scheme::Cobcm));
}

TEST(Recovery, IntegrityOnlyScanPassesOnCleanPm)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 20 * BlockSize; a += BlockSize)
        gen.store(a, a * 3 + 1);
    sys.run(gen);
    sys.crashNow();
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r = verifier.verifyIntegrity(sys.pm(), sys.tree());
    EXPECT_TRUE(r.ok());
    EXPECT_GT(r.blocksChecked, 0u);
}

TEST(Recovery, MacTamperLocalizedToOneBlock)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 20 * BlockSize; a += BlockSize)
        gen.store(a, a);
    sys.run(gen);
    sys.crashNow();
    sys.pm().tamperMac(5 * BlockSize, 0x1);
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_EQ(r.macFailures, 1u);
    EXPECT_EQ(r.bmtFailures, 0u);
}

TEST(Recovery, CounterTamperBreaksWholePageBlocks)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen;
    // Two blocks in page 0, one in page 1.
    gen.store(0x000, 1).store(0x040, 2).store(PageSize, 3);
    sys.run(gen);
    sys.crashNow();
    sys.pm().tamperCounter(0, 0);
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    // Both page-0 blocks fail BMT verification; page 1 is clean.
    EXPECT_EQ(r.bmtFailures, 2u);
}

TEST(Recovery, BatteryFailureLeavesDetectableInconsistency)
{
    // Why battery sizing matters: if the battery fails to drain the
    // SecPB (we simply don't call crashDrainAll), PM may hold persisted
    // counters/BMT state for data that never arrived -- recovery must
    // NOT silently succeed against the oracle.
    SecPbSystem sys(cfgFor(Scheme::NoGap, 8));
    ScriptedGenerator gen;
    // Force drains so early tuple state reaches PM, then keep residents.
    for (Addr a = 0; a < 14 * BlockSize; a += BlockSize)
        gen.store(a, 0xC0FFEE00 + a);
    sys.run(gen);
    ASSERT_GT(sys.secpb().occupancy(), 0u);
    // NO battery drain here.
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_FALSE(r.ok());
}

TEST(Recovery, CrashWorkReflectsSchemeLaziness)
{
    // COBCM defers everything: its battery does strictly more kinds of
    // work than NoGap's at the same crash point.
    auto work_for = [](Scheme s) {
        SecPbSystem sys(cfgFor(s, 16));
        ScriptedGenerator gen;
        for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
            gen.store(a, a);
        sys.run(gen);
        return sys.crashNow().work;
    };
    const CrashWork lazy = work_for(Scheme::Cobcm);
    const CrashWork eager = work_for(Scheme::NoGap);
    EXPECT_GT(lazy.countersIncremented, 0u);
    EXPECT_GT(lazy.otpsGenerated, 0u);
    EXPECT_GT(lazy.bmtRootUpdates, 0u);
    EXPECT_GT(lazy.macsComputed, 0u);
    EXPECT_EQ(eager.countersIncremented, 0u);
    EXPECT_EQ(eager.otpsGenerated, 0u);
    EXPECT_EQ(eager.bmtRootUpdates, 0u);
    EXPECT_EQ(eager.macsComputed, 0u);
}

TEST(Recovery, ActualEnergyOrderedBySchemeLaziness)
{
    auto energy_for = [](Scheme s) {
        SecPbSystem sys(cfgFor(s, 16));
        ScriptedGenerator gen;
        for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
            gen.store(a, a);
        sys.run(gen);
        return sys.crashNow().actualEnergyJ;
    };
    EXPECT_GT(energy_for(Scheme::Cobcm), energy_for(Scheme::Cm));
    EXPECT_GT(energy_for(Scheme::Cm), energy_for(Scheme::Bbb));
}

TEST(Recovery, DoubleCrashIsIdempotent)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
        gen.store(a, a + 9);
    sys.run(gen);
    CrashReport first = sys.crashNow();
    EXPECT_TRUE(first.recovered);
    CrashReport second = sys.crashNow();
    EXPECT_TRUE(second.recovered);
    EXPECT_EQ(second.work.entriesDrained, 0u);  // nothing left to drain
}

TEST(Recovery, DrainLatencyOrderedBySchemeLaziness)
{
    // The observer-blocked window (Section III-B blocking/warning
    // policies) grows with deferred work: COBCM > CM > NoGap.
    auto window_for = [](Scheme s) {
        SecPbSystem sys(cfgFor(s, 16));
        ScriptedGenerator gen;
        for (Addr a = 0; a < 12 * BlockSize; a += BlockSize)
            gen.store(a, a);
        sys.run(gen);
        return sys.crashNow().drainLatency;
    };
    const Cycles lazy = window_for(Scheme::Cobcm);
    const Cycles mid = window_for(Scheme::Cm);
    const Cycles eager = window_for(Scheme::NoGap);
    EXPECT_GT(lazy, mid);
    // CM and NoGap are within noise of each other (NoGap trades compute
    // for extra dirty-MDC flushes); both are far below COBCM.
    EXPECT_GE(static_cast<double>(mid) * 1.1,
              static_cast<double>(eager));
    EXPECT_GT(eager, 0u);  // even NoGap must move the entries out
}

TEST(Recovery, DrainLatencyScalesWithResidency)
{
    auto window_entries = [](unsigned stores) {
        SystemConfig cfg = cfgFor(Scheme::Cobcm, 64);
        SecPbSystem sys(cfg);
        ScriptedGenerator gen;
        for (Addr a = 0; a < stores * BlockSize; a += BlockSize)
            gen.store(a, a);
        sys.run(gen);
        return sys.crashNow().drainLatency;
    };
    EXPECT_GT(window_entries(40), window_entries(5));
}

TEST(Recovery, DrainLatencyNsMatchesClock)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm, 16));
    ScriptedGenerator gen;
    gen.store(0x0, 1).store(0x40, 2);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    // 4 GHz: 1 cycle = 0.25 ns.
    EXPECT_NEAR(cr.drainLatencyNs, cr.drainLatency * 0.25, 1e-6);
}
