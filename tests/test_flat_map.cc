/**
 * @file
 * Unit tests for the open-addressing FlatMap/FlatSet (mem/flat_map.hh)
 * that back the simulator's hot tables. The probing, backward-shift
 * deletion, and growth mechanics are exercised directly -- including a
 * degenerate all-collide hash that forces wraparound clusters at the end
 * of the slot array -- plus the determinism contract the fixed-seed
 * byte-identity tests rely on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mem/flat_map.hh"

using namespace secpb;

namespace
{

/** Degenerate hash: every key targets the LAST slot, so probe clusters
 *  always wrap around the end of the power-of-two array. */
struct ColliderHash
{
    constexpr std::uint64_t
    operator()(std::uint64_t) const
    {
        return ~0ULL;
    }
};

} // namespace

TEST(FlatMap, InsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.erase(42));

    EXPECT_TRUE(m.insert(42, 7));
    EXPECT_FALSE(m.insert(42, 9));  // duplicate: keeps the first value
    ASSERT_NE(m.find(42), nullptr);
    EXPECT_EQ(*m.find(42), 7);
    EXPECT_TRUE(m.contains(42));
    EXPECT_EQ(m.size(), 1u);

    *m.find(42) = 11;
    EXPECT_EQ(*m.find(42), 11);

    EXPECT_TRUE(m.erase(42));
    EXPECT_FALSE(m.contains(42));
    EXPECT_TRUE(m.empty());
}

TEST(FlatMap, SubscriptDefaultConstructs)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[5], 0u);
    m[5] = 99;
    EXPECT_EQ(m[5], 99u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ProbeClusterWrapsAroundArrayEnd)
{
    // All keys hash to the last slot: key0 lands there, every later key
    // wraps to the front of the array. find() must follow the wrapped
    // cluster and erase() must backward-shift across the boundary.
    FlatMap<std::uint64_t, std::uint64_t, ColliderHash> m;
    for (std::uint64_t k = 0; k < 8; ++k)
        ASSERT_TRUE(m.insert(k, k * 10));
    for (std::uint64_t k = 0; k < 8; ++k) {
        ASSERT_NE(m.find(k), nullptr) << "key " << k;
        EXPECT_EQ(*m.find(k), k * 10);
    }

    // Erase from the middle of the wrapped cluster; everything else must
    // remain findable (backward-shift, no tombstones).
    EXPECT_TRUE(m.erase(3));
    EXPECT_EQ(m.find(3), nullptr);
    for (std::uint64_t k = 0; k < 8; ++k) {
        if (k == 3)
            continue;
        ASSERT_NE(m.find(k), nullptr) << "key " << k << " lost after erase";
        EXPECT_EQ(*m.find(k), k * 10);
    }

    // Erase the head of the cluster (the only key at its ideal slot).
    EXPECT_TRUE(m.erase(0));
    for (std::uint64_t k : {1u, 2u, 4u, 5u, 6u, 7u})
        EXPECT_TRUE(m.contains(k)) << "key " << k;
    EXPECT_EQ(m.size(), 6u);
}

TEST(FlatMap, GrowsAtThreeQuarterLoadWithPowerOfTwoCapacity)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_EQ(m.capacity(), 0u);
    m.insert(0, 0);
    EXPECT_EQ(m.capacity(), 16u);

    // 12/16 = 3/4 exactly still fits; the 13th insert must double.
    for (std::uint64_t k = 1; k < 12; ++k)
        m.insert(k, 0);
    EXPECT_EQ(m.capacity(), 16u);
    m.insert(12, 0);
    EXPECT_EQ(m.capacity(), 32u);

    // Nothing lost across the rehash.
    for (std::uint64_t k = 0; k < 13; ++k)
        EXPECT_TRUE(m.contains(k)) << "key " << k;

    for (std::uint64_t k = 13; k < 1000; ++k)
        m.insert(k, static_cast<int>(k));
    EXPECT_EQ(m.size(), 1000u);
    EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u) << "not a power of two";
    for (std::uint64_t k = 0; k < 1000; ++k)
        ASSERT_TRUE(m.contains(k)) << "key " << k;
}

TEST(FlatMap, ReservePreventsGrowth)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(100);
    const std::size_t cap = m.capacity();
    EXPECT_GE(cap * 3, 100u * 4);  // 100 entries fit under 3/4 load
    for (std::uint64_t k = 0; k < 100; ++k)
        m.insert(k, 0);
    EXPECT_EQ(m.capacity(), cap) << "reserve() should pre-size the table";

    // reserve() never shrinks.
    m.reserve(10);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, ClearRetainsCapacity)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 50; ++k)
        m.insert(k, 1);
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(7), nullptr);
    EXPECT_TRUE(m.insert(7, 2));
    EXPECT_EQ(*m.find(7), 2);
}

TEST(FlatMap, ForEachVisitsEveryEntryExactlyOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::uint64_t expect_sum = 0;
    for (std::uint64_t k = 0; k < 200; ++k) {
        m.insert(k * 3, k);
        expect_sum += k;
    }
    std::uint64_t sum = 0;
    std::size_t visits = 0;
    m.forEach([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_EQ(k, v * 3);
        sum += v;
        ++visits;
    });
    EXPECT_EQ(visits, m.size());
    EXPECT_EQ(sum, expect_sum);
}

TEST(FlatMap, SortedKeysIsSortedAndComplete)
{
    FlatMap<std::uint64_t, int> m;
    // Insert in a scrambled order; the canonical dump must come out
    // sorted regardless of slot layout.
    for (std::uint64_t k : {9u, 1u, 27u, 4u, 0u, 100u, 55u, 3u})
        m.insert(k, 0);
    m.erase(4);
    const std::vector<std::uint64_t> keys = m.sortedKeys();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{0, 1, 3, 9, 27, 55, 100}));
}

TEST(FlatMap, IterationOrderIsAPureFunctionOfHistory)
{
    // Two tables built by the same insert/erase history must iterate
    // identically -- this is the determinism contract the fixed-seed
    // byte-identity tests lean on.
    auto build = [] {
        FlatMap<std::uint64_t, std::uint64_t> m;
        std::uint64_t x = 12345;
        for (int i = 0; i < 300; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            m.insert(x >> 32, static_cast<std::uint64_t>(i));
            if (i % 3 == 0)
                m.erase((x >> 32) ^ 1);
        }
        return m;
    };
    FlatMap<std::uint64_t, std::uint64_t> a = build();
    FlatMap<std::uint64_t, std::uint64_t> b = build();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> va, vb;
    a.forEach([&](std::uint64_t k, std::uint64_t v) {
        va.emplace_back(k, v);
    });
    b.forEach([&](std::uint64_t k, std::uint64_t v) {
        vb.emplace_back(k, v);
    });
    EXPECT_EQ(va, vb);
    EXPECT_EQ(a.sortedKeys(), b.sortedKeys());
}

TEST(FlatMap, RandomizedAgainstReferenceModel)
{
    // Drive the map and a trivially-correct model with the same pseudo
    // random op stream; they must agree at every step. Catches probe or
    // backward-shift bugs no hand-picked case anticipates.
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> model;
    auto model_find = [&](std::uint64_t k) -> std::uint64_t * {
        for (auto &[mk, mv] : model)
            if (mk == k)
                return &mv;
        return nullptr;
    };
    std::uint64_t x = 99;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t key = (x >> 33) % 257;  // force collisions
        const std::uint64_t op = (x >> 20) % 3;
        if (op == 0) {
            const bool inserted = m.insert(key, i);
            EXPECT_EQ(inserted, model_find(key) == nullptr);
            if (inserted)
                model.emplace_back(key, i);
        } else if (op == 1) {
            const bool erased = m.erase(key);
            EXPECT_EQ(erased, model_find(key) != nullptr);
            if (erased)
                model.erase(std::find_if(model.begin(), model.end(),
                                         [&](const auto &p) {
                                             return p.first == key;
                                         }));
        } else {
            const std::uint64_t *v = m.find(key);
            const std::uint64_t *mv = model_find(key);
            ASSERT_EQ(v == nullptr, mv == nullptr) << "key " << key;
            if (v)
                EXPECT_EQ(*v, *mv);
        }
        ASSERT_EQ(m.size(), model.size());
    }
}

TEST(FlatSet, BasicsAndWraparound)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(1), 0u);
    EXPECT_TRUE(s.insert(1));
    EXPECT_FALSE(s.insert(1));
    EXPECT_EQ(s.count(1), 1u);
    EXPECT_TRUE(s.contains(1));
    EXPECT_TRUE(s.erase(1));
    EXPECT_FALSE(s.erase(1));
    EXPECT_TRUE(s.empty());

    FlatSet<std::uint64_t, ColliderHash> c;
    for (std::uint64_t k = 0; k < 10; ++k)
        c.insert(k);
    c.erase(5);
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_EQ(c.contains(k), k != 5) << "key " << k;
    std::size_t visited = 0;
    c.forEach([&](std::uint64_t) { ++visited; });
    EXPECT_EQ(visited, 9u);
    EXPECT_EQ(c.sortedKeys(),
              (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}
