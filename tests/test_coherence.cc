/**
 * @file
 * Tests for the multi-core SecPB directory (paper Section IV-C):
 * migration on remote writes, flush on remote reads, and the
 * no-replication invariant under random traffic.
 */

#include <gtest/gtest.h>

#include "secpb/coherence.hh"
#include "sim/rng.hh"

using namespace secpb;

namespace
{

struct Fixture
{
    StatGroup g{"g"};
    SecPbDirectory dir{4, g};
};

} // namespace

TEST(Coherence, FirstWriteAllocates)
{
    Fixture f;
    EXPECT_EQ(f.dir.write(0, 0x100), SecPbDirectory::WriteAction::Allocate);
    EXPECT_EQ(f.dir.owner(0x100), 0u);
}

TEST(Coherence, RepeatWriteIsLocalHit)
{
    Fixture f;
    f.dir.write(1, 0x100);
    EXPECT_EQ(f.dir.write(1, 0x108),
              SecPbDirectory::WriteAction::LocalHit);
    EXPECT_DOUBLE_EQ(f.dir.statLocalHits.value(), 1.0);
}

TEST(Coherence, RemoteWriteMigrates)
{
    Fixture f;
    f.dir.write(0, 0x100);
    EXPECT_EQ(f.dir.write(2, 0x100),
              SecPbDirectory::WriteAction::Migrate);
    EXPECT_EQ(f.dir.owner(0x100), 2u);
    EXPECT_DOUBLE_EQ(f.dir.statMigrations.value(), 1.0);
    // No replication: core 0 no longer owns it.
    EXPECT_TRUE(f.dir.blocksOwnedBy(0).empty());
}

TEST(Coherence, RemoteReadFlushesOwner)
{
    Fixture f;
    f.dir.write(0, 0x200);
    EXPECT_TRUE(f.dir.read(3, 0x200));
    EXPECT_EQ(f.dir.owner(0x200), NoOwner);
    EXPECT_DOUBLE_EQ(f.dir.statRemoteReadFlushes.value(), 1.0);
}

TEST(Coherence, LocalReadDoesNotFlush)
{
    Fixture f;
    f.dir.write(0, 0x200);
    EXPECT_FALSE(f.dir.read(0, 0x200));
    EXPECT_EQ(f.dir.owner(0x200), 0u);
}

TEST(Coherence, ReadOfUntrackedBlockIsQuiet)
{
    Fixture f;
    EXPECT_FALSE(f.dir.read(1, 0x300));
    EXPECT_EQ(f.dir.numTracked(), 0u);
}

TEST(Coherence, DrainRemovesOwnership)
{
    Fixture f;
    f.dir.write(2, 0x400);
    f.dir.drained(2, 0x400);
    EXPECT_EQ(f.dir.owner(0x400), NoOwner);
}

TEST(Coherence, DrainByNonOwnerPanics)
{
    Fixture f;
    f.dir.write(2, 0x400);
    EXPECT_DEATH(f.dir.drained(1, 0x400), "does not own");
}

TEST(Coherence, OutOfRangeCorePanics)
{
    Fixture f;
    EXPECT_DEATH(f.dir.write(7, 0x100), "out of range");
}

TEST(Coherence, SingleOwnerInvariantUnderRandomTraffic)
{
    // Property test: random reads/writes/drains from 4 cores; at every
    // step each block has at most one owner and accessors agree.
    Fixture f;
    Rng rng(2024);
    std::unordered_map<Addr, CoreId> model;
    for (int step = 0; step < 20'000; ++step) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        const Addr addr = blockAlign(rng.below(64)) * BlockSize;
        const double action = rng.uniform();
        if (action < 0.5) {
            f.dir.write(core, addr);
            model[addr] = core;
        } else if (action < 0.9) {
            const CoreId before = f.dir.owner(addr);
            const bool flushed = f.dir.read(core, addr);
            if (flushed) {
                ASSERT_NE(before, core);
                model.erase(addr);
            }
        } else {
            if (f.dir.owner(addr) != NoOwner) {
                f.dir.drained(f.dir.owner(addr), addr);
                model.erase(addr);
            }
        }
        ASSERT_TRUE(f.dir.invariantSingleOwner());
        const CoreId expect =
            model.count(addr) ? model[addr] : NoOwner;
        ASSERT_EQ(f.dir.owner(addr), expect);
    }
}

TEST(Coherence, BlocksOwnedByEnumerates)
{
    Fixture f;
    f.dir.write(1, 0x000);
    f.dir.write(1, 0x040);
    f.dir.write(2, 0x080);
    EXPECT_EQ(f.dir.blocksOwnedBy(1).size(), 2u);
    EXPECT_EQ(f.dir.blocksOwnedBy(2).size(), 1u);
    EXPECT_TRUE(f.dir.blocksOwnedBy(3).empty());
}
