/**
 * @file
 * Tests for the multi-core SecPB coherence primitives (paper Section
 * IV-C): the page directory's owner/residence maps and the per-core
 * admission gates that feed the epoch-barrier engine.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "secpb/coherence.hh"
#include "sim/rng.hh"

using namespace secpb;

namespace
{

struct Fixture
{
    StatGroup g{"g"};
    PageDirectory dir{4, g};
};

} // namespace

TEST(Coherence, UntouchedPageHasNoOwnerOrResidence)
{
    Fixture f;
    EXPECT_EQ(f.dir.owner(0x100), NoOwner);
    EXPECT_EQ(f.dir.residence(0x100), NoOwner);
    EXPECT_EQ(f.dir.numTracked(), 0u);
}

TEST(Coherence, OwnerIsPageGranular)
{
    Fixture f;
    f.dir.setOwner(coherencePage(0x100), 2);
    // Any address in the same 4 KB page shares the owner.
    EXPECT_EQ(f.dir.owner(0x100), 2u);
    EXPECT_EQ(f.dir.owner(0xFF8), 2u);
    EXPECT_EQ(f.dir.owner(0x1000), NoOwner);  // next page
}

TEST(Coherence, ClearOwnerKeepsResidence)
{
    // A remote read clears write permission but the durable state stays
    // where it was flushed -- residence is sticky.
    Fixture f;
    const std::uint64_t page = coherencePage(0x2000);
    f.dir.setOwner(page, 1);
    f.dir.setResidence(page, 1);
    f.dir.clearOwner(page);
    EXPECT_EQ(f.dir.ownerOfPage(page), NoOwner);
    EXPECT_EQ(f.dir.residenceOfPage(page), 1u);
}

TEST(Coherence, PagesOwnedByEnumeratesSorted)
{
    Fixture f;
    f.dir.setOwner(7, 1);
    f.dir.setOwner(3, 1);
    f.dir.setOwner(5, 2);
    const std::vector<std::uint64_t> mine = f.dir.pagesOwnedBy(1);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], 3u);
    EXPECT_EQ(mine[1], 7u);
    EXPECT_EQ(f.dir.pagesOwnedBy(2).size(), 1u);
    EXPECT_TRUE(f.dir.pagesOwnedBy(3).empty());
}

TEST(Coherence, OutOfRangeCorePanics)
{
    Fixture f;
    EXPECT_DEATH(f.dir.setOwner(1, 7), "out of range");
}

TEST(Coherence, GateAllowsOwnedPageOnly)
{
    Fixture f;
    CoherenceGate gate(f.dir, 0);
    const std::uint64_t page = coherencePage(0x3000);
    EXPECT_FALSE(gate.allows(0x3000, 10));  // unowned: denied + filed
    f.dir.setOwner(page, 0);
    EXPECT_TRUE(gate.allows(0x3000, 20));
    f.dir.setOwner(page, 1);
    EXPECT_FALSE(gate.allows(0x3000, 30));  // remote-owned: denied
}

TEST(Coherence, GateDeduplicatesRequestsAndKeepsFirstTick)
{
    Fixture f;
    CoherenceGate gate(f.dir, 0);
    EXPECT_FALSE(gate.allows(0x3000, 10));
    EXPECT_FALSE(gate.allows(0x3008, 25));  // same page, later tick
    EXPECT_FALSE(gate.allows(0x5000, 30));  // different page
    ASSERT_EQ(gate.pending().size(), 2u);
    // First denial's tick orders the request; per-gate seq breaks ties.
    EXPECT_EQ(gate.pending()[0].page, coherencePage(0x3000));
    EXPECT_EQ(gate.pending()[0].tick, 10u);
    EXPECT_EQ(gate.pending()[0].seq, 0u);
    EXPECT_EQ(gate.pending()[1].page, coherencePage(0x5000));
    EXPECT_EQ(gate.pending()[1].seq, 1u);
}

TEST(Coherence, RetireRequestAllowsRefiling)
{
    Fixture f;
    CoherenceGate gate(f.dir, 0);
    EXPECT_FALSE(gate.allows(0x3000, 10));
    gate.retireRequest(coherencePage(0x3000));
    EXPECT_TRUE(gate.pending().empty());
    // Still unowned: the next store files a fresh request.
    EXPECT_FALSE(gate.allows(0x3000, 50));
    ASSERT_EQ(gate.pending().size(), 1u);
    EXPECT_EQ(gate.pending()[0].tick, 50u);
}

TEST(Coherence, StopMarkRejectsEvenTheOwner)
{
    // A pending transfer quiesces the page: the owner itself is denied
    // until the barrier completes the hand-off.
    Fixture f;
    CoherenceGate gate(f.dir, 0);
    const std::uint64_t page = coherencePage(0x4000);
    f.dir.setOwner(page, 0);
    EXPECT_TRUE(gate.allows(0x4000, 10));
    gate.markStop(page);
    EXPECT_TRUE(gate.stopMarked(page));
    EXPECT_FALSE(gate.allows(0x4000, 20));
    gate.clearStop(page);
    gate.retireRequest(page);
    EXPECT_TRUE(gate.allows(0x4000, 30));
}

TEST(Coherence, SingleOwnerInvariantUnderRandomTraffic)
{
    // Property test: random ownership churn from 4 cores; at every step
    // each page has at most one in-range owner and accessors agree with
    // a model map.
    Fixture f;
    Rng rng(2024);
    std::unordered_map<std::uint64_t, CoreId> model;
    for (int step = 0; step < 20'000; ++step) {
        const CoreId core = static_cast<CoreId>(rng.below(4));
        const std::uint64_t page = rng.below(64);
        const double action = rng.uniform();
        if (action < 0.6) {
            f.dir.setOwner(page, core);
            f.dir.setResidence(page, core);
            model[page] = core;
        } else if (model.count(page)) {
            f.dir.clearOwner(page);
            model.erase(page);
        }
        ASSERT_TRUE(f.dir.invariantSingleOwner());
        const CoreId expect = model.count(page) ? model[page] : NoOwner;
        ASSERT_EQ(f.dir.ownerOfPage(page), expect);
    }
}
