/**
 * @file
 * Unit tests for the timed BMT walker: latency, pipelining, same-leaf
 * merging, functional consistency, and BMF height reduction.
 */

#include <gtest/gtest.h>

#include "metadata/walker.hh"

using namespace secpb;

namespace
{

struct Fixture
{
    explicit Fixture(BmfMode bmf = BmfMode::None,
                     std::uint64_t leaves = 1ULL << 21)
        : tree(leaves)
    {
        WalkerConfig wcfg;
        wcfg.bmfMode = bmf;
        walker = std::make_unique<BmtWalker>(eq, wcfg, layout, tree,
                                             bmtCache, pcm, lat, g);
    }

    EventQueue eq;
    StatGroup g{"g"};
    MetadataLayout layout{8ULL << 30};
    BonsaiMerkleTree tree;
    PcmConfig pcmCfg{220, 600, 32, 64, 128};
    PcmModel pcm{eq, pcmCfg, g};
    MetadataCache bmtCache{"bmt$", CacheGeometry{128 * 1024, 8, 64}, 2,
                           pcm, g, false};
    CryptoLatencies lat;
    std::unique_ptr<BmtWalker> walker;
};

} // namespace

TEST(Walker, FullWalkLatencyWithWarmCache)
{
    Fixture f;
    // Warm the node path.
    f.walker->update(0x1000, 1);
    f.eq.run();
    Tick start = f.eq.curTick();
    Tick done = 0;
    f.walker->update(0x1000, 2, [&] { done = f.eq.curTick(); });
    f.eq.run();
    // leaf hash + 7 levels x (2-cycle cache hit + 40-cycle hash).
    EXPECT_EQ(done - start, 40u + 7u * 42u);
}

TEST(Walker, ColdWalkPaysPcmFetches)
{
    Fixture f;
    Tick done = 0;
    f.walker->update(0x1000, 1, [&] { done = f.eq.curTick(); });
    f.eq.run();
    EXPECT_GT(done, 40u + 7u * 42u);  // misses add PCM reads
    EXPECT_GT(f.pcm.numReads(), 0u);
}

TEST(Walker, FunctionalUpdateAppliesImmediately)
{
    Fixture f;
    const Digest r0 = f.tree.root();
    f.walker->update(0x2000, 0x99);
    EXPECT_NE(f.tree.root(), r0);  // before any event runs
    EXPECT_TRUE(f.tree.verifyLeaf(f.layout.pageIndex(0x2000), 0x99));
}

TEST(Walker, IndependentLeavesPipeline)
{
    Fixture f;
    // Warm both paths.
    f.walker->update(0x0000, 1);
    f.walker->update(100 * PageSize, 1);
    f.eq.run();
    const Tick start = f.eq.curTick();
    const Tick c1 = f.walker->update(0x0000, 2);
    const Tick c2 = f.walker->update(100 * PageSize, 2);
    // Second walk issues one initiation interval later, not one full
    // walk later.
    EXPECT_EQ(c2 - c1, 40u);
    EXPECT_LT(c2 - start, 2u * (40u + 7u * 42u));
}

TEST(Walker, SameLeafUpdatesMerge)
{
    Fixture f;
    f.walker->update(0x3000, 1);
    f.eq.run();
    const Tick c1 = f.walker->update(0x3000, 2);
    const Tick c2 = f.walker->update(0x3040, 3);  // same page -> same leaf
    EXPECT_EQ(c1, c2);
    EXPECT_DOUBLE_EQ(f.walker->statMergedUpdates.value(), 1.0);
    // Only the real walks count as root updates (Fig. 8 metric).
    EXPECT_EQ(f.walker->rootUpdates(), 2u);
}

TEST(Walker, MergeWindowClosesAtCompletion)
{
    Fixture f;
    f.walker->update(0x3000, 1);
    f.eq.run();  // walk retired
    f.walker->update(0x3000, 2);
    EXPECT_DOUBLE_EQ(f.walker->statMergedUpdates.value(), 0.0);
    EXPECT_EQ(f.walker->rootUpdates(), 2u);
}

TEST(Walker, UpdateAtCompletionTickDoesNotMerge)
{
    Fixture f;
    // Warm the node path so the next walk takes the deterministic
    // warm-cache latency (leaf hash + 7 x (hit + hash) = 334 cycles).
    f.walker->update(0x3000, 1);
    f.eq.run();
    const Tick start = f.eq.curTick();
    const Tick completion = start + 40u + 7u * 42u;
    // Schedule the probe *before* the walk exists: at the walk's
    // completion tick it runs ahead of the walk's own in-flight cleanup
    // event (FIFO at the same tick), so the in-flight entry is still
    // present with completion == now. The merge window is strictly
    // `completion > now`: the root write retires this very tick, so the
    // probe's digest would be lost if it merged. It must walk afresh.
    BmtWalker::UpdateTiming probed{};
    f.eq.schedule(completion,
                  [&] { probed = f.walker->updateTimed(0x3000, 3); });
    const Tick c1 = f.walker->update(0x3000, 2);
    ASSERT_EQ(c1, completion);
    f.eq.run();
    EXPECT_FALSE(probed.merged);
    EXPECT_GT(probed.completion, completion);
    EXPECT_DOUBLE_EQ(f.walker->statMergedUpdates.value(), 0.0);
    EXPECT_EQ(f.walker->rootUpdates(), 3u);
}

TEST(Walker, MergedUpdateStillFunctionallyApplied)
{
    Fixture f;
    f.walker->update(0x3000, 1);
    f.walker->update(0x3000, 2);  // merged
    EXPECT_TRUE(f.tree.verifyLeaf(f.layout.pageIndex(0x3000), 2));
    EXPECT_FALSE(f.tree.verifyLeaf(f.layout.pageIndex(0x3000), 1));
}

TEST(Walker, DbmfWalksTwoLevelsOnRootCacheHit)
{
    Fixture f(BmfMode::Dbmf);
    EXPECT_EQ(f.walker->effectiveLevels(), 2u);
    // First update misses the root cache -> full walk.
    f.walker->update(0x4000, 1);
    f.eq.run();
    EXPECT_DOUBLE_EQ(f.walker->statFullWalks.value(), 1.0);
    // Second update to the same subtree hits -> reduced walk.
    Tick start = f.eq.curTick();
    Tick done = 0;
    f.walker->update(0x4000, 2, [&] { done = f.eq.curTick(); });
    f.eq.run();
    EXPECT_DOUBLE_EQ(f.walker->statRootCacheHits.value(), 1.0);
    EXPECT_EQ(done - start, 40u + 2u * 42u);
}

TEST(Walker, SbmfWalksFiveLevels)
{
    Fixture f(BmfMode::Sbmf);
    EXPECT_EQ(f.walker->effectiveLevels(), 5u);
    f.walker->update(0x5000, 1);
    f.eq.run();
    Tick start = f.eq.curTick();
    Tick done = 0;
    f.walker->update(0x5000, 2, [&] { done = f.eq.curTick(); });
    f.eq.run();
    EXPECT_EQ(done - start, 40u + 5u * 42u);
}

TEST(Walker, BmfModesKeepFunctionalTreeFullHeight)
{
    // BMF truncates the *timed* walk; integrity verification still spans
    // the whole tree.
    Fixture f(BmfMode::Dbmf);
    f.walker->update(0x6000, 77);
    f.eq.run();
    EXPECT_TRUE(f.tree.verifyLeaf(f.layout.pageIndex(0x6000), 77));
}
