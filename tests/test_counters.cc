/**
 * @file
 * Unit tests for split-counter blocks: packing, increments, overflow.
 */

#include <gtest/gtest.h>

#include "crypto/counters.hh"
#include "sim/rng.hh"

using namespace secpb;

TEST(CounterBlock, DefaultIsZero)
{
    CounterBlock cb;
    EXPECT_EQ(cb.major, 0u);
    for (unsigned i = 0; i < BlocksPerPage; ++i)
        EXPECT_EQ(cb.minors[i], 0u);
}

TEST(CounterBlock, IncrementBumpsOnlyTargetMinor)
{
    CounterBlock cb;
    EXPECT_FALSE(cb.increment(5));
    EXPECT_EQ(cb.minors[5], 1u);
    EXPECT_EQ(cb.minors[4], 0u);
    EXPECT_EQ(cb.minors[6], 0u);
    EXPECT_EQ(cb.major, 0u);
}

TEST(CounterBlock, MinorOverflowBumpsMajorAndResets)
{
    CounterBlock cb;
    for (unsigned i = 0; i < MinorCounterMax; ++i)
        EXPECT_FALSE(cb.increment(3));
    EXPECT_EQ(cb.minors[3], MinorCounterMax);
    cb.minors[9] = 42;
    EXPECT_TRUE(cb.increment(3));  // overflow
    EXPECT_EQ(cb.major, 1u);
    EXPECT_EQ(cb.minors[3], 0u);
    EXPECT_EQ(cb.minors[9], 0u);  // whole page reset
}

TEST(CounterBlock, CounterForReturnsPair)
{
    CounterBlock cb;
    cb.major = 7;
    cb.minors[12] = 99;
    const BlockCounter c = cb.counterFor(12);
    EXPECT_EQ(c.major, 7u);
    EXPECT_EQ(c.minor, 99u);
}

TEST(CounterBlock, PackUnpackRoundTrips)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        CounterBlock cb;
        cb.major = rng.next();
        for (unsigned i = 0; i < BlocksPerPage; ++i)
            cb.minors[i] =
                static_cast<std::uint8_t>(rng.below(MinorCounterMax + 1));
        const BlockData raw = cb.pack();
        EXPECT_EQ(CounterBlock::unpack(raw), cb);
    }
}

TEST(CounterBlock, PackedFormIsExactly64Bytes)
{
    // 8B major + 64 x 7-bit minors = 8 + 56 = 64 bytes: the pack must use
    // the last byte (full occupancy) when the last minor is max.
    CounterBlock cb;
    cb.minors[BlocksPerPage - 1] = MinorCounterMax;
    const BlockData raw = cb.pack();
    EXPECT_NE(raw[63], 0u);
}

TEST(CounterBlock, PackIsInjectiveOnMinors)
{
    CounterBlock a, b;
    a.minors[0] = 1;
    b.minors[1] = 1;
    EXPECT_NE(a.pack(), b.pack());
}

TEST(CounterBlock, MaxMinorValueSurvivesRoundTrip)
{
    CounterBlock cb;
    for (unsigned i = 0; i < BlocksPerPage; ++i)
        cb.minors[i] = MinorCounterMax;
    EXPECT_EQ(CounterBlock::unpack(cb.pack()), cb);
}
