/**
 * @file
 * Unit tests for the workload profiles and the synthetic generator:
 * determinism, rate targets, locality shape, and the paper's anchors.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "crypto/counters.hh"
#include "workload/profile.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

TEST(Profile, EighteenBenchmarks)
{
    EXPECT_EQ(spec2006Profiles().size(), 18u);
}

TEST(Profile, PaperAnchorsPresent)
{
    // The two benchmarks whose PPTI the paper quotes (Section VI-B).
    EXPECT_DOUBLE_EQ(profileByName("gamess").storesPerKiloInstr, 47.4);
    EXPECT_DOUBLE_EQ(profileByName("povray").storesPerKiloInstr, 38.8);
}

TEST(Profile, LookupUnknownIsFatal)
{
    EXPECT_DEATH(profileByName("doom3"), "unknown benchmark");
}

TEST(Profile, MixturesAreValidProbabilities)
{
    for (const auto &p : spec2006Profiles()) {
        const double total = p.pRewriteHot + p.pRewriteWarm +
                             p.pRewriteLong + p.pSequential;
        EXPECT_GE(total, 0.0) << p.name;
        EXPECT_LE(total, 1.0) << p.name;
        EXPECT_LE(p.pLoadL2 + p.pLoadL3 + p.pLoadMem, 1.0) << p.name;
        EXPECT_GT(p.storesPerKiloInstr, 0.0) << p.name;
    }
}

TEST(Synthetic, DeterministicForSameSeed)
{
    const auto &p = profileByName("gcc");
    SyntheticGenerator a(p, 10'000, 5), b(p, 10'000, 5);
    TraceOp oa, ob;
    while (true) {
        const bool ha = a.next(oa);
        const bool hb = b.next(ob);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(oa.kind, ob.kind);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.value, ob.value);
        ASSERT_EQ(oa.count, ob.count);
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    const auto &p = profileByName("gcc");
    auto store_seq = [&p](std::uint64_t seed) {
        SyntheticGenerator gen(p, 5'000, seed);
        std::vector<Addr> addrs;
        TraceOp op;
        while (gen.next(op))
            if (op.kind == TraceOp::Kind::Store)
                addrs.push_back(op.addr);
        return addrs;
    };
    EXPECT_NE(store_seq(5), store_seq(6));
}

TEST(Synthetic, RespectsInstructionBudget)
{
    const auto &p = profileByName("astar");
    SyntheticGenerator gen(p, 12'345);
    TraceOp op;
    std::uint64_t count = 0;
    while (gen.next(op))
        count += (op.kind == TraceOp::Kind::Instr) ? op.count : 1;
    EXPECT_EQ(count, 12'345u);
    EXPECT_EQ(gen.instructionsEmitted(), 12'345u);
}

TEST(Synthetic, StoreRateMatchesProfile)
{
    for (const char *name : {"gamess", "povray", "sjeng"}) {
        const auto &p = profileByName(name);
        SyntheticGenerator gen(p, 200'000, 9);
        TraceOp op;
        while (gen.next(op)) {
        }
        const double ppti = 1000.0 * gen.storesEmitted() / 200'000.0;
        EXPECT_NEAR(ppti, p.storesPerKiloInstr,
                    p.storesPerKiloInstr * 0.15)
            << name;
    }
}

TEST(Synthetic, LoadRateMatchesProfile)
{
    const auto &p = profileByName("mcf");
    SyntheticGenerator gen(p, 200'000, 9);
    TraceOp op;
    while (gen.next(op)) {
    }
    const double lpki = 1000.0 * gen.loadsEmitted() / 200'000.0;
    EXPECT_NEAR(lpki, p.loadsPerKiloInstr, p.loadsPerKiloInstr * 0.1);
}

TEST(Synthetic, StoresAreWordAlignedAndInWorkingSet)
{
    const auto &p = profileByName("hmmer");
    SyntheticGenerator gen(p, 50'000, 2);
    TraceOp op;
    const Addr limit = p.workingSetPages * PageSize;
    while (gen.next(op)) {
        if (op.kind != TraceOp::Kind::Store)
            continue;
        EXPECT_EQ(op.addr % 8, 0u);
        EXPECT_LT(op.addr, limit);
    }
}

TEST(Synthetic, HotProfileHasSmallStoreFootprint)
{
    // povray (pHot .87) touches far fewer distinct blocks than gamess.
    auto distinct = [](const char *name) {
        const auto &p = profileByName(name);
        SyntheticGenerator gen(p, 100'000, 4);
        TraceOp op;
        std::unordered_set<Addr> blocks;
        while (gen.next(op))
            if (op.kind == TraceOp::Kind::Store)
                blocks.insert(blockAlign(op.addr));
        return blocks.size();
    };
    EXPECT_LT(distinct("povray"), distinct("gamess") / 2);
}

TEST(Synthetic, StreamingProfileWalksSequentially)
{
    const auto &p = profileByName("libquantum");
    SyntheticGenerator gen(p, 50'000, 3);
    TraceOp op;
    Addr last = 0;
    std::uint64_t seq_steps = 0, stores = 0;
    while (gen.next(op)) {
        if (op.kind != TraceOp::Kind::Store)
            continue;
        ++stores;
        if (op.addr == last + 8)
            ++seq_steps;
        last = op.addr;
    }
    EXPECT_GT(static_cast<double>(seq_steps) / stores, 0.7);
}

TEST(Scripted, BuilderEmitsInOrder)
{
    ScriptedGenerator gen;
    gen.instr(5).store(0x10, 1).load(MemLevel::L3);
    TraceOp op;
    ASSERT_TRUE(gen.next(op));
    EXPECT_EQ(op.kind, TraceOp::Kind::Instr);
    EXPECT_EQ(op.count, 5u);
    ASSERT_TRUE(gen.next(op));
    EXPECT_EQ(op.kind, TraceOp::Kind::Store);
    EXPECT_EQ(op.addr, 0x10u);
    ASSERT_TRUE(gen.next(op));
    EXPECT_EQ(op.level, MemLevel::L3);
    EXPECT_FALSE(gen.next(op));
    gen.rewind();
    EXPECT_TRUE(gen.next(op));
}
