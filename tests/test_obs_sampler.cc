/**
 * @file
 * Unit tests for the epoch sampler: the epoch-0 snapshot, periodic
 * firing, ring-buffer wrap accounting, self-retirement on an empty
 * queue, and the counter events it mirrors into an active tracer.
 */

#include <gtest/gtest.h>

#include "obs/sampler.hh"
#include "obs/trace.hh"

using namespace secpb;
using namespace secpb::obs;

TEST(ObsSampler, TakesEpochZeroOnStart)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/100);
    double probed = 42.0;
    s.addChannel("x", [&] { return probed; });
    s.start();

    const SampleSeries series = s.series();
    ASSERT_EQ(series.numEpochs(), 1u);
    EXPECT_EQ(series.ticks[0], 0u);
    EXPECT_DOUBLE_EQ(series.values[0][0], 42.0);
    EXPECT_EQ(series.period, 100u);
    ASSERT_EQ(series.channels.size(), 1u);
    EXPECT_EQ(series.channels[0], "x");
}

TEST(ObsSampler, SamplesPeriodicallyWhileWorkIsPending)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10);
    double value = 0.0;
    s.addChannel("v", [&] { return value; });

    // Keep the queue busy to tick 35; epochs land at 10, 20, 30, and a
    // final one at 40 (the epoch that finds the queue empty and retires).
    for (Tick t = 1; t <= 35; ++t)
        eq.schedule(t, [&, t] { value = static_cast<double>(t); });

    s.start();
    eq.run();

    const SampleSeries series = s.series();
    ASSERT_EQ(series.numEpochs(), 5u);
    EXPECT_EQ(series.ticks, (std::vector<Tick>{0, 10, 20, 30, 40}));
    EXPECT_DOUBLE_EQ(series.values[0][0], 0.0);
    EXPECT_DOUBLE_EQ(series.values[0][1], 10.0);
    EXPECT_DOUBLE_EQ(series.values[0][2], 20.0);
    EXPECT_DOUBLE_EQ(series.values[0][3], 30.0);
    EXPECT_DOUBLE_EQ(series.values[0][4], 35.0);  // last value written
    EXPECT_EQ(series.epochsDropped, 0u);
}

TEST(ObsSampler, RetiresWhenQueueDrains)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10);
    s.addChannel("one", [] { return 1.0; });
    eq.schedule(5, [] {});
    s.start();

    // run() must terminate: once the tick-10 epoch finds nothing else
    // pending the sampler stops rescheduling itself.
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(s.running());
    EXPECT_LE(s.series().numEpochs(), 2u);
}

TEST(ObsSampler, RingWrapKeepsNewestAndCountsDropped)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10, /*capacity=*/3);
    s.addChannel("tick", [&] { return static_cast<double>(eq.curTick()); });

    for (Tick t = 1; t <= 65; ++t)
        eq.schedule(t, [] {});

    s.start();
    eq.run();

    // Epochs 0,10,...,70 taken = 8 (70 is the retiring epoch); the ring
    // holds the newest 3 in time order and counts the rest as dropped.
    const SampleSeries series = s.series();
    ASSERT_EQ(series.numEpochs(), 3u);
    EXPECT_EQ(series.ticks, (std::vector<Tick>{50, 60, 70}));
    EXPECT_EQ(series.epochsDropped, 5u);
    EXPECT_DOUBLE_EQ(series.values[0][0], 50.0);
    EXPECT_DOUBLE_EQ(series.values[0][2], 70.0);
}

TEST(ObsSampler, SampleNowSnapshotsOutsideTheSchedule)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/1000);
    s.addChannel("c", [] { return 3.0; });
    s.sampleNow();
    s.sampleNow();
    const SampleSeries series = s.series();
    ASSERT_EQ(series.numEpochs(), 2u);
    EXPECT_DOUBLE_EQ(series.values[0][1], 3.0);
}

TEST(ObsSampler, StopHaltsFutureEpochs)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10);
    s.addChannel("c", [] { return 1.0; });
    for (Tick t = 1; t <= 45; ++t)
        eq.schedule(t, [] {});
    s.start();
    eq.schedule(15, [&] { s.stop(); });
    eq.run();
    // Epoch 0 and the tick-10 epoch landed; the stop at 15 kills the rest.
    EXPECT_EQ(s.series().numEpochs(), 2u);
}

TEST(ObsSampler, MultipleChannelsSampleTheSameEpoch)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10);
    s.addChannel("a", [] { return 1.0; });
    s.addChannel("b", [] { return 2.0; });
    s.sampleNow();
    const SampleSeries series = s.series();
    ASSERT_EQ(series.channels.size(), 2u);
    ASSERT_EQ(series.values.size(), 2u);
    EXPECT_DOUBLE_EQ(series.values[0][0], 1.0);
    EXPECT_DOUBLE_EQ(series.values[1][0], 2.0);
}

TEST(ObsSampler, EmitsCounterEventsIntoActiveTracer)
{
    EventQueue eq;
    Sampler s(eq, /*period=*/10);
    s.addChannel("occupancy", [] { return 5.0; });

    Tracer t;
    {
        TraceSession session(&t);
        s.sampleNow();
    }
    ASSERT_EQ(t.numEvents(), 1u);
    EXPECT_EQ(t.events()[0].phase, TraceEvent::Phase::Counter);
    EXPECT_EQ(t.events()[0].name, "occupancy");
    EXPECT_DOUBLE_EQ(t.events()[0].counterValue, 5.0);
}
