/**
 * @file
 * Unit tests for the SecPB controller: acceptance, coalescing, watermark
 * draining, backpressure, and the functional persistence path.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
smallConfig(Scheme scheme, unsigned entries = 8)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = entries;
    cfg.pmDataBytes = 1ULL << 30;  // keep the BMT shallow-ish for speed
    return cfg;
}

} // namespace

TEST(SecPb, StoreIsAPersist)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm));
    ScriptedGenerator gen;
    gen.store(0x100, 42);
    sys.run(gen);
    EXPECT_DOUBLE_EQ(sys.secpb().statPersists.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.secpb().statAllocs.value(), 1.0);
    EXPECT_EQ(sys.oracle().numPersists(), 1u);
    EXPECT_EQ(blockWord(sys.oracle().blockContent(0x100),
                        blockOffset(0x100) / 8), 42u);
}

TEST(SecPb, StoresToSameBlockCoalesce)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm));
    ScriptedGenerator gen;
    for (int i = 0; i < 5; ++i)
        gen.store(0x200 + 8 * i, static_cast<std::uint64_t>(i));
    sys.run(gen);
    EXPECT_DOUBLE_EQ(sys.secpb().statAllocs.value(), 1.0);
    EXPECT_DOUBLE_EQ(sys.secpb().statCoalescedHits.value(), 4.0);
    EXPECT_EQ(sys.secpb().occupancy(), 1u);
}

TEST(SecPb, DistinctBlocksAllocateSeparately)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm));
    ScriptedGenerator gen;
    gen.store(0x000, 1).store(0x040, 2).store(0x080, 3);
    sys.run(gen);
    EXPECT_DOUBLE_EQ(sys.secpb().statAllocs.value(), 3.0);
    EXPECT_EQ(sys.secpb().occupancy(), 3u);
}

TEST(SecPb, HighWatermarkTriggersDrain)
{
    // 8 entries, high watermark 6 (0.75): the 6th allocation starts
    // draining down to the low watermark (4).
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 6 * BlockSize; a += BlockSize)
        gen.store(a, a);
    sys.run(gen);
    // Let outstanding drains retire.
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_GT(sys.secpb().statDrainedEntries.value(), 0.0);
    EXPECT_LE(sys.secpb().occupancy(),
              sys.secpb().lowWatermarkEntries());
}

TEST(SecPb, TinyBufferWatermarksStayOrdered)
{
    // numEntries=2 with the default 0.75/0.50 fractions used to derive
    // high == low == 1 entry, so a triggered drain could never get below
    // its own trigger. The controller now clamps low strictly under high.
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 2));
    EXPECT_LT(sys.secpb().lowWatermarkEntries(),
              sys.secpb().highWatermarkEntries());
    EXPECT_GE(sys.secpb().highWatermarkEntries(), 1u);
}

TEST(SecPb, TinyBufferDrainsWithoutLivelock)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 2));
    ScriptedGenerator gen;
    gen.store(0x000, 1).store(0x040, 2).store(0x080, 3);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_GT(sys.secpb().statDrainedEntries.value(), 0.0);
    EXPECT_LE(sys.secpb().occupancy(),
              sys.secpb().lowWatermarkEntries());
}

TEST(SecPb, DrainedDataIsInPmImage)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, 0xAB00 + a);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_GT(sys.pm().numDataBlocks(), 0u);
}

TEST(SecPb, FullBufferBackpressuresWithoutDeadlock)
{
    // More distinct blocks than entries: the buffer must drain to accept
    // them all, exercising the reject -> notify -> retry path.
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 64 * BlockSize; a += BlockSize)
        gen.store(a, a);
    SimulationResult r = sys.run(gen);
    EXPECT_EQ(r.persists, 64u);
    EXPECT_GT(r.pbFullRejects + r.drainedEntries, 0u);
}

TEST(SecPb, DrainAllEmptiesBuffer)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    gen.store(0x000, 1).store(0x040, 2);
    sys.run(gen);
    bool drained = false;
    sys.secpb().drainAll([&] { drained = true; });
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_TRUE(drained);
    EXPECT_TRUE(sys.secpb().empty());
}

TEST(SecPb, NwpeSampledAtDrain)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    // Block 0 written 4 times; then fill to force drains.
    for (int i = 0; i < 4; ++i)
        gen.store(0x000, i);
    for (Addr a = BlockSize; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, a);
    sys.run(gen);
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_GT(sys.secpb().statNwpe.mean(), 1.0);
}

TEST(SecPb, UnblockLatencyOrderedBySchemeLaziness)
{
    // COBCM unblocks fastest, NoGap slowest; middle schemes in between.
    double prev = 0.0;
    for (Scheme s : {Scheme::Cobcm, Scheme::Bcm, Scheme::NoGap}) {
        SecPbSystem sys(smallConfig(s));
        ScriptedGenerator gen;
        for (Addr a = 0; a < 4 * BlockSize; a += BlockSize)
            gen.store(a, a);
        sys.run(gen);
        const double mean = sys.secpb().statUnblockLatency.mean();
        EXPECT_GT(mean, prev) << schemeName(s);
        prev = mean;
    }
}

TEST(SecPb, BbbPersistsPlaintext)
{
    SecPbSystem sys(smallConfig(Scheme::Bbb, 8));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, 0x77);
    sys.run(gen);
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    // BBB stores raw plaintext in PM.
    EXPECT_EQ(blockWord(sys.pm().readData(0x000), 0), 0x77u);
}

TEST(SecPb, SecureDrainStoresCiphertextNotPlaintext)
{
    SecPbSystem sys(smallConfig(Scheme::Cobcm, 8));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, 0x77);
    sys.run(gen);
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    ASSERT_TRUE(sys.pm().hasData(0x000));
    EXPECT_NE(blockWord(sys.pm().readData(0x000), 0), 0x77u);
}

TEST(SecPb, CounterIncrementsOncePerResidency)
{
    // The Section IV-A optimization: many stores to one resident block
    // bump the counter once.
    SecPbSystem sys(smallConfig(Scheme::NoGap, 8));
    ScriptedGenerator gen;
    for (int i = 0; i < 10; ++i)
        gen.store(0x000, i);
    sys.run(gen);
    const BlockCounter c = sys.counters().counterFor(0x000);
    EXPECT_EQ(c.minor, 1u);
}

TEST(SecPb, SecWtIncrementsPerStore)
{
    SecPbSystem sys(smallConfig(Scheme::SecWt, 8));
    ScriptedGenerator gen;
    for (int i = 0; i < 10; ++i)
        gen.store(0x000, i);
    sys.run(gen);
    const BlockCounter c = sys.counters().counterFor(0x000);
    EXPECT_EQ(c.minor, 10u);
}

TEST(SecPb, PageReencryptionOnMinorOverflow)
{
    // sec_wt bumps the minor on every store: 128 stores overflow the
    // 7-bit minor and trigger a page re-encryption.
    SecPbSystem sys(smallConfig(Scheme::SecWt, 8));
    ScriptedGenerator gen;
    for (int i = 0; i < 130; ++i)
        gen.store(0x000, i);
    sys.run(gen);
    EXPECT_GE(sys.secpb().statPageReencrypts.value(), 1.0);
    const BlockCounter c = sys.counters().counterFor(0x000);
    EXPECT_GE(c.major, 1u);
}

TEST(SecPb, ReencryptedPageStillRecovers)
{
    SecPbSystem sys(smallConfig(Scheme::SecWt, 8));
    ScriptedGenerator gen;
    // Persist a neighbour block in the same page first, then overflow.
    gen.store(0x040, 0xBEEF);
    for (int i = 0; i < 130; ++i)
        gen.store(0x000, i);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}
