/**
 * @file
 * Unit tests for the secure-PM address map.
 */

#include <gtest/gtest.h>

#include "metadata/layout.hh"

using namespace secpb;

TEST(Layout, RegionSizes)
{
    MetadataLayout l(8ULL << 30);
    EXPECT_EQ(l.numPages(), (8ULL << 30) / 4096);
    EXPECT_EQ(l.numBlocks(), (8ULL << 30) / 64);
    EXPECT_EQ(l.ctrBase(), 8ULL << 30);
    EXPECT_GT(l.macBase(), l.ctrBase());
    EXPECT_GT(l.bmtBase(), l.macBase());
}

TEST(Layout, DataPredicate)
{
    MetadataLayout l(1ULL << 30);
    EXPECT_TRUE(l.isData(0));
    EXPECT_TRUE(l.isData((1ULL << 30) - 1));
    EXPECT_FALSE(l.isData(1ULL << 30));
    EXPECT_FALSE(l.isData(l.macBase()));
}

TEST(Layout, CounterAddrSharedWithinPage)
{
    MetadataLayout l(1ULL << 30);
    EXPECT_EQ(l.counterAddr(0x1000), l.counterAddr(0x1FC0));
    EXPECT_NE(l.counterAddr(0x1000), l.counterAddr(0x2000));
    EXPECT_EQ(l.counterAddr(0x1000) % BlockSize, 0u);
}

TEST(Layout, BlockInPage)
{
    MetadataLayout l(1ULL << 30);
    EXPECT_EQ(l.blockInPage(0x1000), 0u);
    EXPECT_EQ(l.blockInPage(0x1040), 1u);
    EXPECT_EQ(l.blockInPage(0x1FC0), 63u);
}

TEST(Layout, MacAddrsAreDense)
{
    MetadataLayout l(1ULL << 30);
    EXPECT_EQ(l.macAddr(0x40) - l.macAddr(0x00), 8u);
    // Eight MACs share one 64B MAC block.
    EXPECT_EQ(l.macBlockAddr(0x000), l.macBlockAddr(0x1C0));
    EXPECT_NE(l.macBlockAddr(0x000), l.macBlockAddr(0x200));
}

TEST(Layout, BmtNodesDoNotOverlapLevels)
{
    MetadataLayout l(1ULL << 30);  // 2^18 pages -> level0 has 2^15 nodes
    const Addr lvl0_first = l.bmtNodeAddr(0, 0);
    const Addr lvl0_last = l.bmtNodeAddr(0, (1ULL << 15) - 1);
    const Addr lvl1_first = l.bmtNodeAddr(1, 0);
    EXPECT_EQ(lvl0_first, l.bmtBase());
    EXPECT_EQ(lvl1_first, lvl0_last + BlockSize);
}

TEST(Layout, MetadataRegionsDisjoint)
{
    MetadataLayout l(1ULL << 30);
    // The last counter block ends before the MAC region starts.
    const Addr last_ctr = l.counterAddr((1ULL << 30) - 1);
    EXPECT_LT(last_ctr + BlockSize, l.macBase() + 1);
    const Addr last_mac = l.macAddr((1ULL << 30) - 1);
    EXPECT_LT(last_mac + 8, l.bmtBase() + 1);
}

TEST(Layout, UnalignedDataSizeIsFatal)
{
    EXPECT_DEATH(MetadataLayout l(4096 + 17), "aligned");
}
