/**
 * @file
 * Fault-injection subsystem tests: arbitrary-point crashes, bounded
 * battery drains with prefix verification, and tamper detection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.hh"
#include "fault/injector.hh"
#include "fault/tamper.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
cfgFor(Scheme scheme, unsigned entries = 16)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = entries;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

/** Stores to @p n consecutive distinct blocks, in address order. */
ScriptedGenerator
sequentialStores(unsigned n)
{
    ScriptedGenerator gen;
    for (Addr a = 0; a < n * std::uint64_t{BlockSize}; a += BlockSize)
        gen.store(a, a + 0x1234);
    return gen;
}

} // namespace

TEST(FaultInjector, CrashAtTickStopsMidRun)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    SyntheticGenerator gen(profileByName("gamess"), 20'000, 7);
    FaultPlan plan;
    plan.crashAtTick = 5'000;
    FaultReport r = FaultInjector(sys, plan).run(gen);
    EXPECT_TRUE(r.crashedMidRun);
    EXPECT_LE(r.crashTick, 5'000u);
    EXPECT_TRUE(r.ok()) << plan.describe();
}

TEST(FaultInjector, CrashAtPersistCountTriggersPromptly)
{
    SecPbSystem sys(cfgFor(Scheme::Bcm));
    SyntheticGenerator gen(profileByName("omnetpp"), 20'000, 11);
    FaultPlan plan;
    plan.crashAtPersist = 40;
    FaultReport r = FaultInjector(sys, plan).run(gen);
    EXPECT_TRUE(r.crashedMidRun);
    EXPECT_GE(r.persistsAtCrash, 40u);
    // The hook fires at the first event boundary after the threshold;
    // one event admits at most a handful of coalesced stores.
    EXPECT_LE(r.persistsAtCrash, 48u);
    EXPECT_TRUE(r.ok()) << plan.describe();
}

TEST(FaultInjector, UnboundedPlanMatchesPlainCrash)
{
    // A plan with no trigger and an infinite battery reduces to the
    // classic end-of-run crashNow() experiment.
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen = sequentialStores(12);
    FaultReport r = FaultInjector(sys, FaultPlan{}).run(gen);
    EXPECT_FALSE(r.crashedMidRun);
    EXPECT_FALSE(r.crash.work.batteryExhausted);
    EXPECT_TRUE(r.crash.work.abandoned.empty());
    EXPECT_TRUE(r.ok());
}

TEST(FaultInjector, BoundedBatteryDrainsInOrderPrefix)
{
    // Sequential stores to distinct blocks allocate entries in address
    // order, so allocSeq order == address order among residents: every
    // drained block must precede every abandoned block.
    SecPbSystem sys(cfgFor(Scheme::Cobcm, 32));
    ScriptedGenerator gen = sequentialStores(20);
    sys.run(gen);
    const std::size_t resident = sys.secpb().occupancy();
    ASSERT_GT(resident, 4u);

    CrashOptions opts;
    opts.batteryEnergyJ = 0.4 * sys.provisionedCrashEnergy();
    CrashReport cr = sys.crashNow(opts);

    EXPECT_TRUE(cr.work.batteryExhausted);
    EXPECT_FALSE(cr.work.abandoned.empty());
    EXPECT_FALSE(cr.work.drainedBlocks.empty());
    EXPECT_EQ(cr.work.drainedBlocks.size() + cr.work.abandoned.size(),
              resident);
    // Abandoned entries stay resident; drained ones are released.
    EXPECT_EQ(sys.secpb().occupancy(), cr.work.abandoned.size());

    const Addr max_drained = *std::max_element(
        cr.work.drainedBlocks.begin(), cr.work.drainedBlocks.end());
    for (const AbandonedResidency &a : cr.work.abandoned)
        EXPECT_GT(a.addr, max_drained);

    EXPECT_LE(cr.work.energySpentJ, *opts.batteryEnergyJ);
    EXPECT_TRUE(cr.recovery.ok()) << "partial drain must stay consistent";
    EXPECT_EQ(cr.recovery.staleConsistent + cr.recovery.tornDetected,
              cr.work.abandoned.size());
    EXPECT_TRUE(cr.recovered);
}

TEST(FaultInjector, ZeroBudgetAbandonsEverything)
{
    SecPbSystem sys(cfgFor(Scheme::Cobcm, 32));
    ScriptedGenerator gen = sequentialStores(10);
    sys.run(gen);
    const std::size_t resident = sys.secpb().occupancy();
    ASSERT_GT(resident, 0u);

    CrashOptions opts;
    opts.batteryEnergyJ = 0.0;
    CrashReport cr = sys.crashNow(opts);
    EXPECT_TRUE(cr.work.batteryExhausted);
    EXPECT_TRUE(cr.work.drainedBlocks.empty());
    EXPECT_EQ(cr.work.abandoned.size(), resident);
    // COBCM defers everything, so nothing of the abandoned residencies
    // ever reached PM: recovery serves the pre-residency versions.
    EXPECT_TRUE(cr.recovery.ok());
    EXPECT_TRUE(cr.recovered);
}

TEST(FaultInjector, FullBudgetNeverExhausts)
{
    // The provisioning is worst-case by construction: a battery holding
    // exactly the provisioned energy must always finish the drain.
    for (Scheme s : SecPbSchemes) {
        SecPbSystem sys(cfgFor(s, 16));
        SyntheticGenerator gen(profileByName("lbm"), 10'000, 3);
        sys.run(gen);
        CrashOptions opts;
        opts.batteryEnergyJ = sys.provisionedCrashEnergy();
        CrashReport cr = sys.crashNow(opts);
        EXPECT_FALSE(cr.work.batteryExhausted) << schemeName(s);
        EXPECT_TRUE(cr.work.abandoned.empty()) << schemeName(s);
        EXPECT_TRUE(cr.recovered) << schemeName(s);
    }
}

TEST(FaultInjector, BoundedDrainConsistentAcrossAllSchemes)
{
    // The prefix property must hold regardless of which tuple work each
    // scheme does early: eager schemes leave detectably torn residencies
    // (durable BMT root / counters cover the lost update), lazy schemes
    // leave clean pre-residency versions. Neither is silent corruption.
    for (Scheme s : SecPbSchemes) {
        SecPbSystem sys(cfgFor(s, 32));
        ScriptedGenerator gen = sequentialStores(20);
        sys.run(gen);
        CrashOptions opts;
        opts.batteryEnergyJ = 0.3 * sys.provisionedCrashEnergy();
        CrashReport cr = sys.crashNow(opts);
        EXPECT_TRUE(cr.recovery.ok())
            << schemeName(s) << ": prefix verification failed";
        EXPECT_TRUE(cr.recovered) << schemeName(s);
    }
}

TEST(FaultInjector, BbbBoundedDrainKeepsPlaintextPrefix)
{
    SecPbSystem sys(cfgFor(Scheme::Bbb, 32));
    ScriptedGenerator gen = sequentialStores(16);
    sys.run(gen);
    const std::size_t resident = sys.secpb().occupancy();
    ASSERT_GT(resident, 0u);
    CrashOptions opts;
    opts.batteryEnergyJ = 0.4 * sys.provisionedCrashEnergy();
    CrashReport cr = sys.crashNow(opts);
    EXPECT_TRUE(cr.work.batteryExhausted);
    EXPECT_TRUE(cr.recovered)
        << "insecure drain must still lose only a suffix";
}

TEST(FaultInjector, TamperEachRegionDetected)
{
    // Force one tamper of each region in turn and demand detection.
    for (unsigned region = 0; region < 4; ++region) {
        SecPbSystem sys(cfgFor(Scheme::Cobcm));
        ScriptedGenerator gen = sequentialStores(12);
        sys.run(gen);
        CrashReport cr = sys.crashNow();
        ASSERT_TRUE(cr.recovered);

        std::vector<Addr> candidates = sys.oracle().touchedBlocks();
        std::sort(candidates.begin(), candidates.end());
        const Addr victim = candidates[region % candidates.size()];
        const std::uint64_t page = sys.layout().pageIndex(victim);

        TamperRecord rec;
        rec.blockAddr = victim;
        rec.page = page;
        rec.mask = 0x5a;
        switch (region) {
          case 0:
            rec.region = TamperRegion::Data;
            sys.pm().tamperData(victim, 3, 0x5a);
            break;
          case 1:
            rec.region = TamperRegion::Counter;
            rec.mask = 1;
            sys.pm().tamperCounter(page,
                                   sys.layout().blockInPage(victim));
            break;
          case 2:
            rec.region = TamperRegion::Mac;
            sys.pm().tamperMac(victim, 0x5a);
            break;
          case 3: {
            rec.region = TamperRegion::BmtNode;
            const auto path = sys.tree().pathIndices(page);
            rec.level = 1;
            rec.nodeIndex = path[1];
            BmtNode forged = sys.tree().node(1, path[1]);
            forged.child[path[0] % 8] ^= 0x5a;
            ASSERT_TRUE(sys.tree().tamperNode(1, path[1], forged));
            break;
          }
        }

        RecoveryVerifier verifier(sys.layout(), sys.config().keys);
        RecoveryReport after =
            verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
        EXPECT_FALSE(after.ok()) << rec.describe();
        EXPECT_TRUE(TamperInjector::detected(rec, after, sys.layout(),
                                             sys.tree()))
            << rec.describe();
    }
}

TEST(FaultInjector, RandomTampersAllDetectedViaPlan)
{
    FaultPlan plan;
    plan.crashAtPersist = 60;
    plan.tamperCount = 4;
    plan.tamperSeed = 99;
    SecPbSystem sys(cfgFor(Scheme::Obcm));
    SyntheticGenerator gen(profileByName("gamess"), 20'000, 17);
    FaultReport r = FaultInjector(sys, plan).run(gen);
    ASSERT_TRUE(r.crash.recovered);
    ASSERT_EQ(r.tampers.size(), 4u);
    EXPECT_FALSE(r.postTamper.ok());
    EXPECT_TRUE(r.tampersAllDetected) << plan.describe();
    EXPECT_TRUE(r.ok());
}

TEST(FaultInjector, SpuriousBlockReported)
{
    // A PM write the oracle never saw (attacker-planted block) must be
    // flagged by the full scan, not silently ignored.
    SecPbSystem sys(cfgFor(Scheme::Cobcm));
    ScriptedGenerator gen = sequentialStores(6);
    sys.run(gen);
    sys.crashNow();
    const Addr planted = 1ULL << 20;
    ASSERT_FALSE(sys.oracle().touched(planted));
    BlockData junk = zeroBlock();
    setBlockWord(junk, 0, 0xdeadbeef);
    sys.pm().writeData(planted, junk);

    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_EQ(r.spuriousBlocks, 1u);
    EXPECT_FALSE(r.ok());
    const auto it = std::find_if(
        r.faults.begin(), r.faults.end(), [&](const BlockFault &f) {
            return f.kind == BlockFaultKind::SpuriousBlock &&
                   f.addr == planted;
        });
    EXPECT_NE(it, r.faults.end());
}

TEST(FaultInjector, PlanDescribeNamesEveryKnob)
{
    FaultPlan plan;
    plan.crashAtTick = 123;
    plan.crashAtPersist = 45;
    plan.batteryFraction = 0.5;
    plan.tamperCount = 2;
    plan.tamperSeed = 7;
    const std::string d = plan.describe();
    EXPECT_NE(d.find("tick=123"), std::string::npos) << d;
    EXPECT_NE(d.find("persist=45"), std::string::npos) << d;
    EXPECT_NE(d.find("battery=0.5"), std::string::npos) << d;
    EXPECT_NE(d.find("tampers=2"), std::string::npos) << d;
    EXPECT_EQ(FaultPlan{}.describe(), "crash@end");
}

TEST(FaultInjector, PostEventHookObservesEveryEvent)
{
    EventQueue eq;
    int events = 0, hooks = 0;
    eq.setPostEventHook([&] { ++hooks; });
    for (Tick t = 1; t <= 5; ++t)
        eq.schedule(t, [&] { ++events; });
    eq.run();
    EXPECT_EQ(events, 5);
    EXPECT_EQ(hooks, 5);

    // A stop request interrupts run() at the next event boundary and is
    // sticky until cleared.
    eq.schedule(10, [&] { ++events; });
    eq.schedule(11, [&] { ++events; });
    eq.setPostEventHook([&] { eq.requestStop(); });
    eq.run();
    EXPECT_EQ(events, 6);
    EXPECT_TRUE(eq.stopRequested());
    eq.clearStop();
    eq.clearPostEventHook();
    eq.run();
    EXPECT_EQ(events, 7);
}
