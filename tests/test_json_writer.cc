/**
 * @file
 * Unit tests for the hand-rolled JSON writer: escaping, nesting,
 * number formatting, and the pretty layout the sweep schema relies on
 * (one scalar field per line).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/results.hh"
#include "stats/json.hh"

using namespace secpb;

TEST(JsonWriter, CompactObject)
{
    std::ostringstream ss;
    JsonWriter w(ss, /*pretty=*/false);
    w.beginObject();
    w.field("a", std::uint64_t{1});
    w.field("b", "two");
    w.field("c", true);
    w.endObject();
    EXPECT_EQ(ss.str(), R"({"a": 1,"b": "two","c": true})");
    EXPECT_EQ(w.depth(), 0u);
}

TEST(JsonWriter, EscapesControlAndQuote)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
    EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream ss;
    JsonWriter w(ss, false);
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::nan(""));
    w.value(1.5);
    w.endArray();
    EXPECT_EQ(ss.str(), "[null,null,1.5]");
}

TEST(JsonWriter, NestedArraysAndObjects)
{
    std::ostringstream ss;
    JsonWriter w(ss, false);
    w.beginObject();
    w.key("rows");
    w.beginArray();
    w.beginObject();
    w.field("n", 3);
    w.endObject();
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.endArray();
    w.endObject();
    EXPECT_EQ(ss.str(), R"({"rows": [{"n": 3},[1,2]]})");
}

TEST(JsonWriter, PrettyPutsOneScalarFieldPerLine)
{
    std::ostringstream ss;
    JsonWriter w(ss, /*pretty=*/true);
    w.beginObject();
    w.field("x", std::uint64_t{1});
    w.field("y", 2.5);
    w.endObject();
    EXPECT_EQ(ss.str(), "{\n  \"x\": 1,\n  \"y\": 2.5\n}\n");
}

TEST(JsonWriter, SimulationResultToJsonIsParsableShape)
{
    SimulationResult r;
    r.execTicks = 42;
    r.ipc = 1.25;
    std::ostringstream ss;
    JsonWriter w(ss, false);
    r.toJson(w);
    const std::string s = ss.str();
    EXPECT_NE(s.find("\"exec_ticks\": 42"), std::string::npos);
    EXPECT_NE(s.find("\"ipc\": 1.25"), std::string::npos);
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s.back(), '}');

    // The visitor is the single source of truth: field count matches.
    unsigned fields = 0;
    r.visitFields([&](const char *, auto) { ++fields; });
    unsigned colons = 0;
    for (char c : s)
        colons += c == ':';
    EXPECT_EQ(colons, fields);
}
