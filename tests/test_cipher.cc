/**
 * @file
 * Unit tests for counter-mode encryption and MACs: round-trips, nonce
 * sensitivity, and detection of the attack classes the threat model
 * names (spoofing, splicing, replay).
 */

#include <gtest/gtest.h>

#include "crypto/cipher.hh"
#include "sim/rng.hh"

using namespace secpb;

namespace
{

BlockData
randomBlock(Rng &rng)
{
    BlockData b;
    for (unsigned w = 0; w < WordsPerBlock; ++w)
        setBlockWord(b, w, rng.next());
    return b;
}

} // namespace

TEST(Cipher, EncryptDecryptRoundTrip)
{
    SecurityKeys keys;
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        const BlockData pt = randomBlock(rng);
        const BlockCounter ctr{rng.next(), static_cast<std::uint8_t>(i)};
        const Addr addr = blockAlign(rng.next() % (1ULL << 33));
        const BlockData pad = generatePad(keys, addr, ctr);
        EXPECT_EQ(decryptBlock(encryptBlock(pt, pad), pad), pt);
    }
}

TEST(Cipher, PadIsDeterministic)
{
    SecurityKeys keys;
    const BlockCounter ctr{5, 9};
    EXPECT_EQ(generatePad(keys, 0x1000, ctr), generatePad(keys, 0x1000, ctr));
}

TEST(Cipher, PadDependsOnAddress)
{
    SecurityKeys keys;
    const BlockCounter ctr{5, 9};
    EXPECT_NE(generatePad(keys, 0x1000, ctr), generatePad(keys, 0x1040, ctr));
}

TEST(Cipher, PadDependsOnMinorCounter)
{
    SecurityKeys keys;
    EXPECT_NE(generatePad(keys, 0x1000, {5, 9}),
              generatePad(keys, 0x1000, {5, 10}));
}

TEST(Cipher, PadDependsOnMajorCounter)
{
    SecurityKeys keys;
    EXPECT_NE(generatePad(keys, 0x1000, {5, 9}),
              generatePad(keys, 0x1000, {6, 9}));
}

TEST(Cipher, PadDependsOnKey)
{
    SecurityKeys k1, k2;
    k2.encryptionKey ^= 1;
    EXPECT_NE(generatePad(k1, 0x1000, {1, 1}),
              generatePad(k2, 0x1000, {1, 1}));
}

TEST(Cipher, CiphertextDiffersFromPlaintext)
{
    SecurityKeys keys;
    Rng rng(2);
    const BlockData pt = randomBlock(rng);
    const BlockData pad = generatePad(keys, 0x2000, {1, 1});
    EXPECT_NE(encryptBlock(pt, pad), pt);
}

TEST(Mac, DetectsSpoofing)
{
    // Spoofing: attacker modifies the ciphertext in place.
    SecurityKeys keys;
    Rng rng(3);
    const BlockData ct = randomBlock(rng);
    const BlockCounter ctr{1, 2};
    const MacValue good = computeMac(keys, 0x3000, ct, ctr);
    BlockData forged = ct;
    forged[17] ^= 0x01;
    EXPECT_NE(computeMac(keys, 0x3000, forged, ctr), good);
}

TEST(Mac, DetectsSplicing)
{
    // Splicing: attacker moves a valid ciphertext to another address.
    SecurityKeys keys;
    Rng rng(4);
    const BlockData ct = randomBlock(rng);
    const BlockCounter ctr{1, 2};
    EXPECT_NE(computeMac(keys, 0x3000, ct, ctr),
              computeMac(keys, 0x4000, ct, ctr));
}

TEST(Mac, DetectsCounterReplay)
{
    // Replay: attacker pairs the ciphertext with a stale counter.
    SecurityKeys keys;
    Rng rng(5);
    const BlockData ct = randomBlock(rng);
    EXPECT_NE(computeMac(keys, 0x3000, ct, {1, 2}),
              computeMac(keys, 0x3000, ct, {1, 1}));
}

TEST(Mac, DependsOnMacKeyOnly)
{
    SecurityKeys k1, k2;
    k2.macKey ^= 0x1;
    Rng rng(6);
    const BlockData ct = randomBlock(rng);
    EXPECT_NE(computeMac(k1, 0x3000, ct, {1, 1}),
              computeMac(k2, 0x3000, ct, {1, 1}));
}

TEST(Hash, MixIsBijectiveLike)
{
    // mix64 must not collide trivially on small inputs.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, BytesSensitiveToEveryPosition)
{
    BlockData b{};
    const Digest base = hashBlock(b, 0);
    for (unsigned i = 0; i < BlockSize; ++i) {
        BlockData mod = b;
        mod[i] = 1;
        EXPECT_NE(hashBlock(mod, 0), base) << "position " << i;
    }
}
