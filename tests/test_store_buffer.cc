/**
 * @file
 * Unit tests for the store buffer: in-order issue, capacity stalls,
 * unblock-driven pipelining, and empty notification.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
sbConfig(unsigned sb_entries, Scheme scheme = Scheme::NoGap)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.storeBufferEntries = sb_entries;
    cfg.secpb.numEntries = 8;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

} // namespace

TEST(StoreBuffer, PushesAreCounted)
{
    SecPbSystem sys(sbConfig(4));
    sys.storeBuffer().tryPush(0x000, 1);
    sys.storeBuffer().tryPush(0x040, 2);
    EXPECT_DOUBLE_EQ(sys.storeBuffer().statPushes.value(), 2.0);
}

TEST(StoreBuffer, RejectsWhenFull)
{
    // NoGap acceptance is slow; pushing faster than the SecPB unblocks
    // fills a 2-entry buffer immediately.
    SecPbSystem sys(sbConfig(2));
    EXPECT_TRUE(sys.storeBuffer().tryPush(0x000, 1));
    EXPECT_TRUE(sys.storeBuffer().tryPush(0x040, 2));
    EXPECT_FALSE(sys.storeBuffer().tryPush(0x080, 3));
    EXPECT_DOUBLE_EQ(sys.storeBuffer().statFullStalls.value(), 1.0);
}

TEST(StoreBuffer, SpaceNotificationFires)
{
    SecPbSystem sys(sbConfig(2));
    sys.storeBuffer().tryPush(0x000, 1);
    sys.storeBuffer().tryPush(0x040, 2);
    bool notified = false;
    sys.storeBuffer().notifyOnSpace([&] { notified = true; });
    sys.runUntil(1'000'000);
    EXPECT_TRUE(notified);
}

TEST(StoreBuffer, DrainsInOrder)
{
    // Stores persist (reach the oracle) in program order even when the
    // buffer is saturated.
    SecPbSystem sys(sbConfig(4));
    for (int i = 0; i < 4; ++i)
        sys.storeBuffer().tryPush(static_cast<Addr>(i) * BlockSize,
                                  100u + i);
    sys.runUntil(1'000'000);
    EXPECT_TRUE(sys.storeBuffer().empty());
    EXPECT_EQ(sys.oracle().numPersists(), 4u);
}

TEST(StoreBuffer, EmptyNotificationImmediateWhenEmpty)
{
    SecPbSystem sys(sbConfig(4));
    bool fired = false;
    sys.storeBuffer().notifyWhenEmpty([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(StoreBuffer, EmptyNotificationDeferredUntilDrained)
{
    SecPbSystem sys(sbConfig(4));
    sys.storeBuffer().tryPush(0x000, 1);
    bool fired = false;
    sys.storeBuffer().notifyWhenEmpty([&] { fired = true; });
    EXPECT_FALSE(fired);
    sys.runUntil(1'000'000);
    EXPECT_TRUE(fired);
}

TEST(StoreBuffer, OccupancyReflectsPendingStores)
{
    SecPbSystem sys(sbConfig(8));
    for (int i = 0; i < 5; ++i)
        sys.storeBuffer().tryPush(static_cast<Addr>(i) * BlockSize, i);
    EXPECT_GE(sys.storeBuffer().occupancy(), 4u);  // head may have issued
    sys.runUntil(1'000'000);
    EXPECT_EQ(sys.storeBuffer().occupancy(), 0u);
}
