/**
 * @file
 * Unit tests for the hardware occupancy models (Resource, BankedResource,
 * PipelinedUnit).
 */

#include <gtest/gtest.h>

#include "crypto/engine.hh"
#include "sim/resource.hh"
#include "stats/stats.hh"

using namespace secpb;

TEST(Resource, BackToBackRequestsSerialize)
{
    EventQueue eq;
    Resource r(eq, "unit");
    Tick t1 = 0, t2 = 0;
    r.request(10, [&] { t1 = eq.curTick(); });
    r.request(10, [&] { t2 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(t1, 10u);
    EXPECT_EQ(t2, 20u);
    EXPECT_EQ(r.busyCycles(), 20u);
    EXPECT_EQ(r.requests(), 2u);
}

TEST(Resource, IdleUnitStartsImmediately)
{
    EventQueue eq;
    Resource r(eq, "unit");
    eq.schedule(100, [&] {
        EXPECT_TRUE(r.idle());
        const Tick finish = r.request(5, nullptr);
        EXPECT_EQ(finish, 105u);
    });
    eq.run();
}

TEST(BankedResource, DistinctBanksOverlap)
{
    EventQueue eq;
    BankedResource banks(eq, "mem", 4);
    // Addresses in different banks (consecutive blocks interleave).
    const Tick f0 = banks.request(0 * BlockSize, 100, nullptr);
    const Tick f1 = banks.request(1 * BlockSize, 100, nullptr);
    EXPECT_EQ(f0, 100u);
    EXPECT_EQ(f1, 100u);  // parallel banks
}

TEST(BankedResource, SameBankSerializes)
{
    EventQueue eq;
    BankedResource banks(eq, "mem", 4);
    const Addr a = 0;
    const Addr same_bank = 4 * BlockSize;  // 4 banks -> same bank as 0
    const Tick f0 = banks.request(a, 100, nullptr);
    const Tick f1 = banks.request(same_bank, 100, nullptr);
    EXPECT_EQ(f0, 100u);
    EXPECT_EQ(f1, 200u);
}

TEST(PipelinedUnit, LatencyVsInitiationInterval)
{
    EventQueue eq;
    PipelinedUnit u(eq, /*latency=*/40, /*interval=*/4);
    const Tick f0 = u.request();
    const Tick f1 = u.request();
    const Tick f2 = u.request();
    EXPECT_EQ(f0, 40u);  // full latency
    EXPECT_EQ(f1, 44u);  // one interval later
    EXPECT_EQ(f2, 48u);
    EXPECT_EQ(u.requests(), 3u);
}

TEST(CryptoEngine, CountsOperations)
{
    EventQueue eq;
    StatGroup g("g");
    CryptoEngine ce(eq, CryptoLatencies{}, g);
    ce.generateOtp();
    ce.generateMac();
    ce.generateMac();
    EXPECT_EQ(ce.generateCiphertext(), 1u);
    eq.run();
    EXPECT_DOUBLE_EQ(ce.statOtpGenerated.value(), 1.0);
    EXPECT_DOUBLE_EQ(ce.statMacGenerated.value(), 2.0);
    EXPECT_DOUBLE_EQ(ce.statCiphertexts.value(), 1.0);
}

TEST(CryptoEngine, MacCompletionFiresAtLatency)
{
    EventQueue eq;
    StatGroup g("g");
    CryptoLatencies lat;
    lat.macHash = 40;
    CryptoEngine ce(eq, lat, g);
    Tick done = 0;
    ce.generateMac([&] { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done, 40u);
}
