/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

using namespace secpb;

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("g");
    Scalar s(g, "s", "a scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 10.0;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageComputesMean)
{
    StatGroup g("g");
    Average a(g, "a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBucketsAndMoments)
{
    StatGroup g("g");
    Distribution d(g, "d", "a distribution", 0.0, 100.0, 10);
    d.sample(5.0);    // bucket 0
    d.sample(15.0);   // bucket 1
    d.sample(15.5);   // bucket 1
    d.sample(-1.0);   // underflow
    d.sample(250.0);  // overflow
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.minSeen(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSeen(), 250.0);
}

TEST(Stats, GroupFullNameNests)
{
    StatGroup parent("system");
    StatGroup child("cache", &parent);
    EXPECT_EQ(child.fullName(), "system.cache");
}

TEST(Stats, DumpContainsAllStats)
{
    StatGroup parent("sys");
    StatGroup child("sub", &parent);
    Scalar s1(parent, "top_counter", "top");
    Scalar s2(child, "sub_counter", "sub");
    s1 += 7;
    s2 += 9;
    std::ostringstream os;
    parent.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.top_counter"), std::string::npos);
    EXPECT_NE(text.find("sys.sub.sub_counter"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("9"), std::string::npos);
}

TEST(Stats, CsvDumpIsParsable)
{
    StatGroup g("g");
    Scalar s(g, "x", "x");
    s += 42;
    std::ostringstream os;
    g.dumpCsv(os);
    EXPECT_EQ(os.str(), "g.x,42\n");
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c", &parent);
    Scalar s1(parent, "a", "");
    Average s2(child, "b", "");
    s1 += 5;
    s2.sample(3.0);
    parent.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_EQ(s2.count(), 0u);
}

TEST(Stats, FindLocatesByName)
{
    StatGroup g("g");
    Scalar s(g, "needle", "");
    EXPECT_EQ(g.find("needle"), &s);
    EXPECT_EQ(g.find("missing"), nullptr);
}
