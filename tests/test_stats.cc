/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "stats/json.hh"
#include "stats/stats.hh"

using namespace secpb;

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("g");
    Scalar s(g, "s", "a scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 10.0;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageComputesMean)
{
    StatGroup g("g");
    Average a(g, "a", "an average");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, DistributionBucketsAndMoments)
{
    StatGroup g("g");
    Distribution d(g, "d", "a distribution", 0.0, 100.0, 10);
    d.sample(5.0);    // bucket 0
    d.sample(15.0);   // bucket 1
    d.sample(15.5);   // bucket 1
    d.sample(-1.0);   // underflow
    d.sample(250.0);  // overflow
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_DOUBLE_EQ(d.minSeen(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSeen(), 250.0);
}

TEST(Stats, GroupFullNameNests)
{
    StatGroup parent("system");
    StatGroup child("cache", &parent);
    EXPECT_EQ(child.fullName(), "system.cache");
}

TEST(Stats, DumpContainsAllStats)
{
    StatGroup parent("sys");
    StatGroup child("sub", &parent);
    Scalar s1(parent, "top_counter", "top");
    Scalar s2(child, "sub_counter", "sub");
    s1 += 7;
    s2 += 9;
    std::ostringstream os;
    parent.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sys.top_counter"), std::string::npos);
    EXPECT_NE(text.find("sys.sub.sub_counter"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("9"), std::string::npos);
}

TEST(Stats, CsvDumpIsParsable)
{
    StatGroup g("g");
    Scalar s(g, "x", "x");
    s += 42;
    std::ostringstream os;
    g.dumpCsv(os);
    EXPECT_EQ(os.str(), "g.x,42\n");
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c", &parent);
    Scalar s1(parent, "a", "");
    Average s2(child, "b", "");
    s1 += 5;
    s2.sample(3.0);
    parent.resetAll();
    EXPECT_DOUBLE_EQ(s1.value(), 0.0);
    EXPECT_EQ(s2.count(), 0u);
}

TEST(Stats, FindLocatesByName)
{
    StatGroup g("g");
    Scalar s(g, "needle", "");
    EXPECT_EQ(g.find("needle"), &s);
    EXPECT_EQ(g.find("missing"), nullptr);
}

TEST(Stats, EmptyDistributionReportsZeroMoments)
{
    StatGroup g("g");
    Distribution d(g, "d", "", 0.0, 100.0, 10);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    // Dumping an empty distribution must not divide by zero or emit NaN.
    std::ostringstream os;
    g.dumpCsv(os);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(Stats, AverageWithZeroSamplesIsZeroNotNan)
{
    StatGroup g("g");
    Average a(g, "a", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    for (const auto &[suffix, value] : a.jsonFields())
        EXPECT_FALSE(std::isnan(value)) << suffix;
}

TEST(Stats, ResetRoundTripsEachKind)
{
    StatGroup g("g");
    Scalar s(g, "s", "");
    Average a(g, "a", "");
    Distribution d(g, "d", "", 0.0, 10.0, 5);

    // Capture the pristine machine output, mutate, reset, recompare.
    std::ostringstream before;
    g.dumpCsv(before);

    s += 3;
    a.sample(1.0);
    d.sample(-5.0);   // touches underflow and min/max tracking
    d.sample(42.0);
    g.resetAll();

    std::ostringstream after;
    g.dumpCsv(after);
    EXPECT_EQ(before.str(), after.str());
    EXPECT_EQ(d.underflows(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    EXPECT_DOUBLE_EQ(d.minSeen(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxSeen(), 0.0);
}

TEST(Stats, NanAndInfSerializeAsJsonNull)
{
    StatGroup g("g");
    Scalar nan_stat(g, "nan_stat", "");
    Scalar inf_stat(g, "inf_stat", "");
    nan_stat = std::numeric_limits<double>::quiet_NaN();
    inf_stat = std::numeric_limits<double>::infinity();

    std::ostringstream js;
    JsonWriter w(js, /*pretty=*/false);
    g.toJson(w);
    // JSON has no NaN/Infinity literal; both become null, keeping the
    // document parseable by any strict reader.
    EXPECT_EQ(js.str(), "{\"g.nan_stat\": null,\"g.inf_stat\": null}");

    // CSV passes the raw printf rendering through (CSV has no spec for
    // non-finite, and hiding the value would mask the bug that made it).
    std::ostringstream csv;
    g.dumpCsv(csv);
    EXPECT_NE(csv.str().find("g.nan_stat,"), std::string::npos);
    EXPECT_NE(csv.str().find("g.inf_stat,"), std::string::npos);
}

TEST(Stats, VisitStatsWalksTreeInRegistrationOrder)
{
    StatGroup root("sys");
    StatGroup child("secpb", &root);
    StatGroup grandchild("mdc", &child);
    Scalar s1(root, "a", "");
    Scalar s2(child, "b", "");
    Scalar s3(grandchild, "c", "");

    std::vector<std::string> seen;
    root.visitStats([&](const std::string &prefix, const StatBase &stat) {
        seen.push_back(prefix + stat.name());
    });
    EXPECT_EQ(seen, (std::vector<std::string>{
                        "sys.a", "sys.secpb.b", "sys.secpb.mdc.c"}));
}

TEST(Stats, ToJsonEmitsFlatDottedObject)
{
    StatGroup root("sys");
    StatGroup child("sub", &root);
    Scalar s1(root, "x", "");
    Average a(child, "lat", "");
    s1 += 2;
    a.sample(4.0);
    a.sample(8.0);

    std::ostringstream ss;
    JsonWriter w(ss, /*pretty=*/false);
    root.toJson(w);
    EXPECT_EQ(ss.str(),
              "{\"sys.x\": 2,"
              "\"sys.sub.lat.mean\": 6,"
              "\"sys.sub.lat.count\": 2}");
}

TEST(Stats, FindByPathWalksChildGroups)
{
    StatGroup root("sys");
    StatGroup cores("cores0", &root);
    StatGroup sb("store_buffer", &cores);
    Scalar stalls(sb, "stalls", "");
    EXPECT_EQ(root.findByPath("cores0.store_buffer.stalls"), &stalls);
    EXPECT_EQ(root.findByPath("cores0.store_buffer.missing"), nullptr);
    EXPECT_EQ(root.findByPath("nonesuch.stalls"), nullptr);
    EXPECT_EQ(root.findByPath(""), nullptr);
    // Single-segment paths fall back to a direct stat lookup.
    Scalar direct(root, "direct", "");
    EXPECT_EQ(root.findByPath("direct"), &direct);
}
