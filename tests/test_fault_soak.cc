/**
 * @file
 * Randomized crash-consistency soak: the fault-injection subsystem's
 * acceptance test.
 *
 * Sweeps the full secure scheme zoo -- the paper's six SecPB schemes plus
 * secpm/triad/eadr/stream (scheme = trial mod std::size(SchemeZoo)) --
 * across randomized crash points (cycle- or persist-triggered), battery
 * budgets (from unbounded down to a sliver), tamper loads, and synthetic
 * workloads -- fully deterministic from one seed. Every trial must satisfy:
 *
 *  - recovery of the (possibly bounded) drain is consistent: the drained
 *    entries form an in-order prefix, abandoned residencies recover at
 *    their pre-residency version or as detectably torn, never as silent
 *    corruption;
 *  - an unbounded (or fully provisioned) battery abandons nothing;
 *  - every injected post-crash tamper is flagged by re-verification.
 *
 * A failing trial prints a one-line reproducer naming the seed, trial,
 * scheme, workload, and fault plan.
 *
 * Knobs: SECPB_SOAK_TRIALS (default 120), SECPB_SOAK_SEED (default 2026),
 * SECPB_SOAK_TRIAL (replay exactly one trial index from a reproducer).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <string>

#include "core/system.hh"
#include "fault/injector.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

constexpr const char *SoakProfiles[] = {
    "gamess", "omnetpp", "lbm", "mcf", "libquantum",
};

/** Everything one trial needs, derived deterministically from its RNG. */
struct TrialSetup
{
    Scheme scheme;
    SchemeParams params;
    const char *profile;
    std::uint64_t instructions;
    std::uint64_t workloadSeed;
    FaultPlan plan;

    std::string
    describe() const
    {
        return std::string("scheme=") + schemeSpecName(scheme, params) +
               " profile=" + profile +
               " instrs=" + std::to_string(instructions) +
               " wseed=" + std::to_string(workloadSeed) + " " +
               plan.describe();
    }
};

TrialSetup
drawTrial(std::uint64_t trial, Rng &rng)
{
    TrialSetup t;
    // Round-robin over the zoo so every scheme soaks regardless of the
    // trial count; the triad depth cycles through its useful range.
    t.scheme = SchemeZoo[trial % std::size(SchemeZoo)];
    if (t.scheme == Scheme::Triad)
        t.params.triadLevels = 1 + static_cast<unsigned>(trial % 4);
    t.profile = SoakProfiles[rng.below(std::size(SoakProfiles))];
    t.instructions = 8'000 + rng.below(8'000);
    t.workloadSeed = rng.next();

    if (rng.chance(0.5))
        t.plan.crashAtPersist = 1 + rng.below(220);
    else
        t.plan.crashAtTick = 100 + rng.below(40'000);

    // A third of trials keep the correctly provisioned battery (must
    // abandon nothing); the rest scale it down to force partial drains.
    if (!rng.chance(1.0 / 3.0))
        t.plan.batteryFraction = rng.uniform();

    t.plan.tamperCount = static_cast<unsigned>(rng.below(4));
    t.plan.tamperSeed = rng.next();
    return t;
}

} // namespace

TEST(FaultSoak, RandomizedCrashTamperSweep)
{
    const std::uint64_t seed = envOr("SECPB_SOAK_SEED", 2026);
    // Trial streams are independent (seeded by trial index), so one
    // reproducer's trial can be replayed without its predecessors.
    const std::uint64_t first = envOr("SECPB_SOAK_TRIAL", 0);
    const std::uint64_t trials =
        std::getenv("SECPB_SOAK_TRIAL") ? first + 1
                                        : envOr("SECPB_SOAK_TRIALS", 120);

    std::uint64_t bounded = 0, exhausted = 0, torn = 0, stale = 0,
                  tampersInjected = 0;

    for (std::uint64_t trial = first; trial < trials; ++trial) {
        // Independent per-trial stream: one trial is reproducible
        // without replaying its predecessors.
        Rng rng(seed * 0x9e3779b97f4a7c15ULL + trial);
        const TrialSetup t = drawTrial(trial, rng);
        const std::string repro =
            "SECPB_SOAK_SEED=" + std::to_string(seed) +
            " trial=" + std::to_string(trial) + " " + t.describe();

        SystemConfig cfg;
        cfg.scheme = t.scheme;
        cfg.secpb.params = t.params;
        cfg.pmDataBytes = 1ULL << 30;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName(t.profile), t.instructions,
                               t.workloadSeed);

        FaultInjector injector(sys, t.plan);
        const FaultReport r = injector.run(gen);

        ASSERT_TRUE(r.crash.recovered)
            << "inconsistent recovery: " << repro;
        if (!r.tampersAllDetected) {
            std::string detail;
            for (const TamperRecord &rec : r.tampers)
                detail += "\n  " + rec.describe() +
                          (TamperInjector::detected(rec, r.postTamper,
                                                    sys.layout(), sys.tree())
                               ? " (detected)"
                               : " (SILENT)");
            FAIL() << "silent tamper acceptance: " << repro << detail;
        }
        if (!t.plan.boundedBattery()) {
            ASSERT_FALSE(r.crash.work.batteryExhausted) << repro;
            ASSERT_TRUE(r.crash.work.abandoned.empty()) << repro;
        }
        if (!r.crash.work.abandoned.empty()) {
            ASSERT_TRUE(r.crash.work.batteryExhausted) << repro;
            // The metadata-cache flush is the battery's first, mandatory
            // claim (its functional writes happened at drain time); the
            // discretionary entry drains must fit in what remains.
            CrashWork flush_only;
            flush_only.pmBlockWrites = r.crash.work.mdcBlockFlushes;
            // eADR's hierarchy flush is part of the same mandatory floor.
            flush_only.cacheLinesFlushed = r.crash.work.cacheLinesFlushed;
            const double floor =
                sys.energyModel().actualCrashEnergy(flush_only);
            const double budget = *t.plan.batteryFraction *
                                  sys.provisionedCrashEnergy();
            ASSERT_LE(r.crash.work.energySpentJ,
                      std::max(budget, floor) + 1e-12)
                << repro;
        }

        bounded += t.plan.boundedBattery();
        exhausted += r.crash.work.batteryExhausted;
        torn += r.crash.recovery.tornDetected;
        stale += r.crash.recovery.staleConsistent;
        tampersInjected += r.tampers.size();
    }

    // The sweep must actually exercise the interesting regimes -- but
    // only when it IS a sweep: a short SECPB_SOAK_TRIALS run or a
    // single-trial SECPB_SOAK_TRIAL replay cannot be expected to cover
    // them.
    if (trials - first >= 100) {
        EXPECT_GT(bounded, trials / 3) << "too few bounded-battery trials";
        EXPECT_GT(exhausted, 0u) << "no trial ever exhausted its battery";
        EXPECT_GT(stale + torn, 0u) << "no trial ever abandoned an entry";
        EXPECT_GT(tampersInjected, trials / 2)
            << "too few tampers injected";
    }
}
