/**
 * @file
 * Force the "threadsafe" (re-execute) death-test style for the whole
 * test binary.
 *
 * Several suites spin up the process-wide ThreadPool (ThreadPool::
 * global()), whose workers live for the remainder of the run. The
 * default "fast" style fork()s the threaded process, and the child can
 * inherit an allocator lock held by a pool worker at fork time --
 * deadlocking any later death test in a whole-binary run (ctest runs
 * each test in its own process, which is why it never sees this).
 * The threadsafe style re-executes the binary from scratch instead of
 * forking mid-state, which is immune to inherited thread state.
 */

#include <gtest/gtest.h>

namespace
{

class ThreadsafeDeathTests : public testing::Environment
{
    void
    SetUp() override
    {
        testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

const testing::Environment *const kForceThreadsafe =
    testing::AddGlobalTestEnvironment(new ThreadsafeDeathTests);

} // namespace
