/**
 * @file
 * Unit tests for the PCM timing model and the ADR write pending queue.
 */

#include <gtest/gtest.h>

#include "mem/pcm.hh"
#include "mem/wpq.hh"

using namespace secpb;

namespace
{

PcmConfig
smallPcm()
{
    PcmConfig cfg;
    cfg.readLatency = 100;
    cfg.writeLatency = 300;
    cfg.numBanks = 2;
    return cfg;
}

} // namespace

TEST(Pcm, ReadLatencyObserved)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    Tick done = 0;
    pcm.read(0, [&] { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done, 100u);
    EXPECT_EQ(pcm.numReads(), 1u);
}

TEST(Pcm, WritesToSameBankSerialize)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    Tick d1 = 0, d2 = 0;
    const Addr same_bank = 2 * BlockSize;  // 2 banks
    pcm.write(0, [&] { d1 = eq.curTick(); });
    pcm.write(same_bank, [&] { d2 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(d1, 300u);
    EXPECT_EQ(d2, 600u);
}

TEST(Pcm, WritesToDifferentBanksOverlap)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    Tick d1 = 0, d2 = 0;
    pcm.write(0, [&] { d1 = eq.curTick(); });
    pcm.write(BlockSize, [&] { d2 = eq.curTick(); });
    eq.run();
    EXPECT_EQ(d1, 300u);
    EXPECT_EQ(d2, 300u);
}

TEST(Pcm, OccupancyStyleReturnsQueuedDelay)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    EXPECT_EQ(pcm.readOccupy(0), 100u);
    EXPECT_EQ(pcm.readOccupy(0), 200u);  // queued behind the first
}

TEST(Wpq, PushAndDrainFreesSlot)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    WritePendingQueue wpq(eq, pcm, 2, g);
    EXPECT_TRUE(wpq.push(0x000));
    EXPECT_EQ(wpq.occupancy(), 1u);
    eq.run();
    EXPECT_EQ(wpq.occupancy(), 0u);
    EXPECT_EQ(pcm.numWrites(), 1u);
}

TEST(Wpq, CoalescesSameBlock)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    WritePendingQueue wpq(eq, pcm, 2, g);
    EXPECT_TRUE(wpq.push(0x100));
    EXPECT_TRUE(wpq.push(0x108));  // same block -> coalesce
    EXPECT_EQ(wpq.occupancy(), 1u);
    EXPECT_DOUBLE_EQ(wpq.statCoalesced.value(), 1.0);
}

TEST(Wpq, RejectsWhenFullThenNotifies)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    WritePendingQueue wpq(eq, pcm, 2, g);
    EXPECT_TRUE(wpq.push(0 * BlockSize));
    EXPECT_TRUE(wpq.push(1 * BlockSize));
    EXPECT_TRUE(wpq.full());
    EXPECT_FALSE(wpq.push(2 * BlockSize));
    bool notified = false;
    wpq.notifyOnSpace([&] { notified = true; });
    eq.run();
    EXPECT_TRUE(notified);
    EXPECT_FALSE(wpq.full());
}

TEST(Wpq, FullRejectCounted)
{
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, smallPcm(), g);
    WritePendingQueue wpq(eq, pcm, 1, g);
    wpq.push(0 * BlockSize);
    wpq.push(1 * BlockSize);
    EXPECT_DOUBLE_EQ(wpq.statFullRejects.value(), 1.0);
}
