/**
 * @file
 * Tests for the SP (strict persistency, SPoP at the MC) baseline: WPQ
 * coalescing window, durability semantics, backpressure, and its
 * position in the performance ordering.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
spCfg()
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Sp;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

} // namespace

TEST(SpBaseline, StoresPersistWithFullTuple)
{
    SecPbSystem sys(spCfg());
    ScriptedGenerator gen;
    gen.store(0x000, 0x11).store(0x040, 0x22);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_TRUE(sys.pm().hasData(0x000));
    EXPECT_TRUE(sys.pm().hasData(0x040));
    // Tuples verify without any crash drain (SPoP == PoP at the MC).
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_TRUE(r.ok());
}

TEST(SpBaseline, HotStoresCoalesceInWpqWindow)
{
    SecPbSystem sys(spCfg());
    ScriptedGenerator gen;
    // A burst to the same block: the first store opens the window, the
    // rest coalesce into the pending tuple.
    for (int i = 0; i < 10; ++i)
        gen.store(0x100, 0x1000 + i);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    EXPECT_GT(sys.secpb().statCoalescedHits.value(), 0.0);
    // The persisted ciphertext decrypts to the LAST coalesced value.
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(blockWord(sys.oracle().blockContent(0x100), 4 /*0x20/8*/),
              0u);
    EXPECT_EQ(blockWord(sys.oracle().blockContent(0x100), 0), 0x1009u);
}

TEST(SpBaseline, CountersBumpPerTupleNotPerStore)
{
    SecPbSystem sys(spCfg());
    ScriptedGenerator gen;
    for (int i = 0; i < 10; ++i)
        gen.store(0x100, i);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    // Far fewer increments than stores thanks to WPQ-window coalescing.
    const BlockCounter c = sys.counters().counterFor(0x100);
    EXPECT_GE(c.minor, 1u);
    EXPECT_LT(c.minor, 10u);
}

TEST(SpBaseline, MidStoreCrashStillRecovers)
{
    SecPbSystem sys(spCfg());
    ScriptedGenerator gen;
    for (Addr a = 0; a < 40 * BlockSize; a += BlockSize)
        gen.store(a, a + 1);
    sys.start(gen);
    sys.runUntil(300);  // mid tuple-update
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}

TEST(SpBaseline, NoSecPbEntriesUsed)
{
    SecPbSystem sys(spCfg());
    ScriptedGenerator gen;
    for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
        gen.store(a, a);
    sys.run(gen);
    EXPECT_EQ(sys.secpb().occupancy(), 0u);
}

TEST(SpBaseline, SlowerThanCobcmOnEveryProfileClass)
{
    auto ticks = [](Scheme s, const char *bench) {
        const BenchmarkProfile &p = profileByName(bench);
        SystemConfig cfg = SecPbSystem::configFor(s, p);
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(p, 30'000, 3);
        return sys.run(gen).execTicks;
    };
    for (const char *bench : {"gamess", "sjeng", "lbm"})
        EXPECT_GT(ticks(Scheme::Sp, bench), ticks(Scheme::Cobcm, bench))
            << bench;
}
