/**
 * @file
 * Unit tests for the functional Bonsai Merkle Tree: structure, updates,
 * verification, defaults, and tamper detection at every level.
 */

#include <gtest/gtest.h>

#include "crypto/counters.hh"
#include "metadata/bmt.hh"
#include "sim/rng.hh"

using namespace secpb;

TEST(Bmt, LevelCountMatchesArity)
{
    EXPECT_EQ(BonsaiMerkleTree(1).numLevels(), 1u);
    EXPECT_EQ(BonsaiMerkleTree(8).numLevels(), 1u);
    EXPECT_EQ(BonsaiMerkleTree(9).numLevels(), 2u);
    EXPECT_EQ(BonsaiMerkleTree(64).numLevels(), 2u);
    // 8 GB PM -> 2^21 counter-block leaves -> 7 node levels, so a
    // leaf-to-root update performs 8 hashes ("BMT: 8 levels", Table I).
    BonsaiMerkleTree paper(1ULL << 21);
    EXPECT_EQ(paper.numLevels(), 7u);
    EXPECT_EQ(paper.updateHashCount(), 8u);
}

TEST(Bmt, FreshTreeVerifiesDefaultLeaves)
{
    BonsaiMerkleTree tree(4096);
    EXPECT_TRUE(tree.verifyLeaf(0, tree.defaultLeafDigest()));
    EXPECT_TRUE(tree.verifyLeaf(4095, tree.defaultLeafDigest()));
}

TEST(Bmt, UpdateChangesRoot)
{
    BonsaiMerkleTree tree(4096);
    const Digest r0 = tree.root();
    tree.updateLeaf(7, 0xdeadbeef);
    EXPECT_NE(tree.root(), r0);
}

TEST(Bmt, UpdatedLeafVerifies)
{
    BonsaiMerkleTree tree(4096);
    tree.updateLeaf(7, 0xdeadbeef);
    EXPECT_TRUE(tree.verifyLeaf(7, 0xdeadbeef));
    EXPECT_FALSE(tree.verifyLeaf(7, 0xdeadbeef ^ 1));
}

TEST(Bmt, UntouchedLeavesStillVerifyAfterUpdates)
{
    BonsaiMerkleTree tree(4096);
    tree.updateLeaf(7, 1);
    tree.updateLeaf(9, 2);
    EXPECT_TRUE(tree.verifyLeaf(100, tree.defaultLeafDigest()));
}

TEST(Bmt, ManyRandomUpdatesAllVerify)
{
    BonsaiMerkleTree tree(1ULL << 21);
    Rng rng(42);
    std::unordered_map<std::uint64_t, Digest> truth;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t leaf = rng.below(1ULL << 21);
        const Digest d = rng.next();
        tree.updateLeaf(leaf, d);
        truth[leaf] = d;
    }
    for (const auto &kv : truth)
        EXPECT_TRUE(tree.verifyLeaf(kv.first, kv.second));
}

TEST(Bmt, SameUpdateIsIdempotentOnRoot)
{
    BonsaiMerkleTree tree(4096);
    tree.updateLeaf(3, 0x1234);
    const Digest r = tree.root();
    tree.updateLeaf(3, 0x1234);
    EXPECT_EQ(tree.root(), r);
}

TEST(Bmt, RootRollbackDetected)
{
    // Replay of the root register (e.g. attacker restores an old root):
    // the fresh leaf no longer verifies.
    BonsaiMerkleTree tree(4096);
    tree.updateLeaf(5, 111);
    const Digest old_root = tree.root();
    tree.updateLeaf(5, 222);
    tree.setRoot(old_root);
    EXPECT_FALSE(tree.verifyLeaf(5, 222));
}

TEST(Bmt, InteriorNodeTamperDetected)
{
    BonsaiMerkleTree tree(1ULL << 12);
    tree.updateLeaf(77, 0xabc);
    const auto path = tree.pathIndices(77);
    // Tamper every level of the path in turn.
    for (unsigned lvl = 0; lvl < tree.numLevels(); ++lvl) {
        BonsaiMerkleTree fresh(1ULL << 12);
        fresh.updateLeaf(77, 0xabc);
        BmtNode forged = fresh.node(lvl, path[lvl]);
        forged.child[0] ^= 1;
        ASSERT_TRUE(fresh.tamperNode(lvl, path[lvl], forged));
        EXPECT_FALSE(fresh.verifyLeaf(77, 0xabc)) << "level " << lvl;
    }
}

TEST(Bmt, TamperUntouchedNodeRefused)
{
    // tamperNode only overwrites stored nodes; untouched subtrees hold
    // no forgeable state (their digests are implicit defaults).
    BonsaiMerkleTree tree(1ULL << 12);
    EXPECT_FALSE(tree.tamperNode(0, 5, BmtNode{}));
    tree.updateLeaf(77, 0xabc);
    const auto path = tree.pathIndices(77);
    EXPECT_TRUE(tree.tamperNode(0, path[0], tree.node(0, path[0])));
    // A node off the touched path is still untouched.
    EXPECT_FALSE(tree.tamperNode(0, path[0] + 1, BmtNode{}));
}

TEST(Bmt, OffPathSlotTamperStillDetected)
{
    // Flipping a child slot the victim leaf does NOT route through still
    // changes the node's digest, which the parent (or root) stores -- the
    // digest chain catches forgeries anywhere in a stored node.
    BonsaiMerkleTree tree(1ULL << 12);
    tree.updateLeaf(77, 0xabc);
    const auto path = tree.pathIndices(77);
    for (unsigned lvl = 0; lvl < tree.numLevels(); ++lvl) {
        BonsaiMerkleTree fresh(1ULL << 12);
        fresh.updateLeaf(77, 0xabc);
        const unsigned on_path_slot = static_cast<unsigned>(
            lvl == 0 ? 77 % 8 : path[lvl - 1] % 8);
        const unsigned off_slot = (on_path_slot + 1) % 8;
        BmtNode forged = fresh.node(lvl, path[lvl]);
        forged.child[off_slot] ^= 0xf0;
        ASSERT_TRUE(fresh.tamperNode(lvl, path[lvl], forged));
        EXPECT_FALSE(fresh.verifyLeaf(77, 0xabc)) << "level " << lvl;
    }
}

TEST(Bmt, TamperOneNodeLeavesOtherSubtreesVerifiable)
{
    // Detection is path-scoped: a forged node breaks verification for
    // leaves routing through it, while disjoint subtrees still verify.
    BonsaiMerkleTree tree(1ULL << 12);
    tree.updateLeaf(8, 0x111);   // node path 1, 0, 0 ...
    tree.updateLeaf(64, 0x222);  // node path 8, 1, 0 ...
    const auto path = tree.pathIndices(8);
    BmtNode forged = tree.node(0, path[0]);
    forged.child[0] ^= 1;
    ASSERT_TRUE(tree.tamperNode(0, path[0], forged));
    EXPECT_FALSE(tree.verifyLeaf(8, 0x111));
    EXPECT_TRUE(tree.verifyLeaf(64, 0x222));
}

TEST(Bmt, PathIndicesShrinkByArity)
{
    BonsaiMerkleTree tree(1ULL << 21);
    const auto path = tree.pathIndices(0777777);
    ASSERT_EQ(path.size(), tree.numLevels());
    std::uint64_t idx = 0777777;
    for (unsigned l = 0; l < path.size(); ++l) {
        idx /= 8;
        EXPECT_EQ(path[l], idx);
    }
    EXPECT_EQ(path.back(), 0u);  // top node
}

TEST(Bmt, LeafDigestMatchesCounterBlockHash)
{
    BonsaiMerkleTree tree(64);
    CounterBlock cb;
    cb.increment(3);
    const Digest d = tree.leafDigest(cb);
    tree.updateLeaf(0, d);
    EXPECT_TRUE(tree.verifyLeaf(0, tree.leafDigest(cb)));
    cb.increment(3);
    EXPECT_FALSE(tree.verifyLeaf(0, tree.leafDigest(cb)));
}

TEST(Bmt, SparseStorageOnlyTouchedNodes)
{
    BonsaiMerkleTree tree(1ULL << 21);
    EXPECT_EQ(tree.touchedNodes(), 0u);
    tree.updateLeaf(0, 1);
    EXPECT_EQ(tree.touchedNodes(), tree.numLevels());
    // A second update along the same path adds no nodes.
    tree.updateLeaf(1, 2);
    EXPECT_EQ(tree.touchedNodes(), tree.numLevels());
}
