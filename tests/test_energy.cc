/**
 * @file
 * Unit tests for the energy / battery-sizing model (Tables III, V, VI).
 * Absolute checks pin the rows the paper reports; relational checks pin
 * the orderings the design space promises.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace secpb;

namespace
{

const EnergyModel &
model()
{
    static EnergyModel em(EnergyCosts{}, /*bmt_levels=*/8);
    return em;
}

double
scVolume(Scheme s, unsigned entries)
{
    return model().size(model().secPbBatteryEnergy(s, entries),
                        superCapTech()).volumeMm3;
}

} // namespace

TEST(Energy, EntryFootprintsMatchFigure5)
{
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::Cobcm)),
              64u);
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::Obcm)),
              65u);
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::Bcm)),
              129u);
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::Cm)),
              129u);
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::M)),
              193u);
    // NoGap tracks every field: the paper's 260 B entry (Table I).
    EXPECT_EQ(EnergyModel::entryFootprintBytes(schemeTraits(Scheme::NoGap)),
              257u);
}

TEST(Energy, LazierSchemesNeedBiggerBatteries)
{
    const unsigned n = 32;
    EXPECT_GT(scVolume(Scheme::Cobcm, n), scVolume(Scheme::Cm, n));
    EXPECT_GT(scVolume(Scheme::Cm, n), scVolume(Scheme::NoGap, n));
    EXPECT_GE(scVolume(Scheme::Obcm, n) * 1.001,
              scVolume(Scheme::Bcm, n));
    EXPECT_GE(scVolume(Scheme::Cobcm, n) * 1.001,
              scVolume(Scheme::Obcm, n));
}

TEST(Energy, TableVValuesWithinTolerance)
{
    // Paper Table V, SuperCap volumes (mm^3), 32-entry SecPB.
    EXPECT_NEAR(scVolume(Scheme::Cobcm, 32), 4.89, 4.89 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::Obcm, 32), 4.82, 4.82 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::Bcm, 32), 4.72, 4.72 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::Cm, 32), 0.73, 0.73 * 0.20);
    EXPECT_NEAR(scVolume(Scheme::M, 32), 0.67, 0.67 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::NoGap, 32), 0.28, 0.28 * 0.10);
}

TEST(Energy, BbbAndEadrRows)
{
    const auto bbb =
        model().size(model().bbbBatteryEnergy(32), superCapTech());
    EXPECT_NEAR(bbb.volumeMm3, 0.07, 0.01);
    const auto eadr =
        model().size(model().eadrBatteryEnergy(), superCapTech());
    EXPECT_NEAR(eadr.volumeMm3, 149.32, 149.32 * 0.01);
}

TEST(Energy, CoreAreaRatiosMatchPaper)
{
    // COBCM 32-entry: 53.6% of a 5.37 mm^2 core (SuperCap), 2.5% Li-Thin.
    const double e = model().secPbBatteryEnergy(Scheme::Cobcm, 32);
    EXPECT_NEAR(model().size(e, superCapTech()).areaRatioToCore, 0.536,
                0.06);
    EXPECT_NEAR(model().size(e, liThinTech()).areaRatioToCore, 0.025,
                0.004);
}

TEST(Energy, LiThinIsHundredTimesDenser)
{
    const double e = 1.0e-3;
    EXPECT_NEAR(model().size(e, superCapTech()).volumeMm3 /
                    model().size(e, liThinTech()).volumeMm3,
                100.0, 1e-6);
}

TEST(Energy, BatteryScalesLinearlyWithEntries)
{
    // Table VI shape: doubling the SecPB roughly doubles the battery.
    for (Scheme s : {Scheme::Cobcm, Scheme::NoGap}) {
        const double v64 = scVolume(s, 64);
        const double v128 = scVolume(s, 128);
        EXPECT_NEAR(v128 / v64, 2.0, 0.05) << schemeName(s);
    }
}

TEST(Energy, TableVISpotValues)
{
    EXPECT_NEAR(scVolume(Scheme::Cobcm, 8), 1.33, 1.33 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::Cobcm, 512), 76.10, 76.10 * 0.10);
    EXPECT_NEAR(scVolume(Scheme::NoGap, 512), 4.35, 4.35 * 0.05);
}

TEST(Energy, SEadrDwarfsSecPb)
{
    const double s_eadr = model().sEadrBatteryEnergy();
    const double cobcm = model().secPbBatteryEnergy(Scheme::Cobcm, 32);
    // Paper reports 753x; our worst-case accounting yields a few
    // thousand (documented deviation in EXPERIMENTS.md). The claim that
    // survives either way: orders of magnitude apart.
    EXPECT_GT(s_eadr / cobcm, 500.0);
}

TEST(Energy, ActualCrashEnergyAccountsComponents)
{
    CrashWork w;
    w.entriesDrained = 2;
    w.otpsGenerated = 2;
    w.macsComputed = 2;
    w.bmtLevelsWalked = 16;
    w.pmBlockWrites = 6;
    const double e = model().actualCrashEnergy(w);
    EXPECT_GT(e, 0.0);
    CrashWork w2 = w;
    w2.bmtLevelsWalked = 0;
    EXPECT_LT(model().actualCrashEnergy(w2), e);
}

TEST(Energy, WorstCaseBoundsActualForFullBuffer)
{
    // A fully lazy 32-entry drain can never exceed the provisioned
    // worst case (which assumes every metadata access misses).
    CrashWork w;
    w.entriesDrained = 32;
    w.countersIncremented = 32;
    w.counterFetches = 32;
    w.otpsGenerated = 32;
    w.macsComputed = 32;
    w.ciphertexts = 32;
    w.bmtRootUpdates = 32;
    w.bmtLevelsWalked = 32 * 8;
    w.pmBlockWrites = 96;
    EXPECT_LE(model().actualCrashEnergy(w),
              model().secPbBatteryEnergy(Scheme::Cobcm, 32) * 1.05);
}

TEST(Energy, SizeWithPhysicsInflatesByVoltageWindow)
{
    // Realistic sizing: only the (V^2 - Vcut^2)/V^2 window of a cell's
    // stored energy is usable above the regulator cutoff, so the part
    // grows by exactly 1/window relative to the paper's ideal sizing.
    const double e = model().secPbBatteryEnergy(Scheme::Cobcm, 32);
    const CapacitorParams sc = capacitorPresetFor("supercap");
    const BatteryEstimate ideal = model().size(e, superCapTech());
    const BatteryEstimate real =
        model().sizeWithPhysics(e, superCapTech(), sc);
    EXPECT_NEAR(real.volumeMm3 / ideal.volumeMm3,
                1.0 / usableWindowFraction(sc), 1e-9);

    // Li-thin window is 7/16 exactly, so the inflation is 16/7.
    const CapacitorParams li = capacitorPresetFor("li-thin");
    const BatteryEstimate li_real =
        model().sizeWithPhysics(e, liThinTech(), li);
    EXPECT_NEAR(li_real.volumeMm3 / model().size(e, liThinTech()).volumeMm3,
                16.0 / 7.0, 1e-9);
}

TEST(Energy, SizeWithPhysicsDerateCompoundsWithWindow)
{
    // End-of-life derating compounds multiplicatively with the voltage
    // window: half the rated capacitance means twice the part.
    CapacitorParams p = capacitorPresetFor("supercap");
    const BatteryEstimate full =
        model().sizeWithPhysics(1e-3, superCapTech(), p);
    p.capacitanceDerate = 0.5;
    const BatteryEstimate derated =
        model().sizeWithPhysics(1e-3, superCapTech(), p);
    EXPECT_NEAR(derated.volumeMm3 / full.volumeMm3, 2.0, 1e-9);
    // The usable requirement reported is the caller's, not the inflated
    // stored energy the part must hold.
    EXPECT_DOUBLE_EQ(derated.energyJ, 1e-3);
}

TEST(Energy, SizeWithPhysicsIdealParamsMatchIdealSizing)
{
    // Ideal params still carry a (wide) default voltage window; with the
    // window forced to 1 the realistic path degenerates to size().
    CapacitorParams p;
    p.ratedVoltage = 5.0;
    p.cutoffVoltage = 0.0;
    const BatteryEstimate a = model().sizeWithPhysics(1e-3,
                                                      superCapTech(), p);
    const BatteryEstimate b = model().size(1e-3, superCapTech());
    EXPECT_DOUBLE_EQ(a.volumeMm3, b.volumeMm3);
}

TEST(EnergyDeath, SizeWithPhysicsRejectsBadDerate)
{
    CapacitorParams p = capacitorPresetFor("supercap");
    p.capacitanceDerate = 0.0;
    EXPECT_EXIT(model().sizeWithPhysics(1e-3, superCapTech(), p),
                ::testing::ExitedWithCode(1), "derate must be in");
    p.capacitanceDerate = 1.0001;
    EXPECT_EXIT(model().sizeWithPhysics(1e-3, superCapTech(), p),
                ::testing::ExitedWithCode(1), "derate must be in");
}

TEST(EnergyDeath, SizeWithPhysicsRejectsEmptyVoltageWindow)
{
    CapacitorParams p;
    p.ratedVoltage = p.cutoffVoltage = 2.0;  // zero usable window
    EXPECT_EXIT(model().sizeWithPhysics(1e-3, superCapTech(), p),
                ::testing::ExitedWithCode(1), "must exceed cutoff");
}
