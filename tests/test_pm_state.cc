/**
 * @file
 * Direct unit tests for the functional persistent state: PM image,
 * persist oracle, counter store, and the speculative-verification knob.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "mem/pm_image.hh"
#include "metadata/counter_store.hh"
#include "recovery/oracle.hh"
#include "workload/synthetic.hh"

using namespace secpb;

TEST(PmImage, UntouchedBlocksReadZero)
{
    PmImage pm;
    EXPECT_FALSE(pm.hasData(0x1000));
    EXPECT_EQ(pm.readData(0x1000), zeroBlock());
    EXPECT_EQ(pm.readMac(0x1000), 0u);
    EXPECT_EQ(pm.readCounterBlock(7), CounterBlock{});
}

TEST(PmImage, WritesAreBlockAligned)
{
    PmImage pm;
    BlockData b = zeroBlock();
    setBlockWord(b, 0, 0x1234);
    pm.writeData(0x1038, b);  // unaligned address
    EXPECT_TRUE(pm.hasData(0x1000));
    EXPECT_EQ(pm.readData(0x1010), b);  // any address in the block
}

TEST(PmImage, DataBlockEnumeration)
{
    PmImage pm;
    pm.writeData(0x000, zeroBlock());
    pm.writeData(0x040, zeroBlock());
    pm.writeData(0x040, zeroBlock());  // overwrite, not a new block
    EXPECT_EQ(pm.numDataBlocks(), 2u);
    EXPECT_EQ(pm.dataBlockAddrs().size(), 2u);
}

TEST(PmImage, TamperHooksMutateState)
{
    PmImage pm;
    pm.writeData(0x000, zeroBlock());
    pm.tamperData(0x000, 5, 0xFF);
    EXPECT_EQ(pm.readData(0x000)[5], 0xFF);
    pm.writeMac(0x000, 0x1111);
    pm.tamperMac(0x000, 0x0F);
    EXPECT_EQ(pm.readMac(0x000), 0x1111u ^ 0x0Fu);
}

TEST(Oracle, StoresAccumulateInOrder)
{
    PersistOracle o;
    o.applyStore(0x100, 0xAA);
    o.applyStore(0x108, 0xBB);
    o.applyStore(0x100, 0xCC);  // overwrite word 0
    EXPECT_EQ(o.numPersists(), 3u);
    EXPECT_EQ(o.numBlocks(), 1u);
    const BlockData b = o.blockContent(0x100);
    EXPECT_EQ(blockWord(b, 0), 0xCCu);
    EXPECT_EQ(blockWord(b, 1), 0xBBu);
}

TEST(Oracle, TouchedIsBlockGranular)
{
    PersistOracle o;
    o.applyStore(0x100, 1);
    EXPECT_TRUE(o.touched(0x13F));
    EXPECT_FALSE(o.touched(0x140));
}

TEST(CounterStore, IncrementsAreIndependentAcrossBlocks)
{
    MetadataLayout layout(1ULL << 30);
    CounterStore cs(layout);
    cs.increment(0x000);
    cs.increment(0x000);
    cs.increment(0x040);
    EXPECT_EQ(cs.counterFor(0x000).minor, 2u);
    EXPECT_EQ(cs.counterFor(0x040).minor, 1u);
    EXPECT_EQ(cs.counterFor(0x080).minor, 0u);
    EXPECT_EQ(cs.numTouched(), 1u);  // one counter block (same page)
}

TEST(CounterStore, OverflowReturnsOldBlock)
{
    MetadataLayout layout(1ULL << 30);
    CounterStore cs(layout);
    for (unsigned i = 0; i < MinorCounterMax; ++i)
        EXPECT_FALSE(cs.increment(0x000).overflowed);
    const CounterIncrement r = cs.increment(0x000);
    EXPECT_TRUE(r.overflowed);
    EXPECT_EQ(r.oldBlock.minors[0], MinorCounterMax);
    EXPECT_EQ(r.counter.major, 1u);
    EXPECT_EQ(r.counter.minor, 0u);
}

TEST(SpeculativeVerification, DisablingSlowsMemLoads)
{
    const BenchmarkProfile &p = profileByName("mcf");  // PM-load heavy
    SystemConfig spec;
    spec.speculativeVerification = true;
    spec = SecPbSystem::configFor(Scheme::Cobcm, p, spec);
    SystemConfig nonspec;
    nonspec.speculativeVerification = false;
    nonspec = SecPbSystem::configFor(Scheme::Cobcm, p, nonspec);
    EXPECT_GT(nonspec.cpu.loadPenalties.mem, spec.cpu.loadPenalties.mem);

    auto ticks = [&p](const SystemConfig &cfg) {
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(p, 40'000, 7);
        return sys.run(gen).execTicks;
    };
    EXPECT_GT(ticks(nonspec), ticks(spec));
}

TEST(SpeculativeVerification, InsecureBaselineUnaffected)
{
    const BenchmarkProfile &p = profileByName("mcf");
    SystemConfig cfg;
    cfg.speculativeVerification = false;
    cfg = SecPbSystem::configFor(Scheme::Bbb, p, cfg);
    SystemConfig base = SecPbSystem::configFor(Scheme::Bbb, p);
    EXPECT_DOUBLE_EQ(cfg.cpu.loadPenalties.mem,
                     base.cpu.loadPenalties.mem);
}
