/**
 * @file
 * Shard-count determinism for the multi-core epoch-barrier engine.
 *
 * `shards` is host parallelism only: slices share no mutable state while
 * an epoch runs, and the barrier processes page requests serially in
 * (tick, core, seq) order, so the simulation must be byte-identical for
 * every shard count -- results, stat dumps, crash reports, and the
 * experiment engine's captured JSON alike. These tests pin that
 * contract, which the CI release job re-checks end-to-end on the bench
 * JSON documents.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "exp/experiment.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

/** A 4-core spec whose only variable is the shard count. */
SimulationSpec
shardSpec(unsigned shards)
{
    SimulationSpec spec;
    spec.base.scheme = Scheme::Cobcm;
    spec.base.secpb.numEntries = 8;
    spec.base.pmDataBytes = 1ULL << 30;
    spec.cores = 4;
    spec.shards = shards;
    return spec;
}

/** Owned generators + the raw-pointer view MultiCoreSystem wants. */
struct GenSet
{
    std::vector<std::unique_ptr<SyntheticGenerator>> owned;
    std::vector<WorkloadGenerator *> raw;
};

/**
 * Four generators with pairwise-overlapping regions (cores 0/2 and 1/3
 * share pages), so the run exercises migrations, stop marks, and grant
 * ordering -- the machinery that could diverge if sharding leaked.
 */
GenSet
sharingGens(std::uint64_t instr, std::uint64_t seed)
{
    GenSet g;
    for (unsigned c = 0; c < 4; ++c) {
        g.owned.push_back(std::make_unique<SyntheticGenerator>(
            profileByName("gcc"), instr, seed + c,
            /*region_base=*/0x100000ULL * (c % 2)));
        g.raw.push_back(g.owned.back().get());
    }
    return g;
}

std::string
fingerprint(const SimulationResult &r)
{
    std::ostringstream os;
    os.precision(17);
    r.visitFields([&](const char *k, auto v) { os << k << '=' << v << '\n'; });
    return os.str();
}

std::string
fingerprint(const MultiCoreResult &r)
{
    std::ostringstream os;
    os << "exec_ticks=" << r.execTicks
       << " instructions=" << r.totalInstructions
       << " migrations=" << r.migrations
       << " remote_read_flushes=" << r.remoteReadFlushes
       << " first_touches=" << r.firstTouches << '\n';
    for (const SimulationResult &pc : r.perCore)
        os << fingerprint(pc);
    return os.str();
}

std::string
statsDump(Simulation &sim)
{
    std::ostringstream os;
    sim.dumpStats(os);
    return os.str();
}

} // namespace

TEST(ShardDeterminism, RunByteIdenticalAcrossShardCounts)
{
    // Reference: the serial schedule (shards = 1).
    Simulation ref(shardSpec(1));
    GenSet refGens = sharingGens(6'000, 42);
    const MultiCoreResult refResult = ref.run(refGens.raw);
    const std::string refFp = fingerprint(refResult);
    const std::string refDump = statsDump(ref);
    EXPECT_GT(refResult.migrations, 0u) << "workload must exercise sharing";

    for (unsigned shards : {2u, 3u, 4u}) {
        Simulation sim(shardSpec(shards));
        GenSet gens = sharingGens(6'000, 42);
        const MultiCoreResult r = sim.run(gens.raw);
        EXPECT_EQ(fingerprint(r), refFp) << "shards=" << shards;
        EXPECT_EQ(statsDump(sim), refDump) << "shards=" << shards;
        EXPECT_TRUE(sim.multi().invariantNoReplication());
    }
}

TEST(ShardDeterminism, CrashMidEpochIdenticalAcrossShardCounts)
{
    // Crash at a tick that is NOT on the epoch grid: the barrier grid is
    // absolute, so runUntil() slicing (and therefore the crash point's
    // position inside an epoch) must not depend on the shard count.
    auto crashFp = [](unsigned shards) {
        Simulation sim(shardSpec(shards));
        GenSet gens = sharingGens(6'000, 7);
        sim.start(gens.raw);
        const Tick et = sim.multi().epochTicks();
        sim.runUntil(2 * et + et / 3);
        const CrashReport cr = sim.crashNow();
        std::ostringstream os;
        os.precision(17);
        os << "drained=" << cr.work.entriesDrained
           << " root_updates=" << cr.work.bmtRootUpdates
           << " rebuilt=" << cr.work.bmtNodesRebuilt
           << " flushed=" << cr.work.cacheLinesFlushed
           << " window=" << cr.drainLatency
           << " energy=" << cr.actualEnergyJ
           << " recovered=" << cr.recovered << '\n';
        sim.dumpStats(os);
        return os.str();
    };
    const std::string ref = crashFp(1);
    EXPECT_NE(ref.find("recovered=1"), std::string::npos);
    EXPECT_EQ(crashFp(2), ref);
    EXPECT_EQ(crashFp(4), ref);
}

TEST(ShardDeterminism, RunUntilSlicingDoesNotChangeBehavior)
{
    // Epochs end on multiples of epochTicks regardless of how the run is
    // chopped into runUntil() calls: one big sharded run and many small
    // odd-sized serial steps land on the same barriers, hence the same
    // grant order and the same final state.
    Simulation whole(shardSpec(4));
    GenSet wholeGens = sharingGens(4'000, 99);
    whole.run(wholeGens.raw);

    Simulation stepped(shardSpec(1));
    GenSet stepGens = sharingGens(4'000, 99);
    stepped.start(stepGens.raw);
    while (!stepped.finished())
        stepped.runUntil(stepped.multi().now() + 777);

    EXPECT_EQ(statsDump(stepped), statsDump(whole));
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(fingerprint(stepped.multi().slice(c).result()),
                  fingerprint(whole.multi().slice(c).result()))
            << "core " << c;
}

TEST(ShardDeterminism, ExperimentPointShardsFieldIsInert)
{
    // The sweep engine's multi-core points must serialize identically
    // for every shard count: same aggregate result, same captured stats
    // JSON. (hostSeconds is the one field outside the contract; the
    // bench JSON gate blanks it.)
    auto runPoint = [](unsigned shards) {
        ExperimentPoint p;
        p.label = "determinism/cores4";
        p.scheme = Scheme::Cobcm;
        p.profile = "gcc";
        p.instructions = 5'000;
        p.seed = 11;
        p.cores = 4;
        p.shards = shards;
        p.captureStats = true;
        return runExperimentPoint(p);
    };
    const ExperimentResult ref = runPoint(1);
    ASSERT_FALSE(ref.statsJson.empty());
    for (unsigned shards : {2u, 4u}) {
        const ExperimentResult r = runPoint(shards);
        EXPECT_EQ(fingerprint(r.sim), fingerprint(ref.sim))
            << "shards=" << shards;
        EXPECT_EQ(r.statsJson, ref.statsJson) << "shards=" << shards;
    }
}
