/**
 * @file
 * The secpb-trace file format: lossless round trips in both encodings,
 * loud failures on corrupt headers and truncated payloads, seekable
 * replay, and the record/replay identity the workload front-end is
 * built on -- replaying a recording is byte-identical to the live run,
 * all the way down to the simulation results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "exp/experiment.hh"
#include "workload/generators.hh"
#include "workload/registry.hh"
#include "workload/trace_file.hh"

using namespace secpb;

namespace
{

/** Unique-per-test scratch path under the build dir. */
std::string
scratchPath(const std::string &stem)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string path = std::string(info->test_suite_name()) + "_" +
                       info->name() + "_" + stem;
    // Parameterized names contain '/': flatten to a plain filename.
    std::replace(path.begin(), path.end(), '/', '_');
    return path;
}

/** An op list covering every kind and field. */
std::vector<TraceOp>
sampleOps()
{
    std::vector<TraceOp> ops;
    TraceOp op;
    op.kind = TraceOp::Kind::Instr;
    op.count = 17;
    ops.push_back(op);

    op = TraceOp{};
    op.kind = TraceOp::Kind::Load;
    op.level = MemLevel::Mem;
    op.addr = 0xdeadbe00;
    op.asid = 3;
    ops.push_back(op);

    op = TraceOp{};
    op.kind = TraceOp::Kind::Store;
    op.addr = 0x1000'0008;
    op.value = 0xfeedfacecafef00dULL;
    op.asid = 42;
    ops.push_back(op);

    op = TraceOp{};
    op.kind = TraceOp::Kind::Barrier;
    op.asid = 42;
    ops.push_back(op);

    op = TraceOp{};
    op.kind = TraceOp::Kind::Load;
    op.level = MemLevel::L3;
    ops.push_back(op);
    return ops;
}

void
expectOpEq(const TraceOp &a, const TraceOp &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.value, b.value);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.asid, b.asid);
}

class TraceFileRoundTrip : public ::testing::TestWithParam<TraceEncoding>
{
};

} // namespace

TEST_P(TraceFileRoundTrip, OpsMetaAndCountSurviveLosslessly)
{
    const std::string path = scratchPath("rt.trc");
    const std::vector<TraceOp> ops = sampleOps();
    {
        TraceFileWriter w(path, GetParam(),
                          {{"workload", "kv_wal:puts=0.8"}, {"seed", "7"}});
        for (const TraceOp &op : ops)
            w.add(op);
        w.close();
        EXPECT_EQ(w.numOps(), ops.size());
    }

    TraceFileReader r(path);
    EXPECT_EQ(r.encoding(), GetParam());
    EXPECT_EQ(r.numOps(), ops.size());
    EXPECT_EQ(r.metaValue("workload"), "kv_wal:puts=0.8");
    EXPECT_EQ(r.metaValue("seed"), "7");
    EXPECT_EQ(r.metaValue("missing", "dflt"), "dflt");

    TraceOp got;
    for (const TraceOp &want : ops) {
        ASSERT_TRUE(r.next(got));
        expectOpEq(want, got);
    }
    EXPECT_FALSE(r.next(got));
    EXPECT_EQ(r.opsRead(), ops.size());

    // Seekable: rewind() replays from the first op without reopening.
    r.rewind();
    ASSERT_TRUE(r.next(got));
    expectOpEq(ops[0], got);

    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Encodings, TraceFileRoundTrip,
                         ::testing::Values(TraceEncoding::Text,
                                           TraceEncoding::Binary),
                         [](const auto &info) {
                             return traceEncodingName(info.param);
                         });

TEST(TraceFile, EmptyTraceRoundTrips)
{
    const std::string path = scratchPath("empty.trc");
    {
        TraceFileWriter w(path, TraceEncoding::Binary);
        w.close();
    }
    TraceFileReader r(path);
    EXPECT_EQ(r.numOps(), 0u);
    TraceOp op;
    EXPECT_FALSE(r.next(op));
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(TraceFileReader("no/such/trace.trc"), "cannot open");
}

TEST(TraceFileDeath, CorruptMagicIsFatal)
{
    const std::string path = scratchPath("magic.trc");
    {
        std::ofstream out(path, std::ios::binary);
        out << "NOTATRCE garbage follows";
    }
    EXPECT_DEATH(TraceFileReader r(path), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, UnsupportedVersionIsFatal)
{
    const std::string path = scratchPath("ver.trc");
    {
        std::ofstream out(path);
        out << "secpb-trace v99 text\nops 0\nend\n";
    }
    EXPECT_DEATH(TraceFileReader r(path), "version");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TruncatedBinaryPayloadIsFatal)
{
    const std::string path = scratchPath("trunc.trc");
    {
        TraceFileWriter w(path, TraceEncoding::Binary);
        for (const TraceOp &op : sampleOps())
            w.add(op);
        w.close();
    }
    // Chop the last bytes off: the reader promised numOps() ops and must
    // die loudly instead of returning a silently shortened workload.
    std::ifstream in(path, std::ios::binary);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(all.data(),
                  static_cast<std::streamsize>(all.size() - 6));
    }
    EXPECT_DEATH(
        {
            TraceFileReader r(path);
            TraceOp op;
            while (r.next(op)) {
            }
        },
        "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TextCountMismatchIsFatal)
{
    const std::string path = scratchPath("count.trc");
    {
        std::ofstream out(path);
        out << "secpb-trace v1 text\nops 00000000000000000003\n"
            << "I 5\nend\n";
    }
    EXPECT_DEATH(
        {
            TraceFileReader r(path);
            TraceOp op;
            while (r.next(op)) {
            }
        },
        "header promised");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MisalignedStoreIsFatalAtWriteTime)
{
    const std::string path = scratchPath("align.trc");
    TraceFileWriter w(path, TraceEncoding::Text);
    TraceOp op;
    op.kind = TraceOp::Kind::Store;
    op.addr = 0x1003;  // not 8-byte aligned
    EXPECT_DEATH(w.add(op), "aligned");
    std::remove(path.c_str());
}

TEST(TraceFile, RecordingTeesExactlyWhatTheConsumerSaw)
{
    const std::string path = scratchPath("tee.trc");
    KvWalParams kp;
    kp.checkpointEvery = 64;

    // Drain a recorded run and a bare run of the same generator.
    std::vector<TraceOp> live;
    {
        KvWalGenerator gen(kp, 4000, 11);
        TraceOp op;
        while (gen.next(op))
            live.push_back(op);
    }
    {
        RecordingGenerator rec(
            std::make_unique<KvWalGenerator>(kp, 4000, 11), path,
            TraceEncoding::Binary, {{"workload", "kv_wal"}});
        TraceOp op;
        std::size_t i = 0;
        while (rec.next(op)) {
            ASSERT_LT(i, live.size());
            expectOpEq(live[i++], op);
        }
        EXPECT_EQ(i, live.size());
        rec.finish();
    }

    // And the replay matches both, op for op, plus counters.
    ReplayGenerator rep(path);
    TraceOp op;
    std::size_t i = 0;
    while (rep.next(op)) {
        ASSERT_LT(i, live.size());
        expectOpEq(live[i++], op);
    }
    EXPECT_EQ(i, live.size());
    ASSERT_NE(rep.counters(), nullptr);
    EXPECT_EQ(rep.counters()->ops, live.size());

    // rewind() supports multi-cycle fault experiments.
    rep.rewind();
    ASSERT_TRUE(rep.next(op));
    expectOpEq(live[0], op);

    std::remove(path.c_str());
}

TEST(TraceFile, ReplayedRunIsByteIdenticalToLiveRunPerWorkload)
{
    setQuietLogging(true);
    // For every registered generator family: record a live run, replay
    // the recording, and require identical stats -- the acceptance
    // criterion that makes traces trustworthy evaluation inputs.
    const char *specs[] = {
        "kv_wal:keys=512,ckpt_every=128",
        "fs_journal:meta_blocks=256",
        "pstore:dump_every=16,dump_blocks=32",
        "zipf_mix:tenants=64,keys=16",
        "spec:profile=gamess",
        "kv_wal:keys=256,burst_period=500,burst_duty=0.5",
    };
    for (const char *spec : specs) {
        SCOPED_TRACE(spec);
        const std::string path = scratchPath("e2e.trc");

        ExperimentPoint live;
        live.label = "live";
        live.scheme = Scheme::Cobcm;
        live.workload = spec;
        live.instructions = 6000;
        live.seed = 5;
        live.captureStats = true;
        live.samplePeriod = 2048;
        live.traceRecord = path;
        const ExperimentResult lr = runExperimentPoint(live);

        ExperimentPoint replay = live;
        replay.label = "replay";
        replay.workload = "replay:file=" + path;
        replay.traceRecord.clear();
        const ExperimentResult rr = runExperimentPoint(replay);

        EXPECT_EQ(lr.sim.execTicks, rr.sim.execTicks);
        EXPECT_EQ(lr.sim.instructions, rr.sim.instructions);
        EXPECT_EQ(lr.sim.persists, rr.sim.persists);
        EXPECT_EQ(lr.statsJson, rr.statsJson);
        ASSERT_EQ(lr.samples.numEpochs(), rr.samples.numEpochs());

        std::remove(path.c_str());
    }
}
