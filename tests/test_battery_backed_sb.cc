/**
 * @file
 * Tests for the battery-backed store buffer option (paper Section
 * IV-C(b)): with it, stores still waiting in the store buffer at crash
 * time are absorbed by the battery; without it they are lost -- but
 * recovery stays consistent either way.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
cfgWith(bool battery_sb)
{
    SystemConfig cfg;
    cfg.scheme = Scheme::NoGap;  // slow acceptance keeps the SB occupied
    cfg.secpb.numEntries = 8;
    cfg.storeBufferEntries = 16;
    cfg.pmDataBytes = 1ULL << 30;
    cfg.batteryBackedStoreBuffer = battery_sb;
    return cfg;
}

/** Crash while the store buffer demonstrably holds stores. */
CrashReport
crashWithSbOccupied(SecPbSystem &sys, std::size_t &sb_occupancy)
{
    ScriptedGenerator gen;
    for (int i = 0; i < 16; ++i)
        gen.store(static_cast<Addr>(i) * BlockSize, 0x9000 + i);
    sys.start(gen);
    sys.runUntil(150);  // a few acceptances in, many stores still queued
    sb_occupancy = sys.storeBuffer().occupancy();
    return sys.crashNow();
}

} // namespace

TEST(BatteryBackedSb, AbsorbedStoresPersist)
{
    SecPbSystem sys(cfgWith(true));
    std::size_t occ = 0;
    CrashReport cr = crashWithSbOccupied(sys, occ);
    ASSERT_GT(occ, 0u) << "test needs stores stuck in the SB";
    EXPECT_TRUE(cr.recovered);
    // Every one of the 16 stores reached the oracle (SB absorbed).
    EXPECT_EQ(sys.oracle().numPersists(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(sys.oracle().touched(static_cast<Addr>(i) * BlockSize));
}

TEST(BatteryBackedSb, WithoutFlagSbStoresAreLost)
{
    SecPbSystem sys(cfgWith(false));
    std::size_t occ = 0;
    CrashReport cr = crashWithSbOccupied(sys, occ);
    ASSERT_GT(occ, 0u);
    EXPECT_TRUE(cr.recovered);  // still consistent -- just a shorter prefix
    EXPECT_LT(sys.oracle().numPersists(), 16u);
}

TEST(BatteryBackedSb, AbsorbedStoreCoalescesIntoResidentEntry)
{
    // The head block is resident in the SecPB when a queued store to the
    // same block is absorbed: the tuple must reflect the newest value.
    SystemConfig cfg = cfgWith(true);
    cfg.scheme = Scheme::NoGap;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    gen.store(0x100, 0xAAA);   // will be accepted and resident
    gen.store(0x100, 0xBBB);   // will sit in the SB at crash time
    sys.start(gen);
    sys.runUntil(100);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_EQ(blockWord(sys.oracle().blockContent(0x100), 0), 0xBBBu);
}

TEST(BatteryBackedSb, AbsorptionCountsAsBatteryWork)
{
    SecPbSystem with(cfgWith(true));
    std::size_t occ = 0;
    const CrashReport cr_with = crashWithSbOccupied(with, occ);

    SecPbSystem without(cfgWith(false));
    const CrashReport cr_without = crashWithSbOccupied(without, occ);

    EXPECT_GT(cr_with.work.entriesDrained,
              cr_without.work.entriesDrained);
    EXPECT_GT(cr_with.actualEnergyJ, cr_without.actualEnergyJ);
}
