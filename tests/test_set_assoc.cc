/**
 * @file
 * Unit tests for the set-associative tag store.
 */

#include <gtest/gtest.h>

#include "mem/set_assoc.hh"

using namespace secpb;

namespace
{

CacheGeometry
tinyGeom()
{
    // 4 sets x 2 ways x 64B = 512B.
    return CacheGeometry{512, 2, 64};
}

} // namespace

TEST(SetAssoc, MissThenHit)
{
    SetAssocCache c(tinyGeom());
    EXPECT_FALSE(c.access(0x100));
    c.insert(0x100);
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f));  // same block, different byte
}

TEST(SetAssoc, GeometryComputesSets)
{
    EXPECT_EQ(SetAssocCache(tinyGeom()).numSets(), 4u);
    EXPECT_EQ(SetAssocCache(CacheGeometry{128 * 1024, 8, 64}).numSets(),
              256u);
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache c(tinyGeom());
    // Set index = (addr/64) % 4. Addresses 0, 0x400, 0x800 share set 0.
    c.insert(0x000);
    c.insert(0x400);
    c.access(0x000);  // make 0x400 the LRU way
    auto victim = c.insert(0x800);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x400u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x400));
}

TEST(SetAssoc, InsertReportsVictimDirtiness)
{
    SetAssocCache c(tinyGeom());
    c.insert(0x000);
    c.insert(0x400);
    c.markDirty(0x000);
    c.access(0x400);  // 0x000 becomes LRU
    auto victim = c.insert(0x800);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x000u);
    EXPECT_TRUE(victim->dirty);
}

TEST(SetAssoc, DoubleInsertIsIdempotent)
{
    SetAssocCache c(tinyGeom());
    c.insert(0x100);
    EXPECT_FALSE(c.insert(0x100).has_value());
    EXPECT_EQ(c.numValid(), 1u);
}

TEST(SetAssoc, InvalidateRemoves)
{
    SetAssocCache c(tinyGeom());
    c.insert(0x100);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_FALSE(c.invalidate(0x100));
}

TEST(SetAssoc, DirtyTracking)
{
    SetAssocCache c(tinyGeom());
    c.insert(0x100);
    EXPECT_FALSE(c.isDirty(0x100));
    EXPECT_TRUE(c.markDirty(0x100));
    EXPECT_TRUE(c.isDirty(0x100));
    EXPECT_FALSE(c.markDirty(0x980));  // not present
}

TEST(SetAssoc, ResidentBlocksFilterDirty)
{
    SetAssocCache c(tinyGeom());
    c.insert(0x000);
    c.insert(0x040);
    c.markDirty(0x040);
    EXPECT_EQ(c.residentBlocks(false).size(), 2u);
    const auto dirty = c.residentBlocks(true);
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0], 0x040u);
}

TEST(SetAssoc, FlushAllEmpties)
{
    SetAssocCache c(tinyGeom());
    for (Addr a = 0; a < 512; a += 64)
        c.insert(a);
    c.flushAll();
    EXPECT_EQ(c.numValid(), 0u);
}

TEST(SetAssoc, NonPowerOfTwoSetsIsFatal)
{
    CacheGeometry g{3 * 64 * 2, 2, 64};  // 3 sets
    EXPECT_DEATH(SetAssocCache c(g), "power of two");
}

TEST(SetAssoc, FullyAssociativeWorks)
{
    // One set, 8 ways.
    SetAssocCache c(CacheGeometry{8 * 64, 8, 64});
    for (Addr a = 0; a < 8 * 64; a += 64)
        c.insert(a);
    EXPECT_EQ(c.numValid(), 8u);
    auto victim = c.insert(0x4000);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x000u);  // LRU
}
