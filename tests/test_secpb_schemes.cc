/**
 * @file
 * Parameterized tests over the whole scheme spectrum: every scheme must
 * preserve the crash-recovery invariants and expose its documented
 * early/late split. TEST_P sweeps all six SecPB schemes plus SP and
 * sec_wt where applicable.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
cfgFor(Scheme scheme, unsigned entries = 8)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = entries;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

class AllSchemes : public ::testing::TestWithParam<Scheme>
{};

class SecureSchemes : public ::testing::TestWithParam<Scheme>
{};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Spectrum, AllSchemes,
    ::testing::Values(Scheme::Bbb, Scheme::Sp, Scheme::SecWt,
                      Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm, Scheme::Cm,
                      Scheme::M, Scheme::NoGap, Scheme::Secpm,
                      Scheme::Triad, Scheme::Eadr, Scheme::Stream),
    [](const auto &info) { return std::string(schemeName(info.param)); });

INSTANTIATE_TEST_SUITE_P(
    Spectrum, SecureSchemes,
    ::testing::Values(Scheme::Sp, Scheme::SecWt, Scheme::Cobcm,
                      Scheme::Obcm, Scheme::Bcm, Scheme::Cm, Scheme::M,
                      Scheme::NoGap, Scheme::Secpm, Scheme::Triad,
                      Scheme::Eadr, Scheme::Stream),
    [](const auto &info) { return std::string(schemeName(info.param)); });

TEST_P(AllSchemes, RunsScriptedWorkloadToCompletion)
{
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 20 * BlockSize; a += BlockSize)
        gen.store(a, a + 1).instr(10).load();
    SimulationResult r = sys.run(gen);
    EXPECT_EQ(r.persists, 20u);
    EXPECT_GT(r.execTicks, 0u);
}

TEST_P(AllSchemes, CrashRecoveryMatchesOracle)
{
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    for (int i = 0; i < 40; ++i)
        gen.store((i % 12) * BlockSize + 8 * (i % 8),
                  0x1000u + static_cast<std::uint64_t>(i));
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered) << schemeName(GetParam());
    EXPECT_EQ(cr.recovery.plaintextMismatches, 0u);
    EXPECT_EQ(cr.recovery.macFailures, 0u);
    EXPECT_EQ(cr.recovery.bmtFailures, 0u);
}

TEST_P(SecureSchemes, TupleConsistentMidExecutionCrash)
{
    // Crash at several points mid-run; recovery must always verify.
    for (Tick crash_at : {500u, 2'000u, 10'000u, 50'000u}) {
        SecPbSystem sys(cfgFor(GetParam()));
        const BenchmarkProfile &p = profileByName("gcc");
        SyntheticGenerator gen(p, 20'000, /*seed=*/3);
        sys.start(gen);
        sys.runUntil(crash_at);
        CrashReport cr = sys.crashNow();
        EXPECT_TRUE(cr.recovered)
            << schemeName(GetParam()) << " @ " << crash_at;
    }
}

TEST_P(SecureSchemes, ActualCrashEnergyWithinProvisioned)
{
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, a);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    // SP holds no entries; others must have used positive energy.
    if (GetParam() != Scheme::Sp) {
        EXPECT_GT(cr.actualEnergyJ, 0.0);
    }
    EXPECT_LE(cr.actualEnergyJ, cr.provisionedEnergyJ * 1.05)
        << schemeName(GetParam());
}

TEST_P(SecureSchemes, EarlyBitsMatchTraits)
{
    // After the early phase completes, the entry's valid bits must match
    // the scheme's early set (Figure 5's per-design field table).
    const Scheme s = GetParam();
    const SchemeTraits t = schemeTraits(s);
    SecPbSystem sys(cfgFor(s));
    ScriptedGenerator gen;
    gen.store(0x5000, 0xFEED);
    sys.run(gen);

    BonsaiMerkleTree fresh(sys.layout().numPages(),
                           sys.config().keys.macKey ^ 0xb037);

    if (s == Scheme::Sp) {
        // SP keeps no SecPB entries -- the WPQ is the persistence domain
        // -- so its invariant is the converse of the buffered schemes':
        // zero occupancy, the counter bumped synchronously at accept,
        // and (after the battery completes any in-flight tuple) the
        // block durable with the eagerly-updated root.
        EXPECT_EQ(sys.secpb().occupancy(), 0u);
        EXPECT_EQ(sys.counters().counterFor(0x5000).minor, 1u);
        CrashReport cr = sys.crashNow();
        EXPECT_TRUE(cr.recovered);
        EXPECT_TRUE(sys.pm().hasData(0x5000));
        EXPECT_NE(sys.tree().root(), fresh.root());
        return;
    }

    // Inspect the functional state through side effects: counter
    // increments and crypto-engine op counts.
    const BlockCounter c = sys.counters().counterFor(0x5000);
    EXPECT_EQ(c.minor, t.earlyCounter ? 1u : 0u);

    // BMT root moved only for early-BMT schemes.
    if (t.earlyBmt)
        EXPECT_NE(sys.tree().root(), fresh.root());
    else
        EXPECT_EQ(sys.tree().root(), fresh.root());
}

TEST_P(SecureSchemes, PersistOrderInvariantUnderCrash)
{
    // Persist-order invariant (PLP invariant 2): if store A precedes
    // store B and B is recovered, A must be too. We run a sequence of
    // stores with strictly increasing values to distinct words and crash
    // mid-way; the recovered prefix must be exactly the oracle state.
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    const int n = 30;
    for (int i = 0; i < n; ++i)
        gen.store(static_cast<Addr>(i) * BlockSize, 100u + i);
    sys.start(gen);
    sys.runUntil(700);  // some stores accepted, some not
    CrashReport cr = sys.crashNow();
    ASSERT_TRUE(cr.recovered);

    // Every block the oracle saw must decrypt to the oracle's value;
    // no block beyond the oracle's persist point may appear "newer".
    const std::uint64_t persisted = sys.oracle().numPersists();
    EXPECT_LE(persisted, static_cast<std::uint64_t>(n));
    // Prefix property: blocks 0..persisted-1 are exactly the ones the
    // oracle saw (stores go in program order through the store buffer).
    for (std::uint64_t i = 0; i < persisted; ++i)
        EXPECT_TRUE(sys.oracle().touched(i * BlockSize));
    for (std::uint64_t i = persisted; i < n; ++i)
        EXPECT_FALSE(sys.oracle().touched(i * BlockSize));
}

TEST_P(SecureSchemes, TamperedDataFailsRecovery)
{
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
        gen.store(a, a + 7);
    sys.run(gen);
    sys.crashNow();  // clean battery drain

    // Physical attacker flips one ciphertext bit after power-off.
    sys.pm().tamperData(0x000, 3, 0x40);
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_GT(report.macFailures + report.plaintextMismatches, 0u);
}

TEST_P(SecureSchemes, TamperedCounterFailsBmtVerification)
{
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 10 * BlockSize; a += BlockSize)
        gen.store(a, a + 7);
    sys.run(gen);
    sys.crashNow();

    sys.pm().tamperCounter(sys.layout().pageIndex(0x000),
                           sys.layout().blockInPage(0x000));
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_GT(report.bmtFailures, 0u);
}

TEST_P(SecureSchemes, ReplayedTupleFailsBmtVerification)
{
    // Full-tuple replay: capture an old consistent (ct, ctr, mac) triple,
    // let the system persist a newer version, then roll the PM back.
    // Data, counter, and MAC are mutually consistent, so only the BMT
    // root (in the on-chip register) can expose the rollback.
    SecPbSystem sys(cfgFor(GetParam()));
    ScriptedGenerator gen1;
    gen1.store(0x000, 0xAAAA);
    sys.run(gen1);
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);

    const BlockData old_ct = sys.pm().readData(0x000);
    const CounterBlock old_cb = sys.pm().readCounterBlock(0);
    const MacValue old_mac = sys.pm().readMac(0x000);

    // Newer version persists (fresh residency, counter bumps again).
    ScriptedGenerator gen2;
    gen2.store(0x000, 0xBBBB);
    // Reuse the same system: drive the store buffer directly.
    bool done = false;
    sys.storeBuffer().tryPush(0x000, 0xBBBB);
    sys.storeBuffer().notifyWhenEmpty([&] { done = true; });
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    ASSERT_TRUE(done);
    CrashReport cr = sys.crashNow();
    ASSERT_TRUE(cr.recovered);

    sys.pm().replayTuple(0x000, old_ct, old_cb, old_mac, 0);
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_GT(report.bmtFailures + report.plaintextMismatches, 0u)
        << schemeName(GetParam());
}

// ---------------------------------------------------------------------------
// Scheme-zoo invariants: the per-design behavior each related-work scheme
// plugs in through its SchemePolicy.
// ---------------------------------------------------------------------------

TEST(SchemeZoo, SecpmCounterWriteThroughKeepsCtrCacheClean)
{
    // SecPM writes counters through to PCM, so the persistent copy is
    // always current and a crash never owes a counter-cache flush.
    SecPbSystem sys(cfgFor(Scheme::Secpm));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 24 * BlockSize; a += BlockSize)
        gen.store(a, a + 11);
    sys.run(gen);
    EXPECT_TRUE(sys.ctrCache().dirtyBlocks().empty());

    // Contrast: the same run under BCM (also early-counter, but lazy
    // write-back) leaves dirty counter blocks behind.
    SecPbSystem lazy(cfgFor(Scheme::Bcm));
    ScriptedGenerator gen2;
    for (Addr a = 0; a < 24 * BlockSize; a += BlockSize)
        gen2.store(a, a + 11);
    lazy.run(gen2);
    EXPECT_FALSE(lazy.ctrCache().dirtyBlocks().empty());

    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}

TEST(SchemeZoo, TriadFewerPersistedLevelsMeansMoreRebuildWork)
{
    std::uint64_t rebuilt_at_two = 0;
    for (unsigned levels : {2u, 1u}) {
        SystemConfig cfg = cfgFor(Scheme::Triad);
        cfg.secpb.params.triadLevels = levels;
        SecPbSystem sys(cfg);
        ScriptedGenerator gen;
        for (int i = 0; i < 40; ++i)
            gen.store((i % 16) * BlockSize,
                      0x2000u + static_cast<std::uint64_t>(i));
        sys.run(gen);
        CrashReport cr = sys.crashNow();
        ASSERT_TRUE(cr.recovered) << "triad:levels=" << levels;
        EXPECT_GT(cr.work.bmtNodesRebuilt, 0u);
        if (levels == 2)
            rebuilt_at_two = cr.work.bmtNodesRebuilt;
        else
            EXPECT_GT(cr.work.bmtNodesRebuilt, rebuilt_at_two);
    }
}

TEST(SchemeZoo, TriadRebuildRepairsTamperedVolatileNode)
{
    // The rebuild is not vacuous: forging a node in the volatile upper
    // region is caught by verification, and rebuildFromLevel() restores
    // exactly the pre-tamper tree.
    SystemConfig cfg = cfgFor(Scheme::Triad);
    cfg.secpb.params.triadLevels = 1;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    for (Addr a = 0; a < 12 * BlockSize; a += BlockSize)
        gen.store(a, a + 9);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    ASSERT_TRUE(cr.recovered);

    BonsaiMerkleTree &tree = sys.tree();
    const Digest good_root = tree.root();
    const unsigned lvl = 1;  // volatile under triad:levels=1
    ASSERT_TRUE(tree.hasNode(lvl, 0));
    BmtNode forged = tree.node(lvl, 0);
    forged.child[0] ^= 0xDEADULL;
    ASSERT_TRUE(tree.tamperNode(lvl, 0, forged));

    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport bad = verifier.verifyAll(sys.pm(), tree, sys.oracle());
    EXPECT_GT(bad.bmtFailures, 0u);  // zero silent acceptance

    EXPECT_GT(tree.rebuildFromLevel(lvl), 0u);
    EXPECT_EQ(tree.root(), good_root);
    RecoveryReport good = verifier.verifyAll(sys.pm(), tree, sys.oracle());
    EXPECT_EQ(good.bmtFailures, 0u);
}

TEST(SchemeZoo, EadrPricesWholeHierarchyFlush)
{
    SecPbSystem sys(cfgFor(Scheme::Eadr));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, a + 5);
    sys.run(gen);

    const HierarchyFootprint h;
    const std::uint64_t lines =
        (h.l1Bytes + h.l2Bytes + h.l3Bytes) / BlockSize;
    EXPECT_EQ(sys.secpb().predictCrashDrainWork().cacheLinesFlushed, lines);

    CrashReport cr = sys.crashNow();
    ASSERT_TRUE(cr.recovered);
    EXPECT_EQ(cr.work.cacheLinesFlushed, lines);
    EXPECT_GT(cr.actualEnergyJ, 0.0);
    EXPECT_LE(cr.actualEnergyJ, cr.provisionedEnergyJ);

    // The provisioned battery must cover the hierarchy: strictly larger
    // than the same-size COBCM SecPB battery.
    SecPbSystem cob(cfgFor(Scheme::Cobcm));
    EXPECT_GT(sys.provisionedCrashEnergy(), cob.provisionedCrashEnergy());
}

TEST(SchemeZoo, StreamNotSlowerThanNoGapSameSecurity)
{
    // Streamlined BMT issue keeps NoGap's eager tuple but unblocks the
    // store at pipelined walk issue, so it can never run slower.
    auto runOne = [](Scheme s) {
        SecPbSystem sys(cfgFor(s));
        ScriptedGenerator gen;
        for (int i = 0; i < 60; ++i)
            gen.store((i % 20) * BlockSize,
                      0x3000u + static_cast<std::uint64_t>(i));
        return sys.run(gen).execTicks;
    };
    EXPECT_LE(runOne(Scheme::Stream), runOne(Scheme::NoGap));

    // Crash mid-run with walks still retiring in the background: the
    // functionally-eager tree must still verify.
    SecPbSystem sys(cfgFor(Scheme::Stream));
    const BenchmarkProfile &p = profileByName("gcc");
    SyntheticGenerator gen(p, 20'000, /*seed=*/3);
    sys.start(gen);
    sys.runUntil(5'000);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}
